//! Integration tests of multi-job coordination (§III-D) through the
//! simulator: benefit probing, AIV aggregation, and the INDA/INDB
//! favouritism the paper's Figure 14 demonstrates.

use icache::baselines::LruCache;
use icache::core::{IcacheConfig, IcacheManager};
use icache::dnn::ModelProfile;
use icache::sim::{run_multi_job, JobConfig, RunMetrics, SamplingMode};
use icache::storage::{Pfs, PfsConfig};
use icache::types::{Dataset, JobId};

fn jobs(dataset: &Dataset, iis: bool) -> Vec<JobConfig> {
    let mut a = JobConfig::new(JobId(0), ModelProfile::shufflenet(), dataset.clone());
    let mut b = JobConfig::new(JobId(1), ModelProfile::resnet50(), dataset.clone());
    for (i, c) in [&mut a, &mut b].into_iter().enumerate() {
        c.epochs = 4;
        c.seed = 11 + i as u64 * 999_983;
        if iis {
            c.sampling = SamplingMode::Iis { fraction: 0.7 };
        }
    }
    vec![a, b]
}

fn icache_with(dataset: &Dataset, filter: Option<JobId>, multi_job: bool) -> IcacheManager {
    let mut cfg = IcacheConfig::for_dataset(dataset, 0.2).expect("cfg");
    cfg.hlist_filter = filter;
    cfg.multi_job = multi_job;
    cfg.probe_samples = (dataset.len() / 20).max(32);
    IcacheManager::new(cfg, dataset).expect("manager")
}

fn job_hit(m: &RunMetrics) -> f64 {
    m.epochs[1..].iter().map(|e| e.job_hit_ratio()).sum::<f64>() / (m.epochs.len() - 1) as f64
}

#[test]
fn inda_favours_its_job_and_starves_the_other() {
    let dataset = Dataset::cifar10().scaled(0.05).expect("scale");
    let mut cache = icache_with(&dataset, Some(JobId(0)), false);
    let mut pfs = Pfs::new(PfsConfig::orangefs_default()).expect("pfs");
    let out = run_multi_job(jobs(&dataset, true), &mut cache, &mut pfs).expect("runs");
    assert!(
        job_hit(&out[0]) > job_hit(&out[1]) + 0.1,
        "INDA must favour job0: {:.2} vs {:.2}",
        job_hit(&out[0]),
        job_hit(&out[1])
    );
}

#[test]
fn coordination_balances_hit_ratios() {
    let dataset = Dataset::cifar10().scaled(0.05).expect("scale");
    let mut cache = icache_with(&dataset, None, true);
    let mut pfs = Pfs::new(PfsConfig::orangefs_default()).expect("pfs");
    let out = run_multi_job(jobs(&dataset, true), &mut cache, &mut pfs).expect("runs");
    let (h0, h1) = (job_hit(&out[0]), job_hit(&out[1]));
    assert!(
        h0 > 0.05 && h1 > 0.05,
        "both jobs must benefit: {h0:.2}, {h1:.2}"
    );
    assert!(
        (h0 - h1).abs() < 0.2,
        "coordinated hit ratios should be comparable: {h0:.2} vs {h1:.2}"
    );
    // Benefit probes completed and produced verdicts.
    assert!(cache.coordinator().benefit(JobId(0)).is_some());
    assert!(cache.coordinator().benefit(JobId(1)).is_some());
}

#[test]
fn coordinated_icache_beats_uncoordinated_lru_on_completion() {
    let dataset = Dataset::cifar10().scaled(0.05).expect("scale");

    let mut lru = LruCache::new(dataset.total_bytes().scaled(0.2));
    let mut pfs = Pfs::new(PfsConfig::orangefs_default()).expect("pfs");
    let base = run_multi_job(jobs(&dataset, false), &mut lru, &mut pfs).expect("runs");

    let mut cache = icache_with(&dataset, None, true);
    let mut pfs = Pfs::new(PfsConfig::orangefs_default()).expect("pfs");
    let coord = run_multi_job(jobs(&dataset, true), &mut cache, &mut pfs).expect("runs");

    let completion = |out: &[RunMetrics]| {
        out.iter()
            .map(|m| m.total_time().as_secs_f64())
            .fold(0.0f64, f64::max)
    };
    assert!(
        completion(&coord) < completion(&base),
        "coordination should cut completion: {:.2}s vs {:.2}s",
        completion(&coord),
        completion(&base)
    );
}
