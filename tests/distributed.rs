//! Integration tests of the distributed cache (§III-E) driven through the
//! training simulator.

use icache::core::{DistributedCache, DistributedConfig};
use icache::dnn::ModelProfile;
use icache::sim::{run_multi_job, JobConfig, SamplingMode};
use icache::storage::{Nfs, NfsConfig, StorageBackend};
use icache::types::{Dataset, JobId};

fn shard_jobs(dataset: &Dataset, nodes: u32, epochs: u32) -> Vec<JobConfig> {
    (0..nodes)
        .map(|k| {
            let mut c = JobConfig::new(JobId(k), ModelProfile::resnet18(), dataset.clone());
            c.epochs = epochs;
            c.shard = Some((k, nodes));
            c.sampling = SamplingMode::Iis { fraction: 0.7 };
            c.seed = 7; // shards share the epoch plan
            c
        })
        .collect()
}

fn run_cluster(dataset: &Dataset, nodes: u32) -> (Vec<icache::sim::RunMetrics>, u64, u64) {
    let mut cluster = DistributedCache::new(
        DistributedConfig::for_dataset(dataset, nodes as usize, 0.2).expect("cfg"),
        dataset,
    )
    .expect("cluster");
    let mut nfs = Nfs::new(NfsConfig::cloud_default()).expect("nfs");
    let out = run_multi_job(shard_jobs(dataset, nodes, 3), &mut cluster, &mut nfs).expect("runs");
    (out, cluster.remote_hits(), nfs.stats().total_reads())
}

#[test]
fn shards_partition_each_epoch() {
    let dataset = Dataset::cifar10().scaled(0.04).expect("scale");
    let (out, _, _) = run_cluster(&dataset, 4);
    assert_eq!(out.len(), 4);
    let total: u64 = out.iter().map(|m| m.epochs[0].samples_fetched).sum();
    assert_eq!(
        total,
        dataset.len(),
        "warm-up epoch covers the dataset exactly once"
    );
}

#[test]
fn peer_cache_serves_cross_node_hits() {
    let dataset = Dataset::cifar10().scaled(0.04).expect("scale");
    let (_, remote_hits, _) = run_cluster(&dataset, 4);
    assert!(
        remote_hits > 0,
        "shuffled shards must generate peer-cache traffic"
    );
}

#[test]
fn more_nodes_mean_less_storage_traffic_per_epoch() {
    let dataset = Dataset::cifar10().scaled(0.04).expect("scale");
    let (_, _, reads2) = run_cluster(&dataset, 2);
    let (_, _, reads4) = run_cluster(&dataset, 4);
    // The 4-node joint cache holds twice as much: storage sees fewer reads.
    assert!(
        reads4 < reads2,
        "joint cache growth should cut storage reads: {reads4} vs {reads2}"
    );
}

#[test]
fn four_nodes_train_faster_than_two() {
    let dataset = Dataset::cifar10().scaled(0.04).expect("scale");
    let (out2, _, _) = run_cluster(&dataset, 2);
    let (out4, _, _) = run_cluster(&dataset, 4);
    let slowest = |out: &[icache::sim::RunMetrics]| {
        out.iter()
            .map(|m| m.avg_epoch_time_steady().as_secs_f64())
            .fold(0.0f64, f64::max)
    };
    assert!(
        slowest(&out4) < slowest(&out2),
        "4S {:.3}s should beat 2S {:.3}s",
        slowest(&out4),
        slowest(&out2)
    );
}
