//! Membership-churn invariants of the sharded cache service: a kill +
//! rejoin mid-run repartitions the directory (traced), loses no
//! training samples, and a warm restart refetches strictly less from
//! shared storage than a cold one. A property test drives arbitrary
//! kill/rejoin/fetch sequences through the public [`CacheService`] API
//! and checks the directory stays consistent throughout.

use icache::core::{CacheService, CacheSystem, RecoveryMode, ServiceConfig};
use icache::obs::Obs;
use icache::sim::{ChurnSpec, RunMetrics, Scenario, SystemKind};
use icache::storage::LocalTier;
use icache::types::{
    ByteSize, Dataset, DatasetBuilder, JobId, NodeId, SampleId, SimTime, SizeModel,
};
use proptest::prelude::*;
use std::collections::{BTreeSet, HashMap};

const NODES: u32 = 3;

fn churn_scenario() -> Scenario {
    Scenario::cifar10(SystemKind::Icache)
        .scale_dataset(0.02)
        .expect("scale")
        .epochs(4)
        .batch_size(64)
        .seed(7)
}

fn run_churn(spec: &ChurnSpec) -> (Vec<RunMetrics>, CacheService, Obs) {
    let obs = Obs::new();
    let (runs, svc) = churn_scenario()
        .run_distributed_churn_with_obs(NODES, spec, &obs)
        .expect("churn run");
    (runs, svc, obs)
}

fn storage_fetch_total(obs: &Obs) -> u64 {
    (0..NODES)
        .map(|i| obs.counter(&format!("dist.node{i}.storage_fetches")))
        .sum()
}

/// Every directory entry names a live owner, no sample is mapped twice,
/// and the mapping size reconciles with the insert/remove counters.
fn assert_directory_consistent(svc: &CacheService, obs: &Obs) {
    let live: BTreeSet<NodeId> = svc.live_nodes().into_iter().collect();
    let mut seen = BTreeSet::new();
    for (sample, owner) in svc.directory_entries() {
        assert!(
            live.contains(&owner),
            "sample {sample:?} owned by non-live node {owner:?}"
        );
        assert!(seen.insert(sample), "sample {sample:?} mapped twice");
    }
    assert_eq!(
        svc.directory_len() as u64,
        obs.counter("dist.directory.inserts") - obs.counter("dist.directory.removes"),
        "directory size must reconcile with insert/remove counters"
    );
}

#[test]
fn kill_and_rejoin_repartitions_without_losing_samples() {
    let (runs, svc, obs) = run_churn(&ChurnSpec::kill_and_rejoin(1, 2));

    assert_eq!(obs.counter("svc.kills"), 1, "node 1 crashed once");
    assert_eq!(obs.counter("svc.rejoins"), 1, "node 1 came back");
    assert_eq!(
        svc.live_nodes().len(),
        NODES as usize,
        "full strength again"
    );
    assert!(
        obs.counter("svc.membership.downs") >= 1,
        "the failure detector must declare the crashed node down"
    );
    assert!(
        obs.counter("svc.repartition.moved") > 0,
        "membership change must move directory shards"
    );
    assert!(
        obs.counter("svc.repartition.purged") > 0,
        "the dead node's residency must be purged"
    );

    // Repartitions and recovery are first-class trace events.
    let events: HashMap<String, u64> = obs.trace_event_counts().into_iter().collect();
    assert!(
        events.get("partition_update").copied().unwrap_or(0) >= 2,
        "down + rejoin each repartition: {events:?}"
    );
    assert!(
        events.contains_key("directory_remap"),
        "shard moves must be traced: {events:?}"
    );
    assert!(
        events.contains_key("membership_change"),
        "suspicion transitions must be traced: {events:?}"
    );
    assert_eq!(
        events.get("warm_recovery").copied(),
        Some(1),
        "one warm restart: {events:?}"
    );

    // Zero lost samples: every rank fetched its full shard in every
    // epoch, exactly as a churn-free cluster does.
    let baseline = churn_scenario()
        .run_distributed_with_obs(NODES, &Obs::new())
        .expect("baseline run");
    for (churned, calm) in runs.iter().zip(&baseline) {
        assert_eq!(churned.epochs.len(), calm.epochs.len());
        for (a, b) in churned.epochs.iter().zip(&calm.epochs) {
            assert_eq!(
                a.samples_fetched, b.samples_fetched,
                "churn must not lose training samples"
            );
        }
    }

    assert_directory_consistent(&svc, &obs);
}

#[test]
fn warm_restart_refetches_strictly_less_than_cold() {
    let (_, _, warm_obs) = run_churn(&ChurnSpec::kill_and_rejoin(1, 2));
    let mut cold_spec = ChurnSpec::kill_and_rejoin(1, 2);
    cold_spec.warm = false;
    let (_, _, cold_obs) = run_churn(&cold_spec);

    assert_eq!(warm_obs.counter("svc.recovery.warm_restarts"), 1);
    assert!(
        warm_obs.counter("svc.recovery.restored_samples") > 0,
        "the recovery index must restore residency"
    );
    assert!(
        warm_obs.counter("svc.recovery.index_writes") > 0,
        "nodes must snapshot residency at epoch ends"
    );
    assert_eq!(cold_obs.counter("svc.recovery.cold_restarts"), 1);
    assert_eq!(cold_obs.counter("svc.recovery.restored_samples"), 0);

    let warm = storage_fetch_total(&warm_obs);
    let cold = storage_fetch_total(&cold_obs);
    assert!(
        warm < cold,
        "a warm restart must refetch strictly fewer samples than cold \
         (warm {warm} vs cold {cold})"
    );
}

// ---- property: directory stays consistent under arbitrary churn ----

#[derive(Debug, Clone)]
enum Op {
    Fetch(u64),
    Kill(u32),
    Rejoin(u32, bool),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // ~3/4 fetches, 1/8 kills, 1/8 rejoins.
    (0u8..8, any::<u64>()).prop_map(|(sel, raw)| match sel {
        6 => Op::Kill((raw % NODES as u64) as u32),
        7 => Op::Rejoin((raw % NODES as u64) as u32, raw & 8 != 0),
        _ => Op::Fetch(raw),
    })
}

fn tiny_dataset() -> Dataset {
    DatasetBuilder::new("churn-prop", 256)
        .size_model(SizeModel::Fixed(ByteSize::kib(3)))
        .build()
        .expect("dataset")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any interleaving of fetches, kills, and rejoins (static
    /// membership: a kill repartitions immediately) keeps the directory
    /// consistent: `len == inserts − removes` and every sample owned by
    /// exactly one live node.
    #[test]
    fn directory_survives_any_churn_sequence(ops in proptest::collection::vec(op_strategy(), 1..60)) {
        let dataset = tiny_dataset();
        let mut cfg = ServiceConfig::for_dataset(&dataset, NODES as usize, 0.2).expect("cfg");
        cfg.recovery = RecoveryMode::Memory;
        let mut svc = CacheService::new(cfg, &dataset).expect("service");
        let obs = Obs::new();
        CacheSystem::set_obs(&mut svc, obs.clone());
        let mut storage = LocalTier::tmpfs();

        for (step, op) in ops.iter().enumerate() {
            let now = SimTime::from_nanos((step as u64 + 1) * 1_000_000);
            match *op {
                Op::Fetch(raw) => {
                    let id = SampleId(raw % dataset.len());
                    let job = JobId((raw % NODES as u64) as u32);
                    let size = dataset.sample_size(id);
                    svc.fetch(job, id, size, now, &mut storage);
                }
                Op::Kill(n) => {
                    // Never fell the last node: an empty live set has no
                    // shard owners to repartition onto.
                    if svc.live_nodes().len() > 1 {
                        svc.kill_node(NodeId(n), now);
                    }
                }
                Op::Rejoin(n, warm) => {
                    svc.rejoin_node(NodeId(n), now, warm).expect("rejoin");
                }
            }
            assert_directory_consistent(&svc, &obs);
        }
    }
}
