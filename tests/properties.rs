//! Property-based integration tests: system-level invariants that must
//! hold for arbitrary workloads driven through the public facade.

use icache::baselines::LruCache;
use icache::core::{CacheSystem, IcacheConfig, IcacheManager};
use icache::dnn::ModelProfile;
use icache::obs::{Json, Obs};
use icache::sampling::{HList, ImportanceTable};
use icache::sim::{run_single_job_with_obs, JobConfig};
use icache::storage::LocalTier;
use icache::types::{ByteSize, DatasetBuilder, Epoch, JobId, SampleId, SimTime, SizeModel};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Whatever the request stream, the cache never exceeds its capacity,
    /// virtual time never runs backwards, and every delivered sample
    /// belongs to the dataset.
    #[test]
    fn cache_invariants_under_random_workloads(
        seed in 0u64..1_000,
        requests in proptest::collection::vec((0u64..800, 0u32..4), 50..400),
        cache_frac in 0.05f64..0.5,
        hot in 1u64..400,
    ) {
        let ds = DatasetBuilder::new("prop", 800)
            .size_model(SizeModel::Fixed(ByteSize::kib(3)))
            .seed(seed)
            .build()
            .expect("dataset");
        let mut cfg = IcacheConfig::for_dataset(&ds, cache_frac).expect("cfg");
        cfg.seed = seed;
        let mut cache = IcacheManager::new(cfg, &ds).expect("manager");
        let mut st = LocalTier::tmpfs();

        let mut table = ImportanceTable::new(ds.len());
        for id in ds.ids() {
            table.record_loss(id, if id.0 < hot { 50.0 } else { 0.1 });
        }
        cache.update_hlist(JobId(0), &HList::top_fraction(&table, 0.5));
        cache.on_epoch_start(JobId(0), Epoch(0));

        let mut now = SimTime::ZERO;
        for (raw, _) in requests {
            let id = SampleId(raw);
            let f = cache.fetch(JobId(0), id, ds.sample_size(id), now, &mut st);
            prop_assert!(f.ready_at >= now, "time went backwards");
            prop_assert!(ds.contains(f.served_id), "served unknown sample");
            prop_assert!(cache.used_bytes() <= cache.capacity(),
                "capacity violated: {} > {}", cache.used_bytes(), cache.capacity());
            now = f.ready_at;
        }
        // Accounting is self-consistent.
        let s = cache.stats();
        prop_assert_eq!(
            s.requests(),
            s.h_hits + s.l_hits + s.substitutions + s.misses
        );
    }

    /// Epoch boundaries preserve the capacity split exactly.
    #[test]
    fn rebalancing_conserves_capacity(
        seed in 0u64..500,
        epochs in 1usize..4,
    ) {
        let ds = DatasetBuilder::new("prop2", 500)
            .size_model(SizeModel::Fixed(ByteSize::kib(3)))
            .build()
            .expect("dataset");
        let mut cfg = IcacheConfig::for_dataset(&ds, 0.2).expect("cfg");
        cfg.seed = seed;
        let mut cache = IcacheManager::new(cfg, &ds).expect("manager");
        let mut st = LocalTier::tmpfs();
        let mut table = ImportanceTable::new(ds.len());
        for id in ds.ids() {
            table.record_loss(id, (id.0 % 97) as f64);
        }
        let mut now = SimTime::ZERO;
        for e in 0..epochs {
            cache.update_hlist(JobId(0), &HList::top_fraction(&table, 0.5));
            cache.on_epoch_start(JobId(0), Epoch(e as u32));
            for i in 0..200u64 {
                let id = SampleId((i * 7 + e as u64 * 13) % 500);
                let f = cache.fetch(JobId(0), id, ds.sample_size(id), now, &mut st);
                now = f.ready_at;
            }
            cache.on_epoch_end(JobId(0), Epoch(e as u32));
            prop_assert_eq!(cache.h_capacity() + cache.l_capacity(), cache.capacity());
            prop_assert!(cache.used_bytes() <= cache.capacity());
        }
    }

    /// Frequency-driven rebalancing (§III-A) under arbitrary H/L access
    /// mixes: however skewed the epoch's accesses, the L-region keeps room
    /// for at least one package and the regions never outgrow the
    /// configured capacity.
    #[test]
    fn rebalance_keeps_l_region_at_least_one_package(
        seed in 0u64..500,
        cache_frac in 0.05f64..0.5,
        hot_frac in 0.01f64..0.99,
        // Per-epoch access streams: each entry picks a sample by rank, so
        // low ranks land in the H-list and high ranks in the L-pool. The
        // mix of ranks sets the H:L access-frequency ratio.
        ranks in proptest::collection::vec(0u64..600, 30..250),
        epochs in 1usize..4,
    ) {
        let ds = DatasetBuilder::new("prop3", 600)
            .size_model(SizeModel::Fixed(ByteSize::kib(3)))
            .build()
            .expect("dataset");
        let mut cfg = IcacheConfig::for_dataset(&ds, cache_frac).expect("cfg");
        cfg.seed = seed;
        let package_size = cfg.package_size;
        let capacity = cfg.capacity;
        let min_l = package_size.min(capacity / 2);
        let mut cache = IcacheManager::new(cfg, &ds).expect("manager");
        let mut st = LocalTier::tmpfs();

        // Importance is rank order: sample 0 is hottest.
        let mut table = ImportanceTable::new(ds.len());
        for id in ds.ids() {
            table.record_loss(id, 600.0 - id.0 as f64);
        }
        let mut now = SimTime::ZERO;
        for e in 0..epochs {
            cache.update_hlist(JobId(0), &HList::top_fraction(&table, hot_frac));
            cache.on_epoch_start(JobId(0), Epoch(e as u32));
            for &r in &ranks {
                let id = SampleId(r);
                let f = cache.fetch(JobId(0), id, ds.sample_size(id), now, &mut st);
                now = f.ready_at;
            }
            cache.on_epoch_end(JobId(0), Epoch(e as u32));
            prop_assert!(
                cache.l_capacity() >= min_l,
                "L-region shrank below one package: {} < {} (hot_frac {hot_frac:.2})",
                cache.l_capacity(), min_l
            );
            prop_assert!(
                cache.h_capacity() + cache.l_capacity() <= capacity,
                "regions outgrew the cache: {} + {} > {}",
                cache.h_capacity(), cache.l_capacity(), capacity
            );
            prop_assert!(cache.used_bytes() <= cache.capacity());
        }
    }

    /// Epoch markers are well-formed for arbitrary job shapes: every
    /// `epoch_start` is closed by a matching `epoch_end` before the next
    /// one opens, and epoch indices increase strictly from zero.
    #[test]
    fn epoch_markers_pair_up_and_strictly_increase(
        seed in 0u64..1_000,
        samples in 64u64..320,
        epochs in 1u32..5,
        batch_pow in 4u32..7, // batch size 16, 32, or 64
        use_icache in any::<bool>(),
    ) {
        let ds = DatasetBuilder::new("prop4", samples)
            .size_model(SizeModel::Fixed(ByteSize::kib(3)))
            .build()
            .expect("dataset");
        let mut cfg = JobConfig::new(JobId(0), ModelProfile::shufflenet(), ds.clone());
        cfg.epochs = epochs;
        cfg.batch_size = 1 << batch_pow;
        cfg.seed = seed;
        let cap = ds.total_bytes().scaled(0.2);
        let mut cache: Box<dyn CacheSystem> = if use_icache {
            let mut icfg = IcacheConfig::for_dataset(&ds, 0.2).expect("cfg");
            icfg.seed = seed;
            Box::new(IcacheManager::new(icfg, &ds).expect("manager"))
        } else {
            Box::new(LruCache::new(cap))
        };
        let mut st = LocalTier::tmpfs();
        let obs = Obs::new();
        run_single_job_with_obs(cfg, cache.as_mut(), &mut st, &obs).expect("run");
        prop_assert_eq!(obs.trace_dropped(), 0, "ring overflowed; trace incomplete");

        let jsonl = obs.trace_jsonl();
        let mut open: Option<u64> = None;
        let mut last: Option<u64> = None;
        for line in jsonl.lines() {
            let v = Json::parse(line).expect("trace line parses");
            let epoch = || v.get("epoch").and_then(Json::as_u64).expect("epoch field");
            match v.get("event").and_then(Json::as_str) {
                Some("epoch_start") => {
                    let e = epoch();
                    prop_assert!(open.is_none(), "epoch {e} opened inside epoch {open:?}");
                    match last {
                        None => prop_assert_eq!(e, 0, "first epoch must be 0"),
                        Some(prev) => prop_assert!(e > prev, "epochs must strictly increase"),
                    }
                    open = Some(e);
                }
                Some("epoch_end") => {
                    let e = epoch();
                    prop_assert_eq!(open, Some(e), "epoch_end without matching start");
                    open = None;
                    last = Some(e);
                }
                _ => {}
            }
        }
        prop_assert!(open.is_none(), "unclosed epoch {open:?}");
        prop_assert_eq!(last, Some(u64::from(epochs) - 1), "every epoch must be marked");
    }
}

/// Identical seeds give identical traces through the full cache stack.
#[test]
fn facade_level_determinism() {
    let run = || {
        let ds = DatasetBuilder::new("det", 400)
            .size_model(SizeModel::Fixed(ByteSize::kib(3)))
            .build()
            .expect("dataset");
        let mut cache = IcacheManager::new(IcacheConfig::for_dataset(&ds, 0.2).expect("cfg"), &ds)
            .expect("manager");
        let mut st = LocalTier::tmpfs();
        let mut table = ImportanceTable::new(ds.len());
        for id in ds.ids() {
            table.record_loss(id, (id.0 % 31) as f64);
        }
        cache.update_hlist(JobId(0), &HList::top_fraction(&table, 0.5));
        cache.on_epoch_start(JobId(0), Epoch(0));
        let mut now = SimTime::ZERO;
        let mut trace = Vec::new();
        for i in 0..300u64 {
            let id = SampleId(i * 11 % 400);
            let f = cache.fetch(JobId(0), id, ds.sample_size(id), now, &mut st);
            trace.push((f.served_id, f.ready_at));
            now = f.ready_at;
        }
        trace
    };
    assert_eq!(run(), run());
}
