//! Property-based integration tests: system-level invariants that must
//! hold for arbitrary workloads driven through the public facade.

use icache::baselines::LruCache;
use icache::core::{CacheSystem, IcacheConfig, IcacheManager, PlannedAccess, PrefetchPipeline};
use icache::dnn::ModelProfile;
use icache::obs::{Json, Obs};
use icache::sampling::{HList, ImportanceTable};
use icache::sim::{run_single_job_with_obs, JobConfig};
use icache::storage::LocalTier;
use icache::types::{
    ByteSize, DatasetBuilder, Epoch, JobId, SampleId, SimDuration, SimTime, SizeModel,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Whatever the request stream, the cache never exceeds its capacity,
    /// virtual time never runs backwards, and every delivered sample
    /// belongs to the dataset.
    #[test]
    fn cache_invariants_under_random_workloads(
        seed in 0u64..1_000,
        requests in proptest::collection::vec((0u64..800, 0u32..4), 50..400),
        cache_frac in 0.05f64..0.5,
        hot in 1u64..400,
    ) {
        let ds = DatasetBuilder::new("prop", 800)
            .size_model(SizeModel::Fixed(ByteSize::kib(3)))
            .seed(seed)
            .build()
            .expect("dataset");
        let mut cfg = IcacheConfig::for_dataset(&ds, cache_frac).expect("cfg");
        cfg.seed = seed;
        let mut cache = IcacheManager::new(cfg, &ds).expect("manager");
        let mut st = LocalTier::tmpfs();

        let mut table = ImportanceTable::new(ds.len());
        for id in ds.ids() {
            table.record_loss(id, if id.0 < hot { 50.0 } else { 0.1 });
        }
        cache.update_hlist(JobId(0), &HList::top_fraction(&table, 0.5));
        cache.on_epoch_start(JobId(0), Epoch(0));

        let mut now = SimTime::ZERO;
        for (raw, _) in requests {
            let id = SampleId(raw);
            let f = cache.fetch(JobId(0), id, ds.sample_size(id), now, &mut st);
            prop_assert!(f.ready_at >= now, "time went backwards");
            prop_assert!(ds.contains(f.served_id), "served unknown sample");
            prop_assert!(cache.used_bytes() <= cache.capacity(),
                "capacity violated: {} > {}", cache.used_bytes(), cache.capacity());
            now = f.ready_at;
        }
        // Accounting is self-consistent.
        let s = cache.stats();
        prop_assert_eq!(
            s.requests(),
            s.h_hits + s.l_hits + s.substitutions + s.misses
        );
    }

    /// Epoch boundaries preserve the capacity split exactly.
    #[test]
    fn rebalancing_conserves_capacity(
        seed in 0u64..500,
        epochs in 1usize..4,
    ) {
        let ds = DatasetBuilder::new("prop2", 500)
            .size_model(SizeModel::Fixed(ByteSize::kib(3)))
            .build()
            .expect("dataset");
        let mut cfg = IcacheConfig::for_dataset(&ds, 0.2).expect("cfg");
        cfg.seed = seed;
        let mut cache = IcacheManager::new(cfg, &ds).expect("manager");
        let mut st = LocalTier::tmpfs();
        let mut table = ImportanceTable::new(ds.len());
        for id in ds.ids() {
            table.record_loss(id, (id.0 % 97) as f64);
        }
        let mut now = SimTime::ZERO;
        for e in 0..epochs {
            cache.update_hlist(JobId(0), &HList::top_fraction(&table, 0.5));
            cache.on_epoch_start(JobId(0), Epoch(e as u32));
            for i in 0..200u64 {
                let id = SampleId((i * 7 + e as u64 * 13) % 500);
                let f = cache.fetch(JobId(0), id, ds.sample_size(id), now, &mut st);
                now = f.ready_at;
            }
            cache.on_epoch_end(JobId(0), Epoch(e as u32));
            prop_assert_eq!(cache.h_capacity() + cache.l_capacity(), cache.capacity());
            prop_assert!(cache.used_bytes() <= cache.capacity());
        }
    }

    /// Frequency-driven rebalancing (§III-A) under arbitrary H/L access
    /// mixes: however skewed the epoch's accesses, the L-region keeps room
    /// for at least one package and the regions never outgrow the
    /// configured capacity.
    #[test]
    fn rebalance_keeps_l_region_at_least_one_package(
        seed in 0u64..500,
        cache_frac in 0.05f64..0.5,
        hot_frac in 0.01f64..0.99,
        // Per-epoch access streams: each entry picks a sample by rank, so
        // low ranks land in the H-list and high ranks in the L-pool. The
        // mix of ranks sets the H:L access-frequency ratio.
        ranks in proptest::collection::vec(0u64..600, 30..250),
        epochs in 1usize..4,
    ) {
        let ds = DatasetBuilder::new("prop3", 600)
            .size_model(SizeModel::Fixed(ByteSize::kib(3)))
            .build()
            .expect("dataset");
        let mut cfg = IcacheConfig::for_dataset(&ds, cache_frac).expect("cfg");
        cfg.seed = seed;
        let package_size = cfg.package_size;
        let capacity = cfg.capacity;
        let min_l = package_size.min(capacity / 2);
        let mut cache = IcacheManager::new(cfg, &ds).expect("manager");
        let mut st = LocalTier::tmpfs();

        // Importance is rank order: sample 0 is hottest.
        let mut table = ImportanceTable::new(ds.len());
        for id in ds.ids() {
            table.record_loss(id, 600.0 - id.0 as f64);
        }
        let mut now = SimTime::ZERO;
        for e in 0..epochs {
            cache.update_hlist(JobId(0), &HList::top_fraction(&table, hot_frac));
            cache.on_epoch_start(JobId(0), Epoch(e as u32));
            for &r in &ranks {
                let id = SampleId(r);
                let f = cache.fetch(JobId(0), id, ds.sample_size(id), now, &mut st);
                now = f.ready_at;
            }
            cache.on_epoch_end(JobId(0), Epoch(e as u32));
            prop_assert!(
                cache.l_capacity() >= min_l,
                "L-region shrank below one package: {} < {} (hot_frac {hot_frac:.2})",
                cache.l_capacity(), min_l
            );
            prop_assert!(
                cache.h_capacity() + cache.l_capacity() <= capacity,
                "regions outgrew the cache: {} + {} > {}",
                cache.h_capacity(), cache.l_capacity(), capacity
            );
            prop_assert!(cache.used_bytes() <= cache.capacity());
        }
    }

    /// The prefetch pipeline's issue stream is a duplicate-free
    /// plan-order subsequence of the epoch access order whose in-flight
    /// count never exceeds the window depth, and every consumed sample
    /// is either served from a prefetched slot (`hits`) or counted
    /// `late` — conservation holds for arbitrary consumption orders.
    #[test]
    fn prefetch_issue_stream_is_window_bounded_and_conserving(
        seed in 0u64..1_000,
        depth in 1usize..16,
        ids in proptest::collection::vec(0u64..300, 20..200),
        compute_us in 0u64..200,
    ) {
        let ds = DatasetBuilder::new("prop5", 300)
            .size_model(SizeModel::Fixed(ByteSize::kib(3)))
            .build()
            .expect("dataset");
        let plan: Vec<PlannedAccess> = ids
            .iter()
            .map(|&raw| {
                let id = SampleId(raw);
                PlannedAccess { job: JobId(0), id, size: ds.sample_size(id) }
            })
            .collect();
        let n = plan.len();
        let samples: Vec<SampleId> = plan.iter().map(|a| a.id).collect();
        let mut cache = LruCache::new(ds.total_bytes().scaled(0.2));
        let mut st = LocalTier::tmpfs();
        let mut pipe = PrefetchPipeline::new(depth, plan, SimTime::ZERO, Obs::noop())
            .expect("nonzero depth");

        // Deterministic Fisher-Yates driven by `seed`: an arbitrary
        // consumption order over the plan positions.
        let mut order: Vec<usize> = (0..n).collect();
        let mut state = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        for i in (1..n).rev() {
            state = state
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1_442_695_040_888_963_407);
            let j = (state >> 33) as usize % (i + 1);
            order.swap(i, j);
        }
        let compute = SimDuration::from_micros(compute_us);
        let mut now = SimTime::ZERO;
        for &pos in &order {
            let f = pipe.fetch(pos, now, &mut cache, &mut st);
            prop_assert!(f.ready_at >= now, "delivery went backwards in time");
            now = f.ready_at + compute;
        }
        let rep = pipe.finish();

        // Conservation: every consumed sample was a prefetch hit or late.
        prop_assert_eq!(rep.hits + rep.late, n as u64);
        prop_assert_eq!(rep.issue_log.len() as u64, rep.issued);
        prop_assert!(rep.hits <= rep.issued, "more hits than issues");
        // `cancelled` counts both sweep-skips of positions the consumer
        // demand-fetched before the window reached them (never issued)
        // and issued-but-unconsumed leftovers, so it is bounded by the
        // plan length rather than by `issued`.
        prop_assert!(rep.cancelled <= n as u64, "more cancels than plan positions");

        // The issue stream visits plan positions strictly in order
        // (duplicate-free by construction), names the planned sample,
        // and never holds more than `depth` fetches in flight.
        let mut last: Option<u64> = None;
        for rec in &rep.issue_log {
            prop_assert!(
                rec.in_flight <= depth,
                "window overflow: {} > {depth}", rec.in_flight
            );
            prop_assert!((rec.position as usize) < n, "issued past the plan");
            prop_assert_eq!(rec.sample, samples[rec.position as usize]);
            if let Some(prev) = last {
                prop_assert!(
                    rec.position > prev,
                    "duplicate or out-of-order issue: {} after {prev}", rec.position
                );
            }
            last = Some(rec.position);
        }
    }

    /// Epoch markers are well-formed for arbitrary job shapes: every
    /// `epoch_start` is closed by a matching `epoch_end` before the next
    /// one opens, and epoch indices increase strictly from zero.
    #[test]
    fn epoch_markers_pair_up_and_strictly_increase(
        seed in 0u64..1_000,
        samples in 64u64..320,
        epochs in 1u32..5,
        batch_pow in 4u32..7, // batch size 16, 32, or 64
        use_icache in any::<bool>(),
    ) {
        let ds = DatasetBuilder::new("prop4", samples)
            .size_model(SizeModel::Fixed(ByteSize::kib(3)))
            .build()
            .expect("dataset");
        let mut cfg = JobConfig::new(JobId(0), ModelProfile::shufflenet(), ds.clone());
        cfg.epochs = epochs;
        cfg.batch_size = 1 << batch_pow;
        cfg.seed = seed;
        let cap = ds.total_bytes().scaled(0.2);
        let mut cache: Box<dyn CacheSystem> = if use_icache {
            let mut icfg = IcacheConfig::for_dataset(&ds, 0.2).expect("cfg");
            icfg.seed = seed;
            Box::new(IcacheManager::new(icfg, &ds).expect("manager"))
        } else {
            Box::new(LruCache::new(cap))
        };
        let mut st = LocalTier::tmpfs();
        let obs = Obs::new();
        run_single_job_with_obs(cfg, cache.as_mut(), &mut st, &obs).expect("run");
        prop_assert_eq!(obs.trace_dropped(), 0, "ring overflowed; trace incomplete");

        let jsonl = obs.trace_jsonl();
        let mut open: Option<u64> = None;
        let mut last: Option<u64> = None;
        for line in jsonl.lines() {
            let v = Json::parse(line).expect("trace line parses");
            let epoch = || v.get("epoch").and_then(Json::as_u64).expect("epoch field");
            match v.get("event").and_then(Json::as_str) {
                Some("epoch_start") => {
                    let e = epoch();
                    prop_assert!(open.is_none(), "epoch {e} opened inside epoch {open:?}");
                    match last {
                        None => prop_assert_eq!(e, 0, "first epoch must be 0"),
                        Some(prev) => prop_assert!(e > prev, "epochs must strictly increase"),
                    }
                    open = Some(e);
                }
                Some("epoch_end") => {
                    let e = epoch();
                    prop_assert_eq!(open, Some(e), "epoch_end without matching start");
                    open = None;
                    last = Some(e);
                }
                _ => {}
            }
        }
        prop_assert!(open.is_none(), "unclosed epoch {open:?}");
        prop_assert_eq!(last, Some(u64::from(epochs) - 1), "every epoch must be marked");
    }
}

/// Identical seeds give identical traces through the full cache stack.
#[test]
fn facade_level_determinism() {
    let run = || {
        let ds = DatasetBuilder::new("det", 400)
            .size_model(SizeModel::Fixed(ByteSize::kib(3)))
            .build()
            .expect("dataset");
        let mut cache = IcacheManager::new(IcacheConfig::for_dataset(&ds, 0.2).expect("cfg"), &ds)
            .expect("manager");
        let mut st = LocalTier::tmpfs();
        let mut table = ImportanceTable::new(ds.len());
        for id in ds.ids() {
            table.record_loss(id, (id.0 % 31) as f64);
        }
        cache.update_hlist(JobId(0), &HList::top_fraction(&table, 0.5));
        cache.on_epoch_start(JobId(0), Epoch(0));
        let mut now = SimTime::ZERO;
        let mut trace = Vec::new();
        for i in 0..300u64 {
            let id = SampleId(i * 11 % 400);
            let f = cache.fetch(JobId(0), id, ds.sample_size(id), now, &mut st);
            trace.push((f.served_id, f.ready_at));
            now = f.ready_at;
        }
        trace
    };
    assert_eq!(run(), run());
}
