//! Behavioural conformance of Algorithm 1 through the public API:
//! H-list routing, importance-based admission and eviction, L-cache
//! substitution, and dynamic packaging.

use icache::core::{CacheSystem, FetchOutcome, IcacheConfig, IcacheManager, Substitution};
use icache::sampling::{HList, ImportanceTable};
use icache::storage::{LocalTier, Pfs, PfsConfig, StorageBackend};
use icache::types::{
    ByteSize, Dataset, DatasetBuilder, Epoch, JobId, SampleId, SimTime, SizeModel,
};

fn dataset(n: u64) -> Dataset {
    DatasetBuilder::new("alg1", n)
        .size_model(SizeModel::Fixed(ByteSize::kib(3)))
        .build()
        .expect("valid dataset")
}

fn manager(ds: &Dataset, frac: f64) -> IcacheManager {
    IcacheManager::new(IcacheConfig::for_dataset(ds, frac).expect("cfg"), ds).expect("manager")
}

/// Build an H-list where samples `0..hot` carry descending high losses.
fn hot_hlist(ds: &Dataset, hot: u64, fraction: f64) -> HList {
    let mut t = ImportanceTable::new(ds.len());
    for id in ds.ids() {
        t.record_loss(
            id,
            if id.0 < hot {
                100.0 - id.0 as f64 * 0.01
            } else {
                0.01
            },
        );
    }
    HList::top_fraction(&t, fraction)
}

#[test]
fn h_samples_route_to_h_cache_and_l_samples_to_l_cache() {
    let ds = dataset(1_000);
    let mut m = manager(&ds, 0.2);
    let mut st = LocalTier::tmpfs();
    m.update_hlist(JobId(0), &hot_hlist(&ds, 200, 0.2));
    m.on_epoch_start(JobId(0), Epoch(0));

    let mut now = SimTime::ZERO;
    // Fault in one H-sample and re-read: must be an H hit.
    for _ in 0..2 {
        let f = m.fetch(
            JobId(0),
            SampleId(5),
            ds.sample_size(SampleId(5)),
            now,
            &mut st,
        );
        now = f.ready_at;
    }
    assert_eq!(m.stats().h_hits, 1);
    assert_eq!(m.stats().l_hits, 0);

    // L-samples never enter the H-region.
    let h_before = m.h_len();
    for i in 500..520u64 {
        let f = m.fetch(
            JobId(0),
            SampleId(i),
            ds.sample_size(SampleId(i)),
            now,
            &mut st,
        );
        now = f.ready_at;
    }
    assert_eq!(m.h_len(), h_before, "L-path must not insert into H-cache");
}

#[test]
fn full_h_cache_admits_only_higher_importance() {
    let ds = dataset(4_000);
    // Tiny cache: H-region holds ~60 samples.
    let mut m = manager(&ds, 0.05);
    let mut st = LocalTier::tmpfs();
    m.update_hlist(JobId(0), &hot_hlist(&ds, 2_000, 0.5));
    m.on_epoch_start(JobId(0), Epoch(0));

    let mut now = SimTime::ZERO;
    // Fill with mid-importance H-samples (ids near 1999 have lowest hot loss).
    for i in 1_000..1_999u64 {
        let f = m.fetch(
            JobId(0),
            SampleId(i),
            ds.sample_size(SampleId(i)),
            now,
            &mut st,
        );
        now = f.ready_at;
    }
    let evictions_before = m.stats().evictions;
    // Now the hottest samples arrive: they must displace.
    for i in 0..50u64 {
        let f = m.fetch(
            JobId(0),
            SampleId(i),
            ds.sample_size(SampleId(i)),
            now,
            &mut st,
        );
        now = f.ready_at;
    }
    assert!(
        m.stats().evictions > evictions_before,
        "hotter samples must evict colder ones"
    );
    // And they stay resident.
    let f = m.fetch(
        JobId(0),
        SampleId(0),
        ds.sample_size(SampleId(0)),
        now,
        &mut st,
    );
    assert_eq!(f.outcome, FetchOutcome::HitH);
}

#[test]
fn l_miss_substitution_returns_resident_sample_and_logs_io() {
    let ds = dataset(2_000);
    let mut m = manager(&ds, 0.2);
    let mut st = Pfs::new(PfsConfig::orangefs_default()).expect("pfs");
    m.update_hlist(JobId(0), &hot_hlist(&ds, 400, 0.2));
    m.on_epoch_start(JobId(0), Epoch(0));

    // Touch L-samples until packages land and substitution kicks in.
    let mut now = SimTime::ZERO;
    let mut substituted = Vec::new();
    for i in 400..1_400u64 {
        let f = m.fetch(
            JobId(0),
            SampleId(i),
            ds.sample_size(SampleId(i)),
            now,
            &mut st,
        );
        now = f.ready_at;
        if let FetchOutcome::Substituted { by, from_h } = f.outcome {
            assert!(!from_h, "default policy substitutes from L-cache");
            assert_eq!(f.served_id, by);
            substituted.push(by);
        }
    }
    assert!(!substituted.is_empty(), "substitution never engaged");
    // Substitutes are unique within the epoch.
    let mut dedup = substituted.clone();
    dedup.sort_unstable();
    dedup.dedup();
    assert_eq!(dedup.len(), substituted.len());
    // Dynamic packaging produced real package I/O.
    assert!(
        st.stats().package_reads > 0,
        "loading thread must issue package reads"
    );
}

#[test]
fn substitution_policies_change_the_served_source() {
    let ds = dataset(2_000);
    let run = |policy: Substitution| {
        let mut cfg = IcacheConfig::for_dataset(&ds, 0.2).expect("cfg");
        cfg.substitution = policy;
        let mut m = IcacheManager::new(cfg, &ds).expect("manager");
        let mut st = LocalTier::tmpfs();
        m.update_hlist(JobId(0), &hot_hlist(&ds, 400, 0.2));
        m.on_epoch_start(JobId(0), Epoch(0));
        let mut now = SimTime::ZERO;
        // Prime H-cache so ST_HC has residents to serve.
        for i in 0..200u64 {
            let f = m.fetch(
                JobId(0),
                SampleId(i),
                ds.sample_size(SampleId(i)),
                now,
                &mut st,
            );
            now = f.ready_at;
        }
        let mut outcomes = Vec::new();
        for i in 1_000..1_400u64 {
            let f = m.fetch(
                JobId(0),
                SampleId(i),
                ds.sample_size(SampleId(i)),
                now,
                &mut st,
            );
            now = f.ready_at;
            outcomes.push(f.outcome);
        }
        outcomes
    };

    let none = run(Substitution::None);
    assert!(
        none.iter()
            .all(|o| !matches!(o, FetchOutcome::Substituted { .. })),
        "Def policy never substitutes"
    );
    let from_h = run(Substitution::FromH);
    assert!(
        from_h
            .iter()
            .any(|o| matches!(o, FetchOutcome::Substituted { from_h: true, .. })),
        "ST_HC substitutes from the H-region"
    );
}

#[test]
fn epoch_rebalancing_follows_access_frequencies() {
    // Large enough that the one-package L-cache floor (1 MiB) is well
    // below the frequency-driven split.
    let ds = dataset(8_000);
    let mut m = manager(&ds, 0.2);
    let mut st = LocalTier::tmpfs();
    m.update_hlist(JobId(0), &hot_hlist(&ds, 4_000, 0.5));
    m.on_epoch_start(JobId(0), Epoch(0));
    let mut now = SimTime::ZERO;
    // 90% of accesses to H-samples.
    for rep in 0..3 {
        for i in 0..300u64 {
            let _ = rep;
            let f = m.fetch(
                JobId(0),
                SampleId(i),
                ds.sample_size(SampleId(i)),
                now,
                &mut st,
            );
            now = f.ready_at;
        }
    }
    for i in 7_900..8_000u64 {
        let f = m.fetch(
            JobId(0),
            SampleId(i),
            ds.sample_size(SampleId(i)),
            now,
            &mut st,
        );
        now = f.ready_at;
    }
    m.on_epoch_end(JobId(0), Epoch(0));
    let h_share = m.h_capacity().as_f64() / m.capacity().as_f64();
    assert!(
        h_share > 0.7,
        "frequency 9:1 should give H most of the cache, got {h_share:.2}"
    );
    assert_eq!(m.h_capacity() + m.l_capacity(), m.capacity());
}
