//! Failure-injection integration tests: training through periodic storage
//! brownouts. A cache system should absorb most of the degradation; a
//! cacheless loader cannot.

use icache::baselines::LruCache;
use icache::core::{CacheSystem, IcacheConfig, IcacheManager};
use icache::dnn::ModelProfile;
use icache::sim::{run_single_job, JobConfig, RunMetrics, SamplingMode};
use icache::storage::{BrownoutConfig, DegradedStorage, Pfs, PfsConfig};
use icache::types::{Dataset, JobId, SimDuration};

fn brownouts() -> BrownoutConfig {
    BrownoutConfig {
        period: SimDuration::from_millis(200),
        duration: SimDuration::from_millis(50),
        extra_latency: SimDuration::from_millis(2),
    }
}

fn run(dataset: &Dataset, icache: bool, degraded: bool) -> RunMetrics {
    let mut job = JobConfig::new(JobId(0), ModelProfile::shufflenet(), dataset.clone());
    job.epochs = 3;
    let mut cache: Box<dyn CacheSystem> = if icache {
        job.sampling = SamplingMode::Iis { fraction: 0.7 };
        Box::new(
            IcacheManager::new(
                IcacheConfig::for_dataset(dataset, 0.2).expect("cfg"),
                dataset,
            )
            .expect("manager"),
        )
    } else {
        Box::new(LruCache::new(dataset.total_bytes().scaled(0.2)))
    };
    let pfs = Pfs::new(PfsConfig::orangefs_default()).expect("pfs");
    if degraded {
        let mut storage = DegradedStorage::new(pfs, brownouts()).expect("valid schedule");
        let m = run_single_job(job, cache.as_mut(), &mut storage).expect("runs");
        assert!(
            storage.degraded_requests() > 0,
            "brownouts must actually fire"
        );
        m
    } else {
        let mut storage = pfs;
        run_single_job(job, cache.as_mut(), &mut storage).expect("runs")
    }
}

#[test]
fn brownouts_slow_training_down() {
    let dataset = Dataset::cifar10().scaled(0.04).expect("scale");
    let clean = run(&dataset, false, false);
    let degraded = run(&dataset, false, true);
    assert!(
        degraded.avg_epoch_time_steady() > clean.avg_epoch_time_steady(),
        "injected latency must be visible end to end"
    );
}

#[test]
fn icache_still_beats_default_under_brownouts() {
    let dataset = Dataset::cifar10().scaled(0.04).expect("scale");
    let default = run(&dataset, false, true);
    let icache = run(&dataset, true, true);
    let speedup = default
        .avg_epoch_time_steady()
        .ratio(icache.avg_epoch_time_steady());
    // Threshold justification: the simulator is fully seeded, so this
    // configuration measures a stable 2.43x (2026-08, dataset scale 0.04,
    // OrangeFS + the brownout schedule above). 1.3 is deliberately far
    // below that: it survives storage/compute model recalibration, yet
    // still fails if iCache ever loses its ability to absorb brownouts
    // (a cacheless run measures ~1.0x). The paper's Fig. 8 reports >= 2x
    // for comparable single-job setups.
    assert!(
        speedup > 1.3,
        "speedup under degradation only {speedup:.2}x"
    );
}

#[test]
fn icache_absorbs_degradation_better_than_default() {
    let dataset = Dataset::cifar10().scaled(0.04).expect("scale");
    // Relative slowdown caused by the same brownout schedule.
    let d_clean = run(&dataset, false, false).avg_epoch_time_steady();
    let d_degr = run(&dataset, false, true).avg_epoch_time_steady();
    let i_clean = run(&dataset, true, false).avg_epoch_time_steady();
    let i_degr = run(&dataset, true, true).avg_epoch_time_steady();

    let default_penalty = d_degr.ratio(d_clean);
    let icache_penalty = i_degr.ratio(i_clean);
    assert!(
        icache_penalty <= default_penalty * 1.02,
        "iCache should degrade no worse than Default: {icache_penalty:.3} vs {default_penalty:.3}"
    );
}
