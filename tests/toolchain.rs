//! Integration tests of the tooling layer: the request/response server,
//! tracing, replay, PM tier, and criterion extensions working together —
//! the workflows a downstream user composes from the public API.

use icache::core::{IcacheConfig, IcacheManager, IcacheServer, PmTierConfig, Request, Response};
use icache::dnn::ModelProfile;
use icache::sampling::ImportanceCriterion;
use icache::sim::replay::{replay, AccessPattern, Trace};
use icache::sim::{run_single_job, JobConfig, SamplingMode, Scenario, SystemKind, TracingCache};
use icache::storage::{LocalTier, Pfs, PfsConfig};
use icache::types::{Dataset, JobId, SampleId, SimTime};

#[test]
fn record_with_tracing_then_replay_reproduces_the_request_stream() {
    let dataset = Dataset::cifar10().scaled(0.02).expect("scale");
    let mut cfg = JobConfig::new(JobId(0), ModelProfile::shufflenet(), dataset.clone());
    cfg.epochs = 2;
    cfg.sampling = SamplingMode::Iis { fraction: 0.7 };

    let manager = IcacheManager::new(
        IcacheConfig::for_dataset(&dataset, 0.2).expect("cfg"),
        &dataset,
    )
    .expect("manager");
    let mut traced = TracingCache::new(manager, 100_000);
    let mut storage = Pfs::new(PfsConfig::orangefs_default()).expect("pfs");
    let metrics = run_single_job(cfg, &mut traced, &mut storage).expect("runs");

    // Every fetch of the run is in the trace.
    let fetched: u64 = metrics.epochs.iter().map(|e| e.samples_fetched).sum();
    assert_eq!(traced.events().len() as u64, fetched);

    // The JSONL round-trips and replays through a different policy.
    let trace = Trace::parse_jsonl(&traced.to_jsonl()).expect("parse");
    assert_eq!(trace.len() as u64, fetched);
    let mut lru = icache::baselines::LruCache::new(dataset.total_bytes().scaled(0.2));
    let mut tmpfs = LocalTier::tmpfs();
    let report = replay(&trace, &dataset, &mut lru, &mut tmpfs);
    assert_eq!(report.stats.requests(), fetched);
    assert_eq!(report.latency.count(), fetched);
}

#[test]
fn server_facade_drives_a_whole_training_loop() {
    let dataset = Dataset::cifar10().scaled(0.01).expect("scale");
    let manager = IcacheManager::new(
        IcacheConfig::for_dataset(&dataset, 0.3).expect("cfg"),
        &dataset,
    )
    .expect("manager");
    let mut server = IcacheServer::new(manager, dataset.clone());
    let mut storage = Pfs::new(PfsConfig::orangefs_default()).expect("pfs");

    // Two epochs of batched loads through the wire-level interface.
    let mut now = SimTime::ZERO;
    for epoch in 0..2u32 {
        assert_eq!(
            server.handle(
                Request::EpochStart {
                    job: JobId(0),
                    epoch: icache::types::Epoch(epoch)
                },
                &mut storage
            ),
            Response::Ack
        );
        for batch_start in (0..dataset.len()).step_by(64) {
            let ids: Vec<SampleId> = (batch_start..(batch_start + 64).min(dataset.len()))
                .map(SampleId)
                .collect();
            match server.handle(
                Request::Load {
                    job: JobId(0),
                    ids,
                    now,
                },
                &mut storage,
            ) {
                Response::Batch(fetches) => now = fetches.last().expect("non-empty").ready_at,
                other => panic!("unexpected reply {other:?}"),
            }
        }
        assert_eq!(
            server.handle(
                Request::EpochEnd {
                    job: JobId(0),
                    epoch: icache::types::Epoch(epoch)
                },
                &mut storage
            ),
            Response::Ack
        );
    }
    let Response::Stats(stats) = server.handle(Request::Stats, &mut storage) else {
        panic!("expected stats");
    };
    assert_eq!(stats.requests(), dataset.len() * 2);
    // Warm-up filled the cache: the second epoch must have hit.
    assert!(
        stats.hit_ratio() > 0.1,
        "hit ratio {:.3}",
        stats.hit_ratio()
    );
}

#[test]
fn pm_tier_improves_a_small_dram_cache_end_to_end() {
    let base = Scenario::cifar10(SystemKind::Icache)
        .scale_dataset(0.05)
        .expect("scale")
        .cache_fraction(0.05)
        .epochs(4);
    let without = base.clone().run().expect("runs");

    // Same scenario, but the cache gets an Optane victim tier.
    let dataset = base.dataset_ref().clone();
    let mut cfg = IcacheConfig::for_dataset(&dataset, 0.05).expect("cfg");
    cfg.pm_tier = Some(PmTierConfig::optane(dataset.total_bytes().scaled(0.3)));
    let mut cache = IcacheManager::new(cfg, &dataset).expect("manager");
    let mut storage = Pfs::new(PfsConfig::orangefs_default()).expect("pfs");
    let with = run_single_job(base.job_config(JobId(0)), &mut cache, &mut storage).expect("runs");

    let pm_hits: u64 = with.epochs.iter().map(|e| e.cache.pm_hits).sum();
    assert!(pm_hits > 0, "the tier must serve hits");
    assert!(
        with.avg_epoch_time_steady() <= without.avg_epoch_time_steady(),
        "PM tier must not slow training: {} vs {}",
        with.avg_epoch_time_steady(),
        without.avg_epoch_time_steady()
    );
}

#[test]
fn criterion_swap_changes_selection_but_preserves_speedup() {
    let run = |criterion| {
        Scenario::cifar10(SystemKind::Icache)
            .scale_dataset(0.05)
            .expect("scale")
            .criterion(criterion)
            .epochs(4)
            .run()
            .expect("runs")
    };
    let loss = run(ImportanceCriterion::Loss);
    let grad = run(ImportanceCriterion::GradNorm);
    // Different criteria pick different samples…
    assert_ne!(loss, grad);
    // …but the I/O benefit is criterion-agnostic (within 25 %).
    let ratio = loss
        .avg_epoch_time_steady()
        .ratio(grad.avg_epoch_time_steady());
    assert!((0.8..1.25).contains(&ratio), "epoch-time ratio {ratio:.2}");
}

#[test]
fn zipf_replay_ranks_policies_sanely() {
    let dataset = icache::types::DatasetBuilder::new("zipf", 5_000)
        .size_model(icache::types::SizeModel::Fixed(
            icache::types::ByteSize::kib(3),
        ))
        .build()
        .expect("dataset");
    let trace = AccessPattern::Zipf { s: 1.1 }
        .generate(5_000, 20_000, JobId(0), 3)
        .expect("trace");
    let cap = dataset.total_bytes().scaled(0.1);

    let mut lru = icache::baselines::LruCache::new(cap);
    let mut st = LocalTier::tmpfs();
    let lru_rep = replay(&trace, &dataset, &mut lru, &mut st);

    let mut lfu = icache::baselines::IlfuCache::new(cap);
    let mut st = LocalTier::tmpfs();
    let lfu_rep = replay(&trace, &dataset, &mut lfu, &mut st);

    // Zipf favours frequency-aware policies.
    assert!(lru_rep.hit_ratio() > 0.4);
    assert!(lfu_rep.hit_ratio() >= lru_rep.hit_ratio() - 0.05);
}
