//! Tier-1 integration tests for the observability layer: every subsystem
//! reports into one shared [`icache::obs::Obs`] handle, and the resulting
//! structured trace is a pure function of the run configuration and seed.

use icache::obs::{Json, Obs};
use icache::sim::{report, run_multi_job_with_obs, JobConfig, Scenario, SystemKind};
use icache_dnn::ModelProfile;
use icache_types::{Dataset, JobId};

fn quick(system: SystemKind) -> Scenario {
    Scenario::cifar10(system)
        .scale_dataset(0.02)
        .unwrap()
        .epochs(3)
        .batch_size(64)
}

#[test]
fn traces_are_byte_identical_for_identical_config_and_seed() {
    let (a, b) = (Obs::new(), Obs::new());
    let ma = quick(SystemKind::Icache).run_with_obs(&a).unwrap();
    let mb = quick(SystemKind::Icache).run_with_obs(&b).unwrap();
    assert_eq!(ma, mb, "run metrics must be deterministic");

    let (ja, jb) = (a.trace_jsonl(), b.trace_jsonl());
    assert!(!ja.is_empty(), "an iCache run must emit trace events");
    assert_eq!(ja, jb, "same config + seed must give byte-identical traces");

    // The run summary (metrics registry included) is deterministic too.
    let sa = report::run_summary(std::slice::from_ref(&ma), &a).to_string();
    let sb = report::run_summary(std::slice::from_ref(&mb), &b).to_string();
    assert_eq!(sa, sb);
}

#[test]
fn different_seeds_give_different_traces() {
    let (a, b) = (Obs::new(), Obs::new());
    quick(SystemKind::Icache).seed(1).run_with_obs(&a).unwrap();
    quick(SystemKind::Icache).seed(2).run_with_obs(&b).unwrap();
    assert_ne!(a.trace_jsonl(), b.trace_jsonl());
}

#[test]
fn an_icache_run_emits_every_layer_of_events() {
    let obs = Obs::new();
    quick(SystemKind::Icache).run_with_obs(&obs).unwrap();

    let counts: std::collections::HashMap<String, u64> =
        obs.trace_event_counts().into_iter().collect();
    for kind in [
        "h_hit",
        "l_hit",
        "miss",
        "package_build",
        "shadow_heap_refill",
    ] {
        assert!(
            counts.get(kind).copied().unwrap_or(0) > 0,
            "expected at least one `{kind}` event; got {counts:?}"
        );
    }

    // Counters from both the cache and the storage layer.
    assert!(obs.counter("cache.h_hits") > 0);
    assert!(obs.counter("cache.misses") > 0);
    assert!(obs.counter("storage.sample_reads") > 0);
    assert!(obs.counter("lcache.packages_built") > 0);

    // Latency histograms surface percentiles in the snapshot.
    let snap = obs.metrics_snapshot();
    let hists = snap.get("latency").and_then(|h| h.as_object()).unwrap();
    assert!(
        hists.iter().any(|(k, _)| k == "cache.fetch"),
        "fetch latency histogram missing: {snap}"
    );
    let fetch = hists
        .iter()
        .find(|(k, _)| k == "cache.fetch")
        .map(|(_, v)| v)
        .unwrap();
    assert!(fetch.get("count").and_then(Json::as_u64).unwrap() > 0);
    assert!(fetch.get("p99_us").and_then(|v| v.as_f64()).is_some());
}

#[test]
fn trace_events_parse_as_json_with_stable_sequence_numbers() {
    let obs = Obs::new();
    quick(SystemKind::Icache).run_with_obs(&obs).unwrap();
    let jsonl = obs.trace_jsonl();
    let mut expected_seq = None;
    for line in jsonl.lines() {
        let v = Json::parse(line).unwrap_or_else(|e| panic!("bad trace line `{line}`: {e}"));
        let seq = v.get("seq").and_then(Json::as_u64).expect("seq field");
        if let Some(prev) = expected_seq {
            assert_eq!(seq, prev + 1, "trace sequence numbers must be contiguous");
        }
        expected_seq = Some(seq);
        assert!(
            v.get("event").and_then(Json::as_str).is_some(),
            "event tag in {line}"
        );
    }
    assert!(expected_seq.is_some(), "trace must be non-empty");
}

#[test]
fn multi_job_runs_share_one_trace() {
    let scenario = quick(SystemKind::Icache);
    let ds: Dataset = scenario.dataset_ref().clone();
    let cfg = |job: u32| {
        let mut c = JobConfig::new(JobId(job), ModelProfile::shufflenet(), ds.clone());
        c.batch_size = 32;
        c.epochs = 2;
        c.seed = 42 + job as u64 * 1_000_003;
        c
    };
    let mut cache = scenario.build_cache().unwrap();
    let mut storage = scenario.build_storage().unwrap();
    let obs = Obs::new();
    let ms = run_multi_job_with_obs(vec![cfg(0), cfg(1)], cache.as_mut(), storage.as_mut(), &obs)
        .unwrap();
    assert_eq!(ms.len(), 2);
    assert!(obs.trace_len() > 0);
    // Events must be attributed to both jobs.
    let jsonl = obs.trace_jsonl();
    assert!(jsonl.contains(r#""job":0"#), "job 0 events missing");
    assert!(jsonl.contains(r#""job":1"#), "job 1 events missing");
}

#[test]
fn noop_obs_records_metrics_but_keeps_no_trace() {
    let obs = Obs::noop();
    quick(SystemKind::Icache).run_with_obs(&obs).unwrap();
    assert_eq!(obs.trace_len(), 0, "noop handle must keep no events");
    assert!(
        obs.trace_emitted() > 0,
        "events were still emitted (and dropped)"
    );
    assert!(obs.counter("cache.h_hits") > 0, "metrics still recorded");
}

#[test]
fn baseline_systems_run_untouched_under_an_obs_handle() {
    // Baselines keep the default no-op `set_obs`; installing a handle must
    // not change their behaviour or produce spurious events.
    let obs = Obs::new();
    let with_obs = quick(SystemKind::Default).run_with_obs(&obs).unwrap();
    let without = quick(SystemKind::Default).run().unwrap();
    assert_eq!(with_obs, without);
    // Storage still reports (the backend implements set_obs), the LRU
    // cache itself stays silent.
    assert!(obs.counter("storage.sample_reads") > 0);
    assert_eq!(obs.counter("cache.h_hits"), 0);
}

#[test]
fn brownout_events_flow_through_the_shared_handle() {
    use icache::storage::{BrownoutConfig, DegradedStorage, LocalTier};
    use icache_types::{ByteSize, SampleId, SimDuration, SimTime};
    let mut flaky = DegradedStorage::new(
        LocalTier::tmpfs(),
        BrownoutConfig {
            period: SimDuration::from_millis(10),
            duration: SimDuration::from_millis(2),
            extra_latency: SimDuration::from_millis(5),
        },
    )
    .unwrap();
    let obs = Obs::new();
    use icache::storage::StorageBackend;
    flaky.set_obs(obs.clone());
    flaky.read_sample(SampleId(0), ByteSize::kib(3), SimTime::ZERO);
    assert_eq!(obs.counter("storage.degraded_requests"), 1);
    let events: Vec<_> = obs.trace_event_counts();
    assert!(
        events
            .iter()
            .any(|(k, n)| k == "brownout_degraded_read" && *n == 1),
        "{events:?}"
    );
}
