//! End-to-end integration tests across the whole workspace: every system
//! builds and trains, the paper's headline orderings hold, and full runs
//! are deterministic.

use icache::sim::{Scenario, SystemKind};

fn quick(kind: SystemKind) -> Scenario {
    Scenario::cifar10(kind)
        .scale_dataset(0.05)
        .expect("valid scale")
        .epochs(4)
}

#[test]
fn every_system_trains_to_completion() {
    for kind in [
        SystemKind::Default,
        SystemKind::Base,
        SystemKind::IisLru,
        SystemKind::Quiver,
        SystemKind::CoorDl,
        SystemKind::Ilfu,
        SystemKind::IcacheNoL,
        SystemKind::Icache,
        SystemKind::IcacheNoSub,
        SystemKind::IcacheSubH,
        SystemKind::Oracle,
    ] {
        let m = quick(kind)
            .run()
            .unwrap_or_else(|e| panic!("{kind:?}: {e}"));
        assert_eq!(m.epochs.len(), 4, "{kind:?}");
        assert!(m.final_top1() > 0.0, "{kind:?}");
        assert!(m.avg_epoch_time().as_secs_f64() > 0.0, "{kind:?}");
    }
}

#[test]
fn headline_ordering_icache_between_default_and_oracle() {
    let default = quick(SystemKind::Default).run().unwrap();
    let icache = quick(SystemKind::Icache).run().unwrap();
    let oracle = quick(SystemKind::Oracle).run().unwrap();
    let d = default.avg_epoch_time_steady();
    let i = icache.avg_epoch_time_steady();
    let o = oracle.avg_epoch_time_steady();
    assert!(i < d, "iCache must beat Default: {i} vs {d}");
    assert!(o < i, "Oracle is the lower bound: {o} vs {i}");
    let speedup = d.ratio(i);
    assert!(
        (1.3..4.0).contains(&speedup),
        "speedup {speedup:.2} outside the paper's plausible band"
    );
}

#[test]
fn icache_beats_every_published_baseline() {
    let icache = quick(SystemKind::Icache)
        .run()
        .unwrap()
        .avg_epoch_time_steady();
    for kind in [
        SystemKind::Base,
        SystemKind::Quiver,
        SystemKind::CoorDl,
        SystemKind::Ilfu,
    ] {
        let other = quick(kind).run().unwrap().avg_epoch_time_steady();
        assert!(
            icache < other,
            "{kind:?} should lose to iCache: {other} vs {icache}"
        );
    }
}

#[test]
fn io_oriented_sampling_reduces_fetches_and_io() {
    let default = quick(SystemKind::Default).run().unwrap();
    let icache = quick(SystemKind::Icache).run().unwrap();
    assert!(icache.epochs[1].samples_fetched < default.epochs[1].samples_fetched);
    assert!(icache.avg_stall_time_steady() < default.avg_stall_time_steady());
    assert!(
        icache.avg_hit_ratio_steady() > default.avg_hit_ratio_steady() + 0.1,
        "importance-informed caching must raise the hit ratio substantially"
    );
}

#[test]
fn accuracy_stays_within_paper_band_over_long_runs() {
    let run = |kind| {
        Scenario::cifar10(kind)
            .scale_dataset(0.05)
            .expect("valid scale")
            .epochs(90)
            .run()
            .unwrap()
    };
    let default = run(SystemKind::Default);
    let icache = run(SystemKind::Icache);
    let delta = default.final_top1() - icache.final_top1();
    assert!(
        (0.0..1.8).contains(&delta),
        "iCache accuracy delta {delta:.2} outside [0, 1.8]"
    );
    let delta5 = default.final_top5() - icache.final_top5();
    assert!(delta5 < 1.2, "top5 delta {delta5:.2}");
}

#[test]
fn substitution_policy_ordering_matches_table3() {
    let run = |kind| {
        Scenario::cifar10(kind)
            .scale_dataset(0.05)
            .expect("valid scale")
            .epochs(90)
            .run()
            .unwrap()
            .final_top1()
    };
    let def = run(SystemKind::IcacheNoSub);
    let st_lc = run(SystemKind::Icache);
    let st_hc = run(SystemKind::IcacheSubH);
    assert!(def > st_lc, "Def {def:.2} must beat ST_LC {st_lc:.2}");
    assert!(st_lc > st_hc, "ST_LC {st_lc:.2} must beat ST_HC {st_hc:.2}");
}

#[test]
fn full_stack_runs_are_deterministic() {
    let a = quick(SystemKind::Icache).seed(99).run().unwrap();
    let b = quick(SystemKind::Icache).seed(99).run().unwrap();
    assert_eq!(a, b);
    let c = quick(SystemKind::Icache).seed(100).run().unwrap();
    assert_ne!(a, c, "different seeds must differ");
}

#[test]
fn base_matches_default_io_but_cuts_compute() {
    let default = quick(SystemKind::Default).run().unwrap();
    let base = quick(SystemKind::Base).run().unwrap();
    // CIS fetches everything…
    assert_eq!(
        base.epochs[1].samples_fetched,
        default.epochs[1].samples_fetched
    );
    // …but computes less.
    assert!(base.epochs[1].compute_time < default.epochs[1].compute_time);
    // Total time barely moves on I/O-bound training (§II-B).
    let ratio = default
        .avg_epoch_time_steady()
        .ratio(base.avg_epoch_time_steady());
    assert!(
        (0.9..1.25).contains(&ratio),
        "CIS total-time speedup {ratio:.2} should be marginal"
    );
}
