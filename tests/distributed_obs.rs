//! Observability invariants of the distributed cache (§III-E): every
//! fetch lands in exactly one per-node counter bucket, the registry
//! agrees with the cluster's own accounting, and the directory's
//! insert/remove counters reconcile with its final size.

use icache::core::{DistributedCache, DistributedConfig};
use icache::dnn::ModelProfile;
use icache::obs::Obs;
use icache::sim::{run_multi_job_with_obs, JobConfig, RunMetrics, SamplingMode};
use icache::storage::{Nfs, NfsConfig};
use icache::types::{Dataset, JobId};

const EPOCHS: u32 = 3;

fn shard_jobs(dataset: &Dataset, nodes: u32) -> Vec<JobConfig> {
    (0..nodes)
        .map(|k| {
            let mut c = JobConfig::new(JobId(k), ModelProfile::resnet18(), dataset.clone());
            c.epochs = EPOCHS;
            c.shard = Some((k, nodes));
            c.sampling = SamplingMode::Iis { fraction: 0.7 };
            c.seed = 7; // shards share the epoch plan
            c
        })
        .collect()
}

fn run_cluster(nodes: u32) -> (Vec<RunMetrics>, DistributedCache, Obs) {
    let dataset = Dataset::cifar10().scaled(0.04).expect("scale");
    let mut cluster = DistributedCache::new(
        DistributedConfig::for_dataset(&dataset, nodes as usize, 0.2).expect("cfg"),
        &dataset,
    )
    .expect("cluster");
    let mut nfs = Nfs::new(NfsConfig::cloud_default()).expect("nfs");
    let obs = Obs::new();
    let runs = run_multi_job_with_obs(shard_jobs(&dataset, nodes), &mut cluster, &mut nfs, &obs)
        .expect("runs");
    (runs, cluster, obs)
}

fn node_counter(obs: &Obs, node: usize, suffix: &str) -> u64 {
    obs.counter(&format!("dist.node{node}.{suffix}"))
}

#[test]
fn per_node_classification_covers_every_fetch() {
    let (runs, cluster, obs) = run_cluster(4);
    let fetched: u64 = runs
        .iter()
        .flat_map(|m| m.epochs.iter().map(|e| e.samples_fetched))
        .sum();
    let classified: u64 = (0..cluster.node_count())
        .map(|i| {
            node_counter(&obs, i, "local_hits")
                + node_counter(&obs, i, "remote_hits")
                + node_counter(&obs, i, "storage_fetches")
        })
        .sum();
    assert_eq!(
        classified, fetched,
        "each fetch must land in exactly one per-node bucket"
    );
    for i in 0..cluster.node_count() {
        assert!(
            node_counter(&obs, i, "storage_fetches") > 0,
            "node {i} never cold-fetched — shards not exercising the cluster"
        );
    }
}

#[test]
fn registry_remote_hits_match_the_cluster_accounting() {
    let (_, cluster, obs) = run_cluster(4);
    assert!(cluster.remote_hits() > 0, "no peer traffic to check");
    assert_eq!(obs.counter("dist.remote_hits"), cluster.remote_hits());
    let per_node: u64 = (0..cluster.node_count())
        .map(|i| node_counter(&obs, i, "remote_hits"))
        .sum();
    assert_eq!(per_node, cluster.remote_hits());
    let remote_hit_events = obs
        .trace_event_counts()
        .into_iter()
        .find(|(name, _)| name == "remote_hit")
        .map(|(_, n)| n)
        .unwrap_or(0);
    assert_eq!(
        remote_hit_events,
        cluster.remote_hits(),
        "every remote hit is traced exactly once"
    );
}

#[test]
fn directory_len_reconciles_with_insert_and_remove_counters() {
    let (_, cluster, obs) = run_cluster(2);
    let inserts = obs.counter("dist.directory.inserts");
    let removes = obs.counter("dist.directory.removes");
    assert!(inserts > 0, "a training run must populate the directory");
    assert_eq!(
        cluster.directory().len() as u64,
        inserts - removes,
        "fresh inserts minus successful removes must equal the mapping size"
    );
    assert!(
        obs.counter("dist.directory.lookups") > 0,
        "fetch classification consults the directory"
    );
}

#[test]
fn cluster_runs_publish_gauges_and_epoch_markers() {
    let (_, cluster, obs) = run_cluster(2);
    assert_eq!(obs.gauge("dist.nodes"), Some(cluster.node_count() as f64));
    assert!(
        obs.gauge("cache.h_capacity").is_some_and(|v| v > 0.0),
        "managers must publish H-region capacity"
    );
    assert!(
        obs.gauge("cache.l_capacity").is_some_and(|v| v > 0.0),
        "managers must publish L-region capacity"
    );
    let counts: std::collections::HashMap<String, u64> =
        obs.trace_event_counts().into_iter().collect();
    // Rank 0 alone marks epochs, so one pair per epoch — not per shard.
    assert_eq!(counts.get("epoch_start"), Some(&(EPOCHS as u64)));
    assert_eq!(counts.get("epoch_end"), Some(&(EPOCHS as u64)));
}
