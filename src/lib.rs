//! # iCache — importance-sampling-informed caching for DNN training
//!
//! Facade crate re-exporting the whole iCache reproduction workspace.
//! See the individual crates for details:
//!
//! * [`types`] — identifiers, units, datasets, errors.
//! * [`storage`] — simulated PFS/NFS/local storage substrate.
//! * [`sampling`] — importance-sampling algorithms (CIS and IIS).
//! * [`dnn`] — DNN compute, loss-dynamics, and accuracy models.
//! * [`core`] — the iCache contribution (H-cache, L-cache, manager,
//!   multi-job coordination, distributed cache).
//! * [`baselines`] — LRU (Default), CoorDL, Quiver, iLFU, Oracle.
//! * [`sim`] — training-loop simulator, metrics, canonical scenarios.
//! * [`obs`] — metrics registry, bounded structured-event trace, and
//!   canonical JSON used by every layer above.
//!
//! # Examples
//!
//! ```
//! use icache::types::Dataset;
//! let ds = Dataset::cifar10();
//! assert_eq!(ds.len(), 50_000);
//! ```

#![forbid(unsafe_code)]

pub use icache_baselines as baselines;
pub use icache_core as core;
pub use icache_dnn as dnn;
pub use icache_obs as obs;
pub use icache_sampling as sampling;
pub use icache_sim as sim;
pub use icache_storage as storage;
pub use icache_types as types;
