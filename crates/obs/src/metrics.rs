//! A lightweight metrics registry: named counters, gauges, and latency
//! histograms with deterministic (sorted) snapshots.
//!
//! The registry replaces the ad-hoc pattern of hand-computing deltas
//! between `CacheStats` / `StorageStats` snapshots at every layer: each
//! layer increments named metrics as events happen, and a single
//! [`MetricsRegistry::snapshot`] at the end of a run yields one
//! machine-readable summary.

use crate::json::Json;
use icache_types::{LatencyHistogram, SimDuration};
use std::collections::BTreeMap;

/// Named counters, gauges, and latency histograms.
///
/// Keys are free-form dotted names (`"hcache.hits"`, `"storage.degraded_requests"`).
/// Snapshots iterate in sorted key order, so a snapshot of a given state
/// is always byte-identical.
///
/// # Examples
///
/// ```
/// use icache_obs::MetricsRegistry;
/// use icache_types::SimDuration;
///
/// let mut m = MetricsRegistry::new();
/// m.inc("cache.h_hits");
/// m.add("cache.h_hits", 2);
/// m.set_gauge("cache.hit_ratio", 0.75);
/// m.observe("fetch", SimDuration::from_micros(120));
/// assert_eq!(m.counter("cache.h_hits"), 3);
/// assert_eq!(m.gauge("cache.hit_ratio"), Some(0.75));
/// assert_eq!(m.histogram("fetch").unwrap().count(), 1);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, LatencyHistogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Increment a counter by one.
    pub fn inc(&mut self, name: &str) {
        self.add(name, 1);
    }

    /// Increment a counter by `delta`.
    pub fn add(&mut self, name: &str, delta: u64) {
        if let Some(c) = self.counters.get_mut(name) {
            *c += delta;
        } else {
            self.counters.insert(name.to_string(), delta);
        }
    }

    /// Current value of a counter (zero when never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Set a gauge to an absolute value.
    pub fn set_gauge(&mut self, name: &str, value: f64) {
        self.gauges.insert(name.to_string(), value);
    }

    /// Current value of a gauge.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Record a duration into a named histogram.
    pub fn observe(&mut self, name: &str, d: SimDuration) {
        if let Some(h) = self.histograms.get_mut(name) {
            h.record(d);
        } else {
            let mut h = LatencyHistogram::new();
            h.record(d);
            self.histograms.insert(name.to_string(), h);
        }
    }

    /// Record many durations into a named histogram with one name lookup.
    /// Equivalent to calling [`MetricsRegistry::observe`] per duration.
    pub fn observe_many<I: IntoIterator<Item = SimDuration>>(&mut self, name: &str, ds: I) {
        let mut ds = ds.into_iter().peekable();
        if ds.peek().is_none() {
            return;
        }
        if !self.histograms.contains_key(name) {
            self.histograms
                .insert(name.to_string(), LatencyHistogram::new());
        }
        if let Some(h) = self.histograms.get_mut(name) {
            for d in ds {
                h.record(d);
            }
        }
    }

    /// A named histogram, if anything was observed under that name.
    pub fn histogram(&self, name: &str) -> Option<&LatencyHistogram> {
        self.histograms.get(name)
    }

    /// Merge every metric from `other` into this registry: counters add,
    /// gauges take `other`'s value, histograms merge.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (name, delta) in &other.counters {
            self.add(name, *delta);
        }
        for (name, value) in &other.gauges {
            self.set_gauge(name, *value);
        }
        for (name, hist) in &other.histograms {
            if let Some(h) = self.histograms.get_mut(name) {
                h.merge(hist);
            } else {
                self.histograms.insert(name.clone(), hist.clone());
            }
        }
    }

    /// Forget all metrics.
    pub fn clear(&mut self) {
        self.counters.clear();
        self.gauges.clear();
        self.histograms.clear();
    }

    /// Deterministic JSON snapshot:
    /// `{"counters": {...}, "gauges": {...}, "latency": {name: {count, mean_us, p50_us, p99_us, max_us}}}`.
    pub fn snapshot(&self) -> Json {
        let counters = self
            .counters
            .iter()
            .map(|(k, v)| (k.clone(), Json::UInt(*v)))
            .collect();
        let gauges = self
            .gauges
            .iter()
            .map(|(k, v)| (k.clone(), Json::Float(*v)))
            .collect();
        let latency = self
            .histograms
            .iter()
            .map(|(k, h)| {
                (
                    k.clone(),
                    Json::Obj(vec![
                        ("count".to_string(), Json::UInt(h.count())),
                        ("mean_us".to_string(), Json::Float(h.mean().as_micros_f64())),
                        (
                            "p50_us".to_string(),
                            Json::Float(h.quantile(0.5).as_micros_f64()),
                        ),
                        (
                            "p99_us".to_string(),
                            Json::Float(h.quantile(0.99).as_micros_f64()),
                        ),
                        ("max_us".to_string(), Json::Float(h.max().as_micros_f64())),
                    ]),
                )
            })
            .collect();
        Json::Obj(vec![
            ("counters".to_string(), Json::Obj(counters)),
            ("gauges".to_string(), Json::Obj(gauges)),
            ("latency".to_string(), Json::Obj(latency)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut m = MetricsRegistry::new();
        assert_eq!(m.counter("x"), 0);
        m.inc("x");
        m.add("x", 4);
        assert_eq!(m.counter("x"), 5);
    }

    #[test]
    fn gauges_overwrite() {
        let mut m = MetricsRegistry::new();
        m.set_gauge("g", 1.0);
        m.set_gauge("g", 2.5);
        assert_eq!(m.gauge("g"), Some(2.5));
        assert_eq!(m.gauge("missing"), None);
    }

    #[test]
    fn histograms_record_quantiles() {
        let mut m = MetricsRegistry::new();
        for us in [10u64, 20, 30, 40, 5_000] {
            m.observe("fetch", SimDuration::from_micros(us));
        }
        let h = m.histogram("fetch").unwrap();
        assert_eq!(h.count(), 5);
        assert!(h.quantile(0.99) >= SimDuration::from_micros(4_000));
    }

    #[test]
    fn merge_combines_all_kinds() {
        let mut a = MetricsRegistry::new();
        let mut b = MetricsRegistry::new();
        a.add("c", 1);
        b.add("c", 2);
        b.add("only_b", 7);
        b.set_gauge("g", 0.5);
        a.observe("h", SimDuration::from_micros(1));
        b.observe("h", SimDuration::from_micros(3));
        a.merge(&b);
        assert_eq!(a.counter("c"), 3);
        assert_eq!(a.counter("only_b"), 7);
        assert_eq!(a.gauge("g"), Some(0.5));
        assert_eq!(a.histogram("h").unwrap().count(), 2);
    }

    #[test]
    fn snapshot_is_sorted_and_deterministic() {
        let mut m = MetricsRegistry::new();
        m.inc("z.last");
        m.inc("a.first");
        m.set_gauge("mid", 1.0);
        m.observe("lat", SimDuration::from_micros(50));
        let one = m.snapshot().to_string();
        let two = m.snapshot().to_string();
        assert_eq!(one, two);
        // Sorted: "a.first" serialized before "z.last".
        assert!(one.find("a.first").unwrap() < one.find("z.last").unwrap());
        assert!(one.contains("\"p99_us\""));
    }

    #[test]
    fn clear_resets_everything() {
        let mut m = MetricsRegistry::new();
        m.inc("c");
        m.set_gauge("g", 1.0);
        m.observe("h", SimDuration::from_micros(1));
        m.clear();
        assert_eq!(m, MetricsRegistry::new());
    }
}
