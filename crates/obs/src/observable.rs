//! The [`Observable`] trait: one way to install an [`Obs`] handle.
//!
//! Before this trait every instrumented component grew its own
//! hand-rolled `set_obs(&mut self, obs: Obs)` inherent method with
//! subtly different doc comments and no shared builder form. Components
//! that record metrics or trace events now implement `Observable` and
//! get the `with_obs` builder for free.

use crate::trace::Obs;

/// Types that record into a shared [`Obs`] handle.
///
/// Implementors hold an `Obs` (usually starting as [`Obs::noop`]) and
/// replace it wholesale when a run installs the shared handle. An
/// implementation must forward the handle to every instrumented
/// sub-component it owns, so one `set_obs` call wires a whole subtree
/// into the same registry and trace ring.
///
/// # Examples
///
/// ```
/// use icache_obs::{Obs, Observable};
///
/// struct Layer {
///     obs: Obs,
/// }
///
/// impl Observable for Layer {
///     fn set_obs(&mut self, obs: Obs) {
///         self.obs = obs;
///     }
/// }
///
/// let obs = Obs::new();
/// let layer = Layer { obs: Obs::noop() }.with_obs(obs.clone());
/// layer.obs.inc("layer.events");
/// assert_eq!(obs.counter("layer.events"), 1);
/// ```
pub trait Observable {
    /// Install the shared observability handle, replacing the previous
    /// one (components start with a detached [`Obs::noop`] handle).
    fn set_obs(&mut self, obs: Obs);

    /// Builder-style [`Observable::set_obs`]: consume, install, return.
    fn with_obs(mut self, obs: Obs) -> Self
    where
        Self: Sized,
    {
        self.set_obs(obs);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Probe {
        obs: Obs,
    }

    impl Observable for Probe {
        fn set_obs(&mut self, obs: Obs) {
            self.obs = obs;
        }
    }

    #[test]
    fn with_obs_installs_the_handle() {
        let shared = Obs::new();
        let p = Probe { obs: Obs::noop() }.with_obs(shared.clone());
        p.obs.inc("probe.hits");
        assert_eq!(shared.counter("probe.hits"), 1);
    }

    #[test]
    fn set_obs_replaces_a_previous_handle() {
        let first = Obs::new();
        let second = Obs::new();
        let mut p = Probe { obs: Obs::noop() }.with_obs(first.clone());
        p.set_obs(second.clone());
        p.obs.inc("probe.hits");
        assert_eq!(first.counter("probe.hits"), 0);
        assert_eq!(second.counter("probe.hits"), 1);
    }
}
