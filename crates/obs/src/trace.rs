//! Bounded, deterministic structured-event tracing.
//!
//! Every layer of the cache stack emits typed [`TraceEvent`]s into a
//! shared [`Obs`] handle. Events are sequence-numbered in emission order
//! and stored in a bounded ring buffer ([`TraceBuffer`]); when the buffer
//! is full the *oldest* events are dropped and counted, so a trace is
//! always a suffix of the full event stream.
//!
//! Serialization is canonical (see [`mod@crate::json`]): two runs with the
//! same configuration and seed produce byte-identical JSONL.

use crate::json::Json;
use crate::metrics::MetricsRegistry;
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

/// Default ring-buffer capacity: enough for several epochs of a
/// simulated run without unbounded growth.
pub const DEFAULT_TRACE_CAPACITY: usize = 1 << 16;

/// A structured event emitted by one of the cache/storage/sim layers.
///
/// Ids are raw `u64`s rather than the typed ids from `icache-types` so
/// the observability crate stays below every other crate in the
/// dependency graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// A sample was served from the H-cache (importance heap).
    HHit {
        /// Requesting job.
        job: u64,
        /// Sample served.
        sample: u64,
    },
    /// A sample was served from the L-cache (packaged region).
    LHit {
        /// Requesting job.
        job: u64,
        /// Sample served.
        sample: u64,
    },
    /// A cache-substitution satisfied the request with a different sample.
    Substitution {
        /// Requesting job.
        job: u64,
        /// Sample that was asked for.
        requested: u64,
        /// Sample that was returned instead.
        substitute: u64,
        /// Which substitution path fired (e.g. `"st_lc"`, `"st_hc"`).
        kind: &'static str,
    },
    /// The request missed every cache tier and went to backing storage.
    Miss {
        /// Requesting job.
        job: u64,
        /// Sample that missed.
        sample: u64,
    },
    /// A sample was evicted from the H-cache.
    Eviction {
        /// Evicted sample.
        sample: u64,
        /// Size of the evicted sample in bytes.
        bytes: u64,
    },
    /// An evicted sample was spilled to the persistent-memory victim tier.
    SpillToPm {
        /// Spilled sample.
        sample: u64,
        /// Size of the spilled sample in bytes.
        bytes: u64,
    },
    /// The packager assembled a new package for the L-cache.
    PackageBuild {
        /// New package id.
        package: u64,
        /// Number of samples in the package.
        samples: u64,
        /// Total payload bytes.
        bytes: u64,
    },
    /// A read was served by a storage tier operating in brownout
    /// (degraded) mode and took a latency penalty.
    BrownoutDegradedRead {
        /// Name of the degraded backend (e.g. `"degraded(pfs)"`).
        backend: String,
        /// Extra latency added by the brownout, in nanoseconds.
        penalty_nanos: u64,
    },
    /// The H/L regions were re-sized at an epoch boundary.
    RegionRebalance {
        /// Epoch that just ended.
        epoch: u64,
        /// New H-region capacity in bytes.
        h_bytes: u64,
        /// New L-region capacity in bytes.
        l_bytes: u64,
        /// Samples evicted from H to fit the new capacity.
        evicted: u64,
    },
    /// The shadow importance heap finished a refresh and was swapped in.
    ShadowHeapRefill {
        /// Epoch at which the refreshed heap took effect.
        epoch: u64,
        /// Number of entries in the refreshed heap.
        entries: u64,
    },
    /// A training epoch began. In sharded (data-parallel) runs only rank 0
    /// emits the marker, so splitting a trace on `epoch_start` yields
    /// exactly one segment per epoch.
    EpochStart {
        /// Job emitting the marker (rank 0 in sharded runs).
        job: u64,
        /// Epoch index (0-based).
        epoch: u64,
        /// Number of samples the emitting job planned to fetch this epoch
        /// (after importance sampling and shard filtering).
        selected: u64,
    },
    /// A training epoch finished (same emission rule as [`Self::EpochStart`]).
    EpochEnd {
        /// Job emitting the marker.
        job: u64,
        /// Epoch index (0-based).
        epoch: u64,
        /// Samples the emitting job actually fetched this epoch.
        fetched: u64,
    },
    /// A distributed fetch was served from a peer node's cache over the
    /// interconnect instead of storage (§III-E).
    RemoteHit {
        /// Requesting job.
        job: u64,
        /// Sample served.
        sample: u64,
        /// Peer node that held the sample.
        node: u64,
    },
    /// The distributed directory re-mapped a sample from one node to
    /// another (an insert overwrote an existing residency entry, or a
    /// repartition moved the entry's directory shard between nodes).
    DirectoryRemap {
        /// Re-mapped sample.
        sample: u64,
        /// Node that previously cached the sample.
        from_node: u64,
        /// Node that caches the sample now.
        to_node: u64,
    },
    /// The sharded cache service's failure detector moved a node to a new
    /// membership state (`"alive"`, `"suspect"`, or `"down"`).
    MembershipChange {
        /// Node whose state changed.
        node: u64,
        /// New membership state.
        state: &'static str,
    },
    /// The directory partition map was recomputed after a membership
    /// change (each shard move is additionally traced as
    /// [`Self::DirectoryRemap`]).
    PartitionUpdate {
        /// Monotonic partition-map version.
        version: u64,
        /// Number of live nodes after the change.
        live: u64,
        /// Directory entries whose shard moved between nodes.
        moved: u64,
        /// Residency entries purged because their owner went down.
        purged: u64,
    },
    /// A rejoining node rebuilt cache contents from its recovery index
    /// instead of refetching from storage.
    WarmRecovery {
        /// Recovering node.
        node: u64,
        /// H-region samples re-admitted from the index.
        restored_h: u64,
        /// L-region samples re-installed from the index.
        restored_l: u64,
        /// Index entries skipped because another live node owns them now.
        skipped: u64,
    },
    /// The clairvoyant prefetcher issued a lookahead fetch for a planned
    /// access ahead of the consumer (DESIGN.md §11).
    PrefetchIssue {
        /// Job whose epoch plan is being prefetched.
        job: u64,
        /// Sample being prefetched.
        sample: u64,
        /// Zero-based position of the access in the epoch plan.
        position: u64,
    },
    /// A consumed sample was not resident in time: the consumer stalled
    /// on it (or had to demand-fetch it outside the lookahead window).
    PrefetchLate {
        /// Consuming job.
        job: u64,
        /// Sample that arrived late.
        sample: u64,
        /// Zero-based position of the access in the epoch plan.
        position: u64,
        /// How long the consumer stalled waiting for the data, in
        /// nanoseconds.
        wait_nanos: u64,
    },
}

impl TraceEvent {
    /// Short machine-readable event name (the `"event"` field in JSONL).
    pub fn name(&self) -> &'static str {
        match self {
            TraceEvent::HHit { .. } => "h_hit",
            TraceEvent::LHit { .. } => "l_hit",
            TraceEvent::Substitution { .. } => "substitution",
            TraceEvent::Miss { .. } => "miss",
            TraceEvent::Eviction { .. } => "eviction",
            TraceEvent::SpillToPm { .. } => "spill_to_pm",
            TraceEvent::PackageBuild { .. } => "package_build",
            TraceEvent::BrownoutDegradedRead { .. } => "brownout_degraded_read",
            TraceEvent::RegionRebalance { .. } => "region_rebalance",
            TraceEvent::ShadowHeapRefill { .. } => "shadow_heap_refill",
            TraceEvent::EpochStart { .. } => "epoch_start",
            TraceEvent::EpochEnd { .. } => "epoch_end",
            TraceEvent::RemoteHit { .. } => "remote_hit",
            TraceEvent::DirectoryRemap { .. } => "directory_remap",
            TraceEvent::MembershipChange { .. } => "membership_change",
            TraceEvent::PartitionUpdate { .. } => "partition_update",
            TraceEvent::WarmRecovery { .. } => "warm_recovery",
            TraceEvent::PrefetchIssue { .. } => "prefetch_issue",
            TraceEvent::PrefetchLate { .. } => "prefetch_late",
        }
    }

    /// The event as a JSON object including its sequence number.
    pub fn to_json(&self, seq: u64) -> Json {
        let mut fields = vec![
            ("seq".to_string(), Json::UInt(seq)),
            ("event".to_string(), Json::Str(self.name().to_string())),
        ];
        match self {
            TraceEvent::HHit { job, sample } | TraceEvent::LHit { job, sample } => {
                fields.push(("job".to_string(), Json::UInt(*job)));
                fields.push(("sample".to_string(), Json::UInt(*sample)));
            }
            TraceEvent::Substitution {
                job,
                requested,
                substitute,
                kind,
            } => {
                fields.push(("job".to_string(), Json::UInt(*job)));
                fields.push(("requested".to_string(), Json::UInt(*requested)));
                fields.push(("substitute".to_string(), Json::UInt(*substitute)));
                fields.push(("kind".to_string(), Json::Str((*kind).to_string())));
            }
            TraceEvent::Miss { job, sample } => {
                fields.push(("job".to_string(), Json::UInt(*job)));
                fields.push(("sample".to_string(), Json::UInt(*sample)));
            }
            TraceEvent::Eviction { sample, bytes } | TraceEvent::SpillToPm { sample, bytes } => {
                fields.push(("sample".to_string(), Json::UInt(*sample)));
                fields.push(("bytes".to_string(), Json::UInt(*bytes)));
            }
            TraceEvent::PackageBuild {
                package,
                samples,
                bytes,
            } => {
                fields.push(("package".to_string(), Json::UInt(*package)));
                fields.push(("samples".to_string(), Json::UInt(*samples)));
                fields.push(("bytes".to_string(), Json::UInt(*bytes)));
            }
            TraceEvent::BrownoutDegradedRead {
                backend,
                penalty_nanos,
            } => {
                fields.push(("backend".to_string(), Json::Str(backend.clone())));
                fields.push(("penalty_nanos".to_string(), Json::UInt(*penalty_nanos)));
            }
            TraceEvent::RegionRebalance {
                epoch,
                h_bytes,
                l_bytes,
                evicted,
            } => {
                fields.push(("epoch".to_string(), Json::UInt(*epoch)));
                fields.push(("h_bytes".to_string(), Json::UInt(*h_bytes)));
                fields.push(("l_bytes".to_string(), Json::UInt(*l_bytes)));
                fields.push(("evicted".to_string(), Json::UInt(*evicted)));
            }
            TraceEvent::ShadowHeapRefill { epoch, entries } => {
                fields.push(("epoch".to_string(), Json::UInt(*epoch)));
                fields.push(("entries".to_string(), Json::UInt(*entries)));
            }
            TraceEvent::EpochStart {
                job,
                epoch,
                selected,
            } => {
                fields.push(("job".to_string(), Json::UInt(*job)));
                fields.push(("epoch".to_string(), Json::UInt(*epoch)));
                fields.push(("selected".to_string(), Json::UInt(*selected)));
            }
            TraceEvent::EpochEnd {
                job,
                epoch,
                fetched,
            } => {
                fields.push(("job".to_string(), Json::UInt(*job)));
                fields.push(("epoch".to_string(), Json::UInt(*epoch)));
                fields.push(("fetched".to_string(), Json::UInt(*fetched)));
            }
            TraceEvent::RemoteHit { job, sample, node } => {
                fields.push(("job".to_string(), Json::UInt(*job)));
                fields.push(("sample".to_string(), Json::UInt(*sample)));
                fields.push(("node".to_string(), Json::UInt(*node)));
            }
            TraceEvent::DirectoryRemap {
                sample,
                from_node,
                to_node,
            } => {
                fields.push(("sample".to_string(), Json::UInt(*sample)));
                fields.push(("from_node".to_string(), Json::UInt(*from_node)));
                fields.push(("to_node".to_string(), Json::UInt(*to_node)));
            }
            TraceEvent::MembershipChange { node, state } => {
                fields.push(("node".to_string(), Json::UInt(*node)));
                fields.push(("state".to_string(), Json::Str((*state).to_string())));
            }
            TraceEvent::PartitionUpdate {
                version,
                live,
                moved,
                purged,
            } => {
                fields.push(("version".to_string(), Json::UInt(*version)));
                fields.push(("live".to_string(), Json::UInt(*live)));
                fields.push(("moved".to_string(), Json::UInt(*moved)));
                fields.push(("purged".to_string(), Json::UInt(*purged)));
            }
            TraceEvent::WarmRecovery {
                node,
                restored_h,
                restored_l,
                skipped,
            } => {
                fields.push(("node".to_string(), Json::UInt(*node)));
                fields.push(("restored_h".to_string(), Json::UInt(*restored_h)));
                fields.push(("restored_l".to_string(), Json::UInt(*restored_l)));
                fields.push(("skipped".to_string(), Json::UInt(*skipped)));
            }
            TraceEvent::PrefetchIssue {
                job,
                sample,
                position,
            } => {
                fields.push(("job".to_string(), Json::UInt(*job)));
                fields.push(("sample".to_string(), Json::UInt(*sample)));
                fields.push(("position".to_string(), Json::UInt(*position)));
            }
            TraceEvent::PrefetchLate {
                job,
                sample,
                position,
                wait_nanos,
            } => {
                fields.push(("job".to_string(), Json::UInt(*job)));
                fields.push(("sample".to_string(), Json::UInt(*sample)));
                fields.push(("position".to_string(), Json::UInt(*position)));
                fields.push(("wait_nanos".to_string(), Json::UInt(*wait_nanos)));
            }
        }
        Json::Obj(fields)
    }
}

/// A bounded ring buffer of sequence-numbered [`TraceEvent`]s.
#[derive(Debug, Clone, Default)]
pub struct TraceBuffer {
    events: VecDeque<(u64, TraceEvent)>,
    capacity: usize,
    next_seq: u64,
    dropped: u64,
}

impl TraceBuffer {
    /// A buffer retaining at most `capacity` events (zero disables
    /// retention entirely while still counting sequence numbers).
    pub fn with_capacity(capacity: usize) -> Self {
        TraceBuffer {
            events: VecDeque::new(),
            capacity,
            next_seq: 0,
            dropped: 0,
        }
    }

    /// Append an event, evicting the oldest if full. Returns the
    /// event's sequence number.
    pub fn push(&mut self, event: TraceEvent) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        if self.capacity == 0 {
            self.dropped += 1;
            return seq;
        }
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back((seq, event));
        seq
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no events are retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of events that fell out of the ring (or were never
    /// retained, for a zero-capacity buffer).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Total number of events ever pushed.
    pub fn emitted(&self) -> u64 {
        self.next_seq
    }

    /// Iterate retained `(seq, event)` pairs oldest-first.
    pub fn iter(&self) -> impl Iterator<Item = &(u64, TraceEvent)> {
        self.events.iter()
    }

    /// Serialize retained events as JSON Lines (one canonical object per
    /// line, trailing newline after each).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for (seq, event) in &self.events {
            out.push_str(&event.to_json(*seq).to_string());
            out.push('\n');
        }
        out
    }

    /// Forget retained events and counters (sequence numbers restart).
    pub fn clear(&mut self) {
        self.events.clear();
        self.next_seq = 0;
        self.dropped = 0;
    }
}

#[derive(Debug, Default)]
struct ObsInner {
    metrics: MetricsRegistry,
    trace: TraceBuffer,
}

/// Shared observability handle: a metrics registry plus a trace buffer
/// behind one cheaply clonable reference.
///
/// Every layer that participates in a run holds a clone of the same
/// `Obs`; cloning shares state.
///
/// # Examples
///
/// ```
/// use icache_obs::{Obs, TraceEvent};
///
/// let obs = Obs::new();
/// let layer = obs.clone(); // same underlying buffers
/// layer.emit(TraceEvent::HHit { job: 0, sample: 42 });
/// layer.inc("cache.h_hits");
/// assert_eq!(obs.trace_len(), 1);
/// assert_eq!(obs.counter("cache.h_hits"), 1);
/// assert!(obs.trace_jsonl().starts_with(r#"{"seq":0,"event":"h_hit""#));
/// ```
#[derive(Debug, Clone)]
pub struct Obs {
    inner: Arc<Mutex<ObsInner>>,
}

impl Default for Obs {
    fn default() -> Self {
        Obs::new()
    }
}

impl Obs {
    /// A handle with the default trace capacity.
    pub fn new() -> Self {
        Obs::with_trace_capacity(DEFAULT_TRACE_CAPACITY)
    }

    /// A handle retaining at most `capacity` trace events.
    pub fn with_trace_capacity(capacity: usize) -> Self {
        Obs {
            inner: Arc::new(Mutex::new(ObsInner {
                metrics: MetricsRegistry::new(),
                trace: TraceBuffer::with_capacity(capacity),
            })),
        }
    }

    /// A handle that records metrics but retains no trace events; the
    /// default for components constructed without explicit observability.
    pub fn noop() -> Self {
        Obs::with_trace_capacity(0)
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, ObsInner> {
        // A poisoned lock means another thread panicked mid-update;
        // observability data is best-effort, so keep serving it.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Emit a trace event; returns its sequence number.
    pub fn emit(&self, event: TraceEvent) -> u64 {
        self.lock().trace.push(event)
    }

    /// Increment a named counter by one.
    pub fn inc(&self, name: &str) {
        self.lock().metrics.inc(name);
    }

    /// Increment a named counter by `delta`.
    pub fn add(&self, name: &str, delta: u64) {
        self.lock().metrics.add(name, delta);
    }

    /// Read a named counter.
    pub fn counter(&self, name: &str) -> u64 {
        self.lock().metrics.counter(name)
    }

    /// Set a named gauge.
    pub fn set_gauge(&self, name: &str, value: f64) {
        self.lock().metrics.set_gauge(name, value);
    }

    /// Read a named gauge.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.lock().metrics.gauge(name)
    }

    /// Record a duration into a named latency histogram.
    pub fn observe(&self, name: &str, d: icache_types::SimDuration) {
        self.lock().metrics.observe(name, d);
    }

    /// Record many durations into a named latency histogram under one
    /// lock acquisition (the bulk-loader path records hundreds of
    /// per-sample latencies per package build).
    pub fn observe_many<I: IntoIterator<Item = icache_types::SimDuration>>(
        &self,
        name: &str,
        ds: I,
    ) {
        self.lock().metrics.observe_many(name, ds);
    }

    /// Number of retained trace events.
    pub fn trace_len(&self) -> usize {
        self.lock().trace.len()
    }

    /// Number of trace events dropped by the ring buffer.
    pub fn trace_dropped(&self) -> u64 {
        self.lock().trace.dropped()
    }

    /// Total trace events emitted over the lifetime of the handle.
    pub fn trace_emitted(&self) -> u64 {
        self.lock().trace.emitted()
    }

    /// The retained trace as canonical JSON Lines.
    pub fn trace_jsonl(&self) -> String {
        self.lock().trace.to_jsonl()
    }

    /// Count of retained events per event name, sorted by name.
    pub fn trace_event_counts(&self) -> Vec<(String, u64)> {
        let inner = self.lock();
        let mut counts: std::collections::BTreeMap<&'static str, u64> =
            std::collections::BTreeMap::new();
        for (_, event) in inner.trace.iter() {
            *counts.entry(event.name()).or_insert(0) += 1;
        }
        counts
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect()
    }

    /// Deterministic JSON snapshot of the metrics registry.
    pub fn metrics_snapshot(&self) -> Json {
        self.lock().metrics.snapshot()
    }

    /// Run a closure against the metrics registry (for bulk updates).
    pub fn with_metrics<R>(&self, f: impl FnOnce(&mut MetricsRegistry) -> R) -> R {
        f(&mut self.lock().metrics)
    }

    /// Reset both the metrics registry and the trace buffer.
    pub fn reset(&self) {
        let mut inner = self.lock();
        inner.metrics.clear();
        inner.trace.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_buffer_drops_oldest() {
        let mut buf = TraceBuffer::with_capacity(2);
        for sample in 0..5u64 {
            buf.push(TraceEvent::Miss { job: 0, sample });
        }
        assert_eq!(buf.len(), 2);
        assert_eq!(buf.dropped(), 3);
        assert_eq!(buf.emitted(), 5);
        let seqs: Vec<u64> = buf.iter().map(|(s, _)| *s).collect();
        assert_eq!(seqs, vec![3, 4]);
    }

    #[test]
    fn zero_capacity_counts_but_retains_nothing() {
        let mut buf = TraceBuffer::with_capacity(0);
        buf.push(TraceEvent::HHit { job: 1, sample: 2 });
        assert!(buf.is_empty());
        assert_eq!(buf.dropped(), 1);
        assert_eq!(buf.emitted(), 1);
        assert_eq!(buf.to_jsonl(), "");
    }

    #[test]
    fn jsonl_is_canonical_and_parseable() {
        let mut buf = TraceBuffer::with_capacity(16);
        buf.push(TraceEvent::Substitution {
            job: 1,
            requested: 10,
            substitute: 11,
            kind: "st_lc",
        });
        buf.push(TraceEvent::RegionRebalance {
            epoch: 2,
            h_bytes: 100,
            l_bytes: 50,
            evicted: 3,
        });
        let jsonl = buf.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        let first = crate::Json::parse(lines[0]).unwrap();
        assert_eq!(first["event"].as_str(), Some("substitution"));
        assert_eq!(first["kind"].as_str(), Some("st_lc"));
        let second = crate::Json::parse(lines[1]).unwrap();
        assert_eq!(second["seq"].as_u64(), Some(1));
        assert_eq!(second["h_bytes"].as_u64(), Some(100));
    }

    #[test]
    fn every_event_kind_serializes_with_its_name() {
        let events = vec![
            TraceEvent::HHit { job: 0, sample: 1 },
            TraceEvent::LHit { job: 0, sample: 1 },
            TraceEvent::Substitution {
                job: 0,
                requested: 1,
                substitute: 2,
                kind: "st_hc",
            },
            TraceEvent::Miss { job: 0, sample: 1 },
            TraceEvent::Eviction {
                sample: 1,
                bytes: 10,
            },
            TraceEvent::SpillToPm {
                sample: 1,
                bytes: 10,
            },
            TraceEvent::PackageBuild {
                package: 7,
                samples: 3,
                bytes: 1024,
            },
            TraceEvent::BrownoutDegradedRead {
                backend: "degraded(pfs)".into(),
                penalty_nanos: 99,
            },
            TraceEvent::RegionRebalance {
                epoch: 1,
                h_bytes: 2,
                l_bytes: 3,
                evicted: 0,
            },
            TraceEvent::ShadowHeapRefill {
                epoch: 1,
                entries: 12,
            },
            TraceEvent::EpochStart {
                job: 0,
                epoch: 2,
                selected: 700,
            },
            TraceEvent::EpochEnd {
                job: 0,
                epoch: 2,
                fetched: 700,
            },
            TraceEvent::RemoteHit {
                job: 1,
                sample: 5,
                node: 0,
            },
            TraceEvent::DirectoryRemap {
                sample: 5,
                from_node: 0,
                to_node: 1,
            },
            TraceEvent::MembershipChange {
                node: 1,
                state: "suspect",
            },
            TraceEvent::PartitionUpdate {
                version: 2,
                live: 2,
                moved: 40,
                purged: 12,
            },
            TraceEvent::WarmRecovery {
                node: 1,
                restored_h: 30,
                restored_l: 60,
                skipped: 3,
            },
            TraceEvent::PrefetchIssue {
                job: 0,
                sample: 9,
                position: 4,
            },
            TraceEvent::PrefetchLate {
                job: 0,
                sample: 9,
                position: 4,
                wait_nanos: 1_500,
            },
        ];
        for e in events {
            let j = e.to_json(0);
            assert_eq!(j["event"].as_str(), Some(e.name()));
            // Round-trips through the parser.
            assert_eq!(crate::Json::parse(&j.to_string()).unwrap(), j);
        }
    }

    #[test]
    fn obs_clones_share_state() {
        let obs = Obs::new();
        let other = obs.clone();
        other.emit(TraceEvent::Miss { job: 3, sample: 4 });
        other.add("misses", 2);
        other.set_gauge("ratio", 0.5);
        other.observe("lat", icache_types::SimDuration::from_micros(5));
        assert_eq!(obs.trace_len(), 1);
        assert_eq!(obs.counter("misses"), 2);
        assert_eq!(obs.gauge("ratio"), Some(0.5));
        assert_eq!(obs.trace_event_counts(), vec![("miss".to_string(), 1)]);
        obs.reset();
        assert_eq!(other.trace_len(), 0);
        assert_eq!(other.counter("misses"), 0);
    }

    #[test]
    fn noop_records_metrics_without_trace() {
        let obs = Obs::noop();
        obs.emit(TraceEvent::HHit { job: 0, sample: 0 });
        obs.inc("hits");
        assert_eq!(obs.trace_len(), 0);
        assert_eq!(obs.trace_emitted(), 1);
        assert_eq!(obs.counter("hits"), 1);
    }
}
