//! A small, dependency-free JSON value type with a `json!` literal macro,
//! a writer, and a parser.
//!
//! Object keys keep insertion order and numbers preserve their integer /
//! float distinction, so serialization is a pure function of the value —
//! two identical values always produce byte-identical text. That property
//! is what lets trace files be compared with `==` across runs.

use std::fmt;

/// A JSON value.
///
/// # Examples
///
/// ```
/// use icache_obs::json;
///
/// let v = json!({"name": "icache", "epochs": 3, "ratios": [0.5, 1.0]});
/// assert_eq!(v["name"].as_str(), Some("icache"));
/// assert_eq!(v["epochs"].as_u64(), Some(3));
/// assert_eq!(v.to_string(), r#"{"name":"icache","epochs":3,"ratios":[0.5,1.0]}"#);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A non-negative integer.
    UInt(u64),
    /// A negative integer (always `< 0`; non-negative parses as [`Json::UInt`]).
    Int(i64),
    /// A floating-point number. Non-finite values serialize as `null`.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; keys keep insertion order.
    Obj(Vec<(String, Json)>),
}

static NULL: Json = Json::Null;

impl Json {
    /// Member of an object by key (first match), if this is an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::UInt(n) => Some(n),
            _ => None,
        }
    }

    /// The value as an `i64`.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Json::UInt(n) => i64::try_from(n).ok(),
            Json::Int(n) => Some(n),
            _ => None,
        }
    }

    /// The value as an `f64` (integers convert losslessly within 2^53).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::UInt(n) => Some(n as f64),
            Json::Int(n) => Some(n as f64),
            Json::Float(x) => Some(x),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Json::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// The value as an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The value as object entries.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(entries) => Some(entries),
            _ => None,
        }
    }

    /// True when the value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }

    /// Parse a JSON document.
    ///
    /// # Examples
    ///
    /// ```
    /// use icache_obs::Json;
    ///
    /// let v = Json::parse(r#"{"a": [1, -2, 3.5], "b": null}"#).unwrap();
    /// assert_eq!(v["a"].as_array().unwrap().len(), 3);
    /// assert!(v["b"].is_null());
    /// ```
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after value"));
        }
        Ok(v)
    }
}

impl std::ops::Index<&str> for Json {
    type Output = Json;

    /// `value[key]`; yields `Json::Null` for missing keys or non-objects.
    fn index(&self, key: &str) -> &Json {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Json {
    type Output = Json;

    /// `value[i]`; yields `Json::Null` out of bounds or for non-arrays.
    fn index(&self, i: usize) -> &Json {
        match self {
            Json::Arr(items) => items.get(i).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_f64(x: f64, out: &mut String) {
    if !x.is_finite() {
        out.push_str("null");
    } else if x == x.trunc() && x.abs() < 1e15 {
        // Keep a ".0" so the value round-trips as a float.
        out.push_str(&format!("{x:.1}"));
    } else {
        // Rust's shortest-roundtrip formatting: deterministic and exact.
        out.push_str(&format!("{x}"));
    }
}

impl Json {
    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::UInt(n) => out.push_str(&n.to_string()),
            Json::Int(n) => out.push_str(&n.to_string()),
            Json::Float(x) => write_f64(*x, out),
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(entries) => {
                out.push('{');
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl fmt::Display for Json {
    /// Compact (no whitespace) canonical serialization.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

/// A JSON parse error with byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset in the input where the error was detected.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.eat(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let val = self.value()?;
            entries.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(entries));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            // Surrogate pairs are not produced by our writer;
                            // map lone surrogates to the replacement character.
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Json::UInt(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Json::Int(n));
            }
        }
        text.parse::<f64>().map(Json::Float).map_err(|_| JsonError {
            message: "invalid number".to_string(),
            offset: start,
        })
    }
}

/// Conversion into a [`Json`] value; what the [`crate::json!`] macro calls for
/// interpolated expressions.
pub trait ToJson {
    /// The JSON representation of `self`.
    fn to_json(&self) -> Json;
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl ToJson for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Float(*self)
    }
}

impl ToJson for f32 {
    fn to_json(&self) -> Json {
        Json::Float(f64::from(*self))
    }
}

macro_rules! to_json_unsigned {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                Json::UInt(*self as u64)
            }
        }
    )*};
}
to_json_unsigned!(u8, u16, u32, u64, usize);

macro_rules! to_json_signed {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                let v = *self as i64;
                if v >= 0 { Json::UInt(v as u64) } else { Json::Int(v) }
            }
        }
    )*};
}
to_json_signed!(i8, i16, i32, i64, isize);

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Json {
        (**self).to_json()
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson, const N: usize> ToJson for [T; N] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

/// Build a [`Json`] value with JSON-like literal syntax.
///
/// Interpolated Rust expressions go through [`ToJson`].
///
/// # Examples
///
/// ```
/// use icache_obs::json;
///
/// let hits = [3u64, 5];
/// let line = json!({"scheme": "icache", "hits": [hits[0], hits[1]], "ok": true});
/// assert_eq!(line.to_string(), r#"{"scheme":"icache","hits":[3,5],"ok":true}"#);
/// ```
#[macro_export]
macro_rules! json {
    ($($tt:tt)+) => {
        $crate::json_internal!($($tt)+)
    };
}

/// Implementation detail of [`json!`]; a token-tree muncher in the style
/// of `serde_json`'s.
#[doc(hidden)]
#[macro_export]
macro_rules! json_internal {
    //////////////////////////////////////////////////////////////////////
    // Array munching: @array [built elements,] remaining tts
    //////////////////////////////////////////////////////////////////////
    (@array [$($elems:expr,)*]) => {
        vec![$($elems,)*]
    };
    (@array [$($elems:expr),*]) => {
        vec![$($elems),*]
    };
    (@array [$($elems:expr,)*] null $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(null)] $($rest)*)
    };
    (@array [$($elems:expr,)*] true $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(true)] $($rest)*)
    };
    (@array [$($elems:expr,)*] false $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(false)] $($rest)*)
    };
    (@array [$($elems:expr,)*] [$($arr:tt)*] $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!([$($arr)*])] $($rest)*)
    };
    (@array [$($elems:expr,)*] {$($obj:tt)*} $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!({$($obj)*})] $($rest)*)
    };
    (@array [$($elems:expr,)*] $next:expr, $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!($next),] $($rest)*)
    };
    (@array [$($elems:expr,)*] $last:expr) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!($last)])
    };
    (@array [$($elems:expr),*] , $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)*] $($rest)*)
    };

    //////////////////////////////////////////////////////////////////////
    // Object munching: @object map (partial key) (remaining) (copy)
    //////////////////////////////////////////////////////////////////////
    (@object $object:ident () () ()) => {};
    // Insert an entry followed by more entries.
    (@object $object:ident [$($key:tt)+] ($value:expr) , $($rest:tt)*) => {
        $object.push((($($key)+).into(), $value));
        $crate::json_internal!(@object $object () ($($rest)*) ($($rest)*));
    };
    // Insert the final entry.
    (@object $object:ident [$($key:tt)+] ($value:expr)) => {
        $object.push((($($key)+).into(), $value));
    };
    // Munch a value starting with a JSON literal or bracket form.
    (@object $object:ident ($($key:tt)+) (: null $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!(null)) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: true $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!(true)) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: false $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!(false)) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: [$($arr:tt)*] $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!([$($arr)*])) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: {$($map:tt)*} $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!({$($map)*})) $($rest)*);
    };
    // Munch an expression value followed by a comma.
    (@object $object:ident ($($key:tt)+) (: $value:expr , $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!($value)) , $($rest)*);
    };
    // Munch the final expression value.
    (@object $object:ident ($($key:tt)+) (: $value:expr) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!($value)));
    };
    // Accumulate key token trees until the ':' is reached.
    (@object $object:ident ($($key:tt)*) ($tt:tt $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object ($($key)* $tt) ($($rest)*) ($($rest)*));
    };

    //////////////////////////////////////////////////////////////////////
    // Entry points
    //////////////////////////////////////////////////////////////////////
    (null) => {
        $crate::Json::Null
    };
    (true) => {
        $crate::Json::Bool(true)
    };
    (false) => {
        $crate::Json::Bool(false)
    };
    ([]) => {
        $crate::Json::Arr(vec![])
    };
    ([ $($tt:tt)+ ]) => {
        $crate::Json::Arr($crate::json_internal!(@array [] $($tt)+))
    };
    ({}) => {
        $crate::Json::Obj(vec![])
    };
    ({ $($tt:tt)+ }) => {{
        #[allow(clippy::vec_init_then_push)]
        let object = {
            let mut object: Vec<(String, $crate::Json)> = Vec::new();
            $crate::json_internal!(@object object () ($($tt)+) ($($tt)+));
            object
        };
        $crate::Json::Obj(object)
    }};
    ($other:expr) => {
        $crate::ToJson::to_json(&$other)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literals_and_accessors() {
        let v = json!({"a": 1, "b": -2, "c": 1.5, "d": "x", "e": null, "f": true});
        assert_eq!(v["a"].as_u64(), Some(1));
        assert_eq!(v["b"].as_i64(), Some(-2));
        assert_eq!(v["c"].as_f64(), Some(1.5));
        assert_eq!(v["d"].as_str(), Some("x"));
        assert!(v["e"].is_null());
        assert_eq!(v["f"].as_bool(), Some(true));
        assert!(v["missing"].is_null());
    }

    #[test]
    fn macro_handles_expressions_and_nesting() {
        let name = String::from("resnet50");
        let xs = [1u64, 2, 3];
        let base = 10.0f64;
        let t = 4.0f64;
        let v = json!({
            "model": name,
            "collected": xs.iter().map(|x| x * 2).collect::<Vec<_>>(),
            "speedup": base / t,
            "pair": [xs[0], xs[1]],
            "nested": {"inner": [true, false, null]},
        });
        assert_eq!(
            v.to_string(),
            r#"{"model":"resnet50","collected":[2,4,6],"speedup":2.5,"pair":[1,2],"nested":{"inner":[true,false,null]}}"#
        );
    }

    #[test]
    fn float_formatting_is_roundtrippable() {
        assert_eq!(json!(1.0).to_string(), "1.0");
        assert_eq!(json!(0.1).to_string(), "0.1");
        assert_eq!(json!(f64::NAN).to_string(), "null");
        // Very large magnitudes print in full decimal but still round-trip.
        let big = json!(1e300).to_string();
        assert_eq!(Json::parse(&big).unwrap().as_f64(), Some(1e300));
    }

    #[test]
    fn parse_roundtrip() {
        let v = json!({
            "s": "he said \"hi\"\n",
            "nums": [0, 42, -7, 2.25, 1e3],
            "deep": {"empty_arr": [], "empty_obj": {}}
        });
        let text = v.to_string();
        let back = Json::parse(&text).unwrap();
        assert_eq!(back, v);
        assert_eq!(back.to_string(), text);
    }

    #[test]
    fn parse_accepts_whitespace_and_escapes() {
        let v = Json::parse(" { \"k\" : [ 1 , \"a\\u0041b\" ] } ").unwrap();
        assert_eq!(v["k"][0].as_u64(), Some(1));
        assert_eq!(v["k"][1].as_str(), Some("aAb"));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("tru").is_err());
        assert!(Json::parse("1 2").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }

    #[test]
    fn big_u64_survives() {
        let n = u64::MAX;
        let text = json!({"n": n}).to_string();
        assert_eq!(Json::parse(&text).unwrap()["n"].as_u64(), Some(n));
    }

    #[test]
    fn index_out_of_bounds_is_null() {
        let v = json!([1, 2]);
        assert!(v[5].is_null());
        assert!(v["k"].is_null());
        assert_eq!(v[1].as_u64(), Some(2));
    }
}
