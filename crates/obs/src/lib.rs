//! Observability for the iCache reproduction.
//!
//! Three pieces, layered bottom-up so every other crate can depend on
//! this one:
//!
//! - [`mod@json`]: a dependency-free JSON value with a canonical writer, a
//!   parser, and the [`json!`] literal macro. Canonical means identical
//!   values always serialize to identical bytes — the foundation for
//!   reproducible traces.
//! - [`metrics`]: a [`MetricsRegistry`] of named counters, gauges, and
//!   latency histograms (p50/p99 via `icache_types::LatencyHistogram`).
//! - [`trace`]: typed [`TraceEvent`]s in a bounded ring buffer, shared
//!   across layers through the clonable [`Obs`] handle, exported as
//!   JSON Lines.
//! - [`observable`]: the [`Observable`] trait every instrumented
//!   component implements to accept an [`Obs`] handle uniformly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;
pub mod metrics;
pub mod observable;
pub mod trace;

pub use json::{Json, JsonError, ToJson};
pub use metrics::MetricsRegistry;
pub use observable::Observable;
pub use trace::{Obs, TraceBuffer, TraceEvent, DEFAULT_TRACE_CAPACITY};
