//! The Oracle: the whole dataset in local DRAM.

use crate::BaselineTimings;
use icache_core::{CacheStats, CacheSystem, Fetch, FetchOutcome};
use icache_storage::StorageBackend;
use icache_types::{ByteSize, JobId, SampleId, SimTime};

/// The **Oracle** configuration of Figure 8: every sample already resides
/// in local DRAM, so each fetch costs only the memory copy. This is the
/// lower bound any cache system can approach; the paper highlights that
/// iCache matches it for the compute-heavy ImageNet models.
///
/// # Examples
///
/// ```
/// use icache_baselines::OracleSource;
/// use icache_core::CacheSystem;
/// use icache_storage::LocalTier;
/// use icache_types::{ByteSize, JobId, SampleId, SimTime};
///
/// let mut o = OracleSource::new(ByteSize::gib(1));
/// let mut st = LocalTier::tmpfs();
/// let f = o.fetch(JobId(0), SampleId(0), ByteSize::kib(3), SimTime::ZERO, &mut st);
/// assert!(f.outcome.served_from_cache());
/// ```
#[derive(Debug, Clone)]
pub struct OracleSource {
    dataset_bytes: ByteSize,
    timings: BaselineTimings,
    stats: CacheStats,
}

impl OracleSource {
    /// An oracle holding a dataset of `dataset_bytes` entirely in memory.
    pub fn new(dataset_bytes: ByteSize) -> Self {
        Self::with_timings(dataset_bytes, BaselineTimings::default())
    }

    /// An oracle with explicit timing parameters.
    pub fn with_timings(dataset_bytes: ByteSize, timings: BaselineTimings) -> Self {
        OracleSource {
            dataset_bytes,
            timings,
            stats: CacheStats::default(),
        }
    }
}

impl CacheSystem for OracleSource {
    fn name(&self) -> &str {
        "oracle"
    }

    fn fetch(
        &mut self,
        _job: JobId,
        id: SampleId,
        size: ByteSize,
        now: SimTime,
        _storage: &mut dyn StorageBackend,
    ) -> Fetch {
        self.stats.h_hits += 1;
        self.stats.bytes_from_cache += size;
        Fetch {
            ready_at: now + self.timings.hit_service(size),
            served_id: id,
            outcome: FetchOutcome::HitH,
        }
    }

    fn stats(&self) -> CacheStats {
        self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    fn used_bytes(&self) -> ByteSize {
        self.dataset_bytes
    }

    fn capacity(&self) -> ByteSize {
        self.dataset_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icache_storage::LocalTier;

    #[test]
    fn oracle_never_touches_storage() {
        let mut o = OracleSource::new(ByteSize::mib(100));
        let mut st = LocalTier::tmpfs();
        let mut now = SimTime::ZERO;
        for i in 0..100u64 {
            let f = o.fetch(JobId(0), SampleId(i), ByteSize::kib(3), now, &mut st);
            now = f.ready_at;
            assert_eq!(f.outcome, FetchOutcome::HitH);
        }
        assert_eq!(st.stats().total_reads(), 0);
        assert!((o.stats().hit_ratio() - 1.0).abs() < 1e-12);
    }
}
