//! The Default baseline: a user-level LRU cache.

use crate::BaselineTimings;
use icache_core::{CacheStats, CacheSystem, Fetch, FetchOutcome};
use icache_storage::StorageBackend;
use icache_types::{ByteSize, JobId, SampleId, SimTime};
use std::collections::{BTreeMap, HashMap};

/// A byte-capacity LRU map of samples, reusable by several baselines.
///
/// Recency is tracked with a monotone counter and an ordered index, giving
/// `O(log n)` touch/insert/evict with fully deterministic eviction order.
///
/// # Examples
///
/// ```
/// use icache_baselines::LruCore;
/// use icache_types::{ByteSize, SampleId};
///
/// let mut lru = LruCore::new(ByteSize::new(100));
/// lru.insert(SampleId(1), ByteSize::new(60));
/// lru.insert(SampleId(2), ByteSize::new(60)); // evicts #1
/// assert!(!lru.contains(SampleId(1)));
/// assert!(lru.contains(SampleId(2)));
/// ```
#[derive(Debug, Clone, Default)]
pub struct LruCore {
    capacity: ByteSize,
    used: ByteSize,
    // lint: allow(determinism): keyed lookup only; recency order lives
    // in the `order` BTreeMap, never read off this map
    items: HashMap<SampleId, (ByteSize, u64)>,
    order: BTreeMap<u64, SampleId>,
    clock: u64,
}

impl LruCore {
    /// An empty LRU with the given byte capacity.
    pub fn new(capacity: ByteSize) -> Self {
        LruCore {
            capacity,
            ..Default::default()
        }
    }

    /// Configured capacity.
    pub fn capacity(&self) -> ByteSize {
        self.capacity
    }

    /// Bytes currently cached.
    pub fn used(&self) -> ByteSize {
        self.used
    }

    /// Number of cached samples.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Whether `id` is cached (does not touch recency).
    pub fn contains(&self, id: SampleId) -> bool {
        self.items.contains_key(&id)
    }

    /// Mark `id` as most recently used. Returns true when it was cached.
    pub fn touch(&mut self, id: SampleId) -> bool {
        let clock = self.next_clock();
        match self.items.get_mut(&id) {
            Some((_, stamp)) => {
                self.order.remove(stamp);
                *stamp = clock;
                self.order.insert(clock, id);
                true
            }
            None => false,
        }
    }

    /// Insert `id` (touching it if already present), evicting
    /// least-recently-used entries to fit. Items larger than the whole
    /// capacity are not cached. Returns the evicted ids.
    pub fn insert(&mut self, id: SampleId, size: ByteSize) -> Vec<SampleId> {
        if self.touch(id) {
            return Vec::new();
        }
        if size > self.capacity {
            return Vec::new();
        }
        let mut evicted = Vec::new();
        while self.used + size > self.capacity {
            let (&stamp, &victim) = self.order.iter().next().expect("used > 0 implies entries");
            self.order.remove(&stamp);
            let (vsize, _) = self.items.remove(&victim).expect("order and items agree");
            self.used -= vsize;
            evicted.push(victim);
        }
        let clock = self.next_clock();
        self.items.insert(id, (size, clock));
        self.order.insert(clock, id);
        self.used += size;
        evicted
    }

    /// Iterate over cached ids from least to most recently used.
    pub fn iter_lru(&self) -> impl Iterator<Item = SampleId> + '_ {
        self.order.values().copied()
    }

    fn next_clock(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }
}

/// The paper's **Default** system: PyTorch with a user-level LRU cache in
/// front of remote storage. Every miss is fetched and inserted; eviction
/// is strictly by recency, which performs poorly under the random access
/// order of shuffled (or importance-sampled) training.
#[derive(Debug, Clone)]
pub struct LruCache {
    lru: LruCore,
    timings: BaselineTimings,
    stats: CacheStats,
    // lint: allow(determinism): keyed size lookup only, never iterated
    sizes: HashMap<SampleId, ByteSize>,
}

impl LruCache {
    /// An LRU cache of the given capacity with default timings.
    pub fn new(capacity: ByteSize) -> Self {
        Self::with_timings(capacity, BaselineTimings::default())
    }

    /// An LRU cache with explicit timing parameters.
    pub fn with_timings(capacity: ByteSize, timings: BaselineTimings) -> Self {
        LruCache {
            lru: LruCore::new(capacity),
            timings,
            stats: CacheStats::default(),
            sizes: HashMap::new(), // lint: allow(determinism): see field note
        }
    }
}

impl CacheSystem for LruCache {
    fn name(&self) -> &str {
        "lru"
    }

    fn fetch(
        &mut self,
        _job: JobId,
        id: SampleId,
        size: ByteSize,
        now: SimTime,
        storage: &mut dyn StorageBackend,
    ) -> Fetch {
        if self.lru.touch(id) {
            self.stats.h_hits += 1;
            self.stats.bytes_from_cache += size;
            return Fetch {
                ready_at: now + self.timings.hit_service(size),
                served_id: id,
                outcome: FetchOutcome::HitH,
            };
        }
        let done = storage.read_sample(id, size, now);
        self.stats.misses += 1;
        self.stats.bytes_from_storage += size;
        let evicted = self.lru.insert(id, size);
        self.stats.insertions += 1;
        self.stats.evictions += evicted.len() as u64;
        for v in evicted {
            self.sizes.remove(&v);
        }
        self.sizes.insert(id, size);
        Fetch {
            ready_at: done + self.timings.rpc_overhead,
            served_id: id,
            outcome: FetchOutcome::Miss,
        }
    }

    fn stats(&self) -> CacheStats {
        self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    fn used_bytes(&self) -> ByteSize {
        self.lru.used()
    }

    fn capacity(&self) -> ByteSize {
        self.lru.capacity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icache_storage::LocalTier;

    #[test]
    fn lru_core_evicts_least_recent_first() {
        let mut l = LruCore::new(ByteSize::new(30));
        l.insert(SampleId(1), ByteSize::new(10));
        l.insert(SampleId(2), ByteSize::new(10));
        l.insert(SampleId(3), ByteSize::new(10));
        assert!(l.touch(SampleId(1)), "1 becomes most recent");
        let evicted = l.insert(SampleId(4), ByteSize::new(10));
        assert_eq!(evicted, vec![SampleId(2)]);
        let order: Vec<u64> = l.iter_lru().map(|i| i.0).collect();
        assert_eq!(order, vec![3, 1, 4]);
    }

    #[test]
    fn lru_core_multi_eviction_for_large_items() {
        let mut l = LruCore::new(ByteSize::new(30));
        for i in 0..3 {
            l.insert(SampleId(i), ByteSize::new(10));
        }
        let evicted = l.insert(SampleId(9), ByteSize::new(25));
        assert_eq!(evicted, vec![SampleId(0), SampleId(1), SampleId(2)]);
        assert_eq!(l.len(), 1);
        assert_eq!(l.used(), ByteSize::new(25));
    }

    #[test]
    fn lru_core_rejects_oversized() {
        let mut l = LruCore::new(ByteSize::new(10));
        assert!(l.insert(SampleId(1), ByteSize::new(11)).is_empty());
        assert!(l.is_empty());
    }

    #[test]
    fn cache_miss_then_hit_timing() {
        let mut c = LruCache::new(ByteSize::mib(1));
        let mut st = LocalTier::nvme_ssd();
        let miss = c.fetch(
            JobId(0),
            SampleId(1),
            ByteSize::kib(3),
            SimTime::ZERO,
            &mut st,
        );
        assert_eq!(miss.outcome, FetchOutcome::Miss);
        let hit = c.fetch(
            JobId(0),
            SampleId(1),
            ByteSize::kib(3),
            miss.ready_at,
            &mut st,
        );
        assert_eq!(hit.outcome, FetchOutcome::HitH);
        assert!(
            hit.ready_at.saturating_since(miss.ready_at)
                < miss.ready_at.saturating_since(SimTime::ZERO),
            "hits are faster than misses"
        );
        assert_eq!(c.stats().requests(), 2);
        assert!((c.stats().hit_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn random_scan_larger_than_cache_mostly_misses() {
        // The pathology motivating the paper: shuffled access over a
        // dataset 5x the cache yields a poor LRU hit ratio.
        let mut c = LruCache::new(ByteSize::new(100 * 10));
        let mut st = LocalTier::tmpfs();
        let mut now = SimTime::ZERO;
        // two epochs of "shuffled" access over 500 samples of 10 bytes
        for epoch in 0..2u64 {
            for i in 0..500u64 {
                let id = SampleId((i * 7 + epoch * 13) % 500);
                let f = c.fetch(JobId(0), id, ByteSize::new(10), now, &mut st);
                now = f.ready_at;
            }
        }
        assert!(
            c.stats().hit_ratio() < 0.3,
            "hit ratio {}",
            c.stats().hit_ratio()
        );
    }
}
