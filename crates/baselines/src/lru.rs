//! The Default baseline: a user-level LRU cache.

use crate::BaselineTimings;
use icache_core::{CacheStats, CacheSystem, Fetch, FetchOutcome, IdSlab};
use icache_storage::StorageBackend;
use icache_types::{ByteSize, JobId, SampleId, SimTime};

/// One slab slot of the recency list: the entry's size plus its
/// intrusive prev/next links (`prev` is toward the LRU end).
#[derive(Debug, Clone, Copy)]
struct LruNode {
    size: ByteSize,
    prev: Option<SampleId>,
    next: Option<SampleId>,
}

/// A byte-capacity LRU map of samples, reusable by several baselines.
///
/// Recency is an intrusive doubly-linked list threaded through a dense
/// id-indexed slab ([`IdSlab`]): touch, insert, and evict are all `O(1)`
/// pointer splices — no recency clock, no ordered index — and eviction
/// order is fully deterministic (strict recency).
///
/// # Examples
///
/// ```
/// use icache_baselines::LruCore;
/// use icache_types::{ByteSize, SampleId};
///
/// let mut lru = LruCore::new(ByteSize::new(100));
/// lru.insert(SampleId(1), ByteSize::new(60));
/// lru.insert(SampleId(2), ByteSize::new(60)); // evicts #1
/// assert!(!lru.contains(SampleId(1)));
/// assert!(lru.contains(SampleId(2)));
/// ```
#[derive(Debug, Clone, Default)]
pub struct LruCore {
    capacity: ByteSize,
    used: ByteSize,
    nodes: IdSlab<LruNode>,
    /// Least-recently-used entry (the eviction end).
    head: Option<SampleId>,
    /// Most-recently-used entry.
    tail: Option<SampleId>,
}

impl LruCore {
    /// An empty LRU with the given byte capacity.
    pub fn new(capacity: ByteSize) -> Self {
        LruCore {
            capacity,
            ..Default::default()
        }
    }

    /// Splice `id` out of the recency list (it must be resident).
    fn unlink(&mut self, id: SampleId) {
        let node = *self.nodes.get(id).expect("unlink of non-resident id");
        match node.prev {
            Some(p) => self.nodes.get_mut(p).expect("linked prev exists").next = node.next,
            None => self.head = node.next,
        }
        match node.next {
            Some(n) => self.nodes.get_mut(n).expect("linked next exists").prev = node.prev,
            None => self.tail = node.prev,
        }
    }

    /// Append `id` at the most-recently-used end (links must be clear).
    fn link_mru(&mut self, id: SampleId) {
        let old_tail = self.tail;
        {
            let node = self.nodes.get_mut(id).expect("link of non-resident id");
            node.prev = old_tail;
            node.next = None;
        }
        match old_tail {
            Some(t) => self.nodes.get_mut(t).expect("tail exists").next = Some(id),
            None => self.head = Some(id),
        }
        self.tail = Some(id);
    }

    /// Configured capacity.
    pub fn capacity(&self) -> ByteSize {
        self.capacity
    }

    /// Bytes currently cached.
    pub fn used(&self) -> ByteSize {
        self.used
    }

    /// Number of cached samples.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Whether `id` is cached (does not touch recency).
    pub fn contains(&self, id: SampleId) -> bool {
        self.nodes.contains_key(id)
    }

    /// Mark `id` as most recently used. Returns true when it was cached.
    pub fn touch(&mut self, id: SampleId) -> bool {
        if !self.nodes.contains_key(id) {
            return false;
        }
        if self.tail != Some(id) {
            self.unlink(id);
            self.link_mru(id);
        }
        true
    }

    /// Insert `id` (touching it if already present), evicting
    /// least-recently-used entries to fit. Items larger than the whole
    /// capacity are not cached. Returns the evicted ids.
    pub fn insert(&mut self, id: SampleId, size: ByteSize) -> Vec<SampleId> {
        if self.touch(id) {
            return Vec::new();
        }
        if size > self.capacity {
            return Vec::new();
        }
        let mut evicted = Vec::new();
        while self.used + size > self.capacity {
            let victim = self.head.expect("used > 0 implies entries");
            self.unlink(victim);
            let node = self.nodes.remove(victim).expect("head is resident");
            self.used -= node.size;
            evicted.push(victim);
        }
        self.nodes.insert(
            id,
            LruNode {
                size,
                prev: None,
                next: None,
            },
        );
        self.link_mru(id);
        self.used += size;
        evicted
    }

    /// Iterate over cached ids from least to most recently used.
    pub fn iter_lru(&self) -> impl Iterator<Item = SampleId> + '_ {
        std::iter::successors(self.head, move |&id| {
            self.nodes.get(id).and_then(|n| n.next)
        })
    }
}

/// The paper's **Default** system: PyTorch with a user-level LRU cache in
/// front of remote storage. Every miss is fetched and inserted; eviction
/// is strictly by recency, which performs poorly under the random access
/// order of shuffled (or importance-sampled) training.
#[derive(Debug, Clone)]
pub struct LruCache {
    lru: LruCore,
    timings: BaselineTimings,
    stats: CacheStats,
    sizes: IdSlab<ByteSize>,
}

impl LruCache {
    /// An LRU cache of the given capacity with default timings.
    pub fn new(capacity: ByteSize) -> Self {
        Self::with_timings(capacity, BaselineTimings::default())
    }

    /// An LRU cache with explicit timing parameters.
    pub fn with_timings(capacity: ByteSize, timings: BaselineTimings) -> Self {
        LruCache {
            lru: LruCore::new(capacity),
            timings,
            stats: CacheStats::default(),
            sizes: IdSlab::new(),
        }
    }
}

impl CacheSystem for LruCache {
    fn name(&self) -> &str {
        "lru"
    }

    fn fetch(
        &mut self,
        _job: JobId,
        id: SampleId,
        size: ByteSize,
        now: SimTime,
        storage: &mut dyn StorageBackend,
    ) -> Fetch {
        if self.lru.touch(id) {
            self.stats.h_hits += 1;
            self.stats.bytes_from_cache += size;
            return Fetch {
                ready_at: now + self.timings.hit_service(size),
                served_id: id,
                outcome: FetchOutcome::HitH,
            };
        }
        let done = storage.read_sample(id, size, now);
        self.stats.misses += 1;
        self.stats.bytes_from_storage += size;
        let evicted = self.lru.insert(id, size);
        self.stats.insertions += 1;
        self.stats.evictions += evicted.len() as u64;
        for v in evicted {
            self.sizes.remove(v);
        }
        self.sizes.insert(id, size);
        Fetch {
            ready_at: done + self.timings.rpc_overhead,
            served_id: id,
            outcome: FetchOutcome::Miss,
        }
    }

    fn stats(&self) -> CacheStats {
        self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    fn used_bytes(&self) -> ByteSize {
        self.lru.used()
    }

    fn capacity(&self) -> ByteSize {
        self.lru.capacity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icache_storage::LocalTier;

    #[test]
    fn lru_core_evicts_least_recent_first() {
        let mut l = LruCore::new(ByteSize::new(30));
        l.insert(SampleId(1), ByteSize::new(10));
        l.insert(SampleId(2), ByteSize::new(10));
        l.insert(SampleId(3), ByteSize::new(10));
        assert!(l.touch(SampleId(1)), "1 becomes most recent");
        let evicted = l.insert(SampleId(4), ByteSize::new(10));
        assert_eq!(evicted, vec![SampleId(2)]);
        let order: Vec<u64> = l.iter_lru().map(|i| i.0).collect();
        assert_eq!(order, vec![3, 1, 4]);
    }

    #[test]
    fn lru_core_multi_eviction_for_large_items() {
        let mut l = LruCore::new(ByteSize::new(30));
        for i in 0..3 {
            l.insert(SampleId(i), ByteSize::new(10));
        }
        let evicted = l.insert(SampleId(9), ByteSize::new(25));
        assert_eq!(evicted, vec![SampleId(0), SampleId(1), SampleId(2)]);
        assert_eq!(l.len(), 1);
        assert_eq!(l.used(), ByteSize::new(25));
    }

    #[test]
    fn lru_core_rejects_oversized() {
        let mut l = LruCore::new(ByteSize::new(10));
        assert!(l.insert(SampleId(1), ByteSize::new(11)).is_empty());
        assert!(l.is_empty());
    }

    #[test]
    fn cache_miss_then_hit_timing() {
        let mut c = LruCache::new(ByteSize::mib(1));
        let mut st = LocalTier::nvme_ssd();
        let miss = c.fetch(
            JobId(0),
            SampleId(1),
            ByteSize::kib(3),
            SimTime::ZERO,
            &mut st,
        );
        assert_eq!(miss.outcome, FetchOutcome::Miss);
        let hit = c.fetch(
            JobId(0),
            SampleId(1),
            ByteSize::kib(3),
            miss.ready_at,
            &mut st,
        );
        assert_eq!(hit.outcome, FetchOutcome::HitH);
        assert!(
            hit.ready_at.saturating_since(miss.ready_at)
                < miss.ready_at.saturating_since(SimTime::ZERO),
            "hits are faster than misses"
        );
        assert_eq!(c.stats().requests(), 2);
        assert!((c.stats().hit_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn random_scan_larger_than_cache_mostly_misses() {
        // The pathology motivating the paper: shuffled access over a
        // dataset 5x the cache yields a poor LRU hit ratio.
        let mut c = LruCache::new(ByteSize::new(100 * 10));
        let mut st = LocalTier::tmpfs();
        let mut now = SimTime::ZERO;
        // two epochs of "shuffled" access over 500 samples of 10 bytes
        for epoch in 0..2u64 {
            for i in 0..500u64 {
                let id = SampleId((i * 7 + epoch * 13) % 500);
                let f = c.fetch(JobId(0), id, ByteSize::new(10), now, &mut st);
                now = f.ready_at;
            }
        }
        assert!(
            c.stats().hit_ratio() < 0.3,
            "hit ratio {}",
            c.stats().hit_ratio()
        );
    }
}
