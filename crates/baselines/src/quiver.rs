//! The Quiver baseline: substitutability for any sample.

use crate::BaselineTimings;
use icache_core::{
    CacheStats, CacheSystem, Fetch, FetchOutcome, LCache, LCacheConfig, LFetch, Packager,
};
use icache_storage::StorageBackend;
use icache_types::{ByteSize, Dataset, Epoch, JobId, Result, SampleId, SimTime};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The Quiver cache (§II-C, §V-A): exploits the *substitutability* of DNN
/// training data — a missed read can be served by any cached sample that
/// has not been used this epoch — and fetches data in large chunks.
///
/// Crucially, Quiver applies substitution to **every** sample, including
/// high-importance ones; under importance sampling this skews the trained
/// distribution and costs accuracy, which is exactly the weakness iCache's
/// H/L split fixes.
///
/// Internally this reuses the chunk/substitution machinery of
/// [`icache_core::LCache`] with the *whole* cache as one region and the
/// whole dataset as the packing pool.
#[derive(Debug)]
pub struct QuiverCache {
    cache: LCache,
    packager: Packager,
    dataset: Dataset,
    pool: Vec<SampleId>,
    /// Scratch request list for the batched background fetch (reused
    /// across package builds to avoid a per-build allocation).
    read_buf: Vec<(SampleId, ByteSize)>,
    loader_busy: SimTime,
    chunk_size: ByteSize,
    timings: BaselineTimings,
    stats: CacheStats,
    rng: StdRng,
}

impl QuiverCache {
    /// A Quiver cache over `dataset` with the given capacity and 1 MiB
    /// chunks.
    ///
    /// # Errors
    ///
    /// Returns [`icache_types::Error::InvalidConfig`] when the chunk size
    /// degenerates to zero.
    pub fn new(dataset: &Dataset, capacity: ByteSize, seed: u64) -> Result<Self> {
        let chunk_size = ByteSize::mib(1).min(capacity / 2).max(ByteSize::new(1));
        Ok(QuiverCache {
            cache: LCache::new(LCacheConfig {
                capacity,
                num_samples: dataset.len(),
            }),
            packager: Packager::new(chunk_size, seed ^ 0x0417)?,
            dataset: dataset.clone(),
            pool: dataset.ids().collect(),
            read_buf: Vec::new(),
            loader_busy: SimTime::ZERO,
            chunk_size,
            timings: BaselineTimings::default(),
            stats: CacheStats::default(),
            rng: StdRng::seed_from_u64(seed),
        })
    }

    fn maybe_trigger_load(&mut self, now: SimTime, storage: &mut dyn StorageBackend) {
        // Only issue background reads once virtual time has caught up with
        // the fetcher — future-dated submissions would jump the storage
        // queues past in-flight demand reads.
        if !self.cache.wants_load() || now < self.loader_busy {
            return;
        }
        let missed = self.cache.take_missed(4 * 1024);
        let sizes = |id: SampleId| self.dataset.sample_size(id);
        let pkg = self
            .packager
            .build_with_target(&missed, &self.pool, sizes, self.chunk_size);
        if pkg.is_empty() {
            return;
        }
        // Quiver's background fetcher still reads individual sample files
        // (the dataset sits in ImageFolder layout on the PFS); the chunk is
        // only the unit of hand-off to the cache. This is why the paper
        // measures a modest ~1.2x I/O gain for Quiver: volume is unchanged,
        // only stalls are hidden by substitution.
        self.read_buf.clear();
        self.read_buf
            .extend(pkg.samples().iter().map(|s| (s.id(), s.size())));
        let ready = storage.read_samples(&self.read_buf, now);
        self.loader_busy = ready;
        self.cache.install_package(pkg, ready);
    }
}

impl CacheSystem for QuiverCache {
    fn name(&self) -> &str {
        "quiver"
    }

    fn fetch(
        &mut self,
        _job: JobId,
        id: SampleId,
        size: ByteSize,
        now: SimTime,
        storage: &mut dyn StorageBackend,
    ) -> Fetch {
        self.cache.integrate(now);
        let fetch = match self.cache.lookup(id, &mut self.rng) {
            LFetch::Hit => {
                self.stats.h_hits += 1;
                self.stats.bytes_from_cache += size;
                Fetch {
                    ready_at: now + self.timings.hit_service(size),
                    served_id: id,
                    outcome: FetchOutcome::HitH,
                }
            }
            LFetch::Substitute(sub) => {
                self.stats.substitutions += 1;
                let sub_size = self.dataset.sample_size(sub);
                self.stats.bytes_from_cache += sub_size;
                Fetch {
                    ready_at: now + self.timings.hit_service(sub_size),
                    served_id: sub,
                    // Quiver substitutes blindly; the simulator classifies
                    // whether `sub` was an H-sample for accuracy purposes.
                    outcome: FetchOutcome::Substituted {
                        by: sub,
                        from_h: false,
                    },
                }
            }
            LFetch::Empty => {
                let done = storage.read_sample(id, size, now);
                self.stats.misses += 1;
                self.stats.bytes_from_storage += size;
                Fetch {
                    ready_at: done + self.timings.rpc_overhead,
                    served_id: id,
                    outcome: FetchOutcome::Miss,
                }
            }
        };
        self.maybe_trigger_load(now, storage);
        fetch
    }

    fn on_epoch_start(&mut self, _job: JobId, _epoch: Epoch) {
        self.cache.on_epoch_start();
    }

    fn stats(&self) -> CacheStats {
        self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    fn used_bytes(&self) -> ByteSize {
        self.cache.used()
    }

    fn capacity(&self) -> ByteSize {
        self.cache.capacity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icache_storage::{LocalTier, Pfs, PfsConfig};
    use icache_types::{DatasetBuilder, SizeModel};

    fn dataset() -> Dataset {
        DatasetBuilder::new("q", 2_000)
            .size_model(SizeModel::Fixed(ByteSize::kib(3)))
            .build()
            .unwrap()
    }

    #[test]
    fn substitution_hides_misses_once_chunks_land() {
        let ds = dataset();
        let mut q = QuiverCache::new(&ds, ds.total_bytes().scaled(0.2), 1).unwrap();
        let mut st = LocalTier::tmpfs();
        q.on_epoch_start(JobId(0), Epoch(0));
        let mut now = SimTime::ZERO;
        let mut from_cache = 0;
        for i in 0..400u64 {
            let f = q.fetch(
                JobId(0),
                SampleId(i * 5 % 2000),
                ds.sample_size(SampleId(0)),
                now,
                &mut st,
            );
            now = f.ready_at;
            if f.outcome.served_from_cache() {
                from_cache += 1;
            }
        }
        assert!(from_cache > 200, "only {from_cache} served from cache");
    }

    #[test]
    fn io_volume_is_not_reduced_only_stalls_are_hidden() {
        // Quiver hides stalls via substitution but its background fetcher
        // still reads sample files one by one — total I/O volume stays
        // proportional to consumption (the paper's ~1.2x I/O observation).
        let ds = dataset();
        let mut q = QuiverCache::new(&ds, ds.total_bytes().scaled(0.2), 1).unwrap();
        let mut st = Pfs::new(PfsConfig::orangefs_default()).unwrap();
        q.on_epoch_start(JobId(0), Epoch(0));
        let mut now = SimTime::ZERO;
        for i in 0..1000u64 {
            let f = q.fetch(
                JobId(0),
                SampleId(i),
                ds.sample_size(SampleId(i)),
                now,
                &mut st,
            );
            now = f.ready_at;
        }
        let s = st.stats();
        assert_eq!(s.package_reads, 0, "no chunked storage layout");
        assert!(
            s.sample_reads >= 500,
            "background fetcher must keep reading samples, got {}",
            s.sample_reads
        );
    }

    #[test]
    fn substituted_samples_do_not_repeat_within_epoch() {
        let ds = dataset();
        let mut q = QuiverCache::new(&ds, ds.total_bytes().scaled(0.1), 2).unwrap();
        let mut st = LocalTier::tmpfs();
        q.on_epoch_start(JobId(0), Epoch(0));
        let mut now = SimTime::ZERO;
        let mut served = Vec::new();
        for i in 0..1500u64 {
            let f = q.fetch(
                JobId(0),
                SampleId(i),
                ds.sample_size(SampleId(i)),
                now,
                &mut st,
            );
            now = f.ready_at;
            if let FetchOutcome::Substituted { by, .. } = f.outcome {
                served.push(by);
            }
        }
        let unique: std::collections::HashSet<_> = served.iter().collect();
        assert_eq!(
            unique.len(),
            served.len(),
            "no repeated substitutes in one epoch"
        );
    }
}
