//! Shared service-time model for the baseline caches.

use icache_types::{ByteSize, SimDuration};

/// Client↔cache service-time parameters, identical to the iCache manager's
/// defaults so time comparisons isolate *policy* differences, not plumbing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BaselineTimings {
    /// Cost of one client↔server round trip.
    pub rpc_overhead: SimDuration,
    /// DRAM copy bandwidth for serving hits, bytes/second.
    pub dram_bandwidth: f64,
}

impl Default for BaselineTimings {
    fn default() -> Self {
        BaselineTimings {
            rpc_overhead: SimDuration::from_micros(50),
            dram_bandwidth: 10.0e9,
        }
    }
}

impl BaselineTimings {
    /// Service time of a cache hit of `size` bytes.
    pub fn hit_service(&self, size: ByteSize) -> SimDuration {
        self.rpc_overhead + SimDuration::from_secs_f64(size.as_f64() / self.dram_bandwidth)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_service_scales_with_size() {
        let t = BaselineTimings::default();
        let small = t.hit_service(ByteSize::kib(3));
        let large = t.hit_service(ByteSize::mib(3));
        assert!(large > small);
        assert!(small >= t.rpc_overhead);
    }
}
