//! Baseline cache systems from the iCache evaluation (§V-A).
//!
//! Every system implements [`icache_core::CacheSystem`], so the training
//! simulator can drive them interchangeably with the real
//! [`icache_core::IcacheManager`]:
//!
//! * [`LruCache`] — **Default**: PyTorch with a user-level LRU cache. The
//!   paper's *Base* variant is this cache plus the CIS selector, which is
//!   a simulator configuration, not a different cache.
//! * [`MinIoCache`] — **CoorDL**'s MinIO cache: items are inserted until
//!   the cache fills and are then never evicted (avoids thrashing but has
//!   no room for late-arriving H-samples).
//! * [`QuiverCache`] — **Quiver**: LRU management plus substitutability
//!   for *any* missed sample, including high-importance ones (the source
//!   of its accuracy loss under importance sampling).
//! * [`IlfuCache`] — **iLFU**: the paper's ablation baseline combining IIS
//!   with an LFU cache; LFU reacts slowly to importance drift.
//! * [`OracleSource`] — **Oracle**: the whole dataset in local DRAM, the
//!   lower bound on I/O time.
//!
//! # Examples
//!
//! ```
//! use icache_baselines::LruCache;
//! use icache_core::CacheSystem;
//! use icache_storage::{LocalTier, StorageBackend};
//! use icache_types::{ByteSize, JobId, SampleId, SimTime};
//!
//! let mut cache = LruCache::new(ByteSize::mib(1));
//! let mut storage = LocalTier::tmpfs();
//! let miss = cache.fetch(JobId(0), SampleId(1), ByteSize::kib(3), SimTime::ZERO, &mut storage);
//! let hit = cache.fetch(JobId(0), SampleId(1), ByteSize::kib(3), miss.ready_at, &mut storage);
//! assert!(hit.outcome.served_from_cache());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ilfu;
mod lru;
mod minio;
mod oracle;
mod quiver;
mod timing;

pub use ilfu::IlfuCache;
pub use lru::{LruCache, LruCore};
pub use minio::MinIoCache;
pub use oracle::OracleSource;
pub use quiver::QuiverCache;
pub use timing::BaselineTimings;
