//! The iLFU baseline: IIS plus an LFU cache.

use crate::BaselineTimings;
use icache_core::{CacheStats, CacheSystem, Fetch, FetchOutcome};
use icache_storage::StorageBackend;
use icache_types::{ByteSize, JobId, SampleId, SimTime};
use std::collections::{BTreeSet, HashMap};

/// The paper's **iLFU** baseline (§V-A): I/O-oriented importance sampling
/// combined with a frequency-based (LFU) cache. Because H-samples are
/// fetched more often, frequency is a *proxy* for importance — but a
/// reactive one: when importance drifts, LFU keeps yesterday's hot
/// samples until their counts are overtaken, so its hit ratio trails the
/// importance-informed H-cache (Fig. 9's 1.4× vs iCache's 2.4×).
///
/// Frequency history survives eviction, as in classic LFU-with-history
/// designs, so re-admitted samples resume their counts.
///
/// # Examples
///
/// ```
/// use icache_baselines::IlfuCache;
/// use icache_core::CacheSystem;
/// use icache_storage::LocalTier;
/// use icache_types::{ByteSize, JobId, SampleId, SimTime};
///
/// let mut c = IlfuCache::new(ByteSize::new(8192));
/// let mut st = LocalTier::tmpfs();
/// let f = c.fetch(JobId(0), SampleId(0), ByteSize::new(4096), SimTime::ZERO, &mut st);
/// assert!(!f.outcome.served_from_cache());
/// ```
#[derive(Debug, Clone)]
pub struct IlfuCache {
    capacity: ByteSize,
    used: ByteSize,
    // lint: allow(determinism): keyed lookup only; victim selection
    // iterates the `order` BTreeSet, never these maps
    items: HashMap<SampleId, ByteSize>,
    /// Access counts, including for currently-evicted samples.
    // lint: allow(determinism): keyed lookup only, see `items` note
    freq: HashMap<SampleId, u64>,
    /// Cached items ordered by (frequency, id) — the front is the victim.
    order: BTreeSet<(u64, SampleId)>,
    timings: BaselineTimings,
    stats: CacheStats,
}

impl IlfuCache {
    /// An LFU cache of the given capacity with default timings.
    pub fn new(capacity: ByteSize) -> Self {
        Self::with_timings(capacity, BaselineTimings::default())
    }

    /// An LFU cache with explicit timing parameters.
    pub fn with_timings(capacity: ByteSize, timings: BaselineTimings) -> Self {
        IlfuCache {
            capacity,
            used: ByteSize::ZERO,
            items: HashMap::new(), // lint: allow(determinism): see field note
            freq: HashMap::new(),  // lint: allow(determinism): see field note
            order: BTreeSet::new(),
            timings,
            stats: CacheStats::default(),
        }
    }

    /// Whether `id` is cached.
    pub fn contains(&self, id: SampleId) -> bool {
        self.items.contains_key(&id)
    }

    /// The recorded access count of `id` (survives eviction).
    pub fn frequency(&self, id: SampleId) -> u64 {
        self.freq.get(&id).copied().unwrap_or(0)
    }

    fn bump(&mut self, id: SampleId) -> u64 {
        let f = self.freq.entry(id).or_insert(0);
        let old = *f;
        *f += 1;
        if self.items.contains_key(&id) {
            self.order.remove(&(old, id));
            self.order.insert((old + 1, id));
        }
        old + 1
    }

    /// Try to admit `id`; evicts strictly-lower-frequency victims, or
    /// rejects without side effects when impossible.
    fn admit(&mut self, id: SampleId, size: ByteSize, incoming_freq: u64) {
        if size > self.capacity {
            self.stats.rejections += 1;
            return;
        }
        if self.used + size <= self.capacity {
            self.insert_unchecked(id, size, incoming_freq);
            self.stats.insertions += 1;
            return;
        }
        // Feasibility scan over ascending (freq, id).
        let mut victims = Vec::new();
        let mut freed = ByteSize::ZERO;
        for &(f, vid) in self.order.iter() {
            if self.used.saturating_sub(freed) + size <= self.capacity {
                break;
            }
            if f >= incoming_freq {
                self.stats.rejections += 1;
                return; // victim at least as hot: reject
            }
            freed += self.items[&vid];
            victims.push((f, vid));
        }
        if self.used.saturating_sub(freed) + size > self.capacity {
            self.stats.rejections += 1;
            return;
        }
        for (f, vid) in victims {
            self.order.remove(&(f, vid));
            let vsize = self.items.remove(&vid).expect("victim cached");
            self.used -= vsize;
            self.stats.evictions += 1;
        }
        self.insert_unchecked(id, size, incoming_freq);
        self.stats.insertions += 1;
    }

    fn insert_unchecked(&mut self, id: SampleId, size: ByteSize, f: u64) {
        self.items.insert(id, size);
        self.order.insert((f, id));
        self.used += size;
    }
}

impl CacheSystem for IlfuCache {
    fn name(&self) -> &str {
        "ilfu"
    }

    fn fetch(
        &mut self,
        _job: JobId,
        id: SampleId,
        size: ByteSize,
        now: SimTime,
        storage: &mut dyn StorageBackend,
    ) -> Fetch {
        let new_freq = self.bump(id);
        if self.items.contains_key(&id) {
            self.stats.h_hits += 1;
            self.stats.bytes_from_cache += size;
            return Fetch {
                ready_at: now + self.timings.hit_service(size),
                served_id: id,
                outcome: FetchOutcome::HitH,
            };
        }
        let done = storage.read_sample(id, size, now);
        self.stats.misses += 1;
        self.stats.bytes_from_storage += size;
        self.admit(id, size, new_freq);
        Fetch {
            ready_at: done + self.timings.rpc_overhead,
            served_id: id,
            outcome: FetchOutcome::Miss,
        }
    }

    fn stats(&self) -> CacheStats {
        self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    fn used_bytes(&self) -> ByteSize {
        self.used
    }

    fn capacity(&self) -> ByteSize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icache_storage::LocalTier;

    fn fetch(c: &mut IlfuCache, st: &mut LocalTier, id: u64, now: SimTime) -> Fetch {
        c.fetch(JobId(0), SampleId(id), ByteSize::new(10), now, st)
    }

    #[test]
    fn frequent_samples_displace_rare_ones() {
        let mut c = IlfuCache::new(ByteSize::new(20));
        let mut st = LocalTier::tmpfs();
        let mut now = SimTime::ZERO;
        // Samples 1 and 2 fill the cache with freq 1 each.
        now = fetch(&mut c, &mut st, 1, now).ready_at;
        now = fetch(&mut c, &mut st, 2, now).ready_at;
        // Sample 3 accessed 3 times: first two misses rejected (freq ties),
        // third has freq 3 > 1 and displaces a victim.
        now = fetch(&mut c, &mut st, 3, now).ready_at;
        assert!(!c.contains(SampleId(3)), "freq 1 does not beat freq 1");
        now = fetch(&mut c, &mut st, 3, now).ready_at;
        now = fetch(&mut c, &mut st, 3, now).ready_at;
        let _ = now;
        assert!(c.contains(SampleId(3)), "freq 3 displaces freq 1");
        assert_eq!(c.frequency(SampleId(3)), 3);
    }

    #[test]
    fn hits_bump_frequency() {
        let mut c = IlfuCache::new(ByteSize::new(20));
        let mut st = LocalTier::tmpfs();
        let mut now = SimTime::ZERO;
        now = fetch(&mut c, &mut st, 1, now).ready_at;
        let hit = fetch(&mut c, &mut st, 1, now);
        assert_eq!(hit.outcome, FetchOutcome::HitH);
        assert_eq!(c.frequency(SampleId(1)), 2);
    }

    #[test]
    fn eviction_is_reactive_not_predictive() {
        // The paper's point about iLFU: a sample that WAS hot stays cached
        // even after it stops being accessed, until newcomers out-count it.
        let mut c = IlfuCache::new(ByteSize::new(10));
        let mut st = LocalTier::tmpfs();
        let mut now = SimTime::ZERO;
        for _ in 0..5 {
            now = fetch(&mut c, &mut st, 1, now).ready_at; // freq 5
        }
        // A newly-hot sample needs SIX accesses to displace it.
        for k in 1..=5 {
            now = fetch(&mut c, &mut st, 2, now).ready_at;
            let _ = k;
            assert!(
                c.contains(SampleId(1)),
                "stale-hot sample survives access {k}"
            );
        }
        now = fetch(&mut c, &mut st, 2, now).ready_at;
        let _ = now;
        assert!(c.contains(SampleId(2)));
        assert!(!c.contains(SampleId(1)));
    }

    #[test]
    fn capacity_accounting_holds() {
        let mut c = IlfuCache::new(ByteSize::new(55));
        let mut st = LocalTier::tmpfs();
        let mut now = SimTime::ZERO;
        for i in 0..50u64 {
            now = fetch(&mut c, &mut st, i % 13, now).ready_at;
            assert!(c.used_bytes() <= c.capacity());
        }
    }
}
