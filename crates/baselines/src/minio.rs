//! The CoorDL baseline: the MinIO no-eviction cache.

use crate::BaselineTimings;
use icache_core::{CacheStats, CacheSystem, Fetch, FetchOutcome};
use icache_storage::StorageBackend;
use icache_types::{ByteSize, JobId, SampleId, SimTime};
use std::collections::HashMap;

/// CoorDL's MinIO cache (§II-C): samples are inserted until the cache is
/// full and are then **never evicted**. This eliminates thrashing — every
/// cached sample is hit exactly once per conventional epoch — but the
/// cached set is frozen at whatever arrived first, so late-identified
/// H-samples can never enter.
///
/// # Examples
///
/// ```
/// use icache_baselines::MinIoCache;
/// use icache_core::CacheSystem;
/// use icache_storage::LocalTier;
/// use icache_types::{ByteSize, JobId, SampleId, SimTime};
///
/// let mut c = MinIoCache::new(ByteSize::new(4096));
/// let mut st = LocalTier::tmpfs();
/// let f1 = c.fetch(JobId(0), SampleId(1), ByteSize::new(4096), SimTime::ZERO, &mut st);
/// // Full: sample 2 is served from storage and NOT admitted.
/// let f2 = c.fetch(JobId(0), SampleId(2), ByteSize::new(100), f1.ready_at, &mut st);
/// let f3 = c.fetch(JobId(0), SampleId(2), ByteSize::new(100), f2.ready_at, &mut st);
/// assert!(!f3.outcome.served_from_cache(), "no eviction, no admission");
/// ```
#[derive(Debug, Clone)]
pub struct MinIoCache {
    capacity: ByteSize,
    used: ByteSize,
    // lint: allow(determinism): membership test only — MinIO admission
    // never evicts, so the map is never iterated
    items: HashMap<SampleId, ByteSize>,
    timings: BaselineTimings,
    stats: CacheStats,
}

impl MinIoCache {
    /// A MinIO cache of the given capacity with default timings.
    pub fn new(capacity: ByteSize) -> Self {
        Self::with_timings(capacity, BaselineTimings::default())
    }

    /// A MinIO cache with explicit timing parameters.
    pub fn with_timings(capacity: ByteSize, timings: BaselineTimings) -> Self {
        MinIoCache {
            capacity,
            used: ByteSize::ZERO,
            items: HashMap::new(), // lint: allow(determinism): see field note
            timings,
            stats: CacheStats::default(),
        }
    }

    /// Whether `id` is cached.
    pub fn contains(&self, id: SampleId) -> bool {
        self.items.contains_key(&id)
    }
}

impl CacheSystem for MinIoCache {
    fn name(&self) -> &str {
        "coordl"
    }

    fn fetch(
        &mut self,
        _job: JobId,
        id: SampleId,
        size: ByteSize,
        now: SimTime,
        storage: &mut dyn StorageBackend,
    ) -> Fetch {
        if self.items.contains_key(&id) {
            self.stats.h_hits += 1;
            self.stats.bytes_from_cache += size;
            return Fetch {
                ready_at: now + self.timings.hit_service(size),
                served_id: id,
                outcome: FetchOutcome::HitH,
            };
        }
        let done = storage.read_sample(id, size, now);
        self.stats.misses += 1;
        self.stats.bytes_from_storage += size;
        if self.used + size <= self.capacity {
            self.items.insert(id, size);
            self.used += size;
            self.stats.insertions += 1;
        } else {
            self.stats.rejections += 1;
        }
        Fetch {
            ready_at: done + self.timings.rpc_overhead,
            served_id: id,
            outcome: FetchOutcome::Miss,
        }
    }

    fn stats(&self) -> CacheStats {
        self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    fn used_bytes(&self) -> ByteSize {
        self.used
    }

    fn capacity(&self) -> ByteSize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icache_storage::LocalTier;

    #[test]
    fn first_comers_stay_forever() {
        let mut c = MinIoCache::new(ByteSize::new(20));
        let mut st = LocalTier::tmpfs();
        let mut now = SimTime::ZERO;
        // Fill with samples 0 and 1.
        for i in 0..2u64 {
            let f = c.fetch(JobId(0), SampleId(i), ByteSize::new(10), now, &mut st);
            now = f.ready_at;
        }
        // Hammer sample 2: never admitted.
        for _ in 0..5 {
            let f = c.fetch(JobId(0), SampleId(2), ByteSize::new(10), now, &mut st);
            assert_eq!(f.outcome, FetchOutcome::Miss);
            now = f.ready_at;
        }
        // Early samples still hit.
        let f = c.fetch(JobId(0), SampleId(0), ByteSize::new(10), now, &mut st);
        assert_eq!(f.outcome, FetchOutcome::HitH);
        assert_eq!(c.stats().evictions, 0, "MinIO never evicts");
        assert_eq!(c.stats().rejections, 5);
    }

    #[test]
    fn hit_ratio_equals_capacity_fraction_under_uniform_epochs() {
        // CoorDL's known property: hit ratio ~= cache/dataset under
        // once-per-epoch access.
        let mut c = MinIoCache::new(ByteSize::new(10 * 20)); // 20 of 100 samples
        let mut st = LocalTier::tmpfs();
        let mut now = SimTime::ZERO;
        // Warm epoch.
        for i in 0..100u64 {
            let f = c.fetch(JobId(0), SampleId(i), ByteSize::new(10), now, &mut st);
            now = f.ready_at;
        }
        c.reset_stats();
        // Measured epoch.
        for i in 0..100u64 {
            let f = c.fetch(JobId(0), SampleId(i), ByteSize::new(10), now, &mut st);
            now = f.ready_at;
        }
        assert!((c.stats().hit_ratio() - 0.2).abs() < 1e-9);
    }
}
