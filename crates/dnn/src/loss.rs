//! Per-sample loss dynamics.

use icache_types::{splitmix64, SampleId};

/// Parameters of the loss-dynamics model.
///
/// The model follows the empirical behaviour that motivates loss-based
/// importance sampling \[18\] and the paper's Figure 3:
///
/// * every sample has an intrinsic *difficulty* (log-normal across the
///   dataset) — hard samples keep high losses for many epochs;
/// * losses decay globally as the model matures, and per-sample as a
///   sample is trained repeatedly;
/// * individual observations carry multiplicative noise, so a sample's
///   importance value drifts between selections.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LossModelConfig {
    /// Initial mean loss (≈ ln(num_classes) for cross-entropy).
    pub base_loss: f64,
    /// Log-normal sigma of per-sample difficulty.
    pub difficulty_sigma: f64,
    /// Loss decay per global effective epoch.
    pub global_decay: f64,
    /// Additional decay per time a specific sample is trained.
    pub personal_decay: f64,
    /// Log-normal sigma of per-observation noise.
    pub noise_sigma: f64,
    /// Loss floor that training never crosses.
    pub floor: f64,
}

impl Default for LossModelConfig {
    fn default() -> Self {
        LossModelConfig {
            base_loss: 2.3,
            difficulty_sigma: 0.6,
            global_decay: 0.045,
            personal_decay: 0.015,
            noise_sigma: 0.25,
            floor: 0.02,
        }
    }
}

/// Deterministic standard normal from a hash (Box–Muller).
fn hash_normal(h: u64) -> f64 {
    let h2 = splitmix64(h);
    let u1 = ((h >> 11) as f64 + 0.5) / (1u64 << 53) as f64;
    let u2 = ((h2 >> 11) as f64 + 0.5) / (1u64 << 53) as f64;
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// The loss-dynamics model: produces the training loss observed each time
/// a sample passes through the GPU.
///
/// # Examples
///
/// ```
/// use icache_dnn::LossModel;
/// use icache_types::SampleId;
///
/// let mut lm = LossModel::new(1_000, Default::default(), 42);
/// let first = lm.observe(SampleId(7));
/// // Train the same sample many times; its loss trends down.
/// let late = (0..200).map(|_| lm.observe(SampleId(7))).last().unwrap();
/// assert!(late < first);
/// ```
#[derive(Debug, Clone)]
pub struct LossModel {
    config: LossModelConfig,
    difficulty: Vec<f64>,
    train_counts: Vec<u32>,
    total_observations: u64,
    num_samples: u64,
    seed: u64,
}

impl LossModel {
    /// Build a model for `num_samples` samples.
    pub fn new(num_samples: u64, config: LossModelConfig, seed: u64) -> Self {
        let difficulty = (0..num_samples)
            .map(|i| {
                let z = hash_normal(splitmix64(seed ^ splitmix64(i)));
                (config.difficulty_sigma * z).exp()
            })
            .collect();
        LossModel {
            config,
            difficulty,
            train_counts: vec![0; num_samples as usize],
            total_observations: 0,
            num_samples,
            seed,
        }
    }

    /// Number of samples the model tracks.
    pub fn len(&self) -> u64 {
        self.num_samples
    }

    /// True when the model tracks no samples.
    pub fn is_empty(&self) -> bool {
        self.num_samples == 0
    }

    /// Intrinsic difficulty of `id` (unitless, mean ≈ 1).
    pub fn difficulty(&self, id: SampleId) -> f64 {
        self.difficulty[id.index()]
    }

    /// How many times `id` has been trained.
    pub fn train_count(&self, id: SampleId) -> u32 {
        self.train_counts[id.index()]
    }

    /// Global progress in units of effective epochs (total observations
    /// divided by the dataset size).
    pub fn global_epochs(&self) -> f64 {
        self.total_observations as f64 / self.num_samples as f64
    }

    /// Sum of the *expected* current losses of every sample (no noise,
    /// no state change). Used for loss-mass coverage accounting.
    pub fn expected_loss_mass(&self) -> f64 {
        (0..self.num_samples)
            .map(|i| self.expected_loss(SampleId(i)))
            .sum()
    }

    /// Expected current loss of `id` (no noise, no state change).
    pub fn expected_loss(&self, id: SampleId) -> f64 {
        let c = &self.config;
        let i = id.index();
        let decay = (-c.global_decay * self.global_epochs()
            - c.personal_decay * self.train_counts[i] as f64)
            .exp();
        c.floor + self.difficulty[i] * c.base_loss * decay
    }

    /// Train `id` once: returns the observed (noisy) loss and advances the
    /// model state.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn observe(&mut self, id: SampleId) -> f64 {
        let expected = self.expected_loss(id);
        let i = id.index();
        let obs_hash = splitmix64(
            self.seed
                ^ splitmix64(id.0).rotate_left(17)
                ^ splitmix64(self.train_counts[i] as u64 + 1),
        );
        let noise = (self.config.noise_sigma * hash_normal(obs_hash)).exp();
        self.train_counts[i] += 1;
        self.total_observations += 1;
        (expected * noise).max(self.config.floor * 0.5)
    }

    /// Train a whole batch; returns the per-sample losses in order.
    pub fn observe_batch(&mut self, ids: &[SampleId]) -> Vec<f64> {
        ids.iter().map(|&id| self.observe(id)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(n: u64) -> LossModel {
        LossModel::new(n, LossModelConfig::default(), 7)
    }

    #[test]
    fn difficulties_are_lognormal_ish() {
        let m = model(10_000);
        let mean: f64 = (0..10_000).map(|i| m.difficulty(SampleId(i))).sum::<f64>() / 10_000.0;
        // E[lognormal(0, 0.6)] = exp(0.18) ~= 1.2
        assert!((1.0..1.4).contains(&mean), "mean difficulty {mean}");
        let min = (0..10_000)
            .map(|i| m.difficulty(SampleId(i)))
            .fold(f64::MAX, f64::min);
        assert!(min > 0.0);
    }

    #[test]
    fn losses_decay_with_repeated_training() {
        let mut m = model(100);
        let early: f64 = (0..5).map(|_| m.observe(SampleId(0))).sum::<f64>() / 5.0;
        for _ in 0..500 {
            m.observe(SampleId(0));
        }
        let late: f64 = (0..5).map(|_| m.observe(SampleId(0))).sum::<f64>() / 5.0;
        assert!(late < early * 0.5, "early {early}, late {late}");
    }

    #[test]
    fn global_progress_decays_untrained_samples_too() {
        let mut m = model(100);
        let before = m.expected_loss(SampleId(99));
        // Train everything except #99 for several effective epochs.
        for _ in 0..10 {
            for i in 0..99 {
                m.observe(SampleId(i));
            }
        }
        let after = m.expected_loss(SampleId(99));
        assert!(after < before, "generalisation lowers all losses");
        assert_eq!(m.train_count(SampleId(99)), 0);
    }

    #[test]
    fn observations_are_noisy_but_deterministic() {
        let mut a = model(10);
        let mut b = model(10);
        let la: Vec<f64> = (0..10).map(|_| a.observe(SampleId(3))).collect();
        let lb: Vec<f64> = (0..10).map(|_| b.observe(SampleId(3))).collect();
        assert_eq!(la, lb, "same seed, same trajectory");
        // Consecutive observations differ (noise drifts the IV, Fig. 3).
        assert!(la.windows(2).any(|w| (w[0] - w[1]).abs() > 1e-6));
    }

    #[test]
    fn losses_never_cross_below_half_floor() {
        let mut m = model(4);
        for _ in 0..5_000 {
            let l = m.observe(SampleId(1));
            assert!(l >= LossModelConfig::default().floor * 0.5);
        }
    }

    #[test]
    fn batch_observation_matches_sequential() {
        let mut a = model(10);
        let mut b = model(10);
        let ids: Vec<SampleId> = (0..5).map(SampleId).collect();
        let batch = a.observe_batch(&ids);
        let seq: Vec<f64> = ids.iter().map(|&id| b.observe(id)).collect();
        assert_eq!(batch, seq);
    }

    #[test]
    fn expected_loss_mass_shrinks_with_training() {
        let mut m = model(50);
        let initial = m.expected_loss_mass();
        for e in 0..5 {
            let _ = e;
            for i in 0..50 {
                m.observe(SampleId(i));
            }
        }
        assert!(m.expected_loss_mass() < initial);
        assert!((m.global_epochs() - 5.0).abs() < 1e-12);
    }
}
