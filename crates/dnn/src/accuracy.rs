//! Accuracy-convergence model.

use crate::ModelProfile;
use icache_types::{splitmix64, Epoch};

/// A summary of how *good* one epoch's effective training set was.
///
/// The training simulator fills this in at the end of each epoch; the
/// accuracy model converts it into accuracy movement. All fields are in
/// `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochQuality {
    /// Fraction of the dataset's current *loss mass* covered by the
    /// samples actually trained. Skipping low-loss samples (IIS) barely
    /// lowers this; skipping high-loss samples would crater it.
    pub loss_mass_coverage: f64,
    /// Distinct trained samples over total trained samples; duplicates
    /// introduced by substitution lower it.
    pub distinct_fraction: f64,
    /// Fraction of trained samples that were substituted with *H-cache*
    /// residents (distribution-skewing, §V-E's `ST_HC`).
    pub h_substitution_fraction: f64,
    /// Fraction of trained samples that were substituted with *L-cache*
    /// residents (diversity-preserving, `ST_LC`).
    pub l_substitution_fraction: f64,
}

impl EpochQuality {
    /// The quality of a full conventional epoch: everything trained,
    /// nothing substituted.
    pub fn ideal() -> Self {
        EpochQuality {
            loss_mass_coverage: 1.0,
            distinct_fraction: 1.0,
            h_substitution_fraction: 0.0,
            l_substitution_fraction: 0.0,
        }
    }

    /// The scalar effective-quality factor `q` of the epoch.
    pub fn q(&self) -> f64 {
        let cov = self.loss_mass_coverage.clamp(0.0, 1.0);
        let div = self.distinct_fraction.clamp(0.0, 1.0);
        let h = self.h_substitution_fraction.clamp(0.0, 1.0);
        let l = self.l_substitution_fraction.clamp(0.0, 1.0);
        // Substituting with already-over-trained H-samples skews the
        // distribution chosen by the IS algorithm (penalty 0.5 per unit);
        // substituting within L-cache preserves diversity (penalty 0.35).
        // Coverage and diversity enter with mild exponents: skipped
        // low-loss samples and repeated samples still carry gradient
        // signal, just less marginal information.
        (cov.powf(0.25) * div.powf(0.25) * (1.0 - 0.5 * h) * (1.0 - 0.3 * l)).clamp(0.0, 1.0)
    }
}

/// Accuracy at the end of an epoch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccuracySnapshot {
    /// The epoch this snapshot closes.
    pub epoch: Epoch,
    /// Top-1 validation accuracy, percent.
    pub top1: f64,
    /// Top-5 validation accuracy, percent.
    pub top5: f64,
}

/// Maps per-epoch training quality to top-1/top-5 accuracy.
///
/// The curve is the standard saturating exponential in *effective epochs*
/// `Q = Σ q_e`, with an asymptotic penalty proportional to the average
/// quality shortfall. The penalty term is what separates the systems in
/// the paper's Tables I–III: Default has `q = 1` every epoch and pays
/// nothing; iCache's IIS + L-substitution costs well under 1 % (CIFAR-10);
/// substituting from H-cache costs measurably more.
///
/// # Examples
///
/// ```
/// use icache_dnn::{AccuracyModel, EpochQuality, ModelProfile};
///
/// let mut ideal = AccuracyModel::new(&ModelProfile::resnet18(), 1);
/// let mut skewed = AccuracyModel::new(&ModelProfile::resnet18(), 1);
/// for _ in 0..90 {
///     ideal.record_epoch(EpochQuality::ideal());
///     skewed.record_epoch(EpochQuality {
///         loss_mass_coverage: 0.95,
///         distinct_fraction: 0.97,
///         h_substitution_fraction: 0.05,
///         l_substitution_fraction: 0.0,
///     });
/// }
/// assert!(ideal.top1() > skewed.top1());
/// assert!(ideal.top1() - skewed.top1() < 2.0, "within the paper's band");
/// ```
#[derive(Debug, Clone)]
pub struct AccuracyModel {
    top1_max: f64,
    top5_max: f64,
    rate: f64,
    /// Percentage points of top-1 lost per unit of average quality
    /// shortfall.
    penalty_coeff_top1: f64,
    penalty_coeff_top5: f64,
    /// Fraction of max accuracy reached before the first epoch.
    warm_start: f64,
    effective_epochs: f64,
    sum_q: f64,
    epochs: u32,
    noise_seed: u64,
    history: Vec<AccuracySnapshot>,
}

impl AccuracyModel {
    /// Build the accuracy model for `profile`, with noise stream `seed`.
    pub fn new(profile: &ModelProfile, seed: u64) -> Self {
        AccuracyModel {
            top1_max: profile.top1_max(),
            top5_max: profile.top5_max(),
            rate: profile.convergence_rate(),
            penalty_coeff_top1: 3.2,
            penalty_coeff_top5: 0.9,
            warm_start: 0.35,
            effective_epochs: 0.0,
            sum_q: 0.0,
            epochs: 0,
            noise_seed: splitmix64(seed ^ 0xACC),
            history: Vec::new(),
        }
    }

    /// Number of epochs recorded.
    pub fn epochs(&self) -> u32 {
        self.epochs
    }

    /// Mean per-epoch quality so far (1.0 before any epoch).
    pub fn mean_quality(&self) -> f64 {
        if self.epochs == 0 {
            1.0
        } else {
            self.sum_q / self.epochs as f64
        }
    }

    fn curve(&self, ceiling: f64) -> f64 {
        ceiling * (1.0 - (1.0 - self.warm_start) * (-self.rate * self.effective_epochs).exp())
    }

    fn epoch_noise(&self) -> f64 {
        let h = splitmix64(self.noise_seed ^ splitmix64(self.epochs as u64));
        // +-0.12 percentage points of deterministic measurement noise.
        (((h >> 11) as f64) / (1u64 << 53) as f64 - 0.5) * 0.24
    }

    /// Current top-1 accuracy (%).
    pub fn top1(&self) -> f64 {
        let pen = self.penalty_coeff_top1 * (1.0 - self.mean_quality());
        (self.curve(self.top1_max - pen) + self.epoch_noise()).clamp(0.0, 100.0)
    }

    /// Current top-5 accuracy (%).
    pub fn top5(&self) -> f64 {
        let pen = self.penalty_coeff_top5 * (1.0 - self.mean_quality());
        (self.curve(self.top5_max - pen) + self.epoch_noise()).clamp(0.0, 100.0)
    }

    /// Close an epoch with the given quality; returns the new snapshot.
    pub fn record_epoch(&mut self, quality: EpochQuality) -> AccuracySnapshot {
        let q = quality.q();
        self.effective_epochs += q;
        self.sum_q += q;
        self.epochs += 1;
        let snap = AccuracySnapshot {
            epoch: Epoch(self.epochs - 1),
            top1: self.top1(),
            top5: self.top5(),
        };
        self.history.push(snap);
        snap
    }

    /// The per-epoch accuracy trace (the paper's Fig. 7 curves).
    pub fn history(&self) -> &[AccuracySnapshot] {
        &self.history
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(model: &ModelProfile, quality: EpochQuality, epochs: u32) -> AccuracyModel {
        let mut am = AccuracyModel::new(model, 3);
        for _ in 0..epochs {
            am.record_epoch(quality);
        }
        am
    }

    #[test]
    fn ideal_training_approaches_model_max() {
        let am = run(&ModelProfile::resnet18(), EpochQuality::ideal(), 90);
        assert!(am.top1() > 94.0 && am.top1() <= 95.5, "top1 {}", am.top1());
        assert!(am.top5() > 99.0, "top5 {}", am.top5());
    }

    #[test]
    fn accuracy_increases_monotonically_up_to_noise() {
        let am = run(&ModelProfile::shufflenet(), EpochQuality::ideal(), 60);
        let hist = am.history();
        for w in hist.windows(2) {
            assert!(
                w[1].top1 > w[0].top1 - 0.3,
                "non-noise regression at {:?}",
                w[1].epoch
            );
        }
    }

    #[test]
    fn iis_style_quality_costs_less_than_one_percent_cifar() {
        let ideal = run(&ModelProfile::resnet18(), EpochQuality::ideal(), 90);
        let icache_q = EpochQuality {
            loss_mass_coverage: 0.96,
            distinct_fraction: 0.98,
            h_substitution_fraction: 0.0,
            l_substitution_fraction: 0.04,
        };
        let ic = run(&ModelProfile::resnet18(), icache_q, 90);
        let delta = ideal.top1() - ic.top1();
        assert!((0.05..1.2).contains(&delta), "top1 delta {delta}");
        let d5 = ideal.top5() - ic.top5();
        assert!(d5 < 0.6, "top5 delta {d5}");
    }

    #[test]
    fn h_substitution_hurts_more_than_l_substitution() {
        let base = EpochQuality {
            loss_mass_coverage: 0.96,
            distinct_fraction: 0.97,
            h_substitution_fraction: 0.0,
            l_substitution_fraction: 0.0,
        };
        let st_lc = EpochQuality {
            l_substitution_fraction: 0.06,
            ..base
        };
        let st_hc = EpochQuality {
            h_substitution_fraction: 0.06,
            distinct_fraction: 0.93,
            ..base
        };
        let m = ModelProfile::resnet18();
        let a_def = run(&m, base, 90).top1();
        let a_lc = run(&m, st_lc, 90).top1();
        let a_hc = run(&m, st_hc, 90).top1();
        assert!(a_def > a_lc, "def {a_def} vs lc {a_lc}");
        assert!(a_lc > a_hc, "lc {a_lc} vs hc {a_hc}");
    }

    #[test]
    fn quality_factor_penalises_each_component() {
        let ideal = EpochQuality::ideal().q();
        assert!((ideal - 1.0).abs() < 1e-12);
        let low_cov = EpochQuality {
            loss_mass_coverage: 0.5,
            ..EpochQuality::ideal()
        };
        assert!(low_cov.q() < 0.9);
        let h_sub = EpochQuality {
            h_substitution_fraction: 0.5,
            ..EpochQuality::ideal()
        };
        let l_sub = EpochQuality {
            l_substitution_fraction: 0.5,
            ..EpochQuality::ideal()
        };
        assert!(h_sub.q() < l_sub.q());
    }

    #[test]
    fn out_of_range_inputs_are_clamped() {
        let weird = EpochQuality {
            loss_mass_coverage: 7.0,
            distinct_fraction: -2.0,
            h_substitution_fraction: 9.0,
            l_substitution_fraction: -1.0,
        };
        let q = weird.q();
        assert!((0.0..=1.0).contains(&q));
    }

    #[test]
    fn history_records_every_epoch() {
        let am = run(&ModelProfile::mobilenet(), EpochQuality::ideal(), 10);
        assert_eq!(am.history().len(), 10);
        assert_eq!(am.history()[9].epoch, Epoch(9));
        assert_eq!(am.epochs(), 10);
    }

    #[test]
    fn convergence_is_deterministic() {
        let a = run(&ModelProfile::vgg11(), EpochQuality::ideal(), 30).top1();
        let b = run(&ModelProfile::vgg11(), EpochQuality::ideal(), 30).top1();
        assert_eq!(a, b);
    }
}
