//! DNN training substrate models.
//!
//! The paper trains eight real models on A100 GPUs; the cache layer under
//! study interacts with that training through exactly three interfaces,
//! which this crate models:
//!
//! 1. **Compute time** — [`ModelProfile`] gives per-batch GPU time (as a
//!    function of batch size and GPU count) and per-sample CPU
//!    preprocessing time for each of the eight evaluated models
//!    (ShuffleNet, ResNet18, MobileNet, ResNet50 on CIFAR-10; VGG11,
//!    MnasNet, SqueezeNet, DenseNet121 on ImageNet). Values are calibrated
//!    to public A100 benchmarks so the *relative* compute/I/O balance — the
//!    thing every figure depends on — matches the paper.
//! 2. **Loss dynamics** — [`LossModel`] produces the per-sample training
//!    losses that the loss-based importance-sampling algorithm consumes.
//!    Losses decay as a sample is trained repeatedly and as the model
//!    matures globally, with per-observation noise; this reproduces the
//!    importance drift of the paper's Figure 3.
//! 3. **Accuracy** — [`AccuracyModel`] maps the *quality* of each epoch's
//!    effective training set (loss-mass coverage, sample diversity,
//!    substitution skew) to top-1/top-5 accuracy. It reproduces the
//!    orderings the accuracy experiments test: Default ≥ iCache within
//!    1–2 %, and substitution from L-cache hurting less than substitution
//!    from H-cache (Table III).
//!
//! See `DESIGN.md` for why these three interfaces are sufficient for a
//! faithful reproduction.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod accuracy;
mod loss;
mod profile;

pub use accuracy::{AccuracyModel, AccuracySnapshot, EpochQuality};
pub use loss::{LossModel, LossModelConfig};
pub use profile::{DatasetFamily, ModelProfile};
