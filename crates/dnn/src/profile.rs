//! Compute-time profiles of the paper's eight evaluated models.

use icache_types::{Dataset, Error, Result, SimDuration};

/// Which dataset family a model is trained on in the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DatasetFamily {
    /// CIFAR-10 (ShuffleNet, ResNet18, MobileNet, ResNet50).
    Cifar10,
    /// ImageNet-1K (VGG11, MnasNet, SqueezeNet, DenseNet121).
    ImageNet,
}

impl DatasetFamily {
    /// The dataset descriptor this family trains on.
    pub fn dataset(self) -> Dataset {
        match self {
            DatasetFamily::Cifar10 => Dataset::cifar10(),
            DatasetFamily::ImageNet => Dataset::imagenet_1k(),
        }
    }
}

/// Compute-time and accuracy-ceiling profile of one DNN model.
///
/// GPU times are for one A100 at the paper's default batch size of 256 and
/// scale sublinearly in batch size (larger batches amortise kernel launch
/// and improve utilisation) and near-linearly down in GPU count with a
/// communication overhead (paper Fig. 12 shows Default barely improves with
/// more GPUs because I/O dominates — the comm model keeps compute from
/// shrinking perfectly).
///
/// # Examples
///
/// ```
/// use icache_dnn::ModelProfile;
///
/// let shuffle = ModelProfile::shufflenet();
/// let r50 = ModelProfile::resnet50();
/// // ShuffleNet needs far less GPU time than ResNet50 -> it is the most
/// // I/O-bound model, which is why it shows the paper's best speedups.
/// assert!(shuffle.batch_compute_time(256, 1)? < r50.batch_compute_time(256, 1)?);
/// # Ok::<(), icache_types::Error>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ModelProfile {
    name: String,
    family: DatasetFamily,
    /// GPU milliseconds for one batch of 256 on a single A100.
    gpu_ms_batch256: f64,
    /// Batch-size scaling exponent (1.0 = perfectly linear).
    batch_exponent: f64,
    /// CPU milliseconds to decode + augment one sample on one worker core.
    preprocess_ms_per_sample: f64,
    /// Per-GPU communication overhead factor per extra GPU.
    comm_overhead: f64,
    /// Asymptotic top-1 accuracy (%) under ideal (Default) training.
    top1_max: f64,
    /// Asymptotic top-5 accuracy (%) under ideal training.
    top5_max: f64,
    /// Convergence rate constant of the accuracy curve (per epoch).
    convergence_rate: f64,
}

macro_rules! preset {
    ($fn_name:ident, $name:literal, $family:expr, $gpu:expr, $pre:expr,
     $t1:expr, $t5:expr, $rate:expr, $doc:literal) => {
        #[doc = $doc]
        pub fn $fn_name() -> ModelProfile {
            ModelProfile {
                name: $name.to_string(),
                family: $family,
                gpu_ms_batch256: $gpu,
                batch_exponent: 0.9,
                preprocess_ms_per_sample: $pre,
                comm_overhead: 0.06,
                top1_max: $t1,
                top5_max: $t5,
                convergence_rate: $rate,
            }
        }
    };
}

impl ModelProfile {
    preset!(
        shufflenet,
        "shufflenet",
        DatasetFamily::Cifar10,
        10.0,
        0.15,
        92.6,
        99.66,
        0.055,
        "ShuffleNet on CIFAR-10: the lightest model, hence the most I/O-bound."
    );
    preset!(
        resnet18,
        "resnet18",
        DatasetFamily::Cifar10,
        22.0,
        0.15,
        95.3,
        99.78,
        0.060,
        "ResNet18 on CIFAR-10."
    );
    preset!(
        mobilenet,
        "mobilenet",
        DatasetFamily::Cifar10,
        16.0,
        0.15,
        93.4,
        99.70,
        0.055,
        "MobileNet on CIFAR-10."
    );
    preset!(
        resnet50,
        "resnet50",
        DatasetFamily::Cifar10,
        55.0,
        0.15,
        95.7,
        99.80,
        0.050,
        "ResNet50 on CIFAR-10: the heaviest CIFAR model."
    );
    preset!(
        vgg11,
        "vgg11",
        DatasetFamily::ImageNet,
        260.0,
        2.2,
        70.4,
        89.8,
        0.050,
        "VGG11 on ImageNet-1K: compute-heavy; the paper observes iCache ~= Oracle here."
    );
    preset!(
        mnasnet,
        "mnasnet",
        DatasetFamily::ImageNet,
        105.0,
        2.2,
        73.5,
        91.5,
        0.050,
        "MnasNet on ImageNet-1K."
    );
    preset!(
        squeezenet,
        "squeezenet",
        DatasetFamily::ImageNet,
        85.0,
        2.2,
        58.1,
        80.6,
        0.055,
        "SqueezeNet on ImageNet-1K: the lightest ImageNet model."
    );
    preset!(
        densenet121,
        "densenet121",
        DatasetFamily::ImageNet,
        240.0,
        2.2,
        76.5,
        93.2,
        0.045,
        "DenseNet121 on ImageNet-1K: compute-heavy; the paper observes iCache ~= Oracle here."
    );

    /// The four CIFAR-10 models in the paper's order.
    pub fn cifar_models() -> Vec<ModelProfile> {
        vec![
            Self::shufflenet(),
            Self::resnet18(),
            Self::mobilenet(),
            Self::resnet50(),
        ]
    }

    /// The four ImageNet models in the paper's order.
    pub fn imagenet_models() -> Vec<ModelProfile> {
        vec![
            Self::vgg11(),
            Self::mnasnet(),
            Self::squeezenet(),
            Self::densenet121(),
        ]
    }

    /// All eight evaluated models.
    pub fn all_models() -> Vec<ModelProfile> {
        let mut v = Self::cifar_models();
        v.extend(Self::imagenet_models());
        v
    }

    /// Look up a preset by name.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] for an unknown model name.
    pub fn by_name(name: &str) -> Result<ModelProfile> {
        Self::all_models()
            .into_iter()
            .find(|m| m.name == name)
            .ok_or_else(|| Error::invalid_config("model", format!("unknown model `{name}`")))
    }

    /// Model name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Which dataset family the model trains on.
    pub fn family(&self) -> DatasetFamily {
        self.family
    }

    /// Asymptotic top-1 accuracy under ideal training (%).
    pub fn top1_max(&self) -> f64 {
        self.top1_max
    }

    /// Asymptotic top-5 accuracy under ideal training (%).
    pub fn top5_max(&self) -> f64 {
        self.top5_max
    }

    /// Convergence rate constant of the accuracy curve.
    pub fn convergence_rate(&self) -> f64 {
        self.convergence_rate
    }

    /// GPU time to train one batch of `batch_size` samples on `gpus`
    /// data-parallel GPUs (gradient all-reduce overhead included).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] when `batch_size` or `gpus` is zero.
    pub fn batch_compute_time(&self, batch_size: usize, gpus: usize) -> Result<SimDuration> {
        if batch_size == 0 {
            return Err(Error::invalid_config("batch_size", "must be at least 1"));
        }
        if gpus == 0 {
            return Err(Error::invalid_config("gpus", "must be at least 1"));
        }
        let scale = (batch_size as f64 / 256.0).powf(self.batch_exponent);
        let comm = 1.0 + self.comm_overhead * (gpus as f64 - 1.0).sqrt();
        let ms = self.gpu_ms_batch256 * scale / gpus as f64 * comm;
        Ok(SimDuration::from_secs_f64(ms / 1e3))
    }

    /// CPU time for one data-loader worker to decode and augment one
    /// sample.
    pub fn preprocess_time_per_sample(&self) -> SimDuration {
        SimDuration::from_secs_f64(self.preprocess_ms_per_sample / 1e3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eight_models_with_unique_names() {
        let all = ModelProfile::all_models();
        assert_eq!(all.len(), 8);
        let mut names: Vec<&str> = all.iter().map(|m| m.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 8);
    }

    #[test]
    fn by_name_finds_presets_and_rejects_unknown() {
        assert_eq!(
            ModelProfile::by_name("resnet18").unwrap().name(),
            "resnet18"
        );
        assert!(ModelProfile::by_name("bert").is_err());
    }

    #[test]
    fn compute_time_scales_sublinearly_in_batch() {
        let m = ModelProfile::resnet18();
        let t256 = m.batch_compute_time(256, 1).unwrap();
        let t2048 = m.batch_compute_time(2048, 1).unwrap();
        let ratio = t2048.as_secs_f64() / t256.as_secs_f64();
        assert!(ratio > 6.0 && ratio < 8.0, "8x batch -> {ratio:.2}x time");
    }

    #[test]
    fn more_gpus_reduce_compute_with_comm_overhead() {
        let m = ModelProfile::resnet50();
        let t1 = m.batch_compute_time(256, 1).unwrap();
        let t4 = m.batch_compute_time(256, 4).unwrap();
        let speedup = t1.as_secs_f64() / t4.as_secs_f64();
        assert!(speedup > 3.0 && speedup < 4.0, "4 GPUs -> {speedup:.2}x");
    }

    #[test]
    fn zero_arguments_are_rejected() {
        let m = ModelProfile::shufflenet();
        assert!(m.batch_compute_time(0, 1).is_err());
        assert!(m.batch_compute_time(256, 0).is_err());
    }

    #[test]
    fn imagenet_preprocessing_costs_more_than_cifar() {
        assert!(
            ModelProfile::vgg11().preprocess_time_per_sample()
                > ModelProfile::resnet18().preprocess_time_per_sample()
        );
    }

    #[test]
    fn shufflenet_is_lightest_cifar_model() {
        let light = ModelProfile::shufflenet()
            .batch_compute_time(256, 1)
            .unwrap();
        for m in ModelProfile::cifar_models() {
            assert!(
                m.batch_compute_time(256, 1).unwrap() >= light,
                "{}",
                m.name()
            );
        }
    }

    #[test]
    fn families_map_to_their_datasets() {
        assert_eq!(DatasetFamily::Cifar10.dataset().len(), 50_000);
        assert_eq!(DatasetFamily::ImageNet.dataset().len(), 1_281_167);
        for m in ModelProfile::cifar_models() {
            assert_eq!(m.family(), DatasetFamily::Cifar10);
        }
    }
}

#[cfg(test)]
mod preset_tests {
    use super::*;

    #[test]
    fn accuracy_ceilings_are_ordered_like_the_literature() {
        // CIFAR: ResNet50 >= ResNet18 > MobileNet > ShuffleNet (top-1).
        assert!(ModelProfile::resnet50().top1_max() >= ModelProfile::resnet18().top1_max());
        assert!(ModelProfile::resnet18().top1_max() > ModelProfile::mobilenet().top1_max());
        assert!(ModelProfile::mobilenet().top1_max() > ModelProfile::shufflenet().top1_max());
        // ImageNet: DenseNet121 > MnasNet > VGG11 > SqueezeNet (top-1).
        assert!(ModelProfile::densenet121().top1_max() > ModelProfile::mnasnet().top1_max());
        assert!(ModelProfile::mnasnet().top1_max() > ModelProfile::vgg11().top1_max());
        assert!(ModelProfile::vgg11().top1_max() > ModelProfile::squeezenet().top1_max());
    }

    #[test]
    fn top5_always_exceeds_top1() {
        for m in ModelProfile::all_models() {
            assert!(m.top5_max() > m.top1_max(), "{}", m.name());
        }
    }

    #[test]
    fn imagenet_models_cost_more_gpu_time_than_cifar_models() {
        let max_cifar = ModelProfile::cifar_models()
            .iter()
            .map(|m| m.batch_compute_time(256, 1).unwrap())
            .max()
            .unwrap();
        let min_imagenet = ModelProfile::imagenet_models()
            .iter()
            .map(|m| m.batch_compute_time(256, 1).unwrap())
            .min()
            .unwrap();
        assert!(min_imagenet > max_cifar);
    }

    #[test]
    fn compute_heavy_imagenet_models_are_vgg_and_densenet() {
        // The paper observes iCache ~= Oracle exactly for these two.
        let heavy = |name: &str| {
            ModelProfile::by_name(name)
                .unwrap()
                .batch_compute_time(256, 1)
                .unwrap()
        };
        assert!(heavy("vgg11") > heavy("mnasnet"));
        assert!(heavy("densenet121") > heavy("mnasnet"));
        assert!(heavy("mnasnet") > heavy("squeezenet"));
    }

    #[test]
    fn batch_one_is_cheap_but_not_free() {
        for m in ModelProfile::all_models() {
            let t1 = m.batch_compute_time(1, 1).unwrap();
            let t256 = m.batch_compute_time(256, 1).unwrap();
            assert!(t1.as_nanos() > 0, "{}", m.name());
            assert!(t256 > t1 * 50, "{}: batching must amortise", m.name());
        }
    }
}
