//! Criterion micro-benchmarks of the replay hot path: per-access replay
//! stepping through the policy lineup, the epoch-boundary work (the
//! L-cache fresh-pool rebuild and the manager's region rebalance), and
//! the lock-striped concurrent cache's contention scaling (one shared
//! cache served by 1/2/4/8 loader threads).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use icache_bench::workload;
use icache_core::{LCache, LCacheConfig, Package, PackageId, SampleData};
use icache_sim::replay::{replay, replay_concurrent, AccessPattern, Trace};
use icache_sim::StorageKind;
use icache_types::{ByteSize, Dataset, DatasetBuilder, Epoch, JobId, SampleId, SimTime, SizeModel};

const UNIVERSE: u64 = 5_000;
const REQUESTS: usize = 20_000;
const SEED: u64 = 11;

fn workload_inputs() -> (Dataset, Trace) {
    let dataset = DatasetBuilder::new("bench", UNIVERSE)
        .size_model(SizeModel::Fixed(ByteSize::kib(3)))
        .build()
        .expect("dataset");
    let trace = AccessPattern::Zipf { s: 1.1 }
        .generate(UNIVERSE, REQUESTS, JobId(0), SEED)
        .expect("trace");
    (dataset, trace)
}

fn bench_replay_step(c: &mut Criterion) {
    let (dataset, trace) = workload_inputs();
    let hlist = workload::popularity_hlist(&trace, UNIVERSE);
    let cap = dataset.total_bytes().scaled(0.1);
    let mut group = c.benchmark_group("replay");
    group.sample_size(10);
    for policy in ["lru", "icache"] {
        group.bench_with_input(
            BenchmarkId::new("20k_zipf", policy),
            &policy,
            |b, &policy| {
                b.iter(|| {
                    let mut cache =
                        workload::build_policy(policy, &dataset, cap, 0.1, SEED, &hlist)
                            .expect("policy builds");
                    let mut storage = StorageKind::OrangeFs.build().expect("storage");
                    cache.on_epoch_start(JobId(0), Epoch(0));
                    replay(&trace, &dataset, cache.as_mut(), storage.as_mut())
                });
            },
        );
    }
    group.finish();
}

fn bench_epoch_boundary(c: &mut Criterion) {
    let mut group = c.benchmark_group("epoch_boundary");
    // The L-cache fresh-pool rebuild: every resident sample becomes fresh
    // again. Linear in residents since the resident-ID index replaced the
    // per-epoch collect-and-sort.
    for &n in &[10_000u64, 100_000] {
        group.bench_with_input(BenchmarkId::new("lcache_fresh_rebuild", n), &n, |b, &n| {
            let mut lc = LCache::new(LCacheConfig {
                capacity: ByteSize::kib(n),
                num_samples: n,
            });
            let pkg = Package::new(
                PackageId(0),
                (0..n)
                    .map(|i| SampleData::generate(SampleId(i), ByteSize::kib(1)))
                    .collect(),
            );
            lc.install_package(pkg, SimTime::ZERO);
            lc.integrate(SimTime::ZERO);
            b.iter(|| lc.on_epoch_start());
        });
    }
    // The manager's full epoch boundary on a warmed cache: close the
    // shadow-heap refresh window, rebalance the H/L split from access
    // frequencies, and rebuild the fresh pool for the next epoch.
    let (dataset, trace) = workload_inputs();
    let hlist = workload::popularity_hlist(&trace, UNIVERSE);
    let cap = dataset.total_bytes().scaled(0.1);
    group.sample_size(10);
    group.bench_function("manager_rebalance", |b| {
        b.iter_batched(
            || {
                let mut cache = workload::build_policy("icache", &dataset, cap, 0.1, SEED, &hlist)
                    .expect("policy builds");
                let mut storage = StorageKind::Tmpfs.build().expect("storage");
                cache.on_epoch_start(JobId(0), Epoch(0));
                replay(&trace, &dataset, cache.as_mut(), storage.as_mut());
                cache
            },
            |mut cache| {
                cache.on_epoch_end(JobId(0), Epoch(0));
                cache.on_epoch_start(JobId(0), Epoch(1));
                cache
            },
            criterion::BatchSize::LargeInput,
        );
    });
    group.finish();
}

fn bench_contention(c: &mut Criterion) {
    // The tentpole measurement: one lock-striped iCache served by N
    // loader threads at once. Wall-clock (not virtual) time per replay
    // is the scaling signal — on a multi-core runner throughput should
    // grow with threads; on a 1-core container it will not (see
    // `bench_snapshot`'s `available_parallelism` field).
    let (dataset, trace) = workload_inputs();
    let hlist = workload::popularity_hlist(&trace, UNIVERSE);
    let cap = dataset.total_bytes().scaled(0.1);
    let mut group = c.benchmark_group("contention");
    group.sample_size(10);
    for &threads in &[1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("loader_threads", threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    let cache = workload::build_concurrent_policy(
                        "icache", &dataset, cap, 0.1, SEED, &hlist, threads,
                    )
                    .expect("policy builds");
                    cache.on_epoch_start(JobId(0), Epoch(0));
                    replay_concurrent(&trace, &dataset, cache.as_ref(), threads, SEED, || {
                        StorageKind::Tmpfs.build()
                    })
                    .expect("concurrent replay")
                });
            },
        );
    }
    group.finish();
}

fn bench_dense_hot_path(c: &mut Criterion) {
    // The dense-vs-BTree ablation on the replay's own id stream: the
    // per-request residency probe (one `get` per trace access) against
    // an `IdSlab` and against the `BTreeMap` it replaced, both holding
    // the same warm resident set.
    let (dataset, trace) = workload_inputs();
    let resident = dataset.len() / 10;
    let slab: icache_core::IdSlab<ByteSize> = (0..resident)
        .map(|i| (SampleId(i), ByteSize::kib(3)))
        .collect();
    let tree: std::collections::BTreeMap<SampleId, ByteSize> = (0..resident)
        .map(|i| (SampleId(i), ByteSize::kib(3)))
        .collect();
    let ids: Vec<SampleId> = trace.records().iter().map(|r| r.sample).collect();
    let mut group = c.benchmark_group("dense_hot_path");
    group.bench_function("slab_residency_probe_20k", |b| {
        b.iter(|| ids.iter().filter(|&&id| slab.contains_key(id)).count());
    });
    group.bench_function("btree_residency_probe_20k", |b| {
        b.iter(|| ids.iter().filter(|&id| tree.contains_key(id)).count());
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_replay_step,
    bench_epoch_boundary,
    bench_contention,
    bench_dense_hot_path
);
criterion_main!(benches);
