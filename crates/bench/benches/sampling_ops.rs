//! Criterion micro-benchmarks of the sampling layer: epoch planning at
//! CIFAR and ImageNet cardinalities, and H-list construction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use icache_sampling::{HList, IisSelector, ImportanceTable, Selector, UniformSelector};
use icache_types::{Epoch, SampleId, SeedSequence};

fn table(n: u64) -> ImportanceTable {
    let mut t = ImportanceTable::new(n);
    for i in 0..n {
        t.record_loss(SampleId(i), ((i * 37) % 1_009) as f64 / 100.0);
    }
    t
}

fn bench_selectors(c: &mut Criterion) {
    let mut group = c.benchmark_group("plan_epoch");
    group.sample_size(20);
    for &n in &[50_000u64, 1_281_167] {
        let t = table(n);
        group.bench_with_input(BenchmarkId::new("uniform", n), &n, |b, _| {
            let mut sel = UniformSelector::new();
            let mut rng = SeedSequence::new(1).rng("u");
            b.iter(|| sel.plan_epoch(&t, Epoch(1), &mut rng));
        });
        group.bench_with_input(BenchmarkId::new("iis_0.7", n), &n, |b, _| {
            let mut sel = IisSelector::new(0.7).unwrap();
            let mut rng = SeedSequence::new(1).rng("i");
            b.iter(|| sel.plan_epoch(&t, Epoch(1), &mut rng));
        });
    }
    group.finish();
}

fn bench_hlist(c: &mut Criterion) {
    let mut group = c.benchmark_group("hlist");
    group.sample_size(20);
    for &n in &[50_000u64, 1_281_167] {
        let t = table(n);
        group.bench_with_input(BenchmarkId::new("top_half", n), &n, |b, _| {
            b.iter(|| HList::top_fraction(&t, 0.5));
        });
    }
    // Membership is the Algorithm 1 fast path.
    let t = table(1_281_167);
    let hl = HList::top_fraction(&t, 0.5);
    group.bench_function("contains", |b| {
        let mut k = 0u64;
        b.iter(|| {
            k = (k + 7_919) % 1_281_167;
            hl.contains(SampleId(k))
        });
    });
    group.finish();
}

criterion_group!(benches, bench_selectors, bench_hlist);
criterion_main!(benches);
