//! Criterion micro-benchmarks of the H-heap and the shadow-heap refresh
//! (the DESIGN.md §5 "shadow vs naive rebuild" ablation).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use icache_core::{HHeap, IdSlab, ShadowedHeap};
use icache_types::{ImportanceValue, SampleId};
use std::collections::BTreeMap;

fn iv(v: f64) -> ImportanceValue {
    ImportanceValue::saturating(v)
}

fn filled_heap(n: u64) -> HHeap {
    let mut h = HHeap::with_capacity(n as usize);
    for i in 0..n {
        h.insert(SampleId(i), iv(((i * 2_654_435_761) % 1_000_003) as f64));
    }
    h
}

fn filled_shadow(n: u64) -> ShadowedHeap {
    let mut h = ShadowedHeap::new();
    for i in 0..n {
        h.insert(SampleId(i), iv(((i * 2_654_435_761) % 1_000_003) as f64));
    }
    h
}

fn fresh_keys(n: u64) -> IdSlab<ImportanceValue> {
    (0..n)
        .map(|i| (SampleId(i), iv(((i * 40_503) % 999_983) as f64)))
        .collect()
}

fn bench_basic_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("hheap");
    for &n in &[1_000u64, 10_000, 100_000] {
        group.bench_with_input(BenchmarkId::new("insert_pop_cycle", n), &n, |b, &n| {
            let mut heap = filled_heap(n);
            let mut next = n;
            b.iter(|| {
                let popped = heap.pop_min().expect("non-empty");
                heap.insert(SampleId(next), iv(popped.1.get() + 1.0));
                next += 1;
            });
        });
        group.bench_with_input(BenchmarkId::new("update_key", n), &n, |b, &n| {
            let mut heap = filled_heap(n);
            let mut k = 0u64;
            b.iter(|| {
                k = (k + 7) % n;
                heap.update_key(SampleId(k), iv(black_box((k * 31) % 997) as f64));
            });
        });
    }
    group.finish();
}

fn bench_refresh(c: &mut Criterion) {
    let mut group = c.benchmark_group("refresh");
    for &n in &[10_000u64, 100_000] {
        let fresh = fresh_keys(n);
        group.bench_with_input(BenchmarkId::new("shadow_begin", n), &n, |b, &n| {
            b.iter_batched(
                || filled_shadow(n),
                // Streamed from a borrow: measures the refresh itself,
                // not a defensive clone of the fresh set.
                |mut heap| heap.begin_refresh(fresh.iter().map(|(id, &v)| (id, v))),
                criterion::BatchSize::LargeInput,
            );
        });
        group.bench_with_input(BenchmarkId::new("naive_rebuild", n), &n, |b, &n| {
            b.iter_batched(
                || filled_shadow(n),
                |mut heap| heap.rebuild_naive(&fresh),
                criterion::BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

/// The dense-vs-BTree ablation behind the slab migration: the same
/// point-op and sweep workloads on an [`IdSlab`] and on the `BTreeMap`
/// it replaced, over the dense contiguous id space the cache actually
/// uses.
fn bench_dense_vs_btree(c: &mut Criterion) {
    let mut group = c.benchmark_group("dense_vs_btree");
    for &n in &[10_000u64, 100_000] {
        let slab: IdSlab<u64> = (0..n).map(|i| (SampleId(i), i * 3)).collect();
        let tree: BTreeMap<SampleId, u64> = (0..n).map(|i| (SampleId(i), i * 3)).collect();
        group.bench_with_input(BenchmarkId::new("slab_get", n), &n, |b, &n| {
            let mut k = 0u64;
            b.iter(|| {
                k = (k + 7) % n;
                black_box(slab.get(SampleId(k)))
            });
        });
        group.bench_with_input(BenchmarkId::new("btree_get", n), &n, |b, &n| {
            let mut k = 0u64;
            b.iter(|| {
                k = (k + 7) % n;
                black_box(tree.get(&SampleId(k)))
            });
        });
        group.bench_with_input(BenchmarkId::new("slab_insert_remove", n), &n, |b, &n| {
            let mut s = slab.clone();
            let mut k = 0u64;
            b.iter(|| {
                k = (k + 7) % n;
                s.remove(SampleId(k));
                s.insert(SampleId(k), k);
            });
        });
        group.bench_with_input(BenchmarkId::new("btree_insert_remove", n), &n, |b, &n| {
            let mut t = tree.clone();
            let mut k = 0u64;
            b.iter(|| {
                k = (k + 7) % n;
                t.remove(&SampleId(k));
                t.insert(SampleId(k), k);
            });
        });
        group.bench_with_input(BenchmarkId::new("slab_iter_sum", n), &n, |b, _| {
            b.iter(|| black_box(slab.iter().map(|(_, &v)| v).sum::<u64>()));
        });
        group.bench_with_input(BenchmarkId::new("btree_iter_sum", n), &n, |b, _| {
            b.iter(|| black_box(tree.values().sum::<u64>()));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_basic_ops,
    bench_refresh,
    bench_dense_vs_btree
);
criterion_main!(benches);
