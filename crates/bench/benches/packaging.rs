//! Criterion micro-benchmark of dynamic packaging (§III-C): building
//! packages from a missed-id log plus a random pool.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use icache_core::Packager;
use icache_types::{ByteSize, SampleId};

fn bench_packaging(c: &mut Criterion) {
    let mut group = c.benchmark_group("packaging");
    for &pool_size in &[10_000u64, 100_000, 1_000_000] {
        let pool: Vec<SampleId> = (0..pool_size).map(SampleId).collect();
        let missed: Vec<SampleId> = (0..128).map(|i| SampleId(i * 7 % pool_size)).collect();
        group.bench_with_input(
            BenchmarkId::new("build_1mib", pool_size),
            &pool_size,
            |b, _| {
                let mut packager = Packager::new(ByteSize::mib(1), 7).expect("valid");
                b.iter(|| packager.build(&missed, &pool, |_| ByteSize::new(3_073)));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_packaging);
criterion_main!(benches);
