//! Criterion micro-benchmarks of the cache fast paths: H-cache admission
//! vs LRU insertion, and hit lookups.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use icache_baselines::LruCore;
use icache_core::{HCache, SampleData};
use icache_types::{ByteSize, ImportanceValue, SampleId};

fn bench_admission(c: &mut Criterion) {
    let mut group = c.benchmark_group("admission");
    for &n in &[10_000u64, 100_000] {
        group.bench_with_input(BenchmarkId::new("hcache_admit", n), &n, |b, &n| {
            // Capacity for n 1 KiB items; admission churns at the boundary.
            let mut hc = HCache::new(ByteSize::kib(n));
            for i in 0..n {
                hc.admit(
                    SampleData::generate(SampleId(i), ByteSize::kib(1)),
                    ImportanceValue::saturating((i % 10_007) as f64),
                );
            }
            let mut next = n;
            b.iter(|| {
                hc.admit(
                    SampleData::generate(SampleId(next), ByteSize::kib(1)),
                    ImportanceValue::saturating((next % 10_007) as f64 + 0.5),
                );
                next += 1;
            });
        });
        group.bench_with_input(BenchmarkId::new("lru_insert", n), &n, |b, &n| {
            let mut lru = LruCore::new(ByteSize::kib(n));
            for i in 0..n {
                lru.insert(SampleId(i), ByteSize::kib(1));
            }
            let mut next = n;
            b.iter(|| {
                lru.insert(SampleId(next), ByteSize::kib(1));
                next += 1;
            });
        });
    }
    group.finish();
}

fn bench_lookup(c: &mut Criterion) {
    let mut group = c.benchmark_group("lookup");
    let n = 100_000u64;
    let mut hc = HCache::new(ByteSize::kib(n));
    for i in 0..n {
        hc.admit(
            SampleData::generate(SampleId(i), ByteSize::kib(1)),
            ImportanceValue::saturating(i as f64),
        );
    }
    group.bench_function("hcache_hit", |b| {
        let mut k = 0u64;
        b.iter(|| {
            k = (k + 12_345) % n;
            hc.get(SampleId(k)).is_some()
        });
    });
    let mut lru = LruCore::new(ByteSize::kib(n));
    for i in 0..n {
        lru.insert(SampleId(i), ByteSize::kib(1));
    }
    group.bench_function("lru_touch", |b| {
        let mut k = 0u64;
        b.iter(|| {
            k = (k + 12_345) % n;
            lru.touch(SampleId(k))
        });
    });
    group.finish();
}

criterion_group!(benches, bench_admission, bench_lookup);
criterion_main!(benches);
