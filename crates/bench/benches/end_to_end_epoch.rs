//! Criterion macro-benchmark: simulator throughput for a full training
//! epoch under each cache system (how many virtual epochs per wall-second
//! the reproduction itself can simulate).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use icache_sim::{Scenario, SystemKind};

fn bench_epoch(c: &mut Criterion) {
    let mut group = c.benchmark_group("end_to_end");
    group.sample_size(10);
    for kind in [SystemKind::Default, SystemKind::Quiver, SystemKind::Icache] {
        group.bench_with_input(
            BenchmarkId::new("cifar_2pct_3epochs", kind.label()),
            &kind,
            |b, &kind| {
                b.iter(|| {
                    Scenario::cifar10(kind)
                        .scale_dataset(0.02)
                        .expect("valid scale")
                        .epochs(3)
                        .run()
                        .expect("runs")
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_epoch);
criterion_main!(benches);
