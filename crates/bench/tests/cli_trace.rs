//! End-to-end tests of the bench binaries' `--trace` / `--json` flags:
//! golden-trace determinism (byte-identical reruns, including the epoch
//! markers), distributed per-node counters, and `icache_replay`'s
//! one-trace-ring-per-policy output.
//!
//! Tests in this binary run in parallel threads of one process, so temp
//! paths embed both the pid and a per-test name — never share a `tmp`
//! name between tests.

use icache_obs::Json;
use std::path::PathBuf;
use std::process::Command;

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("icache-cli-trace-{}-{name}", std::process::id()));
    p
}

fn run_sim(extra: &[&str], trace: &PathBuf, json: &PathBuf) {
    let out = Command::new(env!("CARGO_BIN_EXE_icache_sim"))
        .args([
            "--system", "icache", "--scale", "0.02", "--epochs", "2", "--batch", "64", "--seed",
            "7",
        ])
        .args(extra)
        .arg("--trace")
        .arg(trace)
        .arg("--json")
        .arg(json)
        .output()
        .expect("icache_sim runs");
    assert!(
        out.status.success(),
        "icache_sim failed:\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
}

fn event_of(line: &str) -> String {
    Json::parse(line)
        .unwrap_or_else(|e| panic!("bad line `{line}`: {e}"))
        .get("event")
        .and_then(Json::as_str)
        .unwrap_or_else(|| panic!("missing event tag: {line}"))
        .to_string()
}

#[test]
fn trace_and_summary_files_are_nonempty_and_deterministic() {
    let (trace_a, json_a) = (tmp("golden-a.jsonl"), tmp("golden-a.json"));
    let (trace_b, json_b) = (tmp("golden-b.jsonl"), tmp("golden-b.json"));
    run_sim(&[], &trace_a, &json_a);
    run_sim(&[], &trace_b, &json_b);

    let ta = std::fs::read_to_string(&trace_a).expect("trace file written");
    let tb = std::fs::read_to_string(&trace_b).expect("trace file written");
    assert!(!ta.is_empty(), "trace must be non-empty");
    assert_eq!(ta, tb, "same seed + config must give byte-identical traces");

    let sa = std::fs::read_to_string(&json_a).expect("summary file written");
    let sb = std::fs::read_to_string(&json_b).expect("summary file written");
    assert!(!sa.is_empty(), "summary must be non-empty");
    assert_eq!(
        sa, sb,
        "same seed + config must give byte-identical summaries"
    );

    // Every trace line is a JSON object tagged with an event name; the
    // epoch markers bracket the stream (one pair per epoch, starts open).
    let events: Vec<String> = ta.lines().map(event_of).collect();
    assert_eq!(events.first().map(String::as_str), Some("epoch_start"));
    let starts = events.iter().filter(|e| *e == "epoch_start").count();
    let ends = events.iter().filter(|e| *e == "epoch_end").count();
    assert_eq!(starts, 2, "one epoch_start marker per epoch");
    assert_eq!(ends, 2, "one epoch_end marker per epoch");

    let summary = Json::parse(&sa).expect("summary parses");
    assert!(summary
        .get("jobs")
        .and_then(|j| j.as_array())
        .is_some_and(|j| !j.is_empty()));
    assert!(summary.get("metrics").is_some());
    assert!(
        summary
            .get("trace")
            .and_then(|t| t.get("emitted"))
            .and_then(Json::as_u64)
            .is_some_and(|n| n > 0),
        "summary must account for emitted trace events: {summary}"
    );

    for p in [trace_a, json_a, trace_b, json_b] {
        let _ = std::fs::remove_file(p);
    }
}

#[test]
fn distributed_trace_splits_into_one_segment_per_epoch() {
    let (trace_a, json_a) = (tmp("dist-a.jsonl"), tmp("dist-a.json"));
    let (trace_b, json_b) = (tmp("dist-b.jsonl"), tmp("dist-b.json"));
    let flags = ["--nodes", "2", "--epochs", "3"];
    run_sim(&flags, &trace_a, &json_a);
    run_sim(&flags, &trace_b, &json_b);

    let ta = std::fs::read_to_string(&trace_a).expect("trace file written");
    assert_eq!(
        ta,
        std::fs::read_to_string(&trace_b).expect("trace file written"),
        "distributed runs must be deterministic too"
    );

    // Rank 0 alone emits the markers: splitting the stream on
    // `epoch_start` yields exactly `--epochs` segments, each closed by a
    // matching `epoch_end`.
    let events: Vec<String> = ta.lines().map(event_of).collect();
    let starts: Vec<usize> = events
        .iter()
        .enumerate()
        .filter(|(_, e)| *e == "epoch_start")
        .map(|(i, _)| i)
        .collect();
    assert_eq!(starts.first(), Some(&0), "trace opens with an epoch marker");
    let segments: Vec<&[String]> = starts
        .iter()
        .enumerate()
        .map(|(k, &i)| {
            let end = starts.get(k + 1).copied().unwrap_or(events.len());
            &events[i..end]
        })
        .collect();
    assert_eq!(segments.len(), 3, "one segment per epoch, no more");
    for seg in &segments {
        assert_eq!(
            seg.iter().filter(|e| *e == "epoch_end").count(),
            1,
            "every segment closes exactly once"
        );
    }
    // remote peer reads show up as first-class trace events
    assert!(
        events.iter().any(|e| e == "remote_hit"),
        "a 2-node cluster must trace remote hits"
    );

    let summary = Json::parse(&std::fs::read_to_string(&json_a).expect("summary written"))
        .expect("summary parses");
    assert_eq!(
        summary
            .get("trace")
            .and_then(|t| t.get("dropped"))
            .and_then(Json::as_u64),
        Some(0),
        "ring must not overflow at this scale"
    );
    let nodes = summary
        .get("nodes")
        .and_then(|n| n.as_array())
        .expect("distributed summary has a nodes array")
        .to_vec();
    assert_eq!(nodes.len(), 2);
    let classified: u64 = nodes
        .iter()
        .map(|n| {
            ["local_hits", "remote_hits", "storage_fetches"]
                .iter()
                .map(|k| n.get(k).and_then(Json::as_u64).expect("node counter"))
                .sum::<u64>()
        })
        .sum();
    let fetched: u64 = summary
        .get("jobs")
        .and_then(|j| j.as_array())
        .expect("jobs array")
        .iter()
        .flat_map(|job| {
            job.get("epochs")
                .and_then(|e| e.as_array())
                .expect("epochs array")
                .iter()
                .map(|e| {
                    e.get("samples_fetched")
                        .and_then(Json::as_u64)
                        .expect("samples_fetched")
                })
                .collect::<Vec<_>>()
        })
        .sum();
    assert_eq!(
        classified, fetched,
        "every fetch lands in exactly one per-node bucket"
    );

    for p in [trace_a, json_a, trace_b, json_b] {
        let _ = std::fs::remove_file(p);
    }
}

#[test]
fn replay_gives_each_policy_its_own_trace_ring() {
    let trace_out = tmp("replay.jsonl");
    let json = tmp("replay.json");
    let out = Command::new(env!("CARGO_BIN_EXE_icache_replay"))
        .args([
            "--pattern",
            "zipf",
            "--requests",
            "2000",
            "--universe",
            "1000",
            "--seed",
            "11",
        ])
        .arg("--trace-out")
        .arg(&trace_out)
        .arg("--json")
        .arg(&json)
        .output()
        .expect("icache_replay runs");
    assert!(
        out.status.success(),
        "icache_replay failed:\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );

    let policies = ["lru", "coordl", "ilfu", "quiver", "icache"];
    let mut files = Vec::new();
    for policy in policies {
        let path = tmp(&format!("replay.{policy}.jsonl"));
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("per-policy trace {} missing: {e}", path.display()));
        files.push(path);
        // Per-file rings: seq restarts at 0 and counts up contiguously.
        for (i, line) in text.lines().enumerate() {
            let v = Json::parse(line).unwrap_or_else(|e| panic!("bad line `{line}`: {e}"));
            assert_eq!(v.get("seq").and_then(Json::as_u64), Some(i as u64));
        }
        // Zero cross-policy interleaving: iCache's region events appear
        // only in iCache's own file; baselines trace no cache events.
        let cache_events = text
            .lines()
            .filter(|l| {
                let e = event_of(l);
                e.starts_with("h_") || e.starts_with("l_") || e == "package_build"
            })
            .count();
        if policy == "icache" {
            assert!(cache_events > 0, "icache trace must record its regions");
        } else {
            assert_eq!(cache_events, 0, "{policy} trace polluted by cache events");
        }
    }

    // Each per-policy snapshot accounts for every access of the shared
    // workload: the six replay.* counters sum to `accesses`.
    let summary =
        Json::parse(&std::fs::read_to_string(&json).expect("summary written")).expect("parses");
    let accesses = summary
        .get("accesses")
        .and_then(Json::as_u64)
        .expect("accesses");
    assert_eq!(accesses, 2000);
    for policy in policies {
        let counters = summary
            .get("policies")
            .and_then(|p| p.get(policy))
            .and_then(|p| p.get("metrics"))
            .and_then(|m| m.get("counters"))
            .unwrap_or_else(|| panic!("{policy} counters missing"))
            .clone();
        let served: u64 = ["h_hits", "l_hits", "pm_hits", "substitutions", "misses"]
            .iter()
            .map(|k| {
                counters
                    .get(&format!("replay.{k}"))
                    .and_then(Json::as_u64)
                    .unwrap_or(0)
            })
            .sum();
        assert_eq!(
            served, accesses,
            "{policy} snapshot must cover the workload"
        );
        assert_eq!(
            counters.get("replay.accesses").and_then(Json::as_u64),
            Some(accesses)
        );
    }

    files.push(trace_out);
    files.push(json);
    for p in files {
        let _ = std::fs::remove_file(p);
    }
}
