//! End-to-end test of the `icache_sim` CLI's `--trace` / `--json` flags:
//! both files are written, non-empty, and byte-identical across two runs
//! with the same configuration and seed (the ISSUE acceptance criterion).

use std::path::PathBuf;
use std::process::Command;

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("icache-cli-trace-{}-{name}", std::process::id()));
    p
}

fn run_sim(trace: &PathBuf, json: &PathBuf) {
    let out = Command::new(env!("CARGO_BIN_EXE_icache_sim"))
        .args([
            "--system", "icache", "--scale", "0.02", "--epochs", "2", "--batch", "64", "--seed",
            "7",
        ])
        .arg("--trace")
        .arg(trace)
        .arg("--json")
        .arg(json)
        .output()
        .expect("icache_sim runs");
    assert!(
        out.status.success(),
        "icache_sim failed:\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn trace_and_summary_files_are_nonempty_and_deterministic() {
    let (trace_a, json_a) = (tmp("a.jsonl"), tmp("a.json"));
    let (trace_b, json_b) = (tmp("b.jsonl"), tmp("b.json"));
    run_sim(&trace_a, &json_a);
    run_sim(&trace_b, &json_b);

    let ta = std::fs::read_to_string(&trace_a).expect("trace file written");
    let tb = std::fs::read_to_string(&trace_b).expect("trace file written");
    assert!(!ta.is_empty(), "trace must be non-empty");
    assert_eq!(ta, tb, "same seed + config must give byte-identical traces");

    let sa = std::fs::read_to_string(&json_a).expect("summary file written");
    let sb = std::fs::read_to_string(&json_b).expect("summary file written");
    assert!(!sa.is_empty(), "summary must be non-empty");
    assert_eq!(
        sa, sb,
        "same seed + config must give byte-identical summaries"
    );

    // Every trace line is a JSON object tagged with an event name, and the
    // summary parses with the expected top-level shape.
    for line in ta.lines() {
        let v = icache_obs::Json::parse(line).unwrap_or_else(|e| panic!("bad line `{line}`: {e}"));
        assert!(v.get("event").is_some(), "missing event tag: {line}");
    }
    let summary = icache_obs::Json::parse(&sa).expect("summary parses");
    assert!(summary
        .get("jobs")
        .and_then(|j| j.as_array())
        .is_some_and(|j| !j.is_empty()));
    assert!(summary.get("metrics").is_some());
    assert!(
        summary
            .get("trace")
            .and_then(|t| t.get("emitted"))
            .and_then(icache_obs::Json::as_u64)
            .is_some_and(|n| n > 0),
        "summary must account for emitted trace events: {summary}"
    );

    for p in [trace_a, json_a, trace_b, json_b] {
        let _ = std::fs::remove_file(p);
    }
}
