//! CLI coverage of the sharded-service redesign: the plain `--nodes N`
//! path is pinned byte-for-byte to the pre-redesign golden summary, and
//! the churn flag group (`--kill-node`, `--rejoin`, `--cold`, ...)
//! drives a kill/rejoin run whose trace records the repartition and
//! recovery.
//!
//! Tests in this binary run in parallel threads of one process, so temp
//! paths embed both the pid and a per-test name.

use std::path::PathBuf;
use std::process::Command;

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("icache-churn-cli-{}-{name}", std::process::id()));
    p
}

fn sim(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_icache_sim"))
        .args(args)
        .output()
        .expect("icache_sim runs")
}

#[test]
fn facade_nodes3_summary_is_byte_identical_to_the_prerefactor_golden() {
    let json = tmp("golden-pin.json");
    let out = sim(&[
        "--nodes",
        "3",
        "--scale",
        "0.04",
        "--epochs",
        "3",
        "--json",
        json.to_str().expect("utf8 tmp path"),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let got = std::fs::read_to_string(&json).expect("summary written");
    let want = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/sim_nodes3.json"
    ))
    .expect("golden present");
    assert_eq!(
        got, want,
        "`--nodes 3` without churn flags must reproduce the direct-call \
         cluster's output byte-for-byte"
    );
    let _ = std::fs::remove_file(json);
}

#[test]
fn churn_flags_drive_a_traced_kill_rejoin_cycle() {
    let trace = tmp("churn.jsonl");
    let json = tmp("churn.json");
    let out = sim(&[
        "--nodes",
        "3",
        "--scale",
        "0.04",
        "--epochs",
        "4",
        "--kill-node",
        "1@2",
        "--rejoin",
        "--trace",
        trace.to_str().expect("utf8 tmp path"),
        "--json",
        json.to_str().expect("utf8 tmp path"),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(
        stdout.contains("churn: kills=1 rejoins=1"),
        "churn summary line missing:\n{stdout}"
    );
    assert!(
        stdout.contains("warm_restarts=1"),
        "rejoin defaults to warm:\n{stdout}"
    );
    assert!(
        stdout.contains("live=[0, 1, 2]"),
        "all three nodes must be live at the end:\n{stdout}"
    );

    let trace_text = std::fs::read_to_string(&trace).expect("trace written");
    for event in [
        "membership_change",
        "partition_update",
        "directory_remap",
        "warm_recovery",
    ] {
        assert!(
            trace_text.contains(&format!("\"event\":\"{event}\"")),
            "trace must record `{event}` events"
        );
    }

    let summary = std::fs::read_to_string(&json).expect("summary written");
    for counter in ["svc.kills", "svc.rejoins", "svc.repartition.moved"] {
        assert!(
            summary.contains(counter),
            "JSON summary must expose `{counter}`"
        );
    }

    for p in [trace, json] {
        let _ = std::fs::remove_file(p);
    }
}

#[test]
fn churn_flags_are_validated() {
    // --rejoin without a kill has nothing to rejoin.
    let out = sim(&["--nodes", "3", "--rejoin"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--kill-node"));

    // Churn needs a cluster.
    let out = sim(&["--kill-node", "0@1"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--nodes"));

    // The killed node must exist.
    let out = sim(&["--nodes", "2", "--kill-node", "5@1"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("does not exist"));

    // Malformed node@epoch.
    let out = sim(&["--nodes", "2", "--kill-node", "nope"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("node@epoch"));
}
