//! `icache_replay --parallel` must be indistinguishable from the
//! sequential run: same stdout, same `--json` summary, and per-policy
//! `--trace-out` files byte-for-byte identical (DESIGN.md §8).

use std::path::{Path, PathBuf};
use std::process::Command;

const POLICIES: [&str; 5] = ["lru", "coordl", "ilfu", "quiver", "icache"];

fn run_replay(dir: &Path, parallel: Option<&str>) -> String {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_icache_replay"));
    cmd.args([
        "--pattern",
        "zipf",
        "--skew",
        "1.1",
        "--requests",
        "5000",
        "--universe",
        "2000",
        "--seed",
        "11",
    ]);
    cmd.arg("--trace-out").arg(dir.join("trace.jsonl"));
    cmd.arg("--json").arg(dir.join("summary.json"));
    if let Some(n) = parallel {
        cmd.arg("--parallel");
        if !n.is_empty() {
            cmd.arg(n);
        }
    }
    let out = cmd.output().expect("icache_replay runs");
    assert!(
        out.status.success(),
        "icache_replay failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("stdout is utf-8")
}

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("icache_par_{}_{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

#[test]
fn parallel_replay_is_byte_identical_to_sequential() {
    let seq_dir = scratch("seq");
    let par_dir = scratch("par");
    let seq_stdout = run_replay(&seq_dir, None);
    let par_stdout = run_replay(&par_dir, Some("3"));

    // Stdout differs only in the embedded output paths; normalise those.
    let norm = |s: &str, dir: &Path| s.replace(&dir.display().to_string(), "<out>");
    assert_eq!(
        norm(&seq_stdout, &seq_dir),
        norm(&par_stdout, &par_dir),
        "stdout must not depend on --parallel"
    );

    let read = |dir: &Path, file: &str| {
        std::fs::read(dir.join(file)).unwrap_or_else(|e| panic!("{file}: {e}"))
    };
    assert_eq!(
        read(&seq_dir, "summary.json"),
        read(&par_dir, "summary.json"),
        "--json summary must not depend on --parallel"
    );
    for policy in POLICIES {
        let file = format!("trace.{policy}.jsonl");
        let seq = read(&seq_dir, &file);
        if policy == "icache" {
            // Baselines record nothing into the event ring; only the full
            // iCache system traces, so only its file is guaranteed events.
            assert!(!seq.is_empty(), "{file} has events");
        }
        assert_eq!(
            seq,
            read(&par_dir, &file),
            "{file} must not depend on --parallel"
        );
    }

    // Bare `--parallel` (auto workers) holds the same guarantee.
    let auto_dir = scratch("auto");
    let auto_stdout = run_replay(&auto_dir, Some(""));
    assert_eq!(norm(&seq_stdout, &seq_dir), norm(&auto_stdout, &auto_dir));
    assert_eq!(
        read(&seq_dir, "summary.json"),
        read(&auto_dir, "summary.json")
    );

    for dir in [seq_dir, par_dir, auto_dir] {
        let _ = std::fs::remove_dir_all(dir);
    }
}
