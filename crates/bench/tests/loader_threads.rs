//! `icache_replay --loader-threads 1` must short-circuit to the
//! sequential driver and be byte-identical to it — stdout, `--json`
//! summary, and per-policy `--trace-out` files (DESIGN.md §8's
//! workers==1 determinism contract). With more threads the flag must
//! refuse the combinations the concurrent path cannot honor.

use std::path::{Path, PathBuf};
use std::process::Command;

const POLICIES: [&str; 5] = ["lru", "coordl", "ilfu", "quiver", "icache"];

fn replay_cmd() -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_icache_replay"));
    cmd.args([
        "--pattern",
        "zipf",
        "--skew",
        "1.1",
        "--requests",
        "5000",
        "--universe",
        "2000",
        "--seed",
        "11",
    ]);
    cmd
}

fn run_replay(dir: &Path, loader_threads: Option<&str>) -> String {
    let mut cmd = replay_cmd();
    cmd.arg("--trace-out").arg(dir.join("trace.jsonl"));
    cmd.arg("--json").arg(dir.join("summary.json"));
    if let Some(n) = loader_threads {
        cmd.args(["--loader-threads", n]);
    }
    let out = cmd.output().expect("icache_replay runs");
    assert!(
        out.status.success(),
        "icache_replay failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("stdout is utf-8")
}

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("icache_lt_{}_{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

#[test]
fn loader_threads_1_is_byte_identical_to_sequential() {
    let seq_dir = scratch("seq");
    let lt1_dir = scratch("lt1");
    let seq_stdout = run_replay(&seq_dir, None);
    let lt1_stdout = run_replay(&lt1_dir, Some("1"));

    // Stdout differs only in the embedded output paths; normalise those.
    let norm = |s: &str, dir: &Path| s.replace(&dir.display().to_string(), "<out>");
    assert_eq!(
        norm(&seq_stdout, &seq_dir),
        norm(&lt1_stdout, &lt1_dir),
        "stdout must not depend on --loader-threads 1"
    );

    let read = |dir: &Path, file: &str| {
        std::fs::read(dir.join(file)).unwrap_or_else(|e| panic!("{file}: {e}"))
    };
    assert_eq!(
        read(&seq_dir, "summary.json"),
        read(&lt1_dir, "summary.json"),
        "--json summary must not depend on --loader-threads 1"
    );
    for policy in POLICIES {
        let file = format!("trace.{policy}.jsonl");
        assert_eq!(
            read(&seq_dir, &file),
            read(&lt1_dir, &file),
            "{file} must not depend on --loader-threads 1"
        );
    }

    for dir in [seq_dir, lt1_dir] {
        let _ = std::fs::remove_dir_all(dir);
    }
}

#[test]
fn multi_loader_threads_replays_every_policy() {
    let out = replay_cmd()
        .args(["--loader-threads", "4"])
        .output()
        .expect("icache_replay runs");
    assert!(
        out.status.success(),
        "4-thread replay failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).expect("stdout is utf-8");
    assert!(
        stdout.contains("loader threads: 4"),
        "mode banner missing:\n{stdout}"
    );
    for policy in POLICIES {
        assert!(stdout.contains(policy), "{policy} row missing:\n{stdout}");
    }
    assert!(stdout.contains("contended"), "contention column missing");
}

#[test]
fn concurrent_mode_refuses_trace_out_and_parallel() {
    for extra in [vec!["--trace-out", "unused.jsonl"], vec!["--parallel", "2"]] {
        let out = replay_cmd()
            .args(["--loader-threads", "2"])
            .args(&extra)
            .output()
            .expect("icache_replay runs");
        assert!(
            !out.status.success(),
            "--loader-threads 2 {extra:?} must be refused"
        );
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains("--loader-threads"),
            "error should name the conflicting flag: {stderr}"
        );
    }

    let out = replay_cmd()
        .args(["--loader-threads", "0"])
        .output()
        .expect("icache_replay runs");
    assert!(!out.status.success(), "--loader-threads 0 must be refused");
}
