//! `icache_replay --prefetch-depth 0` must be byte-identical to the
//! plain sequential driver — stdout, `--json` summary, and per-policy
//! `--trace-out` files (DESIGN.md §11's depth-0 golden contract). With
//! depth ≥ 1 the flag must refuse the combinations the prefetch clock
//! cannot honor, and depth-0 runs must refuse `--compute-us`.

use std::path::{Path, PathBuf};
use std::process::Command;

const POLICIES: [&str; 5] = ["lru", "coordl", "ilfu", "quiver", "icache"];

fn replay_cmd() -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_icache_replay"));
    cmd.args([
        "--pattern",
        "zipf",
        "--skew",
        "1.1",
        "--requests",
        "5000",
        "--universe",
        "2000",
        "--seed",
        "11",
    ]);
    cmd
}

fn run_replay(dir: &Path, prefetch_depth: Option<&str>) -> String {
    let mut cmd = replay_cmd();
    cmd.arg("--trace-out").arg(dir.join("trace.jsonl"));
    cmd.arg("--json").arg(dir.join("summary.json"));
    if let Some(n) = prefetch_depth {
        cmd.args(["--prefetch-depth", n]);
    }
    let out = cmd.output().expect("icache_replay runs");
    assert!(
        out.status.success(),
        "icache_replay failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("stdout is utf-8")
}

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("icache_pf_{}_{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

#[test]
fn prefetch_depth_0_is_byte_identical_to_plain_driver() {
    let plain_dir = scratch("plain");
    let d0_dir = scratch("d0");
    let plain_stdout = run_replay(&plain_dir, None);
    let d0_stdout = run_replay(&d0_dir, Some("0"));

    // Stdout differs only in the embedded output paths; normalise those.
    let norm = |s: &str, dir: &Path| s.replace(&dir.display().to_string(), "<out>");
    assert_eq!(
        norm(&plain_stdout, &plain_dir),
        norm(&d0_stdout, &d0_dir),
        "stdout must not depend on --prefetch-depth 0"
    );

    let read = |dir: &Path, file: &str| {
        std::fs::read(dir.join(file)).unwrap_or_else(|e| panic!("{file}: {e}"))
    };
    assert_eq!(
        read(&plain_dir, "summary.json"),
        read(&d0_dir, "summary.json"),
        "--json summary must not depend on --prefetch-depth 0"
    );
    for policy in POLICIES {
        let file = format!("trace.{policy}.jsonl");
        assert_eq!(
            read(&plain_dir, &file),
            read(&d0_dir, &file),
            "{file} must not depend on --prefetch-depth 0"
        );
    }

    for dir in [plain_dir, d0_dir] {
        let _ = std::fs::remove_dir_all(dir);
    }
}

#[test]
fn prefetch_mode_reports_stall_for_every_policy() {
    let out = replay_cmd()
        .args(["--prefetch-depth", "8", "--compute-us", "50"])
        .output()
        .expect("icache_replay runs");
    assert!(
        out.status.success(),
        "depth-8 replay failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).expect("stdout is utf-8");
    assert!(
        stdout.contains("clairvoyant prefetch: lookahead depth 8"),
        "mode banner missing:\n{stdout}"
    );
    for policy in POLICIES {
        assert!(stdout.contains(policy), "{policy} row missing:\n{stdout}");
    }
    assert!(stdout.contains("stall"), "stall column missing:\n{stdout}");
}

#[test]
fn prefetch_mode_refuses_invalid_flag_combinations() {
    // --compute-us drives the overlap clock; meaningless without a window.
    let out = replay_cmd()
        .args(["--compute-us", "50"])
        .output()
        .expect("icache_replay runs");
    assert!(
        !out.status.success(),
        "--compute-us without --prefetch-depth must be refused"
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("--prefetch-depth"),
        "error should name the missing flag: {stderr}"
    );

    // The concurrent path has no deterministic plan order to prefetch.
    let out = replay_cmd()
        .args(["--prefetch-depth", "4", "--loader-threads", "2"])
        .output()
        .expect("icache_replay runs");
    assert!(
        !out.status.success(),
        "--prefetch-depth with --loader-threads 2 must be refused"
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("--loader-threads"),
        "error should name the conflicting flag: {stderr}"
    );
}
