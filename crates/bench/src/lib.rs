//! Shared scaffolding for the experiment binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the
//! paper (see `DESIGN.md` §3 for the index and `EXPERIMENTS.md` for the
//! recorded results). Binaries print an aligned table in the paper's
//! layout plus `JSON <tag> {...}` lines for machine consumption.
//!
//! Runs are scaled-down by default so the full suite finishes in minutes;
//! environment variables unlock larger runs:
//!
//! | Variable | Default | Meaning |
//! |---|---|---|
//! | `ICACHE_CIFAR_SCALE` | `0.1` | Fraction of CIFAR-10 to simulate |
//! | `ICACHE_IMAGENET_SCALE` | `0.01` | Fraction of ImageNet-1K to simulate |
//! | `ICACHE_PERF_EPOCHS` | `4` | Epochs for timing experiments |
//! | `ICACHE_ACC_EPOCHS` | `90` | Epochs for accuracy experiments |
//! | `ICACHE_SEED` | `0x5EED` | Run seed |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod sweep;
pub mod workload;

use icache_sim::{Scenario, SystemKind};

/// Scaling knobs shared by the experiment binaries.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BenchEnv {
    /// Fraction of CIFAR-10 simulated.
    pub cifar_scale: f64,
    /// Fraction of ImageNet-1K simulated.
    pub imagenet_scale: f64,
    /// Epochs for timing experiments.
    pub perf_epochs: u32,
    /// Epochs for accuracy experiments.
    pub acc_epochs: u32,
    /// Run seed.
    pub seed: u64,
}

impl Default for BenchEnv {
    fn default() -> Self {
        BenchEnv {
            cifar_scale: 0.1,
            imagenet_scale: 0.01,
            perf_epochs: 4,
            acc_epochs: 90,
            seed: 0x5EED,
        }
    }
}

fn env_f64(key: &str, default: f64) -> f64 {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn env_u64(key: &str, default: u64) -> u64 {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

impl BenchEnv {
    /// Read the scaling knobs from the environment.
    pub fn from_env() -> Self {
        let d = BenchEnv::default();
        BenchEnv {
            cifar_scale: env_f64("ICACHE_CIFAR_SCALE", d.cifar_scale),
            imagenet_scale: env_f64("ICACHE_IMAGENET_SCALE", d.imagenet_scale),
            perf_epochs: env_u64("ICACHE_PERF_EPOCHS", d.perf_epochs as u64) as u32,
            acc_epochs: env_u64("ICACHE_ACC_EPOCHS", d.acc_epochs as u64) as u32,
            seed: env_u64("ICACHE_SEED", d.seed),
        }
    }

    /// A CIFAR-10 scenario scaled per this environment.
    ///
    /// # Panics
    ///
    /// Panics if the configured scale is out of range (user error in the
    /// environment variables).
    pub fn cifar(&self, system: SystemKind) -> Scenario {
        Scenario::cifar10(system)
            .scale_dataset(self.cifar_scale)
            .expect("ICACHE_CIFAR_SCALE out of range")
            .seed(self.seed)
    }

    /// An ImageNet scenario scaled per this environment.
    ///
    /// # Panics
    ///
    /// Panics if the configured scale is out of range.
    pub fn imagenet(&self, system: SystemKind) -> Scenario {
        Scenario::imagenet(system)
            .scale_dataset(self.imagenet_scale)
            .expect("ICACHE_IMAGENET_SCALE out of range")
            .seed(self.seed)
    }
}

/// Print the standard experiment banner.
pub fn banner(id: &str, paper_claim: &str, env: &BenchEnv) {
    println!("=== {id} ===");
    println!("paper: {paper_claim}");
    println!(
        "run:   cifar x{}, imagenet x{}, perf {} epochs, acc {} epochs, seed {:#x}",
        env.cifar_scale, env.imagenet_scale, env.perf_epochs, env.acc_epochs, env.seed
    );
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let e = BenchEnv::default();
        assert!(e.cifar_scale > 0.0 && e.cifar_scale <= 1.0);
        assert!(e.perf_epochs >= 2);
        assert!(e.acc_epochs >= 10);
    }

    #[test]
    fn scenarios_build_from_env() {
        let e = BenchEnv::default();
        let s = e.cifar(SystemKind::Icache);
        assert_eq!(s.dataset_ref().len(), 5_000);
        let s = e.imagenet(SystemKind::Default);
        assert_eq!(s.dataset_ref().len(), 12_812);
    }
}
