//! The parallel sweep engine: run independent bench/sim tasks on scoped
//! worker threads with deterministic result ordering.
//!
//! Every experiment binary in this crate is a *sweep*: an outer loop over
//! independent points (policies, cache sizes, worker counts, models) whose
//! iterations share nothing but read-only inputs. [`run_indexed`] executes
//! such a loop on `workers` OS threads while keeping the result vector in
//! task-submission order, so a parallel sweep renders the same tables, the
//! same `JSON` lines, and (with one `Obs` ring per task) the same trace
//! files as the sequential loop — byte for byte.
//!
//! Determinism contract (DESIGN.md §8): tasks may not share mutable state
//! or RNGs; each task derives its randomness from the run seed and its own
//! index. Under that contract the only thing parallelism changes is which
//! OS thread executes a task, which no task can observe.
//!
//! ```
//! use icache_bench::sweep;
//!
//! let squares = sweep::map(&[1u64, 2, 3, 4], 2, |_idx, &x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Default worker count: the `ICACHE_SWEEP_WORKERS` environment variable
/// when set, otherwise the machine's available parallelism.
pub fn default_workers() -> usize {
    std::env::var("ICACHE_SWEEP_WORKERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        })
}

/// Parse a `--parallel` flag value: empty or `"auto"` resolve via
/// [`default_workers`], a number is used as-is.
///
/// # Errors
///
/// Returns a message for a zero or unparseable worker count.
pub fn parse_workers(value: &str) -> Result<usize, String> {
    match value {
        "" | "auto" => Ok(default_workers()),
        n => n
            .parse::<usize>()
            .map_err(|e| format!("--parallel: {e}"))
            .and_then(|n| {
                if n == 0 {
                    Err("--parallel: worker count must be >= 1".to_string())
                } else {
                    Ok(n)
                }
            }),
    }
}

/// Run every task on a pool of `workers` scoped threads and return the
/// results **in task order**, regardless of completion order.
///
/// Tasks are claimed from a shared counter, so long tasks never leave a
/// worker idle while short ones queue behind them. `workers == 1` degrades
/// to exactly the sequential loop (same execution order, same results),
/// which is what makes "parallel output == sequential output" testable.
///
/// # Panics
///
/// Propagates the first worker panic (the scope joins all threads first).
pub fn run_indexed<T, F>(tasks: Vec<F>, workers: usize) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    let n = tasks.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = workers.clamp(1, n);
    if workers == 1 {
        return tasks.into_iter().map(|t| t()).collect();
    }
    // Each slot is locked independently: a worker takes the task closure
    // from its cell, runs it unlocked, then stores the result. The shared
    // counter hands out indices in order.
    let cells: Vec<Mutex<Option<F>>> = tasks.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let results: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let task = cells[i]
                    .lock()
                    .expect("task cell poisoned")
                    .take()
                    .expect("each task is claimed once");
                let out = task();
                *results[i].lock().expect("result cell poisoned") = Some(out);
            });
        }
    });
    results
        .into_iter()
        .map(|r| {
            r.into_inner()
                .expect("result cell poisoned")
                .expect("every task ran")
        })
        .collect()
}

/// Map `f` over `items` on `workers` threads; results keep `items`' order.
/// `f` receives each item's index alongside the item so tasks can derive
/// per-point seeds or labels.
pub fn map<I, T, F>(items: &[I], workers: usize, f: F) -> Vec<T>
where
    I: Sync,
    T: Send,
    F: Fn(usize, &I) -> T + Sync,
{
    let f = &f;
    run_indexed(
        items
            .iter()
            .enumerate()
            .map(|(i, item)| move || f(i, item))
            .collect(),
        workers,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_keep_task_order_whatever_the_worker_count() {
        let tasks: Vec<u64> = (0..64).collect();
        let sequential = map(&tasks, 1, |i, &x| (i as u64, x * 3));
        for workers in [2, 3, 8, 64, 1000] {
            let parallel = map(&tasks, workers, |i, &x| (i as u64, x * 3));
            assert_eq!(parallel, sequential, "workers={workers}");
        }
    }

    #[test]
    fn short_and_long_tasks_interleave_without_reordering() {
        // Long tasks first: later short tasks finish earlier in wall-clock
        // but must still land in their submission slots.
        let out = map(&[50u64, 1, 40, 1, 30, 1], 3, |i, &spin| {
            let mut acc = 0u64;
            for k in 0..spin * 10_000 {
                acc = acc.wrapping_add(k ^ i as u64);
            }
            (i, std::hint::black_box(acc) != u64::MAX)
        });
        let idx: Vec<usize> = out.iter().map(|(i, _)| *i).collect();
        assert_eq!(idx, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn empty_and_single_task_sweeps_work() {
        let none: Vec<u32> = run_indexed(Vec::<fn() -> u32>::new(), 8);
        assert!(none.is_empty());
        assert_eq!(run_indexed(vec![|| 7u32], 8), vec![7]);
    }

    #[test]
    fn fnonce_tasks_can_move_their_captures() {
        let payloads: Vec<String> = (0..10).map(|i| format!("p{i}")).collect();
        let tasks: Vec<_> = payloads.into_iter().map(|p| move || p.len()).collect();
        let lens = run_indexed(tasks, 4);
        assert_eq!(lens, vec![2; 10]);
    }

    #[test]
    fn parse_workers_resolves_auto_and_rejects_zero() {
        assert!(parse_workers("auto").unwrap() >= 1);
        assert!(parse_workers("").unwrap() >= 1);
        assert_eq!(parse_workers("4").unwrap(), 4);
        assert!(parse_workers("0").is_err());
        assert!(parse_workers("four").is_err());
    }

    #[test]
    #[should_panic]
    fn worker_panics_propagate_to_the_caller() {
        // The scope re-panics with its own payload after joining, so only
        // the fact of the panic (not its message) crosses the boundary.
        let _ = run_indexed(
            vec![
                Box::new(|| 1u32) as Box<dyn FnOnce() -> u32 + Send>,
                Box::new(|| panic!("sweep task panicked")),
            ],
            2,
        );
    }
}
