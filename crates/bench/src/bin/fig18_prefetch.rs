//! Figure 18 (prefetch study): stall time vs. clairvoyant lookahead
//! depth across the five-policy replay lineup.
//!
//! Setup: one zipf-1.1 trace replayed through every policy under the
//! compute/IO overlap clock (DESIGN.md §11) at each lookahead depth in
//! `ICACHE_PREFETCH_DEPTHS` (default `0,1,2,4,8,16`; depth 0 is the
//! un-overlapped demand chain). Because IIS/CIS fix the epoch's access
//! order in advance, the prefetcher issues that order up to `depth`
//! fetches ahead and the storage backend's queueing model arbitrates
//! the overlapping reads. Findings: consumer stall time is
//! non-increasing in depth for every policy, and shrinks strictly
//! through depth ≥ 4 while the window keeps the backend's queue busy.

use icache_bench::{banner, workload, BenchEnv};
use icache_obs::{json, Obs};
use icache_sim::replay::{replay_prefetch, AccessPattern};
use icache_sim::{report, StorageKind};
use icache_types::{ByteSize, DatasetBuilder, JobId, SimDuration, SizeModel};

const CACHE_FRAC: f64 = 0.1;
const COMPUTE_US: u64 = 50;

fn depths_from_env() -> Vec<usize> {
    let raw = std::env::var("ICACHE_PREFETCH_DEPTHS").unwrap_or_else(|_| "0,1,2,4,8,16".into());
    let depths: Vec<usize> = raw
        .split(',')
        .map(|d| {
            d.trim()
                .parse()
                .unwrap_or_else(|e| panic!("ICACHE_PREFETCH_DEPTHS entry `{d}`: {e}"))
        })
        .collect();
    assert!(
        depths.len() >= 2 && depths[0] == 0,
        "ICACHE_PREFETCH_DEPTHS must start at 0 and sweep at least one nonzero depth"
    );
    assert!(
        depths.windows(2).all(|w| w[0] < w[1]),
        "ICACHE_PREFETCH_DEPTHS must be strictly increasing"
    );
    depths
}

fn main() {
    let env = BenchEnv::from_env();
    banner(
        "Figure 18 — clairvoyant prefetch: consumer stall vs. lookahead depth",
        "overlapping the known access order with compute hides storage stall",
        &env,
    );
    let depths = depths_from_env();

    // Same workload family as `icache_replay` defaults, scaled like the
    // other figures so the CI smoke run stays small.
    let universe = ((20_000.0 * env.cifar_scale) as u64).max(200);
    let requests = ((50_000.0 * env.cifar_scale) as usize).max(500);
    let compute = SimDuration::from_micros(COMPUTE_US);
    let trace = AccessPattern::Zipf { s: 1.1 }
        .generate(universe, requests, JobId(0), env.seed)
        .expect("trace generation");
    let dataset = DatasetBuilder::new("fig18", universe)
        .size_model(SizeModel::Fixed(ByteSize::kib(3)))
        .build()
        .expect("dataset build");
    let cap = dataset.total_bytes().scaled(CACHE_FRAC);
    let hlist = workload::popularity_hlist(&trace, universe);
    println!(
        "replaying {requests} accesses over {universe} samples on orangefs \
         (cache {cap} = {:.0}%, compute {compute}/sample)\n",
        CACHE_FRAC * 100.0
    );

    let mut columns: Vec<String> = vec!["policy".into()];
    columns.extend(depths.iter().map(|d| format!("stall d={d}")));
    let mut table =
        report::Table::with_columns(&columns.iter().map(String::as_str).collect::<Vec<_>>());

    // stalls[policy][depth index], in nanoseconds.
    let mut stalls: Vec<Vec<u64>> = Vec::new();
    for &name in workload::POLICIES.iter() {
        let mut row = vec![name.to_string()];
        let mut policy_stalls = Vec::new();
        for &depth in &depths {
            let obs = Obs::new();
            let mut cache =
                workload::build_policy(name, &dataset, cap, CACHE_FRAC, env.seed, &hlist)
                    .unwrap_or_else(|e| panic!("{name}: {e}"));
            let mut storage = StorageKind::OrangeFs.build().expect("storage build");
            cache.set_obs(obs.clone());
            storage.set_obs(obs.clone());
            cache.on_epoch_start(JobId(0), icache_types::Epoch(0));
            let pr = replay_prefetch(
                &trace,
                &dataset,
                cache.as_mut(),
                storage.as_mut(),
                depth,
                compute,
                obs.clone(),
            )
            .unwrap_or_else(|e| panic!("{name} depth {depth}: {e}"));
            row.push(format!("{}", pr.stall));
            policy_stalls.push(pr.stall.as_nanos());
            report::json_line(
                "fig18",
                &json!({"policy": name,
                        "depth": depth,
                        "stall_nanos": pr.stall.as_nanos(),
                        "hit_ratio": pr.report.hit_ratio(),
                        "elapsed_nanos": pr.report.elapsed.as_nanos(),
                        "issued": pr.prefetch.issued,
                        "hits": pr.prefetch.hits,
                        "late": pr.prefetch.late,
                        "cancelled": pr.prefetch.cancelled}),
            );
        }
        table.row(row);
        stalls.push(policy_stalls);
    }
    println!("{}", table.render());
    println!();

    // Shape checks the CI smoke run greps for.
    let first = depths[0];
    let last = *depths.last().expect("at least two depths");
    let non_increasing = stalls
        .iter()
        .all(|s| s.last().expect("per-depth stall") <= &s[0]);
    println!(
        "shape check: stall non-increasing from depth {first} to depth {last} for every policy ({})",
        if non_increasing { "holds" } else { "VIOLATED" }
    );
    // Strict decrease at every step up to (and including) the first
    // swept depth >= 4, on at least one policy.
    let cut = depths
        .iter()
        .position(|&d| d >= 4)
        .expect("sweep a depth >= 4");
    let strict = stalls
        .iter()
        .any(|s| s[..=cut].windows(2).all(|w| w[1] < w[0]));
    println!(
        "shape check: stall strictly decreasing through depth {} on at least one policy ({})",
        depths[cut],
        if strict { "holds" } else { "VIOLATED" }
    );
}
