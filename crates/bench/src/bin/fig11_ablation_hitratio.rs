//! Figure 11: cache hit ratio with individual techniques enabled.
//!
//! Paper findings (ShuffleNet/CIFAR-10): the LRU baseline sits at ~2 %
//! hits; enabling the importance-managed H-cache lifts it to ~25 %; the
//! L-cache's substitution adds further hits for ~37 % total.

use icache_bench::{banner, BenchEnv};
use icache_dnn::ModelProfile;
use icache_obs::json;
use icache_sim::{report, SystemKind};

fn main() {
    let env = BenchEnv::from_env();
    banner(
        "Figure 11 — hit ratio ablation",
        "ShuffleNet: ~2% (Base/LRU) -> ~25% (+HC) -> ~37% (All)",
        &env,
    );

    let variants = [
        SystemKind::Base,
        SystemKind::IisLru,
        SystemKind::IcacheNoL,
        SystemKind::Icache,
    ];
    let labels = ["Base", "+IIS", "+HC", "All"];

    let mut table = report::Table::with_columns(&["model", "variant", "hit ratio"]);
    for model in [ModelProfile::shufflenet(), ModelProfile::resnet50()] {
        for (i, &sys) in variants.iter().enumerate() {
            let m = env
                .cifar(sys)
                .model(model.clone())
                .epochs(env.perf_epochs)
                .run()
                .expect("runs");
            let hit = m.avg_hit_ratio_steady();
            table.row(vec![
                if i == 0 {
                    model.name().to_string()
                } else {
                    String::new()
                },
                labels[i].to_string(),
                report::pct(hit),
            ]);
            report::json_line(
                "fig11",
                &json!({"model": model.name(), "variant": labels[i], "hit_ratio": hit}),
            );
        }
    }

    println!("{}", table.render());
    println!();
    println!("shape check: hit ratio climbs Base < +HC < All (paper: 2% -> 25% -> 37%)");
}
