//! Ablation (beyond the paper): L-cache package-size sweep.
//!
//! DESIGN.md §5 calls out the package size (≥1 MB in the paper) as a
//! design choice worth ablating: tiny packages forfeit the sequential-read
//! amortisation, huge packages monopolise the L-region and reduce
//! re-packing freshness.

use icache_bench::{banner, BenchEnv};
use icache_core::{IcacheConfig, IcacheManager};
use icache_dnn::ModelProfile;
use icache_obs::json;
use icache_sim::{report, run_single_job, JobConfig, SamplingMode};
use icache_storage::{Pfs, PfsConfig};
use icache_types::{ByteSize, Dataset, JobId};

fn main() {
    let env = BenchEnv::from_env();
    banner(
        "Ablation — package size",
        "extension experiment: how the dynamic-packaging unit affects epoch time and hit ratio",
        &env,
    );

    let dataset = Dataset::cifar10()
        .scaled(env.cifar_scale)
        .expect("scale in range");
    let sizes = [
        ByteSize::kib(64),
        ByteSize::kib(256),
        ByteSize::mib(1),
        ByteSize::mib(4),
    ];

    let mut table =
        report::Table::with_columns(&["package", "epoch time", "hit ratio", "pkg reads/epoch"]);

    for &pkg in &sizes {
        let mut cfg = IcacheConfig::for_dataset(&dataset, 0.2).expect("valid config");
        cfg.package_size = pkg;
        cfg.seed = env.seed;
        let mut cache = IcacheManager::new(cfg, &dataset).expect("valid manager");
        let mut pfs = Pfs::new(PfsConfig::orangefs_default()).expect("valid pfs");
        let mut job = JobConfig::new(JobId(0), ModelProfile::shufflenet(), dataset.clone());
        job.epochs = env.perf_epochs;
        job.sampling = SamplingMode::Iis { fraction: 0.7 };
        job.seed = env.seed;
        let m = run_single_job(job, &mut cache, &mut pfs).expect("runs");

        let pkg_reads = m.epochs[1..]
            .iter()
            .map(|e| e.storage.package_reads)
            .sum::<u64>() as f64
            / (m.epochs.len() - 1) as f64;
        table.row(vec![
            pkg.to_string(),
            report::secs(m.avg_epoch_time_steady().as_secs_f64()),
            report::pct(m.avg_hit_ratio_steady()),
            format!("{pkg_reads:.0}"),
        ]);
        report::json_line(
            "ablation_package_size",
            &json!({"package_bytes": pkg.as_u64(),
                    "epoch_seconds": m.avg_epoch_time_steady().as_secs_f64(),
                    "hit_ratio": m.avg_hit_ratio_steady(),
                    "package_reads_per_epoch": pkg_reads}),
        );
    }

    println!("{}", table.render());
    println!();
    println!(
        "expectation: very small packages do more, less efficient reads; 1 MiB is a sweet spot"
    );
}
