//! Figure 7: top-5 accuracy convergence curves, iCache vs Default.
//!
//! Paper setup: ResNet18/CIFAR-10 and SqueezeNet/ImageNet over 90 epochs;
//! the iCache curve closely tracks Default's.

use icache_bench::{banner, BenchEnv};
use icache_dnn::ModelProfile;
use icache_obs::json;
use icache_sim::{report, Scenario, SystemKind};

fn curves(name: &str, base: impl Fn(SystemKind) -> Scenario, epochs: u32) {
    let default = base(SystemKind::Default)
        .epochs(epochs)
        .run()
        .expect("runs");
    let icache = base(SystemKind::Icache).epochs(epochs).run().expect("runs");

    println!("--- {name} ---");
    let mut table = report::Table::with_columns(&["epoch", "Default top5", "iCache top5", "gap"]);
    let step = (epochs as usize / 15).max(1);
    for e in (0..epochs as usize)
        .step_by(step)
        .chain([epochs as usize - 1])
    {
        let d = default.epochs[e].top5;
        let i = icache.epochs[e].top5;
        table.row(vec![
            e.to_string(),
            format!("{d:.2}"),
            format!("{i:.2}"),
            format!("{:+.2}", i - d),
        ]);
    }
    println!("{}", table.render());
    let max_gap = default
        .epochs
        .iter()
        .zip(&icache.epochs)
        .skip(5) // early epochs are noisy in both systems
        .map(|(d, i)| (d.top5 - i.top5).abs())
        .fold(0.0f64, f64::max);
    println!("max |gap| after epoch 5: {max_gap:.2} points\n");
    report::json_line(
        "fig07",
        &json!({
            "workload": name,
            "default_top5": default.epochs.iter().map(|e| e.top5).collect::<Vec<_>>(),
            "icache_top5": icache.epochs.iter().map(|e| e.top5).collect::<Vec<_>>(),
        }),
    );
}

fn main() {
    let env = BenchEnv::from_env();
    banner(
        "Figure 7 — top-5 convergence curves",
        "iCache's convergence curve closely matches Default's over 90 epochs",
        &env,
    );

    curves(
        "ResNet18 / CIFAR-10",
        |sys| env.cifar(sys).model(ModelProfile::resnet18()),
        env.acc_epochs,
    );
    curves(
        "SqueezeNet / ImageNet",
        |sys| env.imagenet(sys).model(ModelProfile::squeezenet()),
        env.acc_epochs,
    );
    println!("shape check: curves should be close throughout, converging to within ~1-2 points");
}
