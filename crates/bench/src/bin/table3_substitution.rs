//! Table III: impact of the sample-substitution policy on accuracy.
//!
//! Paper findings (CIFAR-10): relative to iCache without substitution
//! (`Def`), substituting L-misses from L-cache (`ST_LC`) costs ~0.56
//! top-1 points on ResNet18 while substituting from H-cache (`ST_HC`)
//! costs ~0.81 — hence iCache adopts `ST_LC`.

use icache_bench::{banner, BenchEnv};
use icache_dnn::ModelProfile;
use icache_obs::json;
use icache_sim::{report, SystemKind};

fn main() {
    let env = BenchEnv::from_env();
    banner(
        "Table III — substitution-policy accuracy",
        "Def >= ST_LC >= ST_HC in top-1; ST_LC loses ~0.5pt, ST_HC ~0.8pt (ResNet18)",
        &env,
    );

    let policies = [
        SystemKind::IcacheNoSub,
        SystemKind::IcacheSubH,
        SystemKind::Icache,
    ];
    let labels = ["Def", "ST_HC", "ST_LC"];

    let mut table = report::Table::with_columns(&[
        "model", "metric", "Def", "ST_HC", "ST_LC", "LC-delta", "HC-delta",
    ]);

    for model in [
        ModelProfile::resnet18(),
        ModelProfile::shufflenet(),
        ModelProfile::resnet50(),
        ModelProfile::mobilenet(),
    ] {
        let runs: Vec<_> = policies
            .iter()
            .map(|&sys| {
                env.cifar(sys)
                    .model(model.clone())
                    .epochs(env.acc_epochs)
                    .run()
                    .expect("runs")
            })
            .collect();
        let top1: Vec<f64> = runs.iter().map(|r| r.final_top1()).collect();
        let top5: Vec<f64> = runs.iter().map(|r| r.final_top5()).collect();
        table.row(vec![
            model.name().to_string(),
            "top1".into(),
            format!("{:.2}", top1[0]),
            format!("{:.2}", top1[1]),
            format!("{:.2}", top1[2]),
            format!("{:+.2}", top1[2] - top1[0]),
            format!("{:+.2}", top1[1] - top1[0]),
        ]);
        table.row(vec![
            String::new(),
            "top5".into(),
            format!("{:.2}", top5[0]),
            format!("{:.2}", top5[1]),
            format!("{:.2}", top5[2]),
            format!("{:+.2}", top5[2] - top5[0]),
            format!("{:+.2}", top5[1] - top5[0]),
        ]);
        report::json_line(
            "table3",
            &json!({"model": model.name(), "policies": labels, "top1": top1, "top5": top5}),
        );
    }

    println!("{}", table.render());
    println!();
    println!("shape check: Def best, ST_LC close behind, ST_HC clearly worst — iCache picks ST_LC");
}
