//! Figure 15: sensitivity to the number of prefetching workers.
//!
//! Paper findings (ResNet18/CIFAR-10): iCache's speedup over Default
//! shrinks from 3.9× with 2 workers to 1.2× with 16 — more workers hide
//! more I/O — but commodity servers give only 3-4 cores per GPU, so the
//! ≤8-worker regime is the realistic one.

use icache_bench::{banner, sweep, BenchEnv};
use icache_dnn::ModelProfile;
use icache_obs::json;
use icache_sim::{report, SystemKind};

fn main() {
    let env = BenchEnv::from_env();
    banner(
        "Figure 15 — prefetch-worker sweep (ResNet18/CIFAR-10)",
        "iCache speedup over Default falls from 3.9x (2 workers) to 1.2x (16 workers)",
        &env,
    );

    let workers = [2usize, 4, 6, 8, 16];
    let mut table = report::Table::with_columns(&["workers", "Default", "iCache", "speedup"]);
    let mut speedups = Vec::new();

    // Every sweep point is an independent simulation pair; run them on
    // worker threads and render in point order afterwards, so the output
    // matches the sequential loop byte for byte.
    let results = sweep::map(&workers, sweep::default_workers(), |_idx, &w| {
        let run = |sys: SystemKind| {
            env.cifar(sys)
                .model(ModelProfile::resnet18())
                .workers(w)
                .epochs(env.perf_epochs)
                .run()
                .expect("runs")
                .avg_epoch_time_steady()
                .as_secs_f64()
        };
        (run(SystemKind::Default), run(SystemKind::Icache))
    });

    for (&w, &(d, i)) in workers.iter().zip(&results) {
        speedups.push(d / i);
        table.row(vec![
            w.to_string(),
            report::secs(d),
            report::secs(i),
            report::speedup(d, i),
        ]);
        report::json_line(
            "fig15",
            &json!({"workers": w, "default_seconds": d, "icache_seconds": i}),
        );
    }

    println!("{}", table.render());
    println!();
    println!(
        "shape check: the speedup should decrease as workers grow \
         (first {:.2}x vs last {:.2}x; paper: 3.9x -> 1.2x)",
        speedups.first().expect("non-empty"),
        speedups.last().expect("non-empty"),
    );
}
