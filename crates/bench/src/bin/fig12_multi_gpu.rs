//! Figure 12: single-job multi-GPU training.
//!
//! Paper findings (ResNet50/CIFAR-10): Default's epoch time barely moves
//! as GPUs grow 1→8 — I/O dominates and extra GPUs only add communication
//! — while iCache keeps a ~2.3× average advantage and improves slightly
//! with more GPUs.

use icache_bench::{banner, BenchEnv};
use icache_dnn::ModelProfile;
use icache_obs::json;
use icache_sim::{report, SystemKind};

fn main() {
    let env = BenchEnv::from_env();
    banner(
        "Figure 12 — multi-GPU scaling (ResNet50/CIFAR-10)",
        "Default flat across 1-8 GPUs; iCache ~2.3x faster on average",
        &env,
    );

    let gpus = [1usize, 2, 4, 8];
    let mut table = report::Table::with_columns(&["gpus", "Default", "iCache", "speedup"]);
    let mut avg = 0.0;
    let mut default_times = Vec::new();

    for &g in &gpus {
        let run = |sys: SystemKind| {
            env.cifar(sys)
                .model(ModelProfile::resnet50())
                .gpus(g)
                .epochs(env.perf_epochs)
                .run()
                .expect("runs")
                .avg_epoch_time_steady()
                .as_secs_f64()
        };
        let d = run(SystemKind::Default);
        let i = run(SystemKind::Icache);
        default_times.push(d);
        avg += d / i / gpus.len() as f64;
        table.row(vec![
            g.to_string(),
            report::secs(d),
            report::secs(i),
            report::speedup(d, i),
        ]);
        report::json_line(
            "fig12",
            &json!({"gpus": g, "default_seconds": d, "icache_seconds": i}),
        );
    }

    println!("{}", table.render());
    println!();
    let spread = default_times.iter().cloned().fold(f64::MIN, f64::max)
        / default_times.iter().cloned().fold(f64::MAX, f64::min);
    println!("average iCache speedup: {avg:.2}x (paper: 2.3x)");
    println!("Default max/min epoch-time across GPU counts: {spread:.2} (paper: ~flat)");
    println!("shape check: Default roughly flat with GPU count; iCache consistently faster");
}
