//! `bench_snapshot` — record the repo's perf trajectory as one JSON file.
//!
//! Measures (a) the five-policy replay workload sequentially and on the
//! parallel sweep engine, (b) the lock-striped concurrent cache served
//! by 1/2/4/8 loader threads (the contention scaling curve), and
//! (c) the cache-core hot paths (L-cache fresh-pool rebuild,
//! shadow-heap refresh open vs naive rebuild, IIS epoch planning,
//! package assembly), then writes everything as one canonical-JSON
//! object — `BENCH_icache.json` at the repo root when run via
//! `scripts/bench_snapshot.sh` — so successive PRs have comparable
//! numbers.
//!
//! Every speedup in the snapshot is only meaningful relative to the
//! recorded `available_parallelism`: on a 1-core runner the parallel
//! and multi-loader-thread passes time-slice one CPU and a ~1x ratio
//! is expected, so the tool prints a loud warning rather than letting
//! the number masquerade as a scaling result.
//!
//! ```sh
//! cargo run --release -p icache-bench --bin bench_snapshot -- \
//!     --out BENCH_icache.json --requests 200000 --parallel auto
//! ```
//!
//! Flags: `--out <file>` (default `BENCH_icache.json`),
//! `--requests <n>` / `--universe <n>` (replay workload size),
//! `--parallel [n|auto]` (worker threads for the parallel pass;
//! default auto), `--force` (allow overwriting a snapshot recorded on
//! a machine with more cores than this one — without it, the run
//! refuses rather than replace real contention numbers with
//! time-sliced ones).

use icache_bench::{sweep, workload};
use icache_core::{
    IdSlab, LCache, LCacheConfig, Package, PackageId, Packager, SampleData, ShadowedHeap,
};
use icache_obs::json;
use icache_sampling::{IisSelector, ImportanceTable, Selector};
use icache_sim::replay::{replay, replay_concurrent, AccessPattern};
use icache_sim::StorageKind;
use icache_types::{
    ByteSize, DatasetBuilder, Epoch, ImportanceValue, JobId, SampleId, SeedSequence, SimTime,
    SizeModel,
};
use std::collections::{BTreeMap, HashMap};
use std::process::ExitCode;
use std::time::Instant;

fn parse_args() -> Result<HashMap<String, String>, String> {
    let mut out = HashMap::new();
    let mut args = std::env::args().skip(1).peekable();
    while let Some(flag) = args.next() {
        let Some(key) = flag.strip_prefix("--") else {
            return Err(format!("unexpected argument `{flag}`"));
        };
        let value = match args.peek() {
            Some(next) if !next.starts_with("--") => args.next().unwrap_or_default(),
            _ => String::new(),
        };
        out.insert(key.to_string(), value);
    }
    Ok(out)
}

/// Mean nanoseconds per call of `f` over `iters` timed calls (after one
/// untimed warm-up call).
fn mean_ns(iters: u32, mut f: impl FnMut()) -> f64 {
    f();
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_nanos() as f64 / f64::from(iters)
}

/// Wall-clock seconds to replay the whole policy lineup on `workers`
/// threads.
fn replay_lineup_secs(
    trace: &icache_sim::replay::Trace,
    dataset: &icache_types::Dataset,
    hlist: &icache_sampling::HList,
    cap: ByteSize,
    seed: u64,
    workers: usize,
) -> f64 {
    let start = Instant::now();
    let reports = sweep::map(&workload::POLICIES, workers, |_idx, &policy| {
        let mut cache =
            workload::build_policy(policy, dataset, cap, 0.1, seed, hlist).expect("policy builds");
        let mut storage = StorageKind::OrangeFs.build().expect("storage");
        cache.on_epoch_start(JobId(0), Epoch(0));
        replay(trace, dataset, cache.as_mut(), storage.as_mut())
    });
    assert_eq!(reports.len(), workload::POLICIES.len());
    start.elapsed().as_secs_f64()
}

fn run() -> Result<(), String> {
    let args = parse_args()?;
    let get = |k: &str, d: &str| args.get(k).cloned().unwrap_or_else(|| d.to_string());
    let out_path = get("out", "BENCH_icache.json");
    let universe: u64 = get("universe", "20000")
        .parse()
        .map_err(|e| format!("--universe: {e}"))?;
    let requests: usize = get("requests", "200000")
        .parse()
        .map_err(|e| format!("--requests: {e}"))?;
    let workers = sweep::parse_workers(&get("parallel", "auto"))?;
    let seed = 11u64;

    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    // A snapshot recorded on a wide machine must not be silently
    // replaced by one from a narrow machine: the contention curve and
    // every speedup would degrade into time-slicing artifacts while
    // looking like perf regressions.
    if !args.contains_key("force") {
        if let Ok(prev) = std::fs::read_to_string(&out_path) {
            if let Ok(prev) = icache_obs::Json::parse(&prev) {
                let prev_cores = prev["available_parallelism"].as_u64().unwrap_or(0);
                if prev_cores > cores as u64 {
                    return Err(format!(
                        "refusing to overwrite {out_path}: the existing snapshot was recorded \
                         at available_parallelism={prev_cores} but this machine exposes \
                         {cores}, so its parallel and loader-thread numbers would become \
                         time-slicing artifacts, not scaling results — re-record on a machine \
                         with >= {prev_cores} cores, or pass --force to overwrite anyway"
                    ));
                }
            }
        }
    }

    eprintln!("bench_snapshot: replay workload ({requests} requests over {universe} samples)");
    let dataset = DatasetBuilder::new("bench", universe)
        .size_model(SizeModel::Fixed(ByteSize::kib(3)))
        .build()
        .map_err(|e| e.to_string())?;
    let trace = AccessPattern::Zipf { s: 1.1 }
        .generate(universe, requests, JobId(0), seed)
        .map_err(|e| e.to_string())?;
    let hlist = workload::popularity_hlist(&trace, universe);
    let cap = dataset.total_bytes().scaled(0.1);

    let sequential = replay_lineup_secs(&trace, &dataset, &hlist, cap, seed, 1);
    let parallel = replay_lineup_secs(&trace, &dataset, &hlist, cap, seed, workers);

    eprintln!("bench_snapshot: loader-thread contention scaling (lock-striped icache)");
    let mut contention_curve: Vec<(String, icache_obs::Json)> = Vec::new();
    let mut loader_secs: BTreeMap<usize, f64> = BTreeMap::new();
    for &threads in &[1usize, 2, 4, 8] {
        let cache =
            workload::build_concurrent_policy("icache", &dataset, cap, 0.1, seed, &hlist, threads)?;
        cache.on_epoch_start(JobId(0), Epoch(0));
        let start = Instant::now();
        replay_concurrent(&trace, &dataset, cache.as_ref(), threads, seed, || {
            StorageKind::OrangeFs.build()
        })
        .map_err(|e| e.to_string())?;
        let secs = start.elapsed().as_secs_f64();
        loader_secs.insert(threads, secs);
        contention_curve.push((
            threads.to_string(),
            json!({
                "secs": secs,
                "contended": cache.contended(),
                "available_parallelism": cores as u64,
            }),
        ));
    }
    let scaling_4t = loader_secs[&1] / loader_secs[&4];

    eprintln!("bench_snapshot: hot-path micro timings");
    let n = 100_000u64;
    let mut lc = LCache::new(LCacheConfig {
        capacity: ByteSize::kib(n),
        num_samples: n,
    });
    lc.install_package(
        Package::new(
            PackageId(0),
            (0..n)
                .map(|i| SampleData::generate(SampleId(i), ByteSize::kib(1)))
                .collect(),
        ),
        SimTime::ZERO,
    );
    lc.integrate(SimTime::ZERO);
    let lcache_rebuild = mean_ns(20, || lc.on_epoch_start());

    let fresh: IdSlab<ImportanceValue> = (0..n)
        .map(|i| {
            (
                SampleId(i),
                ImportanceValue::saturating(((i * 40_503) % 999_983) as f64),
            )
        })
        .collect();
    let filled = || {
        let mut h = ShadowedHeap::new();
        for i in 0..n {
            h.insert(
                SampleId(i),
                ImportanceValue::saturating(((i * 2_654_435_761) % 1_000_003) as f64),
            );
        }
        h
    };
    let base = filled();
    let shadow_begin = mean_ns(10, || {
        let mut h = base.clone();
        h.begin_refresh(fresh.iter().map(|(id, &v)| (id, v)));
    });
    let naive_rebuild = mean_ns(10, || {
        let mut h = base.clone();
        h.rebuild_naive(&fresh);
    });

    let mut table = ImportanceTable::new(n);
    for i in 0..n {
        table.record_loss(SampleId(i), ((i * 31) % 997) as f64);
    }
    let mut sel = IisSelector::new(0.3).map_err(|e| e.to_string())?;
    let mut rng = SeedSequence::new(seed).rng("bench");
    let iis_plan = mean_ns(10, || {
        let _ = sel.plan_epoch(&table, Epoch(1), &mut rng);
    });

    let mut packager = Packager::new(ByteSize::mib(1), seed).map_err(|e| e.to_string())?;
    let pool: Vec<SampleId> = (0..n).map(SampleId).collect();
    let package_build = mean_ns(10, || {
        let _ = packager.build(&[SampleId(1)], &pool, |_| ByteSize::kib(3));
    });

    // The dense-vs-BTree ablation behind the slab migration: one full
    // sweep of n strided point lookups (and one full ascending
    // iteration) per timed call, on identical contents.
    let slab: IdSlab<u64> = (0..n).map(|i| (SampleId(i), i * 3)).collect();
    let tree: BTreeMap<SampleId, u64> = (0..n).map(|i| (SampleId(i), i * 3)).collect();
    let slab_get = mean_ns(10, || {
        for k in 0..n {
            std::hint::black_box(slab.get(SampleId((k * 7) % n)));
        }
    });
    let btree_get = mean_ns(10, || {
        for k in 0..n {
            std::hint::black_box(tree.get(&SampleId((k * 7) % n)));
        }
    });
    let slab_iter = mean_ns(10, || {
        std::hint::black_box(slab.iter().map(|(_, &v)| v).sum::<u64>());
    });
    let btree_iter = mean_ns(10, || {
        std::hint::black_box(tree.values().sum::<u64>());
    });
    if cores == 1 {
        eprintln!("bench_snapshot: ==============================================================");
        eprintln!("bench_snapshot: WARNING: available_parallelism == 1 on this machine.");
        eprintln!("bench_snapshot: Every parallel/loader-thread pass time-sliced a single CPU,");
        eprintln!("bench_snapshot: so the recorded speedups are NOT scaling results. Re-record");
        eprintln!("bench_snapshot: this snapshot on a multi-core runner before comparing them.");
        eprintln!("bench_snapshot: ==============================================================");
    }
    let summary = json!({
        "bench": "icache",
        "available_parallelism": cores as u64,
        "replay": {
            "requests": requests as u64,
            "universe": universe,
            "policies": workload::POLICIES.len() as u64,
            "workers": workers as u64,
            "sequential_secs": sequential,
            "parallel_secs": parallel,
            "speedup": sequential / parallel,
        },
        "contention": {
            "policy": "icache",
            "loader_threads": icache_obs::Json::Obj(contention_curve),
            "speedup_4t": scaling_4t,
        },
        "micro_ns": {
            "lcache_fresh_rebuild_100k": lcache_rebuild,
            "shadow_begin_refresh_100k": shadow_begin,
            "naive_rebuild_100k": naive_rebuild,
            "iis_plan_epoch_100k": iis_plan,
            "package_build_1mib": package_build,
            "dense_slab_get_sweep_100k": slab_get,
            "btree_get_sweep_100k": btree_get,
            "dense_slab_iter_100k": slab_iter,
            "btree_iter_100k": btree_iter,
        },
    });
    std::fs::write(&out_path, format!("{summary}\n"))
        .map_err(|e| format!("--out {out_path}: {e}"))?;
    println!("wrote perf snapshot to {out_path}");
    println!("{summary}");
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}
