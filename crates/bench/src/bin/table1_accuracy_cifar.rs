//! Table I: CIFAR-10 model accuracy under different cache schemes.
//!
//! Paper finding: iCache's top-1/top-5 accuracy stays within 1 % of
//! Default on every CIFAR-10 model (losses of 0.80/0.56/0.36/0.55 points
//! on ResNet18/ResNet50/ShuffleNet/MobileNet respectively).

use icache_bench::{banner, BenchEnv};
use icache_dnn::ModelProfile;
use icache_obs::json;
use icache_sim::{report, SystemKind};

fn main() {
    let env = BenchEnv::from_env();
    banner(
        "Table I — CIFAR-10 accuracy",
        "iCache within 1% top-1 of Default on all four CIFAR-10 models",
        &env,
    );

    let systems = [
        SystemKind::Default,
        SystemKind::Quiver,
        SystemKind::CoorDl,
        SystemKind::Icache,
    ];
    let mut table = report::Table::with_columns(&[
        "model",
        "metric",
        "Default",
        "Quiver",
        "CoorDL",
        "iCache",
        "iCache-delta",
    ]);

    for model in ModelProfile::cifar_models() {
        let runs: Vec<_> = systems
            .iter()
            .map(|&sys| {
                env.cifar(sys)
                    .model(model.clone())
                    .epochs(env.acc_epochs)
                    .run()
                    .expect("scenario runs")
            })
            .collect();
        let top1: Vec<f64> = runs.iter().map(|r| r.final_top1()).collect();
        let top5: Vec<f64> = runs.iter().map(|r| r.final_top5()).collect();
        table.row(vec![
            model.name().to_string(),
            "top1".into(),
            format!("{:.2}", top1[0]),
            format!("{:.2}", top1[1]),
            format!("{:.2}", top1[2]),
            format!("{:.2}", top1[3]),
            format!("{:+.2}", top1[3] - top1[0]),
        ]);
        table.row(vec![
            String::new(),
            "top5".into(),
            format!("{:.2}", top5[0]),
            format!("{:.2}", top5[1]),
            format!("{:.2}", top5[2]),
            format!("{:.2}", top5[3]),
            format!("{:+.2}", top5[3] - top5[0]),
        ]);
        report::json_line(
            "table1",
            &json!({"model": model.name(), "top1": top1, "top5": top5,
                    "systems": ["default", "quiver", "coordl", "icache"]}),
        );
    }

    println!("{}", table.render());
    println!();
    println!("shape check: iCache top-1 within ~1 point of Default on every model (paper ≤1%)");
}
