//! `icache_replay` — replay a synthetic access pattern (or a recorded
//! JSONL trace) through any cache policy and report hit ratio + latency
//! percentiles; the classic cache-simulator workflow.
//!
//! ```sh
//! cargo run --release -p icache-bench --bin icache_replay -- \
//!     --pattern zipf --skew 1.1 --requests 50000 --cache-frac 0.1
//! cargo run --release -p icache-bench --bin icache_replay -- --trace my.jsonl
//! ```
//!
//! Flags: `--pattern uniform|zipf|scan|shuffle`, `--skew <f>` (zipf),
//! `--requests <n>`, `--universe <n>`, `--cache-frac <f>`,
//! `--storage orangefs|nfs|tmpfs|ssd`, `--seed <n>`,
//! `--trace <file.jsonl>` (overrides `--pattern`),
//! `--trace-out <file.jsonl>` (write each policy's structured event trace
//! to its own file — `out.jsonl` becomes `out.lru.jsonl`,
//! `out.icache.jsonl`, … — so event streams never interleave and every
//! file's `seq` starts at 0),
//! `--json <file.json>` (write a per-policy summary with the
//! observability counters, latency histograms, and trace accounting),
//! `--parallel [n|auto]` (replay the policies on `n` worker threads —
//! bare `--parallel` or `auto` uses the machine's parallelism; see
//! DESIGN.md §8),
//! `--loader-threads <n>` (serve ONE cache from `n` concurrent loader
//! threads — the lock-striped in-node path; see DESIGN.md §8),
//! `--prefetch-depth <n>` (clairvoyant prefetch lookahead; 0 — the
//! default — disables the pipeline and is byte-identical to the plain
//! driver; see DESIGN.md §11),
//! `--compute-us <n>` (simulated per-sample compute for the prefetch
//! overlap clock, default 50 µs; requires `--prefetch-depth >= 1`).
//!
//! With `--prefetch-depth N` (N ≥ 1) each policy replays under a
//! compute/IO overlap clock: a prefetcher issues the trace's known
//! access order up to `N` fetches ahead, the consumer spends
//! `--compute-us` per sample, and the table gains a `stall` column —
//! total time the consumer waited on data. The cache sees the same
//! access *order* at every depth; time-agnostic policies (lru, coordl,
//! ilfu) therefore count identically across depths, while policies
//! with time-paced machinery (icache's background package loader) may
//! shift slightly because virtual timestamps feed their pacing. The
//! mode refuses `--loader-threads > 1` (the concurrent path has no
//! deterministic plan order to prefetch).
//!
//! The policies share nothing but the read-only workload, so the
//! parallel path produces byte-identical stdout, `--json`, and
//! `--trace-out` files to the sequential one: every policy replays
//! against its own [`icache_obs::Obs`] ring and derives its randomness
//! from `--seed` alone, and results are printed in policy order after
//! all workers join.
//!
//! `--loader-threads 1` (the default) short-circuits to the sequential
//! driver and is byte-identical to it. With `n > 1` each policy is
//! built as a shared `ConcurrentCache` (`icache` gets the lock-striped
//! `ConcurrentManager`, baselines a coarse-lock `MutexCache`), the
//! trace is split round-robin across the loader threads, and results
//! depend on thread interleaving — so this mode refuses `--trace-out`
//! (no per-event stream on the concurrent path) and `--parallel`
//! (one axis of parallelism at a time).
//!
//! On top of whatever the policy itself records, the replay driver
//! records `replay.accesses`, `replay.h_hits`, `replay.l_hits`,
//! `replay.pm_hits`, `replay.substitutions`, and `replay.misses` from
//! the replay report, so every per-policy snapshot satisfies
//! `h_hits + l_hits + pm_hits + substitutions + misses == accesses`.

use icache_bench::{sweep, workload};
use icache_sampling::HList;
use icache_sim::replay::{replay, replay_prefetch, summarize, AccessPattern, Trace};
use icache_sim::{report, StorageKind};
use icache_types::{ByteSize, Dataset, DatasetBuilder, JobId, SimDuration, SizeModel};
use std::collections::HashMap;
use std::process::ExitCode;

fn parse_args() -> Result<HashMap<String, String>, String> {
    let mut out = HashMap::new();
    let mut args = std::env::args().skip(1).peekable();
    while let Some(flag) = args.next() {
        let Some(key) = flag.strip_prefix("--") else {
            return Err(format!("unexpected argument `{flag}`"));
        };
        // A flag followed by another flag (or by nothing) is value-less:
        // bare `--parallel` means `--parallel auto`. No flag's value can
        // legitimately start with `--`.
        let value = match args.peek() {
            Some(next) if !next.starts_with("--") => args.next().unwrap_or_default(),
            _ => String::new(),
        };
        out.insert(key.to_string(), value);
    }
    Ok(out)
}

/// `out.jsonl` + `lru` → `out.lru.jsonl`; a path with no extension gets
/// the policy name appended instead.
fn policy_path(path: &str, policy: &str) -> String {
    let p = std::path::Path::new(path);
    match (p.file_stem(), p.extension()) {
        (Some(stem), Some(ext)) => p
            .with_file_name(format!(
                "{}.{policy}.{}",
                stem.to_string_lossy(),
                ext.to_string_lossy()
            ))
            .to_string_lossy()
            .into_owned(),
        _ => format!("{path}.{policy}"),
    }
}

/// Read-only inputs shared by every policy task.
struct ReplayCtx<'a> {
    trace: &'a Trace,
    dataset: &'a Dataset,
    hlist: &'a HList,
    cap: ByteSize,
    cache_frac: f64,
    seed: u64,
    storage_kind: StorageKind,
    trace_out: Option<&'a str>,
    prefetch_depth: usize,
    compute: SimDuration,
}

/// Everything one policy replay produces, rendered but not yet printed:
/// the driver prints outputs in policy order after all tasks finish, so
/// sequential and parallel runs emit the same bytes.
struct PolicyOutput {
    row: Vec<String>,
    line: String,
    trace_note: Option<String>,
    summary: (String, icache_obs::Json),
}

fn run_policy(name: &str, ctx: &ReplayCtx) -> Result<PolicyOutput, String> {
    // One observability ring per policy: event streams never interleave
    // and each trace file's seq numbering starts at 0. The cache is
    // built here, inside the (possibly worker-thread) task.
    let obs = icache_obs::Obs::new();
    let mut cache = workload::build_policy(
        name,
        ctx.dataset,
        ctx.cap,
        ctx.cache_frac,
        ctx.seed,
        ctx.hlist,
    )?;
    let mut storage = ctx.storage_kind.build().map_err(|e| e.to_string())?;
    cache.set_obs(obs.clone());
    storage.set_obs(obs.clone());
    cache.on_epoch_start(JobId(0), icache_types::Epoch(0));
    let (rep, stall) = if ctx.prefetch_depth > 0 {
        let pr = replay_prefetch(
            ctx.trace,
            ctx.dataset,
            cache.as_mut(),
            storage.as_mut(),
            ctx.prefetch_depth,
            ctx.compute,
            obs.clone(),
        )
        .map_err(|e| e.to_string())?;
        (pr.report, Some(pr.stall))
    } else {
        (
            replay(ctx.trace, ctx.dataset, cache.as_mut(), storage.as_mut()),
            None,
        )
    };
    // The replay driver's own accounting: baselines record nothing
    // into the registry themselves, so these six counters make every
    // policy snapshot sum to the shared workload's access count.
    obs.add("replay.accesses", ctx.trace.len() as u64);
    obs.add("replay.h_hits", rep.stats.h_hits);
    obs.add("replay.l_hits", rep.stats.l_hits);
    obs.add("replay.pm_hits", rep.stats.pm_hits);
    obs.add("replay.substitutions", rep.stats.substitutions);
    obs.add("replay.misses", rep.stats.misses);
    let mut row = vec![
        name.to_string(),
        format!("{:.1}", rep.hit_ratio() * 100.0),
        format!("{}", rep.latency.quantile(0.5)),
        format!("{}", rep.latency.quantile(0.99)),
        format!("{}", rep.elapsed),
    ];
    let mut line = format!("{name:8} {}", summarize(&rep));
    if let Some(stall) = stall {
        row.push(format!("{stall}"));
        line = format!("{line} | stall {stall}");
    }
    let trace_note = match ctx.trace_out {
        Some(path) => {
            let path = policy_path(path, name);
            std::fs::write(&path, obs.trace_jsonl())
                .map_err(|e| format!("--trace-out {path}: {e}"))?;
            Some(format!(
                "wrote {} {name} trace events to {path}",
                obs.trace_len()
            ))
        }
        None => None,
    };
    let summary = (
        name.to_string(),
        icache_obs::Json::Obj(vec![
            ("metrics".into(), obs.metrics_snapshot()),
            (
                "trace".into(),
                icache_obs::Json::Obj(vec![
                    (
                        "emitted".into(),
                        icache_obs::Json::UInt(obs.trace_emitted()),
                    ),
                    (
                        "recorded".into(),
                        icache_obs::Json::UInt(obs.trace_len() as u64),
                    ),
                    (
                        "dropped".into(),
                        icache_obs::Json::UInt(obs.trace_dropped()),
                    ),
                ]),
            ),
        ]),
    );
    Ok(PolicyOutput {
        row,
        line,
        trace_note,
        summary,
    })
}

/// Replay every policy as a shared concurrent cache served by
/// `threads` loader threads. Output mirrors the sequential driver's
/// table plus a `contended` column (lock acquisitions that had to
/// wait).
fn run_concurrent(threads: usize, ctx: &ReplayCtx, json_path: Option<&str>) -> Result<(), String> {
    let mut policy_summaries: Vec<(String, icache_obs::Json)> = Vec::new();
    let mut out =
        report::Table::with_columns(&["policy", "hit%", "p50", "p99", "elapsed", "contended"]);
    for &name in workload::POLICIES.iter() {
        let obs = icache_obs::Obs::new();
        let cache = workload::build_concurrent_policy(
            name,
            ctx.dataset,
            ctx.cap,
            ctx.cache_frac,
            ctx.seed,
            ctx.hlist,
            threads,
        )?;
        cache.set_obs(obs.clone());
        cache.on_epoch_start(JobId(0), icache_types::Epoch(0));
        let rep = icache_sim::replay::replay_concurrent(
            ctx.trace,
            ctx.dataset,
            cache.as_ref(),
            threads,
            ctx.seed,
            || ctx.storage_kind.build(),
        )
        .map_err(|e| e.to_string())?;
        // Publishes the cache.stripe.* gauges and the counter deltas
        // accumulated over the replay into this policy's registry.
        cache.on_epoch_end(JobId(0), icache_types::Epoch(0));
        obs.add("replay.accesses", ctx.trace.len() as u64);
        obs.add("replay.h_hits", rep.stats.h_hits);
        obs.add("replay.l_hits", rep.stats.l_hits);
        obs.add("replay.pm_hits", rep.stats.pm_hits);
        obs.add("replay.substitutions", rep.stats.substitutions);
        obs.add("replay.misses", rep.stats.misses);
        let contended = cache.contended();
        out.row(vec![
            name.to_string(),
            format!("{:.1}", rep.hit_ratio() * 100.0),
            format!("{}", rep.latency.quantile(0.5)),
            format!("{}", rep.latency.quantile(0.99)),
            format!("{}", rep.elapsed),
            format!("{contended}"),
        ]);
        println!("{name:8} {} | contended {contended}", summarize(&rep));
        policy_summaries.push((
            name.to_string(),
            icache_obs::Json::Obj(vec![
                ("metrics".into(), obs.metrics_snapshot()),
                ("contended".into(), icache_obs::Json::UInt(contended)),
            ]),
        ));
    }
    println!();
    println!("{}", out.render());
    if let Some(path) = json_path {
        let summary = icache_obs::Json::Obj(vec![
            (
                "accesses".into(),
                icache_obs::Json::UInt(ctx.trace.len() as u64),
            ),
            (
                "loader_threads".into(),
                icache_obs::Json::UInt(threads as u64),
            ),
            ("policies".into(), icache_obs::Json::Obj(policy_summaries)),
        ]);
        std::fs::write(path, format!("{summary}\n")).map_err(|e| format!("--json {path}: {e}"))?;
        println!("wrote replay summary to {path}");
    }
    Ok(())
}

fn run() -> Result<(), String> {
    let args = parse_args()?;
    let get = |k: &str, d: &str| args.get(k).cloned().unwrap_or_else(|| d.to_string());
    let universe: u64 = get("universe", "20000")
        .parse()
        .map_err(|e| format!("--universe: {e}"))?;
    let requests: usize = get("requests", "50000")
        .parse()
        .map_err(|e| format!("--requests: {e}"))?;
    let cache_frac: f64 = get("cache-frac", "0.1")
        .parse()
        .map_err(|e| format!("--cache-frac: {e}"))?;
    let seed: u64 = get("seed", "7")
        .parse()
        .map_err(|e| format!("--seed: {e}"))?;
    let storage_kind = match get("storage", "orangefs").as_str() {
        "orangefs" => StorageKind::OrangeFs,
        "nfs" => StorageKind::Nfs,
        "tmpfs" => StorageKind::Tmpfs,
        "ssd" => StorageKind::NvmeSsd,
        other => return Err(format!("unknown storage `{other}`")),
    };
    let workers = match args.get("parallel") {
        Some(v) => sweep::parse_workers(v)?,
        None => 1,
    };
    let loader_threads: usize = get("loader-threads", "1")
        .parse()
        .map_err(|e| format!("--loader-threads: {e}"))?;
    if loader_threads == 0 {
        return Err("--loader-threads: need at least one loader thread".into());
    }
    let prefetch_depth: usize = get("prefetch-depth", "0")
        .parse()
        .map_err(|e| format!("--prefetch-depth: {e}"))?;
    if args.contains_key("compute-us") && prefetch_depth == 0 {
        return Err(
            "--compute-us drives the prefetch overlap clock and requires --prefetch-depth >= 1"
                .into(),
        );
    }
    let compute = SimDuration::from_micros(
        get("compute-us", "50")
            .parse()
            .map_err(|e| format!("--compute-us: {e}"))?,
    );
    if prefetch_depth > 0 && loader_threads > 1 {
        return Err(
            "--prefetch-depth issues the trace's plan order ahead of a sequential consumer \
             and cannot combine with --loader-threads > 1 (no deterministic plan order on \
             the concurrent path)"
                .into(),
        );
    }
    if loader_threads > 1 {
        if args.contains_key("trace-out") {
            return Err(
                "--trace-out records a per-event stream and requires --loader-threads 1 \
                 (the concurrent path publishes counters, not events)"
                    .into(),
            );
        }
        if args.contains_key("parallel") {
            return Err(
                "--parallel replays policies on worker threads and cannot combine with \
                 --loader-threads; pick one axis of parallelism"
                    .into(),
            );
        }
    }

    let trace = if let Some(path) = args.get("trace") {
        let text = std::fs::read_to_string(path).map_err(|e| format!("--trace {path}: {e}"))?;
        Trace::parse_jsonl(&text).map_err(|e| e.to_string())?
    } else {
        let pattern = match get("pattern", "zipf").as_str() {
            "uniform" => AccessPattern::Uniform,
            "zipf" => AccessPattern::Zipf {
                s: get("skew", "1.1")
                    .parse()
                    .map_err(|e| format!("--skew: {e}"))?,
            },
            "scan" => AccessPattern::Scan,
            "shuffle" => AccessPattern::EpochShuffle,
            other => return Err(format!("unknown pattern `{other}`")),
        };
        pattern
            .generate(universe, requests, JobId(0), seed)
            .map_err(|e| e.to_string())?
    };

    let dataset = DatasetBuilder::new("replay", universe)
        .size_model(SizeModel::Fixed(ByteSize::kib(3)))
        .build()
        .map_err(|e| e.to_string())?;
    let cap = dataset.total_bytes().scaled(cache_frac);

    // iCache needs an importance view; for replay we rank by first-seen
    // popularity in the trace itself (what a warmed-up H-list would hold).
    let hlist = workload::popularity_hlist(&trace, universe);

    println!(
        "replaying {} accesses over {} samples (cache {} = {:.0}%)\n",
        trace.len(),
        universe,
        cap,
        cache_frac * 100.0
    );
    if loader_threads > 1 {
        println!("loader threads: {loader_threads} (one shared cache per policy)\n");
    }
    if prefetch_depth > 0 {
        println!(
            "clairvoyant prefetch: lookahead depth {prefetch_depth}, compute {compute}/sample\n"
        );
    }

    let ctx = ReplayCtx {
        trace: &trace,
        dataset: &dataset,
        hlist: &hlist,
        cap,
        cache_frac,
        seed,
        storage_kind,
        trace_out: args.get("trace-out").map(String::as_str),
        prefetch_depth,
        compute,
    };
    if loader_threads > 1 {
        return run_concurrent(loader_threads, &ctx, args.get("json").map(String::as_str));
    }
    let ctx_ref = &ctx;
    let tasks: Vec<_> = workload::POLICIES
        .iter()
        .map(|&name| move || run_policy(name, ctx_ref))
        .collect();
    let outputs = sweep::run_indexed(tasks, workers);

    let mut policy_summaries: Vec<(String, icache_obs::Json)> = Vec::new();
    let mut out = if prefetch_depth > 0 {
        report::Table::with_columns(&["policy", "hit%", "p50", "p99", "elapsed", "stall"])
    } else {
        report::Table::with_columns(&["policy", "hit%", "p50", "p99", "elapsed"])
    };
    for result in outputs {
        let po = result?;
        out.row(po.row);
        println!("{}", po.line);
        if let Some(note) = po.trace_note {
            println!("{note}");
        }
        policy_summaries.push(po.summary);
    }
    println!();
    println!("{}", out.render());
    if let Some(path) = args.get("json") {
        let summary = icache_obs::Json::Obj(vec![
            (
                "accesses".into(),
                icache_obs::Json::UInt(trace.len() as u64),
            ),
            ("policies".into(), icache_obs::Json::Obj(policy_summaries)),
        ]);
        std::fs::write(path, format!("{summary}\n")).map_err(|e| format!("--json {path}: {e}"))?;
        println!("wrote replay summary to {path}");
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}
