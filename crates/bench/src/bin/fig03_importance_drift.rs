//! Figure 3: the importance value of a sample drifts across epochs.
//!
//! Paper setup: loss-based importance sampling while training ResNet18 on
//! CIFAR-10; the recorded importance of three samples fluctuates and
//! decays as the model's parameters evolve — which is why a static
//! importance snapshot (or LFU-style frequency) misranks samples and the
//! H-heap must be refreshed every epoch.

use icache_baselines::LruCache;
use icache_bench::{banner, BenchEnv};
use icache_dnn::ModelProfile;
use icache_obs::json;
use icache_sim::{report, JobConfig, SamplingMode, TrainingJob};
use icache_storage::{Pfs, PfsConfig};
use icache_types::{JobId, SampleId};

fn main() {
    let env = BenchEnv::from_env();
    banner(
        "Figure 3 — importance drift across epochs",
        "the same sample is re-selected with varying importance values over training",
        &env,
    );

    let dataset = icache_types::Dataset::cifar10()
        .scaled(env.cifar_scale)
        .expect("scale in range");
    let mut cfg = JobConfig::new(JobId(0), ModelProfile::resnet18(), dataset.clone());
    cfg.sampling = SamplingMode::Iis { fraction: 0.7 };
    cfg.epochs = 40.min(env.acc_epochs);
    cfg.seed = env.seed;

    let mut job = TrainingJob::new(cfg).expect("valid config");
    let mut cache = LruCache::new(dataset.total_bytes().scaled(0.2));
    let mut storage = Pfs::new(PfsConfig::orangefs_default()).expect("valid pfs");

    // Track three samples spread across the difficulty spectrum.
    let tracked = [
        SampleId(0),
        SampleId(dataset.len() / 2),
        SampleId(dataset.len() - 1),
    ];
    let mut series: Vec<Vec<f64>> = vec![Vec::new(); tracked.len()];

    while !job.is_done() {
        let before = job.current_epoch();
        job.step(&mut cache, &mut storage);
        if job.current_epoch() != before {
            for (k, &id) in tracked.iter().enumerate() {
                series[k].push(job.importance_table().value(id).get());
            }
        }
    }

    let mut table = report::Table::with_columns(&["epoch", "sample0", "sample1", "sample2"]);
    for (e, ((s0, s1), s2)) in series[0].iter().zip(&series[1]).zip(&series[2]).enumerate() {
        table.row(vec![
            e.to_string(),
            format!("{s0:.3}"),
            format!("{s1:.3}"),
            format!("{s2:.3}"),
        ]);
    }
    println!("{}", table.render());

    for (k, s) in series.iter().enumerate() {
        report::json_line("fig03", &json!({"sample": k, "importance_by_epoch": s}));
        let changes = s.windows(2).filter(|w| (w[0] - w[1]).abs() > 1e-9).count();
        println!(
            "sample{k}: importance changed in {changes}/{} epoch transitions",
            s.len().saturating_sub(1)
        );
    }
    println!();
    println!(
        "shape check: importance values drift epoch to epoch and trend downward as the \
         model converges (paper Fig. 3)"
    );
}
