//! Figure 1: I/O time fraction of total training time vs batch size.
//!
//! Paper setup: four CIFAR-10 models on 4 GPUs behind an LRU cache (20 %)
//! over OrangeFS, batch size 256→2048. Finding: the I/O fraction grows
//! from 44 % to 89 % on average — bigger batches shrink GPU time per
//! sample but not I/O time per sample.

use icache_bench::{banner, BenchEnv};
use icache_dnn::ModelProfile;
use icache_obs::json;
use icache_sim::{report, SystemKind};

fn main() {
    let env = BenchEnv::from_env();
    banner(
        "Figure 1 — I/O fraction vs batch size",
        "I/O fraction rises from 44% to 89% (avg of 4 models) as batch grows 256 -> 2048",
        &env,
    );

    let batches = [256usize, 512, 1024, 2048];
    let mut table = report::Table::with_columns(&["model", "b=256", "b=512", "b=1024", "b=2048"]);
    let mut avgs = vec![0.0f64; batches.len()];

    for model in ModelProfile::cifar_models() {
        let mut cells = vec![model.name().to_string()];
        for (bi, &bs) in batches.iter().enumerate() {
            let m = env
                .cifar(SystemKind::Default)
                .model(model.clone())
                .batch_size(bs)
                .gpus(4)
                .epochs(env.perf_epochs)
                .run()
                .expect("scenario runs");
            let frac: f64 = m.epochs[1..]
                .iter()
                .map(|e| e.stall_fraction())
                .sum::<f64>()
                / (m.epochs.len() - 1) as f64;
            avgs[bi] += frac / 4.0;
            cells.push(report::pct(frac));
            report::json_line(
                "fig01",
                &json!({"model": model.name(), "batch": bs, "io_fraction": frac}),
            );
        }
        table.row(cells);
    }
    let mut avg_row = vec!["AVERAGE".to_string()];
    avg_row.extend(avgs.iter().map(|f| report::pct(*f)));
    table.row(avg_row);

    println!("{}", table.render());
    println!();
    println!(
        "shape check: average I/O fraction should increase monotonically with batch size \
         (paper: 44% at 256 -> 89% at 2048)"
    );
}
