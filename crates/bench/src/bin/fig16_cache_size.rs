//! Figure 16: sensitivity to cache size.
//!
//! Paper findings (ResNet18/CIFAR-10): iCache keeps ≥1.7× speedup as the
//! cache grows from 20 % to 80 % of the dataset, and even at 80 % its hit
//! ratio remains ~1.7× Default's.

use icache_bench::{banner, sweep, BenchEnv};
use icache_dnn::ModelProfile;
use icache_obs::json;
use icache_sim::{report, SystemKind};

fn main() {
    let env = BenchEnv::from_env();
    banner(
        "Figure 16 — cache-size sweep (ResNet18/CIFAR-10)",
        "iCache >=1.7x speedup from 20% to 80% cache; hit-ratio advantage persists",
        &env,
    );

    let sizes = [0.2f64, 0.4, 0.6, 0.8];
    let mut table = report::Table::with_columns(&[
        "cache",
        "Default",
        "iCache",
        "speedup",
        "Default hit",
        "iCache hit",
    ]);

    // Independent sweep points on worker threads; rendered in point order
    // afterwards so output matches the sequential loop byte for byte.
    let results = sweep::map(&sizes, sweep::default_workers(), |_idx, &frac| {
        let run = |sys: SystemKind| {
            env.cifar(sys)
                .model(ModelProfile::resnet18())
                .cache_fraction(frac)
                .epochs(env.perf_epochs)
                .run()
                .expect("runs")
        };
        (run(SystemKind::Default), run(SystemKind::Icache))
    });

    for (&frac, (d, i)) in sizes.iter().zip(&results) {
        let dt = d.avg_epoch_time_steady().as_secs_f64();
        let it = i.avg_epoch_time_steady().as_secs_f64();
        table.row(vec![
            report::pct(frac),
            report::secs(dt),
            report::secs(it),
            report::speedup(dt, it),
            report::pct(d.avg_hit_ratio_steady()),
            report::pct(i.avg_hit_ratio_steady()),
        ]);
        report::json_line(
            "fig16",
            &json!({"cache_fraction": frac,
                    "default_seconds": dt, "icache_seconds": it,
                    "default_hit": d.avg_hit_ratio_steady(),
                    "icache_hit": i.avg_hit_ratio_steady()}),
        );
    }

    println!("{}", table.render());
    println!();
    println!(
        "shape check: speedup stays well above 1 at every size; both hit ratios grow with \
         capacity but iCache's stays ahead (paper: >=1.7x at 80%)"
    );
}
