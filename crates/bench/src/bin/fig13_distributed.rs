//! Figure 13: multi-server distributed training on NFS.
//!
//! Paper setup: 2 and 4 cloud servers, one GPU each, per-node cache of
//! 20 % of the dataset, data on an NFS server (~10 Gb/s). Findings:
//! iCache speeds up ResNet18/ResNet50 by ≥8.6× (2 servers) and ≥7.6×
//! (4 servers); 4-server training is ~1.5× faster than 2-server; the
//! *relative* speedup shrinks with more servers because the joint cache
//! is already large.

use icache_baselines::LruCache;
use icache_bench::{banner, sweep, BenchEnv};
use icache_core::{CacheSystem, DistributedCache, DistributedConfig};
use icache_dnn::ModelProfile;
use icache_obs::json;
use icache_sim::{report, run_multi_job, JobConfig, PerJobCache, SamplingMode};
use icache_storage::{Nfs, NfsConfig};
use icache_types::{JobId, SimDuration};

fn job_configs(
    model: &ModelProfile,
    dataset: &icache_types::Dataset,
    nodes: u32,
    iis: bool,
    epochs: u32,
    seed: u64,
) -> Vec<JobConfig> {
    (0..nodes)
        .map(|k| {
            let mut c = JobConfig::new(JobId(k), model.clone(), dataset.clone());
            c.epochs = epochs;
            c.shard = Some((k, nodes));
            // All shards must plan the same epoch, so they share a seed.
            c.seed = seed;
            if iis {
                c.sampling = SamplingMode::Iis { fraction: 0.7 };
            }
            c
        })
        .collect()
}

fn slowest_epoch(metrics: &[icache_sim::RunMetrics]) -> f64 {
    metrics
        .iter()
        .map(|m| m.avg_epoch_time_steady())
        .fold(SimDuration::ZERO, SimDuration::max)
        .as_secs_f64()
}

fn main() {
    let env = BenchEnv::from_env();
    banner(
        "Figure 13 — distributed training on NFS (2 and 4 servers)",
        "iCache >> Default on NFS; 4-server faster than 2-server; relative speedup shrinks at 4S",
        &env,
    );

    let dataset = icache_types::Dataset::cifar10()
        .scaled(env.cifar_scale)
        .expect("scale in range");

    let mut table =
        report::Table::with_columns(&["model", "servers", "Default", "iCache", "speedup"]);
    let mut speedups: Vec<(u32, f64)> = Vec::new();

    // Each (model, cluster-size) point is an independent pair of
    // multi-job simulations; run the points on worker threads and render
    // in point order afterwards so the output matches the sequential
    // loop byte for byte.
    let points: Vec<(ModelProfile, u32)> = [ModelProfile::resnet18(), ModelProfile::resnet50()]
        .into_iter()
        .flat_map(|model| [2u32, 4].into_iter().map(move |n| (model.clone(), n)))
        .collect();
    let results = sweep::map(&points, sweep::default_workers(), |_idx, (model, nodes)| {
        let nodes = *nodes;
        // Default: one private LRU per node, no coordination.
        let mut default_cache = PerJobCache::new(
            (0..nodes)
                .map(|_| {
                    Box::new(LruCache::new(dataset.total_bytes().scaled(0.2)))
                        as Box<dyn CacheSystem>
                })
                .collect(),
        );
        let mut nfs = Nfs::new(NfsConfig::cloud_default()).expect("valid nfs");
        let default = run_multi_job(
            job_configs(model, &dataset, nodes, false, env.perf_epochs, env.seed),
            &mut default_cache,
            &mut nfs,
        )
        .expect("runs");

        // iCache: the distributed cache with a shared directory.
        let mut icache_cache = DistributedCache::new(
            DistributedConfig::for_dataset(&dataset, nodes as usize, 0.2).expect("valid cluster"),
            &dataset,
        )
        .expect("valid cluster");
        let mut nfs = Nfs::new(NfsConfig::cloud_default()).expect("valid nfs");
        let icache = run_multi_job(
            job_configs(model, &dataset, nodes, true, env.perf_epochs, env.seed),
            &mut icache_cache,
            &mut nfs,
        )
        .expect("runs");

        (
            slowest_epoch(&default),
            slowest_epoch(&icache),
            icache_cache.remote_hits(),
        )
    });

    for ((model, nodes), &(d, i, remote_hits)) in points.iter().zip(&results) {
        let nodes = *nodes;
        speedups.push((nodes, d / i));
        table.row(vec![
            model.name().to_string(),
            format!("{nodes}S"),
            report::secs(d),
            report::secs(i),
            report::speedup(d, i),
        ]);
        report::json_line(
            "fig13",
            &json!({"model": model.name(), "servers": nodes,
                    "default_seconds": d, "icache_seconds": i,
                    "remote_cache_hits": remote_hits}),
        );
    }

    println!("{}", table.render());
    println!();
    let s2: f64 = speedups
        .iter()
        .filter(|(n, _)| *n == 2)
        .map(|(_, s)| s)
        .sum::<f64>()
        / 2.0;
    let s4: f64 = speedups
        .iter()
        .filter(|(n, _)| *n == 4)
        .map(|(_, s)| s)
        .sum::<f64>()
        / 2.0;
    println!("mean speedup: 2S {s2:.2}x, 4S {s4:.2}x (paper: >=8.6x and >=7.6x; shape: 2S >= 4S)");
    println!("shape check: iCache much faster on NFS; speedup at 4 servers below 2 servers");
}
