//! Figure 9: I/O (data-stall) time per epoch on CIFAR-10.
//!
//! Paper findings: iCache reduces I/O time by 2.4× on average over
//! Default, vs 1.2×/1.3×/1.4× for Quiver/CoorDL/iLFU — and Base is 1.3×
//! *worse* than Default because CIS shrinks the compute that used to hide
//! I/O.

use icache_bench::{banner, BenchEnv};
use icache_dnn::ModelProfile;
use icache_obs::json;
use icache_sim::{report, SystemKind};

fn main() {
    let env = BenchEnv::from_env();
    banner(
        "Figure 9 — I/O time per epoch (CIFAR-10)",
        "iCache cuts I/O 2.4x on average; Quiver/CoorDL/iLFU manage 1.2-1.4x; Base is worse than Default",
        &env,
    );

    let systems = [
        SystemKind::Default,
        SystemKind::Base,
        SystemKind::Quiver,
        SystemKind::CoorDl,
        SystemKind::Ilfu,
        SystemKind::Icache,
    ];
    let mut header: Vec<&str> = vec!["model"];
    header.extend(systems.iter().map(|s| s.label()));
    header.push("iCache-io-speedup");
    let mut table = report::Table::new(header.iter().map(|s| s.to_string()).collect());

    let mut avg_speedup = 0.0;
    for model in ModelProfile::cifar_models() {
        let mut cells = vec![model.name().to_string()];
        let mut stalls = Vec::new();
        for &sys in &systems {
            let m = env
                .cifar(sys)
                .model(model.clone())
                .epochs(env.perf_epochs)
                .run()
                .expect("runs");
            let t = m.avg_stall_time_steady().as_secs_f64();
            stalls.push(t);
            cells.push(report::secs(t));
        }
        let sp = stalls[0] / stalls[5].max(1e-12);
        avg_speedup += sp / 4.0;
        cells.push(format!("{sp:.2}x"));
        table.row(cells);
        report::json_line(
            "fig09",
            &json!({
                "model": model.name(),
                "systems": systems.iter().map(|s| s.label()).collect::<Vec<_>>(),
                "stall_seconds": stalls,
            }),
        );
    }

    println!("{}", table.render());
    println!();
    println!("average iCache I/O-time speedup over Default: {avg_speedup:.2}x (paper: 2.4x)");
    println!("shape check: iCache largest reduction; Base >= Default stall time");
}
