//! Figure 2: computing-oriented importance sampling (CIS) helps on local
//! tmpfs but not against remote storage.
//!
//! Paper setup: four CIFAR-10 models, one GPU, batch 256. With the data in
//! a local DRAM tmpfs CIS cuts compute 1.3× and total time 1.2×; against
//! remote OrangeFS behind an LRU cache the total speedup collapses to
//! ~1.02× because I/O, which CIS cannot reduce, dominates.

use icache_bench::{banner, BenchEnv};
use icache_dnn::ModelProfile;
use icache_obs::json;
use icache_sim::{report, StorageKind, SystemKind};

fn main() {
    let env = BenchEnv::from_env();
    banner(
        "Figure 2 — CIS on tmpfs vs remote PFS",
        "CIS: 1.2x total on tmpfs but only ~1.02x total on remote OrangeFS",
        &env,
    );

    let mut table = report::Table::with_columns(&[
        "model",
        "tmpfs compute-speedup",
        "tmpfs total-speedup",
        "pfs total-speedup",
    ]);

    for model in ModelProfile::cifar_models() {
        let run = |system: SystemKind, storage: StorageKind| {
            env.cifar(system)
                .model(model.clone())
                .storage(storage)
                .epochs(env.perf_epochs)
                .run()
                .expect("scenario runs")
        };
        let tmpfs_default = run(SystemKind::Default, StorageKind::Tmpfs);
        let tmpfs_cis = run(SystemKind::Base, StorageKind::Tmpfs);
        let pfs_default = run(SystemKind::Default, StorageKind::OrangeFs);
        let pfs_cis = run(SystemKind::Base, StorageKind::OrangeFs);

        let compute = |m: &icache_sim::RunMetrics| {
            m.epochs[1..]
                .iter()
                .map(|e| e.compute_time)
                .sum::<icache_types::SimDuration>()
        };
        let compute_speedup =
            compute(&tmpfs_default).as_secs_f64() / compute(&tmpfs_cis).as_secs_f64();
        let tmpfs_speedup = tmpfs_default.avg_epoch_time_steady().as_secs_f64()
            / tmpfs_cis.avg_epoch_time_steady().as_secs_f64();
        let pfs_speedup = pfs_default.avg_epoch_time_steady().as_secs_f64()
            / pfs_cis.avg_epoch_time_steady().as_secs_f64();

        table.row(vec![
            model.name().to_string(),
            format!("{compute_speedup:.2}x"),
            format!("{tmpfs_speedup:.2}x"),
            format!("{pfs_speedup:.2}x"),
        ]);
        report::json_line(
            "fig02",
            &json!({
                "model": model.name(),
                "tmpfs_compute_speedup": compute_speedup,
                "tmpfs_total_speedup": tmpfs_speedup,
                "pfs_total_speedup": pfs_speedup,
            }),
        );
    }

    println!("{}", table.render());
    println!();
    println!(
        "shape check: CIS total speedup should be clearly > 1 on tmpfs but ~1.0 on the PFS \
         (paper: 1.2x vs 1.02x)"
    );
}
