//! `icache_sim` — run any single-job scenario from the command line.
//!
//! ```sh
//! cargo run --release -p icache-bench --bin icache_sim -- \
//!     --system icache --model shufflenet --dataset cifar10 \
//!     --scale 0.1 --epochs 5 --cache 0.2 --storage orangefs
//! ```
//!
//! Flags (all optional):
//!
//! | flag | default | values |
//! |---|---|---|
//! | `--system` | `icache` | default, base, iis-lru, quiver, coordl, ilfu, icache-nol, icache, icache-nosub, icache-subh, oracle |
//! | `--model` | `shufflenet` | any of the paper's eight model names |
//! | `--dataset` | `cifar10` | cifar10, imagenet |
//! | `--storage` | `orangefs` | orangefs, nfs, tmpfs, ssd |
//! | `--criterion` | `loss` | loss, gradnorm, staleness |
//! | `--scale` | `0.1` | dataset fraction in (0, 1] |
//! | `--cache` | `0.2` | cache fraction of the dataset |
//! | `--epochs` | `5` | epochs to run |
//! | `--batch` | `256` | mini-batch size |
//! | `--workers` | `6` | data-loader workers |
//! | `--gpus` | `1` | data-parallel GPUs |
//! | `--prefetch-depth` | `0` | clairvoyant prefetch lookahead depth (DESIGN.md §11); `0` disables the pipeline and is byte-identical to the pre-prefetch driver |
//! | `--nodes` | `1` | cluster nodes; `>= 2` runs the distributed iCache (one sharded job per node, requires `--system icache`) |
//! | `--seed` | `0x5EED` | run seed |
//! | `--json` | - | write the machine-readable run summary (per-epoch metrics + counters + latency histograms) to this JSON path |
//! | `--trace` | - | write the structured event trace (one JSON object per line) to this JSONL path |
//! | `--csv` | - | also write per-epoch metrics to this CSV path |
//!
//! Churn flags (all require `--nodes N` with N ≥ 2; any of them switches
//! the run onto the full sharded [`icache_core::CacheService`] with the
//! heartbeat failure detector and repartitioning directory enabled):
//!
//! | flag | default | meaning |
//! |---|---|---|
//! | `--kill-node` | - | `i@e`: crash node `i` midway through epoch `e` |
//! | `--rejoin` | off | bring the killed node back at the start of epoch `e+1` |
//! | `--cold` | off | rejoin with an empty cache instead of replaying the recovery index |
//! | `--race` | off | race remote cache reads against a hedged local storage fetch |
//! | `--net-latency` | - | per-link latency override in microseconds (control and data planes) |
//! | `--recovery-dir` | - | write `node<i>.recovery` index files under this directory |
//!
//! `--trace` and `--json` output is deterministic: the same configuration
//! and seed produce byte-identical files.
//!
//! With `--nodes N` (N ≥ 2) the trace carries rank-0 `epoch_start` /
//! `epoch_end` markers and the JSON summary gains a `"nodes"` array with
//! each rank's `local_hits` / `remote_hits` / `storage_fetches` counters.
//! Churn runs additionally print a `churn:` summary line (kills, rejoins,
//! repartition moves, recovery counters) and carry `svc.*` counters plus
//! `membership_change` / `partition_update` / `warm_recovery` events in
//! the JSON and trace outputs.

use icache_dnn::ModelProfile;
use icache_sampling::ImportanceCriterion;
use icache_sim::{report, ChurnSpec, Scenario, StorageKind, SystemKind};
use icache_types::{Epoch, SimDuration};
use std::collections::HashMap;
use std::process::ExitCode;

/// Flags that take no value; their presence means "on".
const BOOL_FLAGS: &[&str] = &["rejoin", "cold", "race"];

fn parse_args() -> Result<HashMap<String, String>, String> {
    let mut out = HashMap::new();
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let Some(key) = flag.strip_prefix("--") else {
            return Err(format!(
                "unexpected argument `{flag}` (flags start with --)"
            ));
        };
        if key == "help" {
            return Err("see the flag table in the module docs (src/bin/icache_sim.rs)".into());
        }
        if BOOL_FLAGS.contains(&key) {
            out.insert(key.to_string(), "on".to_string());
            continue;
        }
        let Some(value) = args.next() else {
            return Err(format!("flag --{key} needs a value"));
        };
        out.insert(key.to_string(), value);
    }
    Ok(out)
}

/// The churn spec implied by the churn flag group, or `None` when no
/// churn flag was given (plain runs keep the compatibility facade and
/// its byte-identical output).
fn churn_of(args: &HashMap<String, String>) -> Result<Option<ChurnSpec>, String> {
    const CHURN_FLAGS: &[&str] = &[
        "kill-node",
        "rejoin",
        "cold",
        "race",
        "net-latency",
        "recovery-dir",
    ];
    if !CHURN_FLAGS.iter().any(|k| args.contains_key(*k)) {
        return Ok(None);
    }
    let mut spec = ChurnSpec::default();
    if let Some(raw) = args.get("kill-node") {
        let (node, epoch) = raw
            .split_once('@')
            .ok_or_else(|| format!("--kill-node: expected `node@epoch`, got `{raw}`"))?;
        let node = node
            .parse::<u32>()
            .map_err(|e| format!("--kill-node node: {e}"))?;
        let epoch = epoch
            .parse::<u32>()
            .map_err(|e| format!("--kill-node epoch: {e}"))?;
        spec.kill = Some((node, Epoch(epoch)));
    }
    spec.rejoin = args.contains_key("rejoin");
    spec.warm = !args.contains_key("cold");
    spec.race = args.contains_key("race");
    if spec.rejoin && spec.kill.is_none() {
        return Err("--rejoin needs --kill-node i@e (nothing to rejoin)".into());
    }
    if let Some(raw) = args.get("net-latency") {
        let micros = raw
            .parse::<u64>()
            .map_err(|e| format!("--net-latency: {e}"))?;
        spec.net_latency = Some(SimDuration::from_micros(micros));
    }
    if let Some(dir) = args.get("recovery-dir") {
        spec.recovery_dir = Some(std::path::PathBuf::from(dir));
    }
    Ok(Some(spec))
}

fn system_of(name: &str) -> Result<SystemKind, String> {
    Ok(match name {
        "default" => SystemKind::Default,
        "base" => SystemKind::Base,
        "iis-lru" => SystemKind::IisLru,
        "quiver" => SystemKind::Quiver,
        "coordl" => SystemKind::CoorDl,
        "ilfu" => SystemKind::Ilfu,
        "icache-nol" => SystemKind::IcacheNoL,
        "icache" => SystemKind::Icache,
        "icache-nosub" => SystemKind::IcacheNoSub,
        "icache-subh" => SystemKind::IcacheSubH,
        "oracle" => SystemKind::Oracle,
        other => return Err(format!("unknown system `{other}`")),
    })
}

fn storage_of(name: &str) -> Result<StorageKind, String> {
    Ok(match name {
        "orangefs" => StorageKind::OrangeFs,
        "nfs" => StorageKind::Nfs,
        "tmpfs" => StorageKind::Tmpfs,
        "ssd" => StorageKind::NvmeSsd,
        other => return Err(format!("unknown storage `{other}`")),
    })
}

fn criterion_of(name: &str) -> Result<ImportanceCriterion, String> {
    Ok(match name {
        "loss" => ImportanceCriterion::Loss,
        "gradnorm" => ImportanceCriterion::GradNorm,
        "staleness" => ImportanceCriterion::Staleness,
        other => return Err(format!("unknown criterion `{other}`")),
    })
}

fn run() -> Result<(), String> {
    let args = parse_args()?;
    let get = |k: &str, d: &str| args.get(k).cloned().unwrap_or_else(|| d.to_string());
    let parse_f64 = |k: &str, d: &str| get(k, d).parse::<f64>().map_err(|e| format!("--{k}: {e}"));
    let parse_usize = |k: &str, d: &str| {
        get(k, d)
            .parse::<usize>()
            .map_err(|e| format!("--{k}: {e}"))
    };

    let system = system_of(&get("system", "icache"))?;
    let model = ModelProfile::by_name(&get("model", "shufflenet")).map_err(|e| e.to_string())?;
    let base = match get("dataset", "cifar10").as_str() {
        "cifar10" => Scenario::cifar10(system),
        "imagenet" => Scenario::imagenet(system),
        other => return Err(format!("unknown dataset `{other}`")),
    };
    let seed = {
        let raw = get("seed", "24301");
        match raw.strip_prefix("0x") {
            Some(hex) => u64::from_str_radix(hex, 16).map_err(|e| format!("--seed: {e}"))?,
            None => raw.parse::<u64>().map_err(|e| format!("--seed: {e}"))?,
        }
    };

    let scenario = base
        .model(model)
        .storage(storage_of(&get("storage", "orangefs"))?)
        .criterion(criterion_of(&get("criterion", "loss"))?)
        .scale_dataset(parse_f64("scale", "0.1")?)
        .map_err(|e| e.to_string())?
        .cache_fraction(parse_f64("cache", "0.2")?)
        .epochs(parse_usize("epochs", "5")? as u32)
        .batch_size(parse_usize("batch", "256")?)
        .workers(parse_usize("workers", "6")?)
        .gpus(parse_usize("gpus", "1")?)
        .prefetch_depth(parse_usize("prefetch-depth", "0")?)
        .seed(seed);
    let prefetch_depth = parse_usize("prefetch-depth", "0")?;
    let nodes = parse_usize("nodes", "1")?;
    let churn = churn_of(&args)?;
    if churn.is_some() && nodes < 2 {
        return Err("churn flags (--kill-node/--rejoin/--cold/--race/--net-latency/--recovery-dir) need --nodes N with N >= 2".into());
    }
    if let Some(spec) = &churn {
        if let Some((node, _)) = spec.kill {
            if node as usize >= nodes {
                return Err(format!(
                    "--kill-node: node {node} does not exist in a {nodes}-node cluster"
                ));
            }
        }
    }

    println!(
        "running {} ({}) on {}{} ...\n",
        system.label(),
        get("model", "shufflenet"),
        scenario.dataset_ref(),
        if nodes >= 2 {
            format!(" across {nodes} nodes")
        } else {
            String::new()
        }
    );
    if prefetch_depth > 0 {
        println!("clairvoyant prefetch: lookahead depth {prefetch_depth}\n");
    }
    let obs = icache_obs::Obs::new();
    let mut service = None;
    let runs = if nodes >= 2 {
        match &churn {
            Some(spec) => {
                let (runs, svc) = scenario
                    .run_distributed_churn_with_obs(nodes as u32, spec, &obs)
                    .map_err(|e| e.to_string())?;
                service = Some(svc);
                runs
            }
            None => scenario
                .run_distributed_with_obs(nodes as u32, &obs)
                .map_err(|e| e.to_string())?,
        }
    } else {
        vec![scenario.run_with_obs(&obs).map_err(|e| e.to_string())?]
    };
    let metrics = &runs[0];

    let mut table = report::Table::with_columns(&[
        "epoch", "wall", "stall", "compute", "fetched", "hit%", "p50", "p99", "top1", "top5",
    ]);
    for e in &metrics.epochs {
        table.row(vec![
            e.epoch.0.to_string(),
            format!("{}", e.wall_time),
            format!("{}", e.stall_time),
            format!("{}", e.compute_time),
            e.samples_fetched.to_string(),
            format!("{:.1}", e.hit_ratio() * 100.0),
            format!("{}", e.fetch_p50),
            format!("{}", e.fetch_p99),
            format!("{:.2}", e.top1),
            format!("{:.2}", e.top5),
        ]);
    }
    println!("{}", table.render());
    if nodes >= 2 {
        let mut nt = report::Table::with_columns(&["node", "local", "remote", "storage"]);
        for i in 0..nodes {
            let c = |s: &str| obs.counter(&format!("dist.node{i}.{s}")).to_string();
            nt.row(vec![
                i.to_string(),
                c("local_hits"),
                c("remote_hits"),
                c("storage_fetches"),
            ]);
        }
        println!("\nper-node fetch classification:\n{}", nt.render());
    }
    if let Some(svc) = &service {
        let c = |k: &str| obs.counter(k);
        println!(
            "\nchurn: kills={} rejoins={} moved={} purged={} warm_restarts={} \
             cold_restarts={} restored={} recovery_bytes={}",
            c("svc.kills"),
            c("svc.rejoins"),
            c("svc.repartition.moved"),
            c("svc.repartition.purged"),
            c("svc.recovery.warm_restarts"),
            c("svc.recovery.cold_restarts"),
            c("svc.recovery.restored_samples"),
            c("svc.recovery.bytes"),
        );
        println!(
            "membership: live={:?}  partition_version={}  directory_entries={}",
            svc.live_nodes().iter().map(|n| n.0).collect::<Vec<_>>(),
            svc.partition_version(),
            svc.directory_len(),
        );
    }
    if let Some(path) = args.get("csv") {
        std::fs::write(path, report::run_metrics_csv(metrics))
            .map_err(|e| format!("--csv {path}: {e}"))?;
        println!("wrote per-epoch CSV to {path}");
    }
    if let Some(path) = args.get("trace") {
        std::fs::write(path, obs.trace_jsonl()).map_err(|e| format!("--trace {path}: {e}"))?;
        println!(
            "wrote {} trace events to {path} ({} emitted, {} dropped by the ring)",
            obs.trace_len(),
            obs.trace_emitted(),
            obs.trace_dropped()
        );
    }
    if let Some(path) = args.get("json") {
        let summary = if nodes >= 2 {
            report::run_summary_distributed(&runs, &obs, nodes)
        } else {
            report::run_summary(&runs, &obs)
        };
        std::fs::write(path, format!("{summary}\n")).map_err(|e| format!("--json {path}: {e}"))?;
        println!("wrote run summary to {path}");
    }
    println!();
    println!(
        "steady-state epoch: {}   stall: {}   hit ratio: {:.1}%   final top-1: {:.2}",
        metrics.avg_epoch_time_steady(),
        metrics.avg_stall_time_steady(),
        metrics.avg_hit_ratio_steady() * 100.0,
        metrics.final_top1()
    );
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!("run with no flags for defaults; see the module docs for the flag table");
            ExitCode::FAILURE
        }
    }
}
