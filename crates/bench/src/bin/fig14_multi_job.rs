//! Figure 14: multi-job training on a shared cache.
//!
//! Paper setup: ShuffleNet and ResNet50 train concurrently on the same
//! CIFAR-10 dataset and share the cache. Schemes: Default (LRU), INDA
//! (cache managed by ShuffleNet's importance only), INDB (by ResNet50's),
//! and iCache's multi-job coordination. Findings: each IND* favours its
//! own model and penalises the other; iCache's benefit-weighted AIV gives
//! the best completion time (1.1×/1.2× over INDA/INDB) and a higher hit
//! ratio to the more I/O-bound ShuffleNet.

use icache_baselines::LruCache;
use icache_bench::{banner, BenchEnv};
use icache_core::{CacheSystem, IcacheConfig, IcacheManager};
use icache_dnn::ModelProfile;
use icache_obs::json;
use icache_sim::{report, run_multi_job, JobConfig, RunMetrics, SamplingMode};
use icache_storage::{Pfs, PfsConfig};
use icache_types::{Dataset, JobId};

fn jobs(dataset: &Dataset, epochs: u32, seed: u64, iis: bool) -> Vec<JobConfig> {
    let mut a = JobConfig::new(JobId(0), ModelProfile::shufflenet(), dataset.clone());
    let mut b = JobConfig::new(JobId(1), ModelProfile::resnet50(), dataset.clone());
    for (i, c) in [&mut a, &mut b].into_iter().enumerate() {
        c.epochs = epochs;
        c.seed = seed ^ (i as u64 + 1).wrapping_mul(0x9E37_79B9);
        if iis {
            c.sampling = SamplingMode::Iis { fraction: 0.7 };
        }
    }
    vec![a, b]
}

fn run_scheme(
    name: &str,
    dataset: &Dataset,
    mut cache: Box<dyn CacheSystem>,
    epochs: u32,
    seed: u64,
    iis: bool,
) -> Vec<RunMetrics> {
    let mut pfs = Pfs::new(PfsConfig::orangefs_default()).expect("valid pfs");
    let out = run_multi_job(jobs(dataset, epochs, seed, iis), cache.as_mut(), &mut pfs)
        .unwrap_or_else(|e| panic!("{name}: {e}"));
    out
}

fn main() {
    let env = BenchEnv::from_env();
    banner(
        "Figure 14 — multi-job shared cache (ShuffleNet + ResNet50)",
        "iCache's coordination beats INDA/INDB by 1.1x/1.2x on completion; ShuffleNet gets the higher hit ratio",
        &env,
    );

    let dataset = Dataset::cifar10()
        .scaled(env.cifar_scale)
        .expect("scale in range");
    let cap_frac = 0.2;
    let epochs = env.perf_epochs;

    let icache_variant = |filter: Option<JobId>, multi_job: bool| -> Box<dyn CacheSystem> {
        let mut cfg = IcacheConfig::for_dataset(&dataset, cap_frac).expect("valid config");
        cfg.seed = env.seed;
        cfg.hlist_filter = filter;
        cfg.multi_job = multi_job;
        // The probe must fit comfortably inside one (scaled) epoch.
        cfg.probe_samples = (dataset.len() / 20).max(64);
        Box::new(IcacheManager::new(cfg, &dataset).expect("valid manager"))
    };

    let schemes: Vec<(&str, Box<dyn CacheSystem>, bool)> = vec![
        (
            "Default",
            Box::new(LruCache::new(dataset.total_bytes().scaled(cap_frac))),
            false,
        ),
        ("INDA", icache_variant(Some(JobId(0)), false), true),
        ("INDB", icache_variant(Some(JobId(1)), false), true),
        ("iCache", icache_variant(None, true), true),
    ];

    let mut table = report::Table::with_columns(&[
        "scheme",
        "shufflenet epoch",
        "resnet50 epoch",
        "completion",
        "shufflenet hit",
        "resnet50 hit",
    ]);
    let mut completions = Vec::new();

    for (name, cache, iis) in schemes {
        let out = run_scheme(name, &dataset, cache, epochs, env.seed, iis);
        let t0 = out[0].avg_epoch_time_steady().as_secs_f64();
        let t1 = out[1].avg_epoch_time_steady().as_secs_f64();
        let completion = out[0]
            .total_time()
            .as_secs_f64()
            .max(out[1].total_time().as_secs_f64());
        let hit = |m: &RunMetrics| {
            m.epochs[1..].iter().map(|e| e.job_hit_ratio()).sum::<f64>()
                / (m.epochs.len() - 1) as f64
        };
        completions.push((name, completion));
        table.row(vec![
            name.to_string(),
            report::secs(t0),
            report::secs(t1),
            report::secs(completion),
            report::pct(hit(&out[0])),
            report::pct(hit(&out[1])),
        ]);
        report::json_line(
            "fig14",
            &json!({"scheme": name, "shufflenet_epoch": t0, "resnet50_epoch": t1,
                    "completion": completion,
                    "hits": [hit(&out[0]), hit(&out[1])]}),
        );
    }

    println!("{}", table.render());
    println!();
    let best = completions
        .iter()
        .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
        .expect("non-empty");
    println!("best completion: {} ({})", best.0, report::secs(best.1));
    println!(
        "shape check: IND* each favour one job; iCache has the best completion; \
         ShuffleNet's hit ratio exceeds ResNet50's under iCache"
    );
}
