//! Ablation (paper §VI future work): a persistent-memory victim tier.
//!
//! The paper defers PM to future work; this experiment quantifies it.
//! DRAM evictions from the H-region spill into a PM victim cache and
//! H-misses check PM (≈5 µs + 2.5 GB/s) before going to the PFS (≈600 µs
//! random reads). We sweep the PM size with a deliberately small DRAM
//! cache (5 %) so the tier has misses to catch.

use icache_bench::{banner, BenchEnv};
use icache_core::{IcacheConfig, IcacheManager, PmTierConfig};
use icache_dnn::ModelProfile;
use icache_obs::json;
use icache_sim::{report, run_single_job, JobConfig, SamplingMode};
use icache_storage::{Pfs, PfsConfig};
use icache_types::{Dataset, JobId};

fn main() {
    let env = BenchEnv::from_env();
    banner(
        "Ablation — PM victim tier (§VI future work)",
        "a PM tier behind a small DRAM cache recovers much of a larger DRAM cache's benefit",
        &env,
    );

    let dataset = Dataset::cifar10()
        .scaled(env.cifar_scale)
        .expect("scale in range");
    let pm_fracs: [Option<f64>; 4] = [None, Some(0.1), Some(0.3), Some(0.6)];

    let mut table =
        report::Table::with_columns(&["pm size", "epoch time", "hit ratio", "pm hits/epoch"]);

    for pm in pm_fracs {
        let mut cfg = IcacheConfig::for_dataset(&dataset, 0.05).expect("valid config");
        cfg.seed = env.seed;
        cfg.pm_tier = pm.map(|f| PmTierConfig::optane(dataset.total_bytes().scaled(f)));
        let mut cache = IcacheManager::new(cfg, &dataset).expect("valid manager");
        let mut pfs = Pfs::new(PfsConfig::orangefs_default()).expect("valid pfs");
        let mut job = JobConfig::new(JobId(0), ModelProfile::shufflenet(), dataset.clone());
        job.epochs = env.perf_epochs;
        job.sampling = SamplingMode::Iis { fraction: 0.7 };
        job.seed = env.seed;
        let m = run_single_job(job, &mut cache, &mut pfs).expect("runs");

        let pm_hits = m.epochs[1..].iter().map(|e| e.cache.pm_hits).sum::<u64>() as f64
            / (m.epochs.len() - 1) as f64;
        let label = match pm {
            None => "none (DRAM only)".to_string(),
            Some(f) => format!("{}", dataset.total_bytes().scaled(f)),
        };
        table.row(vec![
            label,
            report::secs(m.avg_epoch_time_steady().as_secs_f64()),
            report::pct(m.avg_hit_ratio_steady()),
            format!("{pm_hits:.0}"),
        ]);
        report::json_line(
            "ablation_pm_tier",
            &json!({"pm_fraction": pm,
                    "epoch_seconds": m.avg_epoch_time_steady().as_secs_f64(),
                    "hit_ratio": m.avg_hit_ratio_steady(),
                    "pm_hits_per_epoch": pm_hits}),
        );
    }

    println!("{}", table.render());
    println!();
    println!(
        "expectation: epoch time drops and hit ratio rises with PM size — the tier converts \
         ~600us storage reads into ~6us PM reads"
    );
}
