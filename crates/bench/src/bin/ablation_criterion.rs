//! Ablation (paper §VI, "Other importance sampling methods"): swap the
//! loss-based criterion for the gradient-norm proxy or the
//! staleness-boosted variant and measure time, hit ratio, and accuracy.

use icache_bench::{banner, BenchEnv};
use icache_dnn::ModelProfile;
use icache_obs::json;
use icache_sampling::ImportanceCriterion;
use icache_sim::{report, SystemKind};

fn main() {
    let env = BenchEnv::from_env();
    banner(
        "Ablation — importance criterion (§VI extension)",
        "iCache works with criteria beyond raw loss; the IIS/caching machinery is criterion-agnostic",
        &env,
    );

    let mut table = report::Table::with_columns(&[
        "criterion",
        "epoch time",
        "hit ratio",
        "top1 @30",
        "top1 delta vs Default",
    ]);

    // Default baseline for the accuracy reference.
    let default = env
        .cifar(SystemKind::Default)
        .model(ModelProfile::resnet18())
        .epochs(30)
        .run()
        .expect("runs");

    for criterion in ImportanceCriterion::all() {
        let m = env
            .cifar(SystemKind::Icache)
            .model(ModelProfile::resnet18())
            .criterion(criterion)
            .epochs(30)
            .run()
            .expect("runs");
        table.row(vec![
            criterion.name().to_string(),
            report::secs(m.avg_epoch_time_steady().as_secs_f64()),
            report::pct(m.avg_hit_ratio_steady()),
            format!("{:.2}", m.final_top1()),
            format!("{:+.2}", m.final_top1() - default.final_top1()),
        ]);
        report::json_line(
            "ablation_criterion",
            &json!({"criterion": criterion.name(),
                    "epoch_seconds": m.avg_epoch_time_steady().as_secs_f64(),
                    "hit_ratio": m.avg_hit_ratio_steady(),
                    "top1": m.final_top1()}),
        );
    }

    println!("{}", table.render());
    println!();
    println!(
        "expectation: all criteria give similar speedups (the cache machinery is \
         criterion-agnostic); gradnorm concentrates selection hardest, staleness explores most"
    );
}
