//! Figure 17 (churn study): node failure and warm recovery in the
//! sharded cache service.
//!
//! Setup: 3 cache nodes training data-parallel on OrangeFS, per-node
//! cache of 20 % of the dataset. Midway through the middle epoch node 1
//! crashes; the heartbeat detector declares it down, the directory
//! repartitions onto the survivors, and at the next epoch start the
//! node rejoins — either **cold** (empty cache) or **warm** (replaying
//! its recovery index from local disk). Findings: churn loses zero
//! training samples (every rank fetches its full shard every epoch),
//! and a warm restart refetches strictly fewer samples from shared
//! storage than a cold one, so the kill-epoch slowdown is smaller.

use icache_bench::{banner, BenchEnv};
use icache_obs::{json, Obs};
use icache_sim::{report, ChurnSpec, RunMetrics, SystemKind};

const NODES: u32 = 3;
const KILLED: u32 = 1;

fn storage_fetches(obs: &Obs) -> u64 {
    (0..NODES)
        .map(|i| obs.counter(&format!("dist.node{i}.storage_fetches")))
        .sum()
}

fn fetched_per_epoch(runs: &[RunMetrics]) -> Vec<u64> {
    let epochs = runs[0].epochs.len();
    (0..epochs)
        .map(|e| runs.iter().map(|m| m.epochs[e].samples_fetched).sum())
        .collect()
}

fn main() {
    let env = BenchEnv::from_env();
    banner(
        "Figure 17 — membership churn: kill mid-epoch, rejoin warm vs cold",
        "crash loses no samples; warm recovery refetches less than cold restart",
        &env,
    );

    let epochs = env.perf_epochs.max(4);
    let kill_epoch = epochs / 2;
    let scenario = |_: &str| env.cifar(SystemKind::Icache).epochs(epochs).batch_size(64);

    // Calm baseline: same cluster, nobody dies.
    let calm_obs = Obs::new();
    let calm = scenario("calm")
        .run_distributed_with_obs(NODES, &calm_obs)
        .expect("calm run");

    let run_churn = |warm: bool| {
        let mut spec = ChurnSpec::kill_and_rejoin(KILLED, kill_epoch);
        spec.warm = warm;
        let obs = Obs::new();
        let (runs, svc) = scenario(if warm { "warm" } else { "cold" })
            .run_distributed_churn_with_obs(NODES, &spec, &obs)
            .expect("churn run");
        assert_eq!(
            svc.live_nodes().len(),
            NODES as usize,
            "the killed node must be back"
        );
        (runs, obs)
    };
    let (cold, cold_obs) = run_churn(false);
    let (warm, warm_obs) = run_churn(true);

    let mut table = report::Table::with_columns(&[
        "variant",
        "kill-epoch wall",
        "steady wall",
        "storage fetches",
        "restored",
    ]);
    let variants: [(&str, &[RunMetrics], &Obs); 3] = [
        ("calm", &calm, &calm_obs),
        ("cold rejoin", &cold, &cold_obs),
        ("warm rejoin", &warm, &warm_obs),
    ];
    for (name, runs, obs) in variants {
        let kill_wall = runs[0].epochs[kill_epoch as usize].wall_time;
        table.row(vec![
            name.to_string(),
            format!("{kill_wall}"),
            report::secs(runs[0].avg_epoch_time_steady().as_secs_f64()),
            storage_fetches(obs).to_string(),
            obs.counter("svc.recovery.restored_samples").to_string(),
        ]);
        report::json_line(
            "fig17",
            &json!({"variant": name,
                    "kill_epoch": kill_epoch,
                    "storage_fetches": storage_fetches(obs),
                    "restored_samples": obs.counter("svc.recovery.restored_samples"),
                    "repartition_moved": obs.counter("svc.repartition.moved"),
                    "repartition_purged": obs.counter("svc.repartition.purged"),
                    "fetched_per_epoch": fetched_per_epoch(runs)}),
        );
    }
    println!("{}", table.render());
    println!();

    let lost = fetched_per_epoch(&calm) != fetched_per_epoch(&warm)
        || fetched_per_epoch(&calm) != fetched_per_epoch(&cold);
    let saved = storage_fetches(&cold_obs) as i64 - storage_fetches(&warm_obs) as i64;
    println!(
        "samples lost to churn: {}   warm saves {saved} storage fetches over cold",
        if lost { "YES (bug!)" } else { "zero" }
    );
    println!(
        "shape check: zero lost samples; warm restart refetches strictly fewer than cold ({})",
        if saved > 0 { "holds" } else { "VIOLATED" }
    );
}
