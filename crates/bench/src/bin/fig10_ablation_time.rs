//! Figure 10: contribution of each iCache technique to training time.
//!
//! Paper setup: ShuffleNet and ResNet50 on CIFAR-10, variants stacked on
//! Base (CIS + LRU): `+IIS` (fetch-reducing sampling), `+HC` (importance-
//! managed H-cache), `All` (L-cache enabled too). Paper speedups over
//! Base for ShuffleNet: 1.4× / 1.7× / 2.3×.

use icache_bench::{banner, BenchEnv};
use icache_dnn::ModelProfile;
use icache_obs::json;
use icache_sim::{report, SystemKind};

fn main() {
    let env = BenchEnv::from_env();
    banner(
        "Figure 10 — ablation of iCache techniques (training time)",
        "over Base: +IIS 1.4x, +HC 1.7x, All 2.3x (ShuffleNet); similar trend for ResNet50",
        &env,
    );

    let variants = [
        SystemKind::Base,
        SystemKind::IisLru,
        SystemKind::IcacheNoL,
        SystemKind::Icache,
    ];
    let labels = ["Base", "+IIS", "+HC", "All"];

    let mut table =
        report::Table::with_columns(&["model", "variant", "epoch time", "speedup vs Base"]);

    for model in [ModelProfile::shufflenet(), ModelProfile::resnet50()] {
        let mut base_time = 0.0;
        for (i, &sys) in variants.iter().enumerate() {
            let m = env
                .cifar(sys)
                .model(model.clone())
                .epochs(env.perf_epochs)
                .run()
                .expect("runs");
            let t = m.avg_epoch_time_steady().as_secs_f64();
            if i == 0 {
                base_time = t;
            }
            table.row(vec![
                if i == 0 {
                    model.name().to_string()
                } else {
                    String::new()
                },
                labels[i].to_string(),
                report::secs(t),
                report::speedup(base_time, t),
            ]);
            report::json_line(
                "fig10",
                &json!({"model": model.name(), "variant": labels[i], "epoch_seconds": t,
                        "speedup_vs_base": base_time / t}),
            );
        }
    }

    println!("{}", table.render());
    println!();
    println!("shape check: monotone speedup Base < +IIS < +HC < All (paper: 1 / 1.4 / 1.7 / 2.3)");
}
