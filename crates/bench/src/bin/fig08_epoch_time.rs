//! Figure 8: average training time per epoch — all eight models against
//! the full system lineup.
//!
//! Paper findings: iCache achieves maximum speedups of 2.3×/2.3×/2.0×/
//! 1.9×/1.6× over Default/Base/Quiver/CoorDL/iLFU on CIFAR-10 (and
//! 2.2×/2.1×/1.7×/1.8×/1.5× on ImageNet); Base helps least; iCache is
//! near Oracle for the compute-heavy VGG11/DenseNet121.

use icache_bench::{banner, sweep, BenchEnv};
use icache_dnn::ModelProfile;
use icache_obs::json;
use icache_sim::{report, Scenario, SystemKind};

fn run_family(
    family: &str,
    models: Vec<ModelProfile>,
    base: impl Fn(SystemKind) -> Scenario + Sync,
    epochs: u32,
) {
    let lineup = SystemKind::figure8_lineup();
    let mut header: Vec<&str> = vec!["model"];
    header.extend(lineup.iter().map(|s| s.label()));
    header.push("iCache-speedup");
    let mut table = report::Table::new(header.iter().map(|s| s.to_string()).collect());

    println!("--- {family} (avg epoch time, steady state) ---");
    // One task per (model, system) cell for load balance across worker
    // threads; results come back in submission order, so regrouping by
    // chunks of the lineup restores the per-model rows and the output
    // matches the sequential loop byte for byte.
    let cells_in: Vec<(ModelProfile, SystemKind)> = models
        .iter()
        .flat_map(|m| lineup.iter().map(|&sys| (m.clone(), sys)))
        .collect();
    let times = sweep::map(&cells_in, sweep::default_workers(), |_idx, (model, sys)| {
        base(*sys)
            .model(model.clone())
            .epochs(epochs)
            .run()
            .expect("runs")
            .avg_epoch_time_steady()
            .as_secs_f64()
    });

    for (model, secs) in models.iter().zip(times.chunks(lineup.len())) {
        let mut cells = vec![model.name().to_string()];
        cells.extend(secs.iter().map(|&t| report::secs(t)));
        // iCache is index 5 in the lineup, Default index 0.
        cells.push(report::speedup(secs[0], secs[5]));
        table.row(cells);
        report::json_line(
            "fig08",
            &json!({
                "family": family,
                "model": model.name(),
                "systems": lineup.iter().map(|s| s.label()).collect::<Vec<_>>(),
                "epoch_seconds": secs.to_vec(),
            }),
        );
    }
    println!("{}\n", table.render());
}

fn main() {
    let env = BenchEnv::from_env();
    banner(
        "Figure 8 — per-epoch training time, 8 models x 7 systems",
        "iCache up to 2.3x over Default / 2.0x over Quiver / 1.9x over CoorDL; ~Oracle on VGG11/DenseNet121",
        &env,
    );

    run_family(
        "CIFAR-10",
        ModelProfile::cifar_models(),
        |sys| env.cifar(sys),
        env.perf_epochs,
    );
    run_family(
        "ImageNet",
        ModelProfile::imagenet_models(),
        |sys| env.imagenet(sys),
        env.perf_epochs,
    );

    println!(
        "shape check: iCache fastest after Oracle everywhere; Base ~= Default; \
         ShuffleNet shows the largest speedup; VGG11/DenseNet121 have iCache ~= Oracle"
    );
}
