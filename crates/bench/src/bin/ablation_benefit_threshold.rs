//! Ablation (beyond the paper): multi-job benefit-eligibility threshold.
//!
//! The paper fixes the cache-benefit threshold at 1.5 (§III-D). This
//! sweep shows the trade-off: a threshold near 1.0 admits barely-helped
//! jobs into the AIV aggregation (diluting it), a very high threshold
//! excludes everyone and the cache degenerates to uncoordinated behaviour.

use icache_baselines::LruCache;
use icache_bench::{banner, BenchEnv};
use icache_core::{IcacheConfig, IcacheManager};
use icache_dnn::ModelProfile;
use icache_obs::json;
use icache_sim::{report, run_multi_job, JobConfig, SamplingMode};
use icache_storage::{Pfs, PfsConfig};
use icache_types::{Dataset, JobId};

fn main() {
    let env = BenchEnv::from_env();
    banner(
        "Ablation — benefit threshold (multi-job)",
        "extension experiment: sensitivity of multi-job coordination to the 1.5 eligibility threshold",
        &env,
    );

    let dataset = Dataset::cifar10()
        .scaled(env.cifar_scale)
        .expect("scale in range");
    let thresholds = [1.05f64, 1.5, 3.0, 10.0];

    let jobs = |seed: u64| -> Vec<JobConfig> {
        let mut a = JobConfig::new(JobId(0), ModelProfile::shufflenet(), dataset.clone());
        let mut b = JobConfig::new(JobId(1), ModelProfile::resnet50(), dataset.clone());
        for (i, c) in [&mut a, &mut b].into_iter().enumerate() {
            c.epochs = env.perf_epochs;
            c.sampling = SamplingMode::Iis { fraction: 0.7 };
            c.seed = seed ^ (i as u64 + 1).wrapping_mul(0x9E37_79B9);
        }
        vec![a, b]
    };

    let mut table = report::Table::with_columns(&["threshold", "completion", "job hits"]);

    // Reference: an uncoordinated shared LRU.
    {
        let mut cache = LruCache::new(dataset.total_bytes().scaled(0.2));
        let mut pfs = Pfs::new(PfsConfig::orangefs_default()).expect("valid pfs");
        let out = run_multi_job(jobs(env.seed), &mut cache, &mut pfs).expect("runs");
        let completion = out[0]
            .total_time()
            .as_secs_f64()
            .max(out[1].total_time().as_secs_f64());
        table.row(vec!["(LRU)".into(), report::secs(completion), "-".into()]);
    }

    for &th in &thresholds {
        let mut cfg = IcacheConfig::for_dataset(&dataset, 0.2).expect("valid config");
        cfg.multi_job = true;
        cfg.benefit_threshold = th;
        cfg.probe_samples = 20 * 64;
        cfg.seed = env.seed;
        let mut cache = IcacheManager::new(cfg, &dataset).expect("valid manager");
        let mut pfs = Pfs::new(PfsConfig::orangefs_default()).expect("valid pfs");
        let out = run_multi_job(jobs(env.seed), &mut cache, &mut pfs).expect("runs");
        let completion = out[0]
            .total_time()
            .as_secs_f64()
            .max(out[1].total_time().as_secs_f64());
        let hits: Vec<String> = out
            .iter()
            .map(|m| {
                report::pct(
                    m.epochs[1..].iter().map(|e| e.job_hit_ratio()).sum::<f64>()
                        / (m.epochs.len() - 1) as f64,
                )
            })
            .collect();
        table.row(vec![
            format!("{th:.2}"),
            report::secs(completion),
            hits.join(" / "),
        ]);
        report::json_line(
            "ablation_benefit_threshold",
            &json!({"threshold": th, "completion_seconds": completion}),
        );
    }

    println!("{}", table.render());
    println!();
    println!(
        "expectation: moderate thresholds (~1.5) do best; extreme thresholds lose coordination"
    );
}
