//! The shared replay workload: the five-policy cache lineup driven by
//! `icache_replay` and `bench_snapshot`.
//!
//! Both binaries replay one read-only [`Trace`] through every policy;
//! this module owns the policy lineup and construction so the CLI tool
//! and the perf-snapshot recorder cannot drift apart. Policies are built
//! from plain `&str` names (each build is cheap and self-contained), so
//! a sweep task can construct its cache inside the worker thread — the
//! `dyn CacheSystem` trait object never crosses a thread boundary.

use icache_baselines::{IlfuCache, LruCache, MinIoCache, QuiverCache};
use icache_core::{
    CacheSystem, ConcurrentCache, ConcurrentManager, IcacheConfig, IcacheManager, MutexCache,
};
use icache_sampling::{HList, ImportanceTable};
use icache_sim::replay::Trace;
use icache_types::{ByteSize, Dataset, JobId, SampleId};
use std::collections::HashMap;

/// The replay lineup, in report order.
pub const POLICIES: [&str; 5] = ["lru", "coordl", "ilfu", "quiver", "icache"];

/// Rank samples by first-seen popularity in the trace itself (what a
/// warmed-up H-list would hold) and keep the top half as H-samples —
/// iCache's importance view for trace replay.
pub fn popularity_hlist(trace: &Trace, universe: u64) -> HList {
    let mut popularity: HashMap<u64, f64> = HashMap::new();
    for r in trace.records() {
        *popularity.entry(r.sample.0).or_insert(0.0) += 1.0;
    }
    let mut table = ImportanceTable::new(universe);
    for (&id, &count) in &popularity {
        table.record_loss(SampleId(id), count);
    }
    HList::top_fraction(&table, 0.5)
}

/// Build one policy of the lineup.
///
/// # Errors
///
/// Returns a message for an unknown policy name or an invalid cache
/// configuration.
pub fn build_policy(
    name: &str,
    dataset: &Dataset,
    cap: ByteSize,
    cache_frac: f64,
    seed: u64,
    hlist: &HList,
) -> Result<Box<dyn CacheSystem + Send>, String> {
    Ok(match name {
        "lru" => Box::new(LruCache::new(cap)),
        "coordl" => Box::new(MinIoCache::new(cap)),
        "ilfu" => Box::new(IlfuCache::new(cap)),
        "quiver" => Box::new(QuiverCache::new(dataset, cap, seed).map_err(|e| e.to_string())?),
        "icache" => {
            let cfg = IcacheConfig::for_dataset(dataset, cache_frac).map_err(|e| e.to_string())?;
            let mut m = IcacheManager::new(cfg, dataset).map_err(|e| e.to_string())?;
            m.update_hlist(JobId(0), hlist);
            Box::new(m)
        }
        other => return Err(format!("unknown policy `{other}`")),
    })
}

/// Build one policy of the lineup as a [`ConcurrentCache`] servable by
/// many loader threads at once.
///
/// `icache` gets the real lock-striped [`ConcurrentManager`] with
/// `stripes` lock stripes; every baseline is wrapped in a coarse-lock
/// [`MutexCache`] — the honest comparison point the contention metrics
/// are measured against.
///
/// # Errors
///
/// Returns a message for an unknown policy name or an invalid cache
/// configuration.
pub fn build_concurrent_policy(
    name: &str,
    dataset: &Dataset,
    cap: ByteSize,
    cache_frac: f64,
    seed: u64,
    hlist: &HList,
    stripes: usize,
) -> Result<Box<dyn ConcurrentCache>, String> {
    Ok(match name {
        "icache" => {
            let cfg = IcacheConfig::for_dataset(dataset, cache_frac).map_err(|e| e.to_string())?;
            let m = ConcurrentManager::new(cfg, dataset, stripes).map_err(|e| e.to_string())?;
            m.update_hlist(JobId(0), hlist);
            Box::new(m)
        }
        other => Box::new(MutexCache::new(build_policy(
            other, dataset, cap, cache_frac, seed, hlist,
        )?)),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use icache_sim::replay::AccessPattern;
    use icache_types::{DatasetBuilder, SizeModel};

    #[test]
    fn every_lineup_policy_builds() {
        let dataset = DatasetBuilder::new("wl", 200)
            .size_model(SizeModel::Fixed(ByteSize::kib(3)))
            .build()
            .unwrap();
        let trace = AccessPattern::Zipf { s: 1.1 }
            .generate(200, 400, JobId(0), 3)
            .unwrap();
        let hlist = popularity_hlist(&trace, 200);
        for name in POLICIES {
            let cap = dataset.total_bytes().scaled(0.1);
            let cache = build_policy(name, &dataset, cap, 0.1, 3, &hlist)
                .unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(cache.used_bytes() <= cache.capacity(), "{name} overfull");
        }
        assert!(build_policy("nope", &dataset, ByteSize::kib(1), 0.1, 3, &hlist).is_err());
    }
}
