//! Model tests for the lock-striped concurrency primitives, run under
//! the `loom` harness (see `vendor/loom`: a stress-iterating stand-in
//! for real loom's exhaustive schedule exploration; `RUSTFLAGS="--cfg
//! loom"` raises the iteration count the way real loom runs do).
//!
//! Each model spawns racing threads over one shared structure and then
//! asserts the structure's internal invariants — the striped position
//! map (`fresh[pos[id]] == id`), shard-local id ownership, and the
//! atomic length counters — survived the interleaving.

use icache_core::{FreshPool, InflightWindow, ShardedHeap, StripedMap};
use icache_types::{ImportanceValue, SampleId, SeedSequence};

fn iv(v: f64) -> ImportanceValue {
    ImportanceValue::saturating(v)
}

#[test]
fn striped_map_survives_racing_inserts_and_removes() {
    loom::model(|| {
        let map = StripedMap::<u32>::new(4);
        std::thread::scope(|s| {
            // Two writers over overlapping id ranges plus a remover.
            s.spawn(|| {
                for i in 0..60u64 {
                    map.insert(SampleId(i), 1);
                }
            });
            s.spawn(|| {
                for i in 30..90u64 {
                    map.insert(SampleId(i), 2);
                }
            });
            s.spawn(|| {
                for i in (0..90u64).step_by(3) {
                    map.remove(SampleId(i));
                }
            });
        });
        assert!(map.check_invariants(), "striped map invariants violated");
        // Everything never touched by the remover must be present.
        for i in 0..60u64 {
            if i % 3 != 0 {
                assert!(map.contains(SampleId(i)), "lost sample {i}");
            }
        }
    });
}

#[test]
fn fresh_pool_position_map_survives_draw_push_race() {
    loom::model(|| {
        let pool = FreshPool::new(4);
        for i in 0..40u64 {
            pool.push(SampleId(i));
        }
        let drawn = std::thread::scope(|s| {
            let pusher = s.spawn(|| {
                for i in 40..80u64 {
                    pool.push(SampleId(i));
                }
            });
            let drawer = s.spawn(|| {
                let mut rng = SeedSequence::new(7).rng("model-drawer");
                let mut drawn = Vec::new();
                for _ in 0..30 {
                    if let Some(id) = pool.draw(&mut rng) {
                        drawn.push(id);
                    }
                }
                drawn
            });
            let remover = s.spawn(|| {
                for i in (0..40u64).step_by(4) {
                    pool.remove(SampleId(i));
                }
            });
            pusher.join().expect("pusher thread panicked");
            remover.join().expect("remover thread panicked");
            drawer.join().expect("drawer thread panicked")
        });
        assert!(pool.check_invariants(), "fresh-pool position map broken");
        // A draw removes: no drawn id may still be in the pool, and no
        // id is drawn twice.
        let mut seen = std::collections::BTreeSet::new();
        for id in drawn {
            assert!(seen.insert(id), "sample {id} drawn twice");
            assert!(!pool.remove(id), "drawn sample {id} still pooled");
        }
    });
}

#[test]
fn inflight_window_survives_producer_consumer_race() {
    const DEPTH: usize = 4;
    const POSITIONS: u64 = 48;
    loom::model(|| {
        let window = InflightWindow::new(DEPTH);
        let (issued, delivered) = std::thread::scope(|s| {
            // Producer: sweep the plan repeatedly, issuing whatever the
            // window admits (a full window or an already-delivered
            // position refuses the issue, exactly like the pipeline's
            // pump loop).
            let producer = s.spawn(|| {
                let mut issued = Vec::new();
                for _ in 0..3 {
                    for pos in 0..POSITIONS {
                        if window.try_issue(pos) {
                            issued.push(pos);
                        }
                    }
                }
                issued
            });
            // Consumer: deliver every position it observes in flight,
            // retrying the sweep so it drains what the producer issues.
            let consumer = s.spawn(|| {
                let mut delivered = Vec::new();
                for _ in 0..3 {
                    for pos in 0..POSITIONS {
                        if window.consume(pos) {
                            delivered.push(pos);
                        }
                    }
                }
                delivered
            });
            (
                producer.join().expect("producer thread panicked"),
                consumer.join().expect("consumer thread panicked"),
            )
        });
        assert!(window.check_invariants(), "window invariants violated");
        assert!(
            window.max_in_flight() <= DEPTH,
            "window overflowed: {} > {DEPTH}",
            window.max_in_flight()
        );
        // No position is ever issued twice or delivered twice.
        let mut seen = std::collections::BTreeSet::new();
        for &pos in &issued {
            assert!(seen.insert(pos), "position {pos} issued twice");
        }
        seen.clear();
        for &pos in &delivered {
            assert!(seen.insert(pos), "position {pos} delivered twice");
        }
        // Every delivery consumes an issue; the rest are still in flight.
        assert!(
            delivered.len() <= issued.len(),
            "delivered more than issued"
        );
        assert_eq!(window.issued() as usize, issued.len());
        assert_eq!(window.consumed() as usize, delivered.len());
        assert_eq!(window.in_flight(), issued.len() - delivered.len());
        for &pos in &delivered {
            assert!(issued.contains(&pos), "position {pos} delivered unissued");
        }
    });
}

#[test]
fn sharded_heap_eviction_merge_locks_shards_ascending() {
    // The declared discipline ([locks] classes in lint.toml): a
    // cross-shard eviction merge acquires every shard lock in ascending
    // index order, which is what makes two racing evictors deadlock-free.
    // The witness hook reports each shard index at acquisition time, so
    // this asserts the order actually taken under the race, not just the
    // merge's result.
    const SHARDS: usize = 4;
    loom::model(|| {
        let heap = ShardedHeap::new(SHARDS);
        for i in 0..24u64 {
            heap.insert(SampleId(i), iv(i as f64));
        }
        let ascending: Vec<usize> = (0..SHARDS).collect();
        std::thread::scope(|s| {
            // Two racing evictors: were the acquisition order not a
            // total order, this pair could deadlock; each checks the
            // witness sequence of every merge it performs.
            for _ in 0..2 {
                s.spawn(|| {
                    for _ in 0..8 {
                        let mut order = Vec::new();
                        heap.pop_global_min_witnessed(&mut |i| order.push(i));
                        assert_eq!(
                            order, ascending,
                            "eviction merge must lock shards in ascending index order"
                        );
                    }
                });
            }
            // A racing inserter keeps the point-op path (single-shard
            // locks) contending with the all-shard sweeps.
            s.spawn(|| {
                for i in 24..48u64 {
                    heap.insert(SampleId(i), iv(i as f64 * 0.25));
                }
            });
        });
        assert!(heap.check_invariants(), "sharded heap invariants violated");
    });
}

#[test]
fn sharded_heap_survives_racing_inserts_and_evictions() {
    loom::model(|| {
        let heap = ShardedHeap::new(4);
        for i in 0..20u64 {
            heap.insert(SampleId(i), iv(i as f64));
        }
        let popped = std::thread::scope(|s| {
            let a = s.spawn(|| {
                for i in 20..50u64 {
                    heap.insert(SampleId(i), iv(i as f64 * 0.5));
                }
            });
            let b = s.spawn(|| {
                let mut popped = Vec::new();
                for _ in 0..25 {
                    if let Some((id, _)) = heap.pop_global_min() {
                        popped.push(id);
                    }
                }
                popped
            });
            a.join().expect("insert thread panicked");
            b.join().expect("evict thread panicked")
        });
        assert!(heap.check_invariants(), "sharded heap invariants violated");
        // Conservation: every id is either still in the heap or was
        // popped, never both, never neither.
        for i in 0..50u64 {
            let id = SampleId(i);
            let in_heap = heap.contains(id);
            let was_popped = popped.contains(&id);
            assert!(
                in_heap != was_popped,
                "sample {id}: in_heap={in_heap} popped={was_popped}"
            );
        }
    });
}
