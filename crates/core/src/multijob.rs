//! Multi-job coordination (§III-D).

use icache_obs::{Obs, Observable};
use icache_sampling::HList;
use icache_types::{Error, ImportanceValue, JobId, Result, SampleId, SimDuration};
use std::collections::BTreeMap;

/// Which part of the cache-benefit probe a job is in.
///
/// At the start of each epoch a job's first `probe_len` samples are served
/// *without* the cache and the next `probe_len` *with* it (the paper uses
/// 20 + 20 mini-batches); the ratio of the two measured times is the job's
/// caching benefit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbePhase {
    /// Bypass the cache; accumulate `T_cacheless`.
    Uncached {
        /// Samples left in this phase.
        remaining: u64,
    },
    /// Use the cache; accumulate `T_cache`.
    Cached {
        /// Samples left in this phase.
        remaining: u64,
    },
    /// Probe complete for this epoch.
    Done,
}

/// Measures one job's cache benefit for the current epoch.
#[derive(Debug, Clone, PartialEq)]
pub struct BenefitProbe {
    phase: ProbePhase,
    probe_len: u64,
    t_uncached: SimDuration,
    t_cached: SimDuration,
}

impl BenefitProbe {
    /// A probe measuring `probe_len` samples per phase.
    pub fn new(probe_len: u64) -> Self {
        BenefitProbe {
            phase: ProbePhase::Uncached {
                remaining: probe_len,
            },
            probe_len,
            t_uncached: SimDuration::ZERO,
            t_cached: SimDuration::ZERO,
        }
    }

    /// Current phase.
    pub fn phase(&self) -> ProbePhase {
        self.phase
    }

    /// Whether the next fetch must bypass the cache.
    pub fn should_bypass(&self) -> bool {
        matches!(self.phase, ProbePhase::Uncached { .. })
    }

    /// Record the service time of one fetch and advance the probe.
    pub fn record(&mut self, service: SimDuration) {
        match self.phase {
            ProbePhase::Uncached { remaining } => {
                self.t_uncached += service;
                self.phase = if remaining <= 1 {
                    ProbePhase::Cached {
                        remaining: self.probe_len,
                    }
                } else {
                    ProbePhase::Uncached {
                        remaining: remaining - 1,
                    }
                };
            }
            ProbePhase::Cached { remaining } => {
                self.t_cached += service;
                self.phase = if remaining <= 1 {
                    ProbePhase::Done
                } else {
                    ProbePhase::Cached {
                        remaining: remaining - 1,
                    }
                };
            }
            ProbePhase::Done => {}
        }
    }

    /// Restart the probe for a new epoch.
    pub fn reset(&mut self) {
        *self = BenefitProbe::new(self.probe_len);
    }

    /// `Ratio_benefit = T_cacheless / T_cache`, available once the probe
    /// completes. Falls back to 1.0 (no benefit) when the cached phase
    /// recorded zero time.
    pub fn ratio(&self) -> Option<f64> {
        if self.phase != ProbePhase::Done {
            return None;
        }
        if self.t_cached.is_zero() {
            return Some(1.0);
        }
        Some(self.t_uncached.ratio(self.t_cached))
    }
}

/// A job's latest measured benefit and its eligibility verdict.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JobBenefit {
    /// `T_cacheless / T_cache` from the latest completed probe.
    pub ratio: f64,
    /// Whether the ratio clears the coordinator's threshold.
    pub eligible: bool,
}

#[derive(Debug, Clone)]
struct JobState {
    hlist: Option<HList>,
    probe: BenefitProbe,
    last_benefit: Option<JobBenefit>,
}

/// Coordinates concurrent jobs sharing one dataset in one cache (§III-D).
///
/// Responsibilities:
///
/// 1. run the per-epoch [`BenefitProbe`] of every registered job and mark
///    jobs *cache-eligible* when their benefit exceeds the threshold
///    (1.5 in the paper);
/// 2. combine the H-lists of eligible jobs into *aggregated importance
///    values*: `AIV_i = Σ_j Ratio_benefit^j × RIV_i^j`, where `RIV` is the
///    percentile position of the sample's importance in the whole training
///    set.
///
/// # Examples
///
/// ```
/// use icache_core::MultiJobCoordinator;
/// use icache_sampling::{HList, ImportanceTable};
/// use icache_types::{JobId, SampleId};
///
/// let mut coord = MultiJobCoordinator::new(100, 1.5, 40)?;
/// coord.register_job(JobId(0));
/// let mut t = ImportanceTable::new(100);
/// t.record_loss(SampleId(1), 90.0);
/// coord.set_hlist(JobId(0), HList::top_fraction(&t, 0.1));
/// let aiv = coord.aggregate();
/// assert!(aiv.contains_key(&SampleId(1)));
/// # Ok::<(), icache_types::Error>(())
/// ```
#[derive(Debug, Clone)]
pub struct MultiJobCoordinator {
    num_samples: u64,
    threshold: f64,
    probe_len: u64,
    jobs: BTreeMap<JobId, JobState>,
    obs: Obs,
}

impl Observable for MultiJobCoordinator {
    /// Install the shared observability handle. Probe completions land in
    /// the `multijob.probes_completed` / `multijob.eligible_verdicts`
    /// counters and each job's latest benefit in a
    /// `multijob.job<k>.benefit` gauge.
    fn set_obs(&mut self, obs: Obs) {
        self.obs = obs;
    }
}

impl MultiJobCoordinator {
    /// Create a coordinator over a dataset of `num_samples`, with the
    /// given eligibility `threshold` and per-phase probe length.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] for a non-positive threshold or a
    /// zero probe length.
    pub fn new(num_samples: u64, threshold: f64, probe_len: u64) -> Result<Self> {
        if !(threshold > 0.0 && threshold.is_finite()) {
            return Err(Error::invalid_config(
                "threshold",
                "must be positive and finite",
            ));
        }
        if probe_len == 0 {
            return Err(Error::invalid_config("probe_len", "must be at least 1"));
        }
        Ok(MultiJobCoordinator {
            num_samples,
            threshold,
            probe_len,
            jobs: BTreeMap::new(),
            obs: Obs::noop(),
        })
    }

    /// Number of registered jobs.
    pub fn job_count(&self) -> usize {
        self.jobs.len()
    }

    /// Register `job` (idempotent).
    pub fn register_job(&mut self, job: JobId) {
        if !self.jobs.contains_key(&job) {
            self.obs.inc("multijob.jobs_registered");
            self.jobs.insert(
                job,
                JobState {
                    hlist: None,
                    probe: BenefitProbe::new(self.probe_len),
                    last_benefit: None,
                },
            );
        }
    }

    /// Restart `job`'s probe at its epoch boundary.
    pub fn on_epoch_start(&mut self, job: JobId) {
        if let Some(s) = self.jobs.get_mut(&job) {
            s.probe.reset();
        }
    }

    /// Whether `job`'s next fetch must bypass the cache (probe phase 1).
    pub fn should_bypass(&self, job: JobId) -> bool {
        self.jobs.get(&job).is_some_and(|s| s.probe.should_bypass())
    }

    /// Record a fetch service time for `job`'s probe; finalises the
    /// benefit verdict when the probe completes.
    pub fn record_fetch(&mut self, job: JobId, service: SimDuration) {
        let threshold = self.threshold;
        if let Some(s) = self.jobs.get_mut(&job) {
            let was_done = s.probe.phase() == ProbePhase::Done;
            s.probe.record(service);
            if let Some(ratio) = s.probe.ratio() {
                let eligible = ratio > threshold;
                s.last_benefit = Some(JobBenefit { ratio, eligible });
                if !was_done {
                    // The probe just completed for this epoch.
                    self.obs.inc("multijob.probes_completed");
                    if eligible {
                        self.obs.inc("multijob.eligible_verdicts");
                    }
                    self.obs
                        .set_gauge(&format!("multijob.job{}.benefit", job.0), ratio);
                }
            }
        }
    }

    /// The latest benefit verdict for `job`.
    pub fn benefit(&self, job: JobId) -> Option<JobBenefit> {
        self.jobs.get(&job).and_then(|s| s.last_benefit)
    }

    /// Store `job`'s freshly pulled H-list.
    pub fn set_hlist(&mut self, job: JobId, hlist: HList) {
        self.register_job(job);
        if let Some(s) = self.jobs.get_mut(&job) {
            s.hlist = Some(hlist);
        }
    }

    /// `job`'s current H-list, if one has been pulled.
    pub fn hlist(&self, job: JobId) -> Option<&HList> {
        self.jobs.get(&job).and_then(|s| s.hlist.as_ref())
    }

    /// Compute the aggregated importance values over all *eligible* jobs.
    ///
    /// A job with no completed probe yet is treated as eligible with ratio
    /// 1.0 (cold-start: better to coordinate than to ignore). The RIV of a
    /// sample at (0-based) rank `r` of a job's H-list over a dataset of
    /// `N` samples is `1 − r/(N−1)`.
    ///
    /// Jobs are visited in `JobId` order: the per-sample sums accumulate
    /// `f64`s, and float addition is not associative, so with three or
    /// more jobs an unordered visit could produce run-to-run drift in the
    /// low bits of the aggregated values.
    pub fn aggregate(&self) -> BTreeMap<SampleId, ImportanceValue> {
        let mut aiv: BTreeMap<SampleId, f64> = BTreeMap::new();
        let denom = (self.num_samples.saturating_sub(1)).max(1) as f64;
        for state in self.jobs.values() {
            let Some(hlist) = &state.hlist else { continue };
            let (ratio, eligible) = match state.last_benefit {
                Some(b) => (b.ratio, b.eligible),
                None => (1.0, true),
            };
            if !eligible {
                continue;
            }
            for (rank, entry) in hlist.entries().iter().enumerate() {
                let riv = 1.0 - rank as f64 / denom;
                *aiv.entry(entry.id).or_insert(0.0) += ratio * riv;
            }
        }
        aiv.into_iter()
            .map(|(id, v)| (id, ImportanceValue::saturating(v)))
            .collect()
    }

    /// Whether `id` is an H-sample for *any* registered job (used to build
    /// the L-sample pool).
    pub fn is_h_for_any(&self, id: SampleId) -> bool {
        self.jobs
            .values()
            .any(|s| s.hlist.as_ref().is_some_and(|h| h.contains(id)))
    }

    /// Whether any job has pulled an H-list yet (false during warm-up).
    pub fn any_hlist(&self) -> bool {
        self.jobs.values().any(|s| s.hlist.is_some())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icache_sampling::ImportanceTable;

    fn dur(us: u64) -> SimDuration {
        SimDuration::from_micros(us)
    }

    #[test]
    fn probe_walks_through_phases() {
        let mut p = BenefitProbe::new(2);
        assert!(p.should_bypass());
        p.record(dur(10));
        p.record(dur(10));
        assert!(!p.should_bypass());
        assert_eq!(p.ratio(), None, "cached phase not finished");
        p.record(dur(5));
        p.record(dur(5));
        assert_eq!(p.phase(), ProbePhase::Done);
        assert_eq!(p.ratio(), Some(2.0));
        // Further records are ignored.
        p.record(dur(100));
        assert_eq!(p.ratio(), Some(2.0));
    }

    #[test]
    fn probe_reset_restarts() {
        let mut p = BenefitProbe::new(1);
        p.record(dur(4));
        p.record(dur(2));
        assert_eq!(p.ratio(), Some(2.0));
        p.reset();
        assert!(p.should_bypass());
        assert_eq!(p.ratio(), None);
    }

    #[test]
    fn zero_cached_time_defaults_ratio_to_one() {
        let mut p = BenefitProbe::new(1);
        p.record(dur(4));
        p.record(SimDuration::ZERO);
        assert_eq!(p.ratio(), Some(1.0));
    }

    fn hlist_from(losses: &[(u64, f64)], n: u64, frac: f64) -> HList {
        let mut t = ImportanceTable::new(n);
        for &(id, l) in losses {
            t.record_loss(SampleId(id), l);
        }
        HList::top_fraction(&t, frac)
    }

    #[test]
    fn coordinator_eligibility_follows_threshold() {
        let mut c = MultiJobCoordinator::new(10, 1.5, 1).unwrap();
        c.register_job(JobId(0));
        // Ratio 3.0 -> eligible.
        c.record_fetch(JobId(0), dur(30));
        c.record_fetch(JobId(0), dur(10));
        assert_eq!(
            c.benefit(JobId(0)),
            Some(JobBenefit {
                ratio: 3.0,
                eligible: true
            })
        );

        c.register_job(JobId(1));
        // Ratio 1.2 -> not eligible.
        c.record_fetch(JobId(1), dur(12));
        c.record_fetch(JobId(1), dur(10));
        let b = c.benefit(JobId(1)).unwrap();
        assert!(!b.eligible);
    }

    #[test]
    fn aggregate_weights_by_benefit_ratio() {
        let mut c = MultiJobCoordinator::new(100, 1.5, 1).unwrap();
        // Job 0: benefit 4.0, considers sample 1 most important.
        c.register_job(JobId(0));
        c.record_fetch(JobId(0), dur(40));
        c.record_fetch(JobId(0), dur(10));
        c.set_hlist(JobId(0), hlist_from(&[(1, 90.0), (2, 80.0)], 100, 0.02));
        // Job 1: benefit 2.0, considers sample 3 most important.
        c.register_job(JobId(1));
        c.record_fetch(JobId(1), dur(20));
        c.record_fetch(JobId(1), dur(10));
        c.set_hlist(JobId(1), hlist_from(&[(3, 90.0), (1, 80.0)], 100, 0.02));

        let aiv = c.aggregate();
        // Sample 1: 4.0*1.0 (rank 0, job 0) + 2.0*(1-1/99) (rank 1, job 1).
        let s1 = aiv[&SampleId(1)].get();
        assert!((s1 - (4.0 + 2.0 * (1.0 - 1.0 / 99.0))).abs() < 1e-9, "{s1}");
        // Sample 3 only endorsed by job 1.
        assert!((aiv[&SampleId(3)].get() - 2.0).abs() < 1e-9);
        // Shared endorsement beats single endorsement.
        assert!(s1 > aiv[&SampleId(3)].get());
    }

    #[test]
    fn ineligible_jobs_are_excluded_from_aggregation() {
        let mut c = MultiJobCoordinator::new(100, 1.5, 1).unwrap();
        c.register_job(JobId(0));
        c.record_fetch(JobId(0), dur(10));
        c.record_fetch(JobId(0), dur(10)); // ratio 1.0 -> ineligible
        c.set_hlist(JobId(0), hlist_from(&[(5, 90.0)], 100, 0.01));
        assert!(c.aggregate().is_empty());
        // Routing still sees the job's H-list.
        assert!(c.is_h_for_any(SampleId(5)));
    }

    #[test]
    fn unprobed_jobs_participate_with_unit_ratio() {
        let mut c = MultiJobCoordinator::new(100, 1.5, 40).unwrap();
        c.set_hlist(JobId(7), hlist_from(&[(2, 90.0)], 100, 0.01));
        let aiv = c.aggregate();
        assert!((aiv[&SampleId(2)].get() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn constructor_validates() {
        assert!(MultiJobCoordinator::new(10, 0.0, 40).is_err());
        assert!(MultiJobCoordinator::new(10, 1.5, 0).is_err());
        assert!(MultiJobCoordinator::new(10, f64::INFINITY, 40).is_err());
    }

    #[test]
    fn coordinator_reports_probe_completions_into_obs() {
        let obs = Obs::new();
        let mut c = MultiJobCoordinator::new(10, 1.5, 1).unwrap();
        c.set_obs(obs.clone());
        c.register_job(JobId(0));
        c.register_job(JobId(0)); // idempotent: registered once
        assert_eq!(obs.counter("multijob.jobs_registered"), 1);

        c.record_fetch(JobId(0), dur(30));
        assert_eq!(obs.counter("multijob.probes_completed"), 0);
        c.record_fetch(JobId(0), dur(10));
        assert_eq!(obs.counter("multijob.probes_completed"), 1);
        assert_eq!(obs.counter("multijob.eligible_verdicts"), 1);
        assert_eq!(obs.gauge("multijob.job0.benefit"), Some(3.0));
        // Post-completion fetches do not re-count the same probe.
        c.record_fetch(JobId(0), dur(100));
        assert_eq!(obs.counter("multijob.probes_completed"), 1);
    }

    #[test]
    fn epoch_start_resets_probe() {
        let mut c = MultiJobCoordinator::new(10, 1.5, 1).unwrap();
        c.register_job(JobId(0));
        c.record_fetch(JobId(0), dur(30));
        c.record_fetch(JobId(0), dur(10));
        assert!(c.benefit(JobId(0)).is_some());
        c.on_epoch_start(JobId(0));
        assert!(c.should_bypass(JobId(0)), "probe restarted");
        // Benefit from the previous epoch survives until the new probe ends.
        assert!(c.benefit(JobId(0)).is_some());
    }
}
