//! Cache statistics.

use icache_types::ByteSize;

/// Counters describing how a cache system served requests.
///
/// The paper's "cache hit ratio" (Figures 11, 14, 16) counts substitution
/// as a hit — the request was served from memory — which
/// [`CacheStats::hit_ratio`] reproduces; [`CacheStats::strict_hit_ratio`]
/// excludes substitutions.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CacheStats {
    /// Requests served from the H-region (or the single region of a
    /// baseline cache) with the requested sample.
    pub h_hits: u64,
    /// Requests served from the L-region with the requested sample.
    pub l_hits: u64,
    /// Requests served from the PM victim tier (§VI extension; zero when
    /// no PM tier is configured).
    pub pm_hits: u64,
    /// Requests served by substituting a different cached sample.
    pub substitutions: u64,
    /// Requests that went to storage.
    pub misses: u64,
    /// Samples admitted into the cache.
    pub insertions: u64,
    /// Samples evicted to make room.
    pub evictions: u64,
    /// Samples that were denied admission (importance below the bar).
    pub rejections: u64,
    /// Bytes served from cache (hits + substitutions).
    pub bytes_from_cache: ByteSize,
    /// Bytes fetched from storage on misses (packages excluded).
    pub bytes_from_storage: ByteSize,
}

impl CacheStats {
    /// Total requests observed.
    pub fn requests(&self) -> u64 {
        self.h_hits + self.l_hits + self.pm_hits + self.substitutions + self.misses
    }

    /// Hits including substitutions over total requests (the paper's
    /// definition). Returns 0.0 when no requests were observed.
    pub fn hit_ratio(&self) -> f64 {
        let req = self.requests();
        if req == 0 {
            0.0
        } else {
            (self.h_hits + self.l_hits + self.pm_hits + self.substitutions) as f64 / req as f64
        }
    }

    /// Hits excluding substitutions over total requests.
    pub fn strict_hit_ratio(&self) -> f64 {
        let req = self.requests();
        if req == 0 {
            0.0
        } else {
            (self.h_hits + self.l_hits + self.pm_hits) as f64 / req as f64
        }
    }

    /// Counter-wise difference `self - earlier` (per-epoch deltas).
    pub fn delta_since(&self, earlier: &CacheStats) -> CacheStats {
        CacheStats {
            h_hits: self.h_hits - earlier.h_hits,
            l_hits: self.l_hits - earlier.l_hits,
            pm_hits: self.pm_hits - earlier.pm_hits,
            substitutions: self.substitutions - earlier.substitutions,
            misses: self.misses - earlier.misses,
            insertions: self.insertions - earlier.insertions,
            evictions: self.evictions - earlier.evictions,
            rejections: self.rejections - earlier.rejections,
            bytes_from_cache: self.bytes_from_cache - earlier.bytes_from_cache,
            bytes_from_storage: self.bytes_from_storage - earlier.bytes_from_storage,
        }
    }
}

impl icache_obs::ToJson for CacheStats {
    fn to_json(&self) -> icache_obs::Json {
        icache_obs::json!({
            "h_hits": self.h_hits,
            "l_hits": self.l_hits,
            "pm_hits": self.pm_hits,
            "substitutions": self.substitutions,
            "misses": self.misses,
            "insertions": self.insertions,
            "evictions": self.evictions,
            "rejections": self.rejections,
            "bytes_from_cache": self.bytes_from_cache.as_u64(),
            "bytes_from_storage": self.bytes_from_storage.as_u64(),
            "hit_ratio": self.hit_ratio(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_handle_zero_requests() {
        let s = CacheStats::default();
        assert_eq!(s.hit_ratio(), 0.0);
        assert_eq!(s.strict_hit_ratio(), 0.0);
    }

    #[test]
    fn substitutions_count_as_paper_hits_only() {
        let s = CacheStats {
            h_hits: 2,
            l_hits: 1,
            substitutions: 3,
            misses: 4,
            ..Default::default()
        };
        assert_eq!(s.requests(), 10);
        assert!((s.hit_ratio() - 0.6).abs() < 1e-12);
        assert!((s.strict_hit_ratio() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn delta_is_counterwise() {
        let early = CacheStats {
            h_hits: 1,
            misses: 2,
            ..Default::default()
        };
        let late = CacheStats {
            h_hits: 5,
            misses: 7,
            evictions: 1,
            ..Default::default()
        };
        let d = late.delta_since(&early);
        assert_eq!(d.h_hits, 4);
        assert_eq!(d.misses, 5);
        assert_eq!(d.evictions, 1);
    }
}
