//! Cache statistics.

use icache_types::ByteSize;

/// Counters describing how a cache system served requests.
///
/// The paper's "cache hit ratio" (Figures 11, 14, 16) counts substitution
/// as a hit — the request was served from memory — which
/// [`CacheStats::hit_ratio`] reproduces; [`CacheStats::strict_hit_ratio`]
/// excludes substitutions.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CacheStats {
    /// Requests served from the H-region (or the single region of a
    /// baseline cache) with the requested sample.
    pub h_hits: u64,
    /// Requests served from the L-region with the requested sample.
    pub l_hits: u64,
    /// Requests served from the PM victim tier (§VI extension; zero when
    /// no PM tier is configured).
    pub pm_hits: u64,
    /// Requests served by substituting a different cached sample.
    pub substitutions: u64,
    /// Requests that went to storage.
    pub misses: u64,
    /// Samples admitted into the cache.
    pub insertions: u64,
    /// Samples evicted to make room.
    pub evictions: u64,
    /// Samples that were denied admission (importance below the bar).
    pub rejections: u64,
    /// Bytes served from cache (hits + substitutions).
    pub bytes_from_cache: ByteSize,
    /// Bytes fetched from storage on misses (packages excluded).
    pub bytes_from_storage: ByteSize,
}

impl CacheStats {
    /// Total requests observed.
    pub fn requests(&self) -> u64 {
        self.h_hits + self.l_hits + self.pm_hits + self.substitutions + self.misses
    }

    /// Hits including substitutions over total requests (the paper's
    /// definition). Returns 0.0 when no requests were observed.
    pub fn hit_ratio(&self) -> f64 {
        let req = self.requests();
        if req == 0 {
            0.0
        } else {
            (self.h_hits + self.l_hits + self.pm_hits + self.substitutions) as f64 / req as f64
        }
    }

    /// Hits excluding substitutions over total requests.
    pub fn strict_hit_ratio(&self) -> f64 {
        let req = self.requests();
        if req == 0 {
            0.0
        } else {
            (self.h_hits + self.l_hits + self.pm_hits) as f64 / req as f64
        }
    }

    /// Counter-wise difference `self - earlier` (per-epoch deltas).
    ///
    /// Saturates at zero per counter: a delta mark taken before a
    /// `reset_stats()` legitimately exceeds the post-reset counters
    /// (e.g. a job holding an epoch mark across a cluster-wide reset),
    /// and must clamp rather than underflow.
    pub fn delta_since(&self, earlier: &CacheStats) -> CacheStats {
        CacheStats {
            h_hits: self.h_hits.saturating_sub(earlier.h_hits),
            l_hits: self.l_hits.saturating_sub(earlier.l_hits),
            pm_hits: self.pm_hits.saturating_sub(earlier.pm_hits),
            substitutions: self.substitutions.saturating_sub(earlier.substitutions),
            misses: self.misses.saturating_sub(earlier.misses),
            insertions: self.insertions.saturating_sub(earlier.insertions),
            evictions: self.evictions.saturating_sub(earlier.evictions),
            rejections: self.rejections.saturating_sub(earlier.rejections),
            bytes_from_cache: self
                .bytes_from_cache
                .saturating_sub(earlier.bytes_from_cache),
            bytes_from_storage: self
                .bytes_from_storage
                .saturating_sub(earlier.bytes_from_storage),
        }
    }
}

impl icache_obs::ToJson for CacheStats {
    fn to_json(&self) -> icache_obs::Json {
        icache_obs::json!({
            "h_hits": self.h_hits,
            "l_hits": self.l_hits,
            "pm_hits": self.pm_hits,
            "substitutions": self.substitutions,
            "misses": self.misses,
            "insertions": self.insertions,
            "evictions": self.evictions,
            "rejections": self.rejections,
            "bytes_from_cache": self.bytes_from_cache.as_u64(),
            "bytes_from_storage": self.bytes_from_storage.as_u64(),
            "hit_ratio": self.hit_ratio(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_handle_zero_requests() {
        let s = CacheStats::default();
        assert_eq!(s.hit_ratio(), 0.0);
        assert_eq!(s.strict_hit_ratio(), 0.0);
    }

    #[test]
    fn substitutions_count_as_paper_hits_only() {
        let s = CacheStats {
            h_hits: 2,
            l_hits: 1,
            substitutions: 3,
            misses: 4,
            ..Default::default()
        };
        assert_eq!(s.requests(), 10);
        assert!((s.hit_ratio() - 0.6).abs() < 1e-12);
        assert!((s.strict_hit_ratio() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn delta_is_counterwise() {
        let early = CacheStats {
            h_hits: 1,
            misses: 2,
            ..Default::default()
        };
        let late = CacheStats {
            h_hits: 5,
            misses: 7,
            evictions: 1,
            ..Default::default()
        };
        let d = late.delta_since(&early);
        assert_eq!(d.h_hits, 4);
        assert_eq!(d.misses, 5);
        assert_eq!(d.evictions, 1);
    }

    #[test]
    fn delta_mark_straddling_reset_saturates_to_zero() {
        // A job takes a delta mark, then the cluster's counters are
        // reset behind its back (ClusterService::reset_stats). The next
        // delta used to underflow (debug-build panic); it must clamp.
        let mark = CacheStats {
            h_hits: 10,
            misses: 4,
            bytes_from_cache: ByteSize::kib(64),
            bytes_from_storage: ByteSize::kib(16),
            ..Default::default()
        };
        let after_reset = CacheStats {
            h_hits: 2, // fewer than the mark: counters restarted from zero
            ..Default::default()
        };
        let d = after_reset.delta_since(&mark);
        assert_eq!(d.h_hits, 0);
        assert_eq!(d.misses, 0);
        assert_eq!(d.bytes_from_cache, ByteSize::ZERO);
        assert_eq!(d.bytes_from_storage, ByteSize::ZERO);
        assert_eq!(d.requests(), 0);
    }
}
