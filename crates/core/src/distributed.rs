//! Distributed iCache (§III-E).

use crate::{CacheStats, CacheSystem, Fetch, FetchOutcome, IcacheConfig, IcacheManager};
use icache_sampling::HList;
use icache_storage::StorageBackend;
use icache_types::{
    ByteSize, Dataset, Epoch, Error, JobId, NodeId, Result, SampleId, SimDuration, SimTime,
};
use std::collections::HashMap;

/// The distributed key-value directory: which node caches which sample.
///
/// The paper shares one such store among all training nodes so that cached
/// data is never duplicated: a sample cached anywhere is read from that
/// node instead of storage.
///
/// # Examples
///
/// ```
/// use icache_core::DirectoryKv;
/// use icache_types::{NodeId, SampleId};
///
/// let mut dir = DirectoryKv::new();
/// dir.insert(SampleId(5), NodeId(1));
/// assert_eq!(dir.lookup(SampleId(5)), Some(NodeId(1)));
/// dir.remove(SampleId(5));
/// assert_eq!(dir.lookup(SampleId(5)), None);
/// ```
#[derive(Debug, Clone, Default)]
pub struct DirectoryKv {
    map: HashMap<SampleId, NodeId>,
}

impl DirectoryKv {
    /// An empty directory.
    pub fn new() -> Self {
        DirectoryKv::default()
    }

    /// Number of registered samples.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no samples are registered.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The node caching `id`, if any.
    pub fn lookup(&self, id: SampleId) -> Option<NodeId> {
        self.map.get(&id).copied()
    }

    /// Register `id` as cached on `node`; returns the previous owner.
    pub fn insert(&mut self, id: SampleId, node: NodeId) -> Option<NodeId> {
        self.map.insert(id, node)
    }

    /// Unregister `id`; returns the previous owner.
    pub fn remove(&mut self, id: SampleId) -> Option<NodeId> {
        self.map.remove(&id)
    }
}

/// Where a distributed fetch was served from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RemoteFetchKind {
    /// The requesting node's own cache.
    Local,
    /// A peer node's cache over the interconnect.
    RemoteCache,
    /// The shared backing store.
    Storage,
}

/// Configuration of the distributed cache.
#[derive(Debug, Clone, PartialEq)]
pub struct DistributedConfig {
    /// Number of training nodes (each with a client, server, manager).
    pub nodes: usize,
    /// Per-node cache configuration.
    pub node_config: IcacheConfig,
    /// One-way latency of a peer-to-peer cache read.
    pub remote_hop: SimDuration,
    /// Interconnect bandwidth for peer reads, bytes/second.
    pub interconnect_bandwidth: f64,
}

impl DistributedConfig {
    /// A cluster of `nodes` nodes, each caching `per_node_fraction` of
    /// `dataset` (the paper's distributed setup gives each node 20 %).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] when `nodes` is zero or the
    /// per-node config is invalid.
    pub fn for_dataset(dataset: &Dataset, nodes: usize, per_node_fraction: f64) -> Result<Self> {
        if nodes == 0 {
            return Err(Error::invalid_config("nodes", "must be at least 1"));
        }
        Ok(DistributedConfig {
            nodes,
            node_config: IcacheConfig::for_dataset(dataset, per_node_fraction)?,
            remote_hop: SimDuration::from_micros(80),
            interconnect_bandwidth: 1.25e9,
        })
    }
}

/// The multi-node iCache: per-node managers plus a shared directory.
///
/// Data-parallel training maps worker `JobId(k)` to node `k % nodes`. The
/// fetch path follows §III-E: local cache → directory lookup → peer cache
/// → shared storage, registering freshly cached samples in the directory
/// so no sample is duplicated across nodes.
#[derive(Debug)]
pub struct DistributedCache {
    config: DistributedConfig,
    nodes: Vec<IcacheManager>,
    directory: DirectoryKv,
    remote_hits: u64,
    remote_bytes: ByteSize,
}

impl DistributedCache {
    /// Build the cluster for `dataset`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] when any per-node manager cannot
    /// be built.
    pub fn new(config: DistributedConfig, dataset: &Dataset) -> Result<Self> {
        let nodes = (0..config.nodes)
            .map(|i| {
                let mut c = config.node_config.clone();
                c.seed = c.seed.wrapping_add(i as u64);
                IcacheManager::new(c, dataset)
            })
            .collect::<Result<Vec<_>>>()?;
        Ok(DistributedCache {
            config,
            nodes,
            directory: DirectoryKv::new(),
            remote_hits: 0,
            remote_bytes: ByteSize::ZERO,
        })
    }

    /// Number of nodes in the cluster.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The shared directory (read access for diagnostics).
    pub fn directory(&self) -> &DirectoryKv {
        &self.directory
    }

    /// Peer-cache hits served so far.
    pub fn remote_hits(&self) -> u64 {
        self.remote_hits
    }

    fn node_of(&self, job: JobId) -> usize {
        job.0 as usize % self.nodes.len()
    }

    /// Classify where a fetch for `job`/`id` would be served from,
    /// without performing it.
    pub fn classify(&self, job: JobId, id: SampleId) -> RemoteFetchKind {
        let local = self.node_of(job);
        if self.nodes[local].contains_cached(id) {
            return RemoteFetchKind::Local;
        }
        match self.directory.lookup(id) {
            Some(owner)
                if owner.0 as usize != local
                    && self.nodes[owner.0 as usize].contains_cached(id) =>
            {
                RemoteFetchKind::RemoteCache
            }
            _ => RemoteFetchKind::Storage,
        }
    }
}

impl CacheSystem for DistributedCache {
    fn name(&self) -> &str {
        "icache-distributed"
    }

    fn fetch(
        &mut self,
        job: JobId,
        id: SampleId,
        size: ByteSize,
        now: SimTime,
        storage: &mut dyn StorageBackend,
    ) -> Fetch {
        let local = self.node_of(job);
        match self.classify(job, id) {
            RemoteFetchKind::RemoteCache => {
                // Serve over the interconnect; do not duplicate locally.
                let transfer =
                    SimDuration::from_secs_f64(size.as_f64() / self.config.interconnect_bandwidth);
                self.remote_hits += 1;
                self.remote_bytes += size;
                Fetch {
                    ready_at: now + self.config.remote_hop + transfer,
                    served_id: id,
                    outcome: FetchOutcome::HitH,
                }
            }
            RemoteFetchKind::Local | RemoteFetchKind::Storage => {
                let fetch = self.nodes[local].fetch(job, id, size, now, storage);
                // Register fresh residency; unregister when the sample is
                // served from storage but was not admitted anywhere.
                if self.nodes[local].contains_cached(id) {
                    self.directory.insert(id, NodeId(local as u32));
                } else if self.directory.lookup(id) == Some(NodeId(local as u32)) {
                    self.directory.remove(id);
                }
                fetch
            }
        }
    }

    fn update_hlist(&mut self, job: JobId, hlist: &HList) {
        // Every node needs the importance view to manage its region.
        for node in &mut self.nodes {
            node.update_hlist(job, hlist);
        }
    }

    fn on_epoch_start(&mut self, job: JobId, epoch: Epoch) {
        let local = self.node_of(job);
        self.nodes[local].on_epoch_start(job, epoch);
    }

    fn on_epoch_end(&mut self, job: JobId, epoch: Epoch) {
        let local = self.node_of(job);
        self.nodes[local].on_epoch_end(job, epoch);
    }

    fn stats(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for n in &self.nodes {
            let s = n.stats();
            total.h_hits += s.h_hits;
            total.l_hits += s.l_hits;
            total.pm_hits += s.pm_hits;
            total.substitutions += s.substitutions;
            total.misses += s.misses;
            total.insertions += s.insertions;
            total.evictions += s.evictions;
            total.rejections += s.rejections;
            total.bytes_from_cache += s.bytes_from_cache;
            total.bytes_from_storage += s.bytes_from_storage;
        }
        // Peer hits are cache hits of the cluster.
        total.h_hits += self.remote_hits;
        total.bytes_from_cache += self.remote_bytes;
        total
    }

    fn reset_stats(&mut self) {
        for n in &mut self.nodes {
            n.reset_stats();
        }
        self.remote_hits = 0;
        self.remote_bytes = ByteSize::ZERO;
    }

    fn used_bytes(&self) -> ByteSize {
        self.nodes.iter().map(|n| n.used_bytes()).sum()
    }

    fn capacity(&self) -> ByteSize {
        self.nodes.iter().map(|n| n.capacity()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icache_sampling::ImportanceTable;
    use icache_storage::{Nfs, NfsConfig};
    use icache_types::{DatasetBuilder, SizeModel};

    fn dataset() -> Dataset {
        DatasetBuilder::new("d", 1_000)
            .size_model(SizeModel::Fixed(ByteSize::kib(3)))
            .build()
            .unwrap()
    }

    fn cluster(ds: &Dataset, nodes: usize) -> DistributedCache {
        DistributedCache::new(DistributedConfig::for_dataset(ds, nodes, 0.2).unwrap(), ds).unwrap()
    }

    fn hlist(ds: &Dataset) -> HList {
        let mut t = ImportanceTable::new(ds.len());
        for i in 0..200 {
            t.record_loss(SampleId(i), 10.0);
        }
        HList::top_fraction(&t, 0.2)
    }

    #[test]
    fn peer_cache_serves_without_duplication() {
        let ds = dataset();
        let mut dc = cluster(&ds, 2);
        let mut st = Nfs::new(NfsConfig::cloud_default()).unwrap();
        dc.update_hlist(JobId(0), &hlist(&ds));
        dc.update_hlist(JobId(1), &hlist(&ds));

        // Job 0 (node 0) faults sample 5 in from storage.
        let sz = ds.sample_size(SampleId(5));
        let f0 = dc.fetch(JobId(0), SampleId(5), sz, SimTime::ZERO, &mut st);
        assert_eq!(f0.outcome, FetchOutcome::Miss);
        assert_eq!(dc.directory().lookup(SampleId(5)), Some(NodeId(0)));

        // Job 1 (node 1) now reads it from node 0, not storage.
        assert_eq!(
            dc.classify(JobId(1), SampleId(5)),
            RemoteFetchKind::RemoteCache
        );
        let before = st.stats().sample_reads;
        let f1 = dc.fetch(JobId(1), SampleId(5), sz, f0.ready_at, &mut st);
        assert!(f1.outcome.served_from_cache());
        assert_eq!(st.stats().sample_reads, before, "no storage read");
        assert_eq!(dc.remote_hits(), 1);
    }

    #[test]
    fn remote_read_is_slower_than_local_but_faster_than_storage() {
        let ds = dataset();
        let mut dc = cluster(&ds, 2);
        let mut st = Nfs::new(NfsConfig::cloud_default()).unwrap();
        dc.update_hlist(JobId(0), &hlist(&ds));
        dc.update_hlist(JobId(1), &hlist(&ds));
        let sz = ds.sample_size(SampleId(7));

        let miss = dc.fetch(JobId(0), SampleId(7), sz, SimTime::ZERO, &mut st);
        let t_storage = miss.ready_at.saturating_since(SimTime::ZERO);

        let local = dc.fetch(JobId(0), SampleId(7), sz, miss.ready_at, &mut st);
        let t_local = local.ready_at.saturating_since(miss.ready_at);

        let remote = dc.fetch(JobId(1), SampleId(7), sz, local.ready_at, &mut st);
        let t_remote = remote.ready_at.saturating_since(local.ready_at);

        assert!(t_local < t_remote, "local {t_local} vs remote {t_remote}");
        assert!(
            t_remote < t_storage,
            "remote {t_remote} vs storage {t_storage}"
        );
    }

    #[test]
    fn jobs_map_to_nodes_round_robin() {
        let ds = dataset();
        let dc = cluster(&ds, 4);
        assert_eq!(dc.node_of(JobId(0)), 0);
        assert_eq!(dc.node_of(JobId(5)), 1);
        assert_eq!(dc.node_count(), 4);
    }

    #[test]
    fn cluster_capacity_sums_nodes() {
        let ds = dataset();
        let dc = cluster(&ds, 4);
        assert_eq!(dc.capacity(), ds.total_bytes().scaled(0.2) * 4);
    }

    #[test]
    fn zero_nodes_rejected() {
        let ds = dataset();
        assert!(DistributedConfig::for_dataset(&ds, 0, 0.2).is_err());
    }

    #[test]
    fn stats_aggregate_across_nodes_and_remote_hits() {
        let ds = dataset();
        let mut dc = cluster(&ds, 2);
        let mut st = Nfs::new(NfsConfig::cloud_default()).unwrap();
        dc.update_hlist(JobId(0), &hlist(&ds));
        dc.update_hlist(JobId(1), &hlist(&ds));
        let sz = ds.sample_size(SampleId(1));
        let f = dc.fetch(JobId(0), SampleId(1), sz, SimTime::ZERO, &mut st);
        let _ = dc.fetch(JobId(1), SampleId(1), sz, f.ready_at, &mut st);
        let s = dc.stats();
        assert_eq!(s.misses, 1);
        assert_eq!(s.h_hits, 1, "remote hit counted");
        dc.reset_stats();
        assert_eq!(dc.stats().requests(), 0);
    }
}
