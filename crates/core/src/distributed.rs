//! Distributed iCache (§III-E) — compatibility facade.
//!
//! The multi-node cache is implemented by the message-passing
//! [`CacheService`] in [`crate::service`]. This module keeps the
//! original `DistributedCache` surface as a thin wrapper with the exact
//! observable behavior of the old direct-call cluster: static
//! membership, zero-latency control plane, service-plane metrics kept
//! out of the shared registry — a `--nodes N` run serializes
//! byte-identically before and after the redesign. Anything beyond
//! that (churn, racing, recovery) is reached through
//! [`DistributedCache::service_mut`] or by using [`CacheService`]
//! directly.

use crate::service::{CacheService, ServiceConfig};
use crate::{CacheStats, CacheSystem, Fetch, IcacheConfig};
use icache_obs::{Obs, Observable};
use icache_sampling::HList;
use icache_storage::StorageBackend;
use icache_types::{
    ByteSize, Dataset, Epoch, Error, JobId, NodeId, Result, SampleId, SimDuration, SimTime,
};

/// Where a distributed fetch was served from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RemoteFetchKind {
    /// The requesting node's own cache.
    Local,
    /// A peer node's cache over the interconnect.
    RemoteCache,
    /// The shared backing store.
    Storage,
}

/// Configuration of the distributed cache.
#[derive(Debug, Clone, PartialEq)]
pub struct DistributedConfig {
    /// Number of training nodes (each with a client, server, manager).
    pub nodes: usize,
    /// Per-node cache configuration.
    pub node_config: IcacheConfig,
    /// One-way latency of a peer-to-peer cache read.
    pub remote_hop: SimDuration,
    /// Interconnect bandwidth for peer reads, bytes/second.
    pub interconnect_bandwidth: f64,
}

impl DistributedConfig {
    /// A cluster of `nodes` nodes, each caching `per_node_fraction` of
    /// `dataset` (the paper's distributed setup gives each node 20 %).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] when `nodes` is zero or the
    /// per-node config is invalid.
    pub fn for_dataset(dataset: &Dataset, nodes: usize, per_node_fraction: f64) -> Result<Self> {
        if nodes == 0 {
            return Err(Error::invalid_config("nodes", "must be at least 1"));
        }
        Ok(DistributedConfig {
            nodes,
            node_config: IcacheConfig::for_dataset(dataset, per_node_fraction)?,
            remote_hop: SimDuration::from_micros(80),
            interconnect_bandwidth: 1.25e9,
        })
    }
}

/// Read-only view over the sharded sample→node directory, presented as
/// the single logical store the old cluster exposed. Lookups are routed
/// to the responsible shard and counted exactly like the fetch path's
/// directory reads.
#[derive(Debug)]
pub struct DirectoryView<'a> {
    svc: &'a CacheService,
}

impl DirectoryView<'_> {
    /// Total registered samples across every shard.
    pub fn len(&self) -> usize {
        self.svc.directory_len()
    }

    /// True when no samples are registered anywhere.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The node caching `id`, if any (a counted directory read).
    pub fn lookup(&self, id: SampleId) -> Option<NodeId> {
        self.svc.directory_lookup(id)
    }
}

/// The multi-node iCache: per-node managers plus a shared directory.
///
/// Data-parallel training maps worker `JobId(k)` to node `k % nodes`. The
/// fetch path follows §III-E: local cache → directory lookup → peer cache
/// → shared storage, registering freshly cached samples in the directory
/// so no sample is duplicated across nodes. Since the sharded-service
/// redesign every one of those steps is a [`crate::service::CacheRpc`]
/// exchange inside the wrapped [`CacheService`]; this facade pins the
/// service to the old cluster's semantics.
///
/// With an [`Obs`] handle installed (see [`Observable::set_obs`]), every
/// fetch is classified into one of three per-node counters —
/// `dist.node<i>.local_hits`, `dist.node<i>.remote_hits`,
/// `dist.node<i>.storage_fetches` — and the cluster-wide
/// `dist.remote_hits` total always matches [`DistributedCache::remote_hits`].
/// The handle is forwarded to each node's manager and to the directory
/// shards, so single-node `cache.*` counters and `dist.directory.*`
/// counters aggregate into the same registry.
#[derive(Debug)]
pub struct DistributedCache {
    svc: CacheService,
}

impl DistributedCache {
    /// Build the cluster for `dataset`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] when any per-node manager cannot
    /// be built.
    pub fn new(config: DistributedConfig, dataset: &Dataset) -> Result<Self> {
        Ok(DistributedCache {
            svc: CacheService::new(ServiceConfig::from_distributed(&config), dataset)?,
        })
    }

    /// Number of nodes in the cluster.
    pub fn node_count(&self) -> usize {
        self.svc.node_count()
    }

    /// The shared directory (read access for diagnostics).
    pub fn directory(&self) -> DirectoryView<'_> {
        DirectoryView { svc: &self.svc }
    }

    /// Peer-cache hits served so far.
    pub fn remote_hits(&self) -> u64 {
        self.svc.remote_hits()
    }

    /// The underlying sharded cache service.
    pub fn service(&self) -> &CacheService {
        &self.svc
    }

    /// Mutable access to the underlying service (churn scheduling,
    /// link shaping, direct RPC injection).
    pub fn service_mut(&mut self) -> &mut CacheService {
        &mut self.svc
    }

    /// Unwrap into the underlying service.
    pub fn into_service(self) -> CacheService {
        self.svc
    }

    #[cfg(test)]
    fn node_of(&self, job: JobId) -> usize {
        job.0 as usize % self.svc.node_count()
    }

    /// Classify where a fetch for `job`/`id` would be served from,
    /// without performing it.
    pub fn classify(&self, job: JobId, id: SampleId) -> RemoteFetchKind {
        self.svc.classify(job, id)
    }
}

impl Observable for DistributedCache {
    fn set_obs(&mut self, obs: Obs) {
        Observable::set_obs(&mut self.svc, obs);
    }
}

impl CacheSystem for DistributedCache {
    fn name(&self) -> &str {
        "icache-distributed"
    }

    fn fetch(
        &mut self,
        job: JobId,
        id: SampleId,
        size: ByteSize,
        now: SimTime,
        storage: &mut dyn StorageBackend,
    ) -> Fetch {
        self.svc.fetch(job, id, size, now, storage)
    }

    fn update_hlist(&mut self, job: JobId, hlist: &HList) {
        self.svc.update_hlist(job, hlist);
    }

    fn on_epoch_start(&mut self, job: JobId, epoch: Epoch) {
        self.svc.on_epoch_start(job, epoch);
    }

    fn on_epoch_end(&mut self, job: JobId, epoch: Epoch) {
        self.svc.on_epoch_end(job, epoch);
    }

    fn stats(&self) -> CacheStats {
        self.svc.stats()
    }

    fn set_obs(&mut self, obs: Obs) {
        Observable::set_obs(self, obs);
    }

    fn reset_stats(&mut self) {
        self.svc.reset_stats();
    }

    fn used_bytes(&self) -> ByteSize {
        self.svc.used_bytes()
    }

    fn capacity(&self) -> ByteSize {
        self.svc.capacity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::{DirectoryChange, DirectoryKv};
    use crate::FetchOutcome;
    use icache_sampling::ImportanceTable;
    use icache_storage::{Nfs, NfsConfig};
    use icache_types::{DatasetBuilder, SizeModel};

    fn dataset() -> Dataset {
        DatasetBuilder::new("d", 1_000)
            .size_model(SizeModel::Fixed(ByteSize::kib(3)))
            .build()
            .unwrap()
    }

    fn cluster(ds: &Dataset, nodes: usize) -> DistributedCache {
        DistributedCache::new(DistributedConfig::for_dataset(ds, nodes, 0.2).unwrap(), ds).unwrap()
    }

    fn hlist(ds: &Dataset) -> HList {
        let mut t = ImportanceTable::new(ds.len());
        for i in 0..200 {
            t.record_loss(SampleId(i), 10.0);
        }
        HList::top_fraction(&t, 0.2)
    }

    #[test]
    fn peer_cache_serves_without_duplication() {
        let ds = dataset();
        let mut dc = cluster(&ds, 2);
        let mut st = Nfs::new(NfsConfig::cloud_default()).unwrap();
        dc.update_hlist(JobId(0), &hlist(&ds));
        dc.update_hlist(JobId(1), &hlist(&ds));

        // Job 0 (node 0) faults sample 5 in from storage.
        let sz = ds.sample_size(SampleId(5));
        let f0 = dc.fetch(JobId(0), SampleId(5), sz, SimTime::ZERO, &mut st);
        assert_eq!(f0.outcome, FetchOutcome::Miss);
        assert_eq!(dc.directory().lookup(SampleId(5)), Some(NodeId(0)));

        // Job 1 (node 1) now reads it from node 0, not storage.
        assert_eq!(
            dc.classify(JobId(1), SampleId(5)),
            RemoteFetchKind::RemoteCache
        );
        let before = st.stats().sample_reads;
        let f1 = dc.fetch(JobId(1), SampleId(5), sz, f0.ready_at, &mut st);
        assert!(f1.outcome.served_from_cache());
        assert_eq!(st.stats().sample_reads, before, "no storage read");
        assert_eq!(dc.remote_hits(), 1);
    }

    #[test]
    fn remote_read_is_slower_than_local_but_faster_than_storage() {
        let ds = dataset();
        let mut dc = cluster(&ds, 2);
        let mut st = Nfs::new(NfsConfig::cloud_default()).unwrap();
        dc.update_hlist(JobId(0), &hlist(&ds));
        dc.update_hlist(JobId(1), &hlist(&ds));
        let sz = ds.sample_size(SampleId(7));

        let miss = dc.fetch(JobId(0), SampleId(7), sz, SimTime::ZERO, &mut st);
        let t_storage = miss.ready_at.saturating_since(SimTime::ZERO);

        let local = dc.fetch(JobId(0), SampleId(7), sz, miss.ready_at, &mut st);
        let t_local = local.ready_at.saturating_since(miss.ready_at);

        let remote = dc.fetch(JobId(1), SampleId(7), sz, local.ready_at, &mut st);
        let t_remote = remote.ready_at.saturating_since(local.ready_at);

        assert!(t_local < t_remote, "local {t_local} vs remote {t_remote}");
        assert!(
            t_remote < t_storage,
            "remote {t_remote} vs storage {t_storage}"
        );
    }

    #[test]
    fn jobs_map_to_nodes_round_robin() {
        let ds = dataset();
        let dc = cluster(&ds, 4);
        assert_eq!(dc.node_of(JobId(0)), 0);
        assert_eq!(dc.node_of(JobId(5)), 1);
        assert_eq!(dc.node_count(), 4);
    }

    #[test]
    fn cluster_capacity_sums_nodes() {
        let ds = dataset();
        let dc = cluster(&ds, 4);
        assert_eq!(dc.capacity(), ds.total_bytes().scaled(0.2) * 4);
    }

    #[test]
    fn zero_nodes_rejected() {
        let ds = dataset();
        assert!(DistributedConfig::for_dataset(&ds, 0, 0.2).is_err());
    }

    #[test]
    fn directory_insert_overwrite_reports_remap_and_traces_it() {
        let obs = Obs::new();
        let mut dir = DirectoryKv::new().with_obs(obs.clone());

        assert_eq!(
            dir.insert(SampleId(9), NodeId(0)),
            DirectoryChange::Inserted
        );
        assert_eq!(obs.counter("dist.directory.inserts"), 1);
        assert_eq!(obs.counter("dist.directory.remaps"), 0);

        // Re-inserting the same owner is idempotent for the counters.
        assert_eq!(
            dir.insert(SampleId(9), NodeId(0)),
            DirectoryChange::Unchanged
        );
        assert_eq!(obs.counter("dist.directory.inserts"), 1);
        assert_eq!(obs.counter("dist.directory.remaps"), 0);
        assert_eq!(obs.trace_len(), 0);

        // Overwriting with a different node reports the previous owner and
        // emits a remap event (the silently-overwritten-mapping fix).
        let change = dir.insert(SampleId(9), NodeId(2));
        assert_eq!(change, DirectoryChange::Remapped { from: NodeId(0) });
        assert_eq!(change.previous(), Some(NodeId(0)));
        assert_eq!(dir.lookup(SampleId(9)), Some(NodeId(2)));
        assert_eq!(obs.counter("dist.directory.remaps"), 1);
        let jsonl = obs.trace_jsonl();
        let line = jsonl.lines().last().expect("remap event recorded");
        let v = icache_obs::Json::parse(line).unwrap();
        assert_eq!(v["event"].as_str(), Some("directory_remap"));
        assert_eq!(v["sample"].as_u64(), Some(9));
        assert_eq!(v["from_node"].as_u64(), Some(0));
        assert_eq!(v["to_node"].as_u64(), Some(2));

        assert_eq!(dir.len(), 1, "remap does not grow the directory");
        assert_eq!(
            dir.len() as u64,
            obs.counter("dist.directory.inserts") - obs.counter("dist.directory.removes")
        );
    }

    #[test]
    fn directory_remove_missing_is_a_counted_noop() {
        let obs = Obs::new();
        let mut dir = DirectoryKv::new().with_obs(obs.clone());
        assert_eq!(dir.remove(SampleId(1)), None);
        assert_eq!(
            obs.counter("dist.directory.removes"),
            0,
            "missing removes must not distort the len == inserts - removes invariant"
        );
        dir.insert(SampleId(1), NodeId(0));
        assert_eq!(dir.remove(SampleId(1)), Some(NodeId(0)));
        assert_eq!(obs.counter("dist.directory.removes"), 1);
        assert!(dir.is_empty());
    }

    #[test]
    fn per_node_counters_classify_every_fetch() {
        let ds = dataset();
        let mut dc = cluster(&ds, 2);
        let obs = Obs::new();
        Observable::set_obs(&mut dc, obs.clone());
        let mut st = Nfs::new(NfsConfig::cloud_default()).unwrap();
        dc.update_hlist(JobId(0), &hlist(&ds));
        dc.update_hlist(JobId(1), &hlist(&ds));
        let sz = ds.sample_size(SampleId(5));

        // Node 0 faults sample 5 in (storage), re-reads it (local hit),
        // then node 1 reads it over the interconnect (remote hit).
        let f0 = dc.fetch(JobId(0), SampleId(5), sz, SimTime::ZERO, &mut st);
        let f1 = dc.fetch(JobId(0), SampleId(5), sz, f0.ready_at, &mut st);
        let _ = dc.fetch(JobId(1), SampleId(5), sz, f1.ready_at, &mut st);

        assert_eq!(obs.counter("dist.node0.storage_fetches"), 1);
        assert_eq!(obs.counter("dist.node0.local_hits"), 1);
        assert_eq!(obs.counter("dist.node1.remote_hits"), 1);
        assert_eq!(obs.counter("dist.remote_hits"), dc.remote_hits());
        assert_eq!(obs.gauge("dist.nodes"), Some(2.0));
        let counts: std::collections::HashMap<String, u64> =
            obs.trace_event_counts().into_iter().collect();
        assert_eq!(counts.get("remote_hit"), Some(&1));

        // The facade keeps the service plane silent: no svc.* counters
        // leak into the shared registry.
        assert_eq!(obs.counter("svc.net.sent"), 0);
        assert_eq!(obs.counter("svc.heartbeats_sent"), 0);
    }

    #[test]
    fn stats_aggregate_across_nodes_and_remote_hits() {
        let ds = dataset();
        let mut dc = cluster(&ds, 2);
        let mut st = Nfs::new(NfsConfig::cloud_default()).unwrap();
        dc.update_hlist(JobId(0), &hlist(&ds));
        dc.update_hlist(JobId(1), &hlist(&ds));
        let sz = ds.sample_size(SampleId(1));
        let f = dc.fetch(JobId(0), SampleId(1), sz, SimTime::ZERO, &mut st);
        let _ = dc.fetch(JobId(1), SampleId(1), sz, f.ready_at, &mut st);
        let s = dc.stats();
        assert_eq!(s.misses, 1);
        assert_eq!(s.h_hits, 1, "remote hit counted");
        dc.reset_stats();
        assert_eq!(dc.stats().requests(), 0);
    }
}
