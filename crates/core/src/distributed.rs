//! Distributed iCache (§III-E).

use crate::{CacheStats, CacheSystem, Fetch, FetchOutcome, IcacheConfig, IcacheManager};
use icache_obs::{Obs, TraceEvent};
use icache_sampling::HList;
use icache_storage::StorageBackend;
use icache_types::{
    ByteSize, Dataset, Epoch, Error, JobId, NodeId, Result, SampleId, SimDuration, SimTime,
};
use std::collections::HashMap;

/// The distributed key-value directory: which node caches which sample.
///
/// The paper shares one such store among all training nodes so that cached
/// data is never duplicated: a sample cached anywhere is read from that
/// node instead of storage.
///
/// Directory traffic is recorded in the attached [`Obs`] registry under
/// `dist.directory.lookups` / `.inserts` / `.removes` / `.remaps`. Fresh
/// inserts and successful removes are what get counted, so at any point
/// `len() == inserts − removes`; an insert that overwrites an existing
/// mapping with a different node counts as a *remap* (and emits a
/// [`TraceEvent::DirectoryRemap`]), not as an insert.
///
/// # Examples
///
/// ```
/// use icache_core::DirectoryKv;
/// use icache_obs::Obs;
/// use icache_types::{NodeId, SampleId};
///
/// let obs = Obs::new();
/// let mut dir = DirectoryKv::new();
/// dir.set_obs(obs.clone());
/// dir.insert(SampleId(5), NodeId(1));
/// assert_eq!(dir.lookup(SampleId(5)), Some(NodeId(1)));
/// // Overwriting with a different node is a remap, not a fresh insert.
/// assert_eq!(dir.insert(SampleId(5), NodeId(2)), Some(NodeId(1)));
/// assert_eq!(obs.counter("dist.directory.inserts"), 1);
/// assert_eq!(obs.counter("dist.directory.remaps"), 1);
/// dir.remove(SampleId(5));
/// assert_eq!(dir.lookup(SampleId(5)), None);
/// assert_eq!(
///     dir.len() as u64,
///     obs.counter("dist.directory.inserts") - obs.counter("dist.directory.removes")
/// );
/// ```
#[derive(Debug, Clone)]
pub struct DirectoryKv {
    // lint: allow(determinism): sample->node lookups and removals only;
    // the directory is never iterated, so order cannot escape
    map: HashMap<SampleId, NodeId>,
    obs: Obs,
}

impl Default for DirectoryKv {
    fn default() -> Self {
        DirectoryKv {
            map: HashMap::new(), // lint: allow(determinism): see field note
            obs: Obs::noop(),
        }
    }
}

impl DirectoryKv {
    /// An empty directory.
    pub fn new() -> Self {
        DirectoryKv::default()
    }

    /// Install the shared observability handle.
    pub fn set_obs(&mut self, obs: Obs) {
        self.obs = obs;
    }

    /// Number of registered samples.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no samples are registered.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The node caching `id`, if any.
    pub fn lookup(&self, id: SampleId) -> Option<NodeId> {
        self.obs.inc("dist.directory.lookups");
        self.map.get(&id).copied()
    }

    /// Register `id` as cached on `node`; returns the previous owner.
    ///
    /// Overwriting an existing mapping with a *different* node counts as
    /// a remap and emits [`TraceEvent::DirectoryRemap`]; re-inserting the
    /// same owner is a no-op for the counters.
    pub fn insert(&mut self, id: SampleId, node: NodeId) -> Option<NodeId> {
        let prev = self.map.insert(id, node);
        match prev {
            None => self.obs.inc("dist.directory.inserts"),
            Some(old) if old != node => {
                self.obs.inc("dist.directory.remaps");
                self.obs.emit(TraceEvent::DirectoryRemap {
                    sample: id.0,
                    from_node: old.0 as u64,
                    to_node: node.0 as u64,
                });
            }
            Some(_) => {}
        }
        prev
    }

    /// Unregister `id`; returns the previous owner. Removing a missing
    /// sample is a no-op for the counters.
    pub fn remove(&mut self, id: SampleId) -> Option<NodeId> {
        let prev = self.map.remove(&id);
        if prev.is_some() {
            self.obs.inc("dist.directory.removes");
        }
        prev
    }
}

/// Where a distributed fetch was served from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RemoteFetchKind {
    /// The requesting node's own cache.
    Local,
    /// A peer node's cache over the interconnect.
    RemoteCache,
    /// The shared backing store.
    Storage,
}

/// Configuration of the distributed cache.
#[derive(Debug, Clone, PartialEq)]
pub struct DistributedConfig {
    /// Number of training nodes (each with a client, server, manager).
    pub nodes: usize,
    /// Per-node cache configuration.
    pub node_config: IcacheConfig,
    /// One-way latency of a peer-to-peer cache read.
    pub remote_hop: SimDuration,
    /// Interconnect bandwidth for peer reads, bytes/second.
    pub interconnect_bandwidth: f64,
}

impl DistributedConfig {
    /// A cluster of `nodes` nodes, each caching `per_node_fraction` of
    /// `dataset` (the paper's distributed setup gives each node 20 %).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] when `nodes` is zero or the
    /// per-node config is invalid.
    pub fn for_dataset(dataset: &Dataset, nodes: usize, per_node_fraction: f64) -> Result<Self> {
        if nodes == 0 {
            return Err(Error::invalid_config("nodes", "must be at least 1"));
        }
        Ok(DistributedConfig {
            nodes,
            node_config: IcacheConfig::for_dataset(dataset, per_node_fraction)?,
            remote_hop: SimDuration::from_micros(80),
            interconnect_bandwidth: 1.25e9,
        })
    }
}

/// Per-node counter names, pre-rendered so the fetch hot path does not
/// format strings.
#[derive(Debug)]
struct NodeCounterKeys {
    local_hits: String,
    remote_hits: String,
    storage_fetches: String,
}

/// The multi-node iCache: per-node managers plus a shared directory.
///
/// Data-parallel training maps worker `JobId(k)` to node `k % nodes`. The
/// fetch path follows §III-E: local cache → directory lookup → peer cache
/// → shared storage, registering freshly cached samples in the directory
/// so no sample is duplicated across nodes.
///
/// With an [`Obs`] handle installed (see [`CacheSystem::set_obs`]), every
/// fetch is classified into one of three per-node counters —
/// `dist.node<i>.local_hits`, `dist.node<i>.remote_hits`,
/// `dist.node<i>.storage_fetches` — and the cluster-wide
/// `dist.remote_hits` total always matches [`DistributedCache::remote_hits`].
/// The handle is forwarded to each node's manager and to the shared
/// [`DirectoryKv`], so single-node `cache.*` counters and
/// `dist.directory.*` counters aggregate into the same registry.
#[derive(Debug)]
pub struct DistributedCache {
    config: DistributedConfig,
    nodes: Vec<IcacheManager>,
    directory: DirectoryKv,
    remote_hits: u64,
    remote_bytes: ByteSize,
    obs: Obs,
    node_keys: Vec<NodeCounterKeys>,
}

impl DistributedCache {
    /// Build the cluster for `dataset`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] when any per-node manager cannot
    /// be built.
    pub fn new(config: DistributedConfig, dataset: &Dataset) -> Result<Self> {
        let nodes = (0..config.nodes)
            .map(|i| {
                let mut c = config.node_config.clone();
                c.seed = c.seed.wrapping_add(i as u64);
                IcacheManager::new(c, dataset)
            })
            .collect::<Result<Vec<_>>>()?;
        // Counter names are assembled once here and emitted through the
        // cached strings below, so the contract checker learns them from
        // these declarations:
        // lint: metric("dist.node{*}.local_hits")
        // lint: metric("dist.node{*}.remote_hits")
        // lint: metric("dist.node{*}.storage_fetches")
        let node_keys = (0..config.nodes)
            .map(|i| NodeCounterKeys {
                local_hits: format!("dist.node{i}.local_hits"),
                remote_hits: format!("dist.node{i}.remote_hits"),
                storage_fetches: format!("dist.node{i}.storage_fetches"),
            })
            .collect();
        Ok(DistributedCache {
            config,
            nodes,
            directory: DirectoryKv::new(),
            remote_hits: 0,
            remote_bytes: ByteSize::ZERO,
            obs: Obs::noop(),
            node_keys,
        })
    }

    /// Number of nodes in the cluster.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The shared directory (read access for diagnostics).
    pub fn directory(&self) -> &DirectoryKv {
        &self.directory
    }

    /// Peer-cache hits served so far.
    pub fn remote_hits(&self) -> u64 {
        self.remote_hits
    }

    fn node_of(&self, job: JobId) -> usize {
        job.0 as usize % self.nodes.len()
    }

    /// Classify where a fetch for `job`/`id` would be served from,
    /// without performing it.
    pub fn classify(&self, job: JobId, id: SampleId) -> RemoteFetchKind {
        let local = self.node_of(job);
        if self.nodes[local].contains_cached(id) {
            return RemoteFetchKind::Local;
        }
        match self.remote_owner(local, id) {
            Some(_) => RemoteFetchKind::RemoteCache,
            None => RemoteFetchKind::Storage,
        }
    }

    /// The peer node that can serve `id` to node `local`, if any
    /// (directory hit on a different node whose cache still holds it).
    fn remote_owner(&self, local: usize, id: SampleId) -> Option<NodeId> {
        match self.directory.lookup(id) {
            Some(owner)
                if owner.0 as usize != local
                    && self.nodes[owner.0 as usize].contains_cached(id) =>
            {
                Some(owner)
            }
            _ => None,
        }
    }

    /// Route a fetch through the requesting node's own manager and keep
    /// the directory's residency view in sync.
    fn local_fetch(
        &mut self,
        local: usize,
        job: JobId,
        id: SampleId,
        size: ByteSize,
        now: SimTime,
        storage: &mut dyn StorageBackend,
    ) -> Fetch {
        let fetch = self.nodes[local].fetch(job, id, size, now, storage);
        // Register fresh residency; unregister when the sample is served
        // from storage but was not admitted anywhere.
        if self.nodes[local].contains_cached(id) {
            self.directory.insert(id, NodeId(local as u32));
        } else if self.directory.lookup(id) == Some(NodeId(local as u32)) {
            self.directory.remove(id);
        }
        fetch
    }
}

impl CacheSystem for DistributedCache {
    fn name(&self) -> &str {
        "icache-distributed"
    }

    fn fetch(
        &mut self,
        job: JobId,
        id: SampleId,
        size: ByteSize,
        now: SimTime,
        storage: &mut dyn StorageBackend,
    ) -> Fetch {
        let local = self.node_of(job);
        if self.nodes[local].contains_cached(id) {
            self.obs.inc(&self.node_keys[local].local_hits);
            return self.local_fetch(local, job, id, size, now, storage);
        }
        if let Some(owner) = self.remote_owner(local, id) {
            // Serve over the interconnect; do not duplicate locally.
            let transfer =
                SimDuration::from_secs_f64(size.as_f64() / self.config.interconnect_bandwidth);
            self.remote_hits += 1;
            self.remote_bytes += size;
            self.obs.inc(&self.node_keys[local].remote_hits);
            self.obs.inc("dist.remote_hits");
            self.obs.emit(TraceEvent::RemoteHit {
                job: job.0 as u64,
                sample: id.0,
                node: owner.0 as u64,
            });
            return Fetch {
                ready_at: now + self.config.remote_hop + transfer,
                served_id: id,
                outcome: FetchOutcome::HitH,
            };
        }
        // Not cached anywhere useful: the local manager goes to storage
        // (and may still serve a substitution from its own L-region).
        self.obs.inc(&self.node_keys[local].storage_fetches);
        self.local_fetch(local, job, id, size, now, storage)
    }

    fn update_hlist(&mut self, job: JobId, hlist: &HList) {
        // Every node needs the importance view to manage its region.
        for node in &mut self.nodes {
            node.update_hlist(job, hlist);
        }
    }

    fn on_epoch_start(&mut self, job: JobId, epoch: Epoch) {
        let local = self.node_of(job);
        self.nodes[local].on_epoch_start(job, epoch);
    }

    fn on_epoch_end(&mut self, job: JobId, epoch: Epoch) {
        let local = self.node_of(job);
        self.nodes[local].on_epoch_end(job, epoch);
    }

    fn stats(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for n in &self.nodes {
            let s = n.stats();
            total.h_hits += s.h_hits;
            total.l_hits += s.l_hits;
            total.pm_hits += s.pm_hits;
            total.substitutions += s.substitutions;
            total.misses += s.misses;
            total.insertions += s.insertions;
            total.evictions += s.evictions;
            total.rejections += s.rejections;
            total.bytes_from_cache += s.bytes_from_cache;
            total.bytes_from_storage += s.bytes_from_storage;
        }
        // Peer hits are cache hits of the cluster.
        total.h_hits += self.remote_hits;
        total.bytes_from_cache += self.remote_bytes;
        total
    }

    fn set_obs(&mut self, obs: Obs) {
        // One shared handle across every layer of the cluster: node
        // managers, the directory, and the cluster-level counters all
        // record into the same registry and trace ring.
        for node in &mut self.nodes {
            node.set_obs(obs.clone());
        }
        self.directory.set_obs(obs.clone());
        obs.set_gauge("dist.nodes", self.nodes.len() as f64);
        self.obs = obs;
    }

    fn reset_stats(&mut self) {
        for n in &mut self.nodes {
            n.reset_stats();
        }
        self.remote_hits = 0;
        self.remote_bytes = ByteSize::ZERO;
    }

    fn used_bytes(&self) -> ByteSize {
        self.nodes.iter().map(|n| n.used_bytes()).sum()
    }

    fn capacity(&self) -> ByteSize {
        self.nodes.iter().map(|n| n.capacity()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icache_sampling::ImportanceTable;
    use icache_storage::{Nfs, NfsConfig};
    use icache_types::{DatasetBuilder, SizeModel};

    fn dataset() -> Dataset {
        DatasetBuilder::new("d", 1_000)
            .size_model(SizeModel::Fixed(ByteSize::kib(3)))
            .build()
            .unwrap()
    }

    fn cluster(ds: &Dataset, nodes: usize) -> DistributedCache {
        DistributedCache::new(DistributedConfig::for_dataset(ds, nodes, 0.2).unwrap(), ds).unwrap()
    }

    fn hlist(ds: &Dataset) -> HList {
        let mut t = ImportanceTable::new(ds.len());
        for i in 0..200 {
            t.record_loss(SampleId(i), 10.0);
        }
        HList::top_fraction(&t, 0.2)
    }

    #[test]
    fn peer_cache_serves_without_duplication() {
        let ds = dataset();
        let mut dc = cluster(&ds, 2);
        let mut st = Nfs::new(NfsConfig::cloud_default()).unwrap();
        dc.update_hlist(JobId(0), &hlist(&ds));
        dc.update_hlist(JobId(1), &hlist(&ds));

        // Job 0 (node 0) faults sample 5 in from storage.
        let sz = ds.sample_size(SampleId(5));
        let f0 = dc.fetch(JobId(0), SampleId(5), sz, SimTime::ZERO, &mut st);
        assert_eq!(f0.outcome, FetchOutcome::Miss);
        assert_eq!(dc.directory().lookup(SampleId(5)), Some(NodeId(0)));

        // Job 1 (node 1) now reads it from node 0, not storage.
        assert_eq!(
            dc.classify(JobId(1), SampleId(5)),
            RemoteFetchKind::RemoteCache
        );
        let before = st.stats().sample_reads;
        let f1 = dc.fetch(JobId(1), SampleId(5), sz, f0.ready_at, &mut st);
        assert!(f1.outcome.served_from_cache());
        assert_eq!(st.stats().sample_reads, before, "no storage read");
        assert_eq!(dc.remote_hits(), 1);
    }

    #[test]
    fn remote_read_is_slower_than_local_but_faster_than_storage() {
        let ds = dataset();
        let mut dc = cluster(&ds, 2);
        let mut st = Nfs::new(NfsConfig::cloud_default()).unwrap();
        dc.update_hlist(JobId(0), &hlist(&ds));
        dc.update_hlist(JobId(1), &hlist(&ds));
        let sz = ds.sample_size(SampleId(7));

        let miss = dc.fetch(JobId(0), SampleId(7), sz, SimTime::ZERO, &mut st);
        let t_storage = miss.ready_at.saturating_since(SimTime::ZERO);

        let local = dc.fetch(JobId(0), SampleId(7), sz, miss.ready_at, &mut st);
        let t_local = local.ready_at.saturating_since(miss.ready_at);

        let remote = dc.fetch(JobId(1), SampleId(7), sz, local.ready_at, &mut st);
        let t_remote = remote.ready_at.saturating_since(local.ready_at);

        assert!(t_local < t_remote, "local {t_local} vs remote {t_remote}");
        assert!(
            t_remote < t_storage,
            "remote {t_remote} vs storage {t_storage}"
        );
    }

    #[test]
    fn jobs_map_to_nodes_round_robin() {
        let ds = dataset();
        let dc = cluster(&ds, 4);
        assert_eq!(dc.node_of(JobId(0)), 0);
        assert_eq!(dc.node_of(JobId(5)), 1);
        assert_eq!(dc.node_count(), 4);
    }

    #[test]
    fn cluster_capacity_sums_nodes() {
        let ds = dataset();
        let dc = cluster(&ds, 4);
        assert_eq!(dc.capacity(), ds.total_bytes().scaled(0.2) * 4);
    }

    #[test]
    fn zero_nodes_rejected() {
        let ds = dataset();
        assert!(DistributedConfig::for_dataset(&ds, 0, 0.2).is_err());
    }

    #[test]
    fn directory_insert_overwrite_returns_prev_and_traces_a_remap() {
        let obs = Obs::new();
        let mut dir = DirectoryKv::new();
        dir.set_obs(obs.clone());

        assert_eq!(dir.insert(SampleId(9), NodeId(0)), None);
        assert_eq!(obs.counter("dist.directory.inserts"), 1);
        assert_eq!(obs.counter("dist.directory.remaps"), 0);

        // Re-inserting the same owner is idempotent for the counters.
        assert_eq!(dir.insert(SampleId(9), NodeId(0)), Some(NodeId(0)));
        assert_eq!(obs.counter("dist.directory.inserts"), 1);
        assert_eq!(obs.counter("dist.directory.remaps"), 0);
        assert_eq!(obs.trace_len(), 0);

        // Overwriting with a different node returns the previous owner and
        // emits a remap event (the silently-overwritten-mapping fix).
        assert_eq!(dir.insert(SampleId(9), NodeId(2)), Some(NodeId(0)));
        assert_eq!(dir.lookup(SampleId(9)), Some(NodeId(2)));
        assert_eq!(obs.counter("dist.directory.remaps"), 1);
        let jsonl = obs.trace_jsonl();
        let line = jsonl.lines().last().expect("remap event recorded");
        let v = icache_obs::Json::parse(line).unwrap();
        assert_eq!(v["event"].as_str(), Some("directory_remap"));
        assert_eq!(v["sample"].as_u64(), Some(9));
        assert_eq!(v["from_node"].as_u64(), Some(0));
        assert_eq!(v["to_node"].as_u64(), Some(2));

        assert_eq!(dir.len(), 1, "remap does not grow the directory");
        assert_eq!(
            dir.len() as u64,
            obs.counter("dist.directory.inserts") - obs.counter("dist.directory.removes")
        );
    }

    #[test]
    fn directory_remove_missing_is_a_counted_noop() {
        let obs = Obs::new();
        let mut dir = DirectoryKv::new();
        dir.set_obs(obs.clone());
        assert_eq!(dir.remove(SampleId(1)), None);
        assert_eq!(
            obs.counter("dist.directory.removes"),
            0,
            "missing removes must not distort the len == inserts - removes invariant"
        );
        dir.insert(SampleId(1), NodeId(0));
        assert_eq!(dir.remove(SampleId(1)), Some(NodeId(0)));
        assert_eq!(obs.counter("dist.directory.removes"), 1);
        assert!(dir.is_empty());
    }

    #[test]
    fn per_node_counters_classify_every_fetch() {
        let ds = dataset();
        let mut dc = cluster(&ds, 2);
        let obs = Obs::new();
        dc.set_obs(obs.clone());
        let mut st = Nfs::new(NfsConfig::cloud_default()).unwrap();
        dc.update_hlist(JobId(0), &hlist(&ds));
        dc.update_hlist(JobId(1), &hlist(&ds));
        let sz = ds.sample_size(SampleId(5));

        // Node 0 faults sample 5 in (storage), re-reads it (local hit),
        // then node 1 reads it over the interconnect (remote hit).
        let f0 = dc.fetch(JobId(0), SampleId(5), sz, SimTime::ZERO, &mut st);
        let f1 = dc.fetch(JobId(0), SampleId(5), sz, f0.ready_at, &mut st);
        let _ = dc.fetch(JobId(1), SampleId(5), sz, f1.ready_at, &mut st);

        assert_eq!(obs.counter("dist.node0.storage_fetches"), 1);
        assert_eq!(obs.counter("dist.node0.local_hits"), 1);
        assert_eq!(obs.counter("dist.node1.remote_hits"), 1);
        assert_eq!(obs.counter("dist.remote_hits"), dc.remote_hits());
        assert_eq!(obs.gauge("dist.nodes"), Some(2.0));
        let counts: std::collections::HashMap<String, u64> =
            obs.trace_event_counts().into_iter().collect();
        assert_eq!(counts.get("remote_hit"), Some(&1));
    }

    #[test]
    fn stats_aggregate_across_nodes_and_remote_hits() {
        let ds = dataset();
        let mut dc = cluster(&ds, 2);
        let mut st = Nfs::new(NfsConfig::cloud_default()).unwrap();
        dc.update_hlist(JobId(0), &hlist(&ds));
        dc.update_hlist(JobId(1), &hlist(&ds));
        let sz = ds.sample_size(SampleId(1));
        let f = dc.fetch(JobId(0), SampleId(1), sz, SimTime::ZERO, &mut st);
        let _ = dc.fetch(JobId(1), SampleId(1), sz, f.ready_at, &mut st);
        let s = dc.stats();
        assert_eq!(s.misses, 1);
        assert_eq!(s.h_hits, 1, "remote hit counted");
        dc.reset_stats();
        assert_eq!(dc.stats().requests(), 0);
    }
}
