//! The L-cache: dynamic packaging and substitutability (§III-C).

use crate::dense::IdSlab;
use crate::SampleData;
use icache_types::{ByteSize, Error, IdSet, Result, SampleId, SimTime};
use rand::rngs::StdRng;
use rand::Rng;
use std::collections::VecDeque;

/// Identity of a package built by dynamic packaging.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PackageId(pub u64);

/// A package: a contiguous bundle of L-samples written and read as one
/// large sequential I/O (≥ 1 MB in the paper).
#[derive(Debug, Clone, PartialEq)]
pub struct Package {
    id: PackageId,
    samples: Vec<SampleData>,
    total: ByteSize,
}

impl Package {
    /// Build a package from its samples.
    pub fn new(id: PackageId, samples: Vec<SampleData>) -> Self {
        let total = samples.iter().map(|s| s.size()).sum();
        Package { id, samples, total }
    }

    /// Package identity.
    pub fn id(&self) -> PackageId {
        self.id
    }

    /// The samples bundled in this package.
    pub fn samples(&self) -> &[SampleData] {
        &self.samples
    }

    /// Total payload bytes.
    pub fn total_bytes(&self) -> ByteSize {
        self.total
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when the package is empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }
}

/// Builds packages for the L-cache's loading thread.
///
/// Re-packing policy (§III-C): samples that recently *missed* in the
/// L-cache are packed first ("to increase sample diversity"), and the rest
/// of the package is filled with L-samples drawn randomly from the pool.
///
/// # Examples
///
/// ```
/// use icache_core::Packager;
/// use icache_types::{ByteSize, SampleId, SeedSequence};
///
/// let mut packager = Packager::new(ByteSize::mib(1), 7)?;
/// let pool: Vec<SampleId> = (0..10_000).map(SampleId).collect();
/// let pkg = packager.build(&[SampleId(5)], &pool, |_| ByteSize::kib(3));
/// assert_eq!(pkg.samples()[0].id(), SampleId(5), "missed samples pack first");
/// // Filled to the target without overshooting it.
/// assert!(pkg.total_bytes() <= ByteSize::mib(1));
/// assert!(pkg.total_bytes() >= ByteSize::mib(1) - ByteSize::kib(3));
/// # Ok::<(), icache_types::Error>(())
/// ```
#[derive(Debug, Clone)]
pub struct Packager {
    target_size: ByteSize,
    rng: StdRng,
    next_id: u64,
    /// Scratch dedup bitmap, cleared per build and grown lazily to the
    /// largest id offered. A bitmap beats the `BTreeSet` it replaced
    /// because the background loader builds tens of thousands of packages
    /// per replay, each deduplicating hundreds of dense sample ids.
    seen: IdSet,
}

impl Packager {
    /// A packager producing packages filled up to `target_size` bytes.
    ///
    /// Packages never overshoot the target — the L-region is sized in
    /// package units, so an oversized package would not fit its slot. The
    /// paper's "at least 1 MB" rule is realised by *filling*: random pool
    /// draws are appended until the next sample would cross the target, so
    /// a package stops within one sample size of it. Only when the very
    /// first sample alone exceeds the target (or the pool runs out of
    /// distinct samples) does a package come up short.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] when `target_size` is zero.
    pub fn new(target_size: ByteSize, seed: u64) -> Result<Self> {
        if target_size.is_zero() {
            return Err(Error::invalid_config(
                "target_size",
                "package size must be non-zero",
            ));
        }
        use rand::SeedableRng;
        Ok(Packager {
            target_size,
            rng: StdRng::seed_from_u64(seed),
            next_id: 0,
            seen: IdSet::new(0),
        })
    }

    /// Target package size.
    pub fn target_size(&self) -> ByteSize {
        self.target_size
    }

    /// Number of packages built so far.
    pub fn packages_built(&self) -> u64 {
        self.next_id
    }

    /// Build the next package: `missed` samples first, then random fill
    /// from `pool` until the target size is reached (or the pool offers no
    /// more distinct samples). `size_of` maps each id to its payload size.
    pub fn build(
        &mut self,
        missed: &[SampleId],
        pool: &[SampleId],
        size_of: impl Fn(SampleId) -> ByteSize,
    ) -> Package {
        self.build_with_target(missed, pool, size_of, self.target_size)
    }

    /// Like [`Packager::build`] but with an explicit target size, used when
    /// the L-region is currently smaller than the configured package size.
    pub fn build_with_target(
        &mut self,
        missed: &[SampleId],
        pool: &[SampleId],
        size_of: impl Fn(SampleId) -> ByteSize,
        target: ByteSize,
    ) -> Package {
        let saved = self.target_size;
        self.target_size = target.max(ByteSize::new(1));
        let pkg = self.build_inner(missed, pool, size_of);
        self.target_size = saved;
        pkg
    }

    fn build_inner(
        &mut self,
        missed: &[SampleId],
        pool: &[SampleId],
        size_of: impl Fn(SampleId) -> ByteSize,
    ) -> Package {
        let mut chosen: Vec<SampleId> = Vec::new();
        self.seen.clear();
        let mut total = ByteSize::ZERO;
        // Packages never overshoot the target (the L-region is sized in
        // package units); only the very first sample may exceed it.
        let try_add = |id: SampleId, total: &mut ByteSize, chosen: &mut Vec<SampleId>| {
            let size = size_of(id);
            if !chosen.is_empty() && *total + size > self.target_size {
                return false;
            }
            *total += size;
            chosen.push(id);
            true
        };
        // First sight of a candidate id; widens the scratch bitmap on
        // demand so the packager stays universe-agnostic.
        let mark_new = |seen: &mut IdSet, id: SampleId| {
            seen.grow_to(id.0 + 1);
            seen.insert(id)
        };
        for &id in missed {
            if total >= self.target_size {
                break;
            }
            if mark_new(&mut self.seen, id) {
                try_add(id, &mut total, &mut chosen);
            }
        }
        // Random fill. Bounded attempts so degenerate pools terminate.
        if !pool.is_empty() {
            let mut attempts = 0usize;
            let max_attempts = pool.len() * 4;
            while total < self.target_size && attempts < max_attempts {
                attempts += 1;
                let id = pool[self.rng.gen_range(0..pool.len())];
                if mark_new(&mut self.seen, id) && !try_add(id, &mut total, &mut chosen) {
                    break;
                }
            }
        }
        let id = PackageId(self.next_id);
        self.next_id += 1;
        Package::new(
            id,
            chosen
                .into_iter()
                .map(|i| SampleData::generate(i, size_of(i)))
                .collect(),
        )
    }
}

/// Configuration of the L-cache region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LCacheConfig {
    /// Region capacity in bytes.
    pub capacity: ByteSize,
    /// Number of samples in the dataset (universe of the accessed-set).
    pub num_samples: u64,
}

/// Result of an L-cache lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LFetch {
    /// The requested sample is resident: serve it.
    Hit,
    /// The requested sample is missing: serve this resident, not-yet-
    /// accessed substitute instead (§III-C substitutability).
    Substitute(SampleId),
    /// Nothing suitable is resident; the caller must go to storage.
    Empty,
}

/// The low-importance cache region (§III-C).
///
/// Samples arrive in whole [`Package`]s loaded asynchronously; lookups
/// that miss are served by substituting a random resident L-sample that
/// has not been accessed in the current epoch; missed ids are logged so
/// the next re-packing round includes them.
///
/// # Examples
///
/// ```
/// use icache_core::{LCache, LCacheConfig, LFetch, Package, PackageId, SampleData};
/// use icache_types::{ByteSize, SampleId, SeedSequence, SimTime};
///
/// let mut lc = LCache::new(LCacheConfig { capacity: ByteSize::mib(4), num_samples: 100 });
/// let pkg = Package::new(
///     PackageId(0),
///     (0..10).map(|i| SampleData::generate(SampleId(i), ByteSize::kib(3))).collect(),
/// );
/// lc.install_package(pkg, SimTime::ZERO);
/// lc.integrate(SimTime::ZERO);
///
/// let mut rng = SeedSequence::new(1).rng("l");
/// assert_eq!(lc.lookup(SampleId(5), &mut rng), LFetch::Hit);
/// assert!(matches!(lc.lookup(SampleId(99), &mut rng), LFetch::Substitute(_)));
/// ```
#[derive(Debug, Clone)]
pub struct LCache {
    config: LCacheConfig,
    used: ByteSize,
    /// Resident samples in a dense id-indexed slab: O(1) keyed lookup on
    /// the per-request path *and* ascending-id iteration for the
    /// per-epoch fresh-pool rebuild, in one container (it used to take a
    /// `HashMap` plus a separately maintained `BTreeSet` index).
    resident: IdSlab<SampleData>,
    /// Loaded packages in FIFO order, with the ids each one *added* (a
    /// sample re-packed later is owned by its first resident package).
    package_fifo: VecDeque<(PackageId, Vec<SampleId>, ByteSize)>,
    /// Resident samples not yet accessed this epoch, with O(1) random
    /// removal.
    fresh: Vec<SampleId>,
    /// id → index into `fresh`, for O(1) swap-removal on access.
    fresh_pos: IdSlab<usize>,
    accessed: IdSet,
    missed_log: VecDeque<SampleId>,
    pending: VecDeque<(Package, SimTime)>,
}

impl LCache {
    /// An empty L-cache.
    pub fn new(config: LCacheConfig) -> Self {
        LCache {
            config,
            used: ByteSize::ZERO,
            resident: IdSlab::new(),
            package_fifo: VecDeque::new(),
            fresh: Vec::new(),
            fresh_pos: IdSlab::new(),
            accessed: IdSet::new(config.num_samples),
            missed_log: VecDeque::new(),
            pending: VecDeque::new(),
        }
    }

    /// Region capacity.
    pub fn capacity(&self) -> ByteSize {
        self.config.capacity
    }

    /// Grow or shrink the region (evicting oldest packages as needed).
    pub fn set_capacity(&mut self, capacity: ByteSize) {
        self.config.capacity = capacity;
        self.evict_to_fit();
    }

    /// Bytes currently resident.
    pub fn used(&self) -> ByteSize {
        self.used
    }

    /// Number of resident samples.
    pub fn len(&self) -> usize {
        self.resident.len()
    }

    /// True when nothing is resident.
    pub fn is_empty(&self) -> bool {
        self.resident.is_empty()
    }

    /// Whether `id` is resident.
    pub fn contains(&self, id: SampleId) -> bool {
        self.resident.contains_key(id)
    }

    /// Resident sample ids, ascending (used by warm-restart recovery
    /// snapshots).
    pub fn resident_ids(&self) -> impl Iterator<Item = SampleId> + '_ {
        self.resident.keys()
    }

    /// Number of resident samples not yet accessed this epoch.
    pub fn fresh_count(&self) -> usize {
        self.fresh.len()
    }

    /// Whether a package load is already in flight.
    pub fn has_pending_load(&self) -> bool {
        !self.pending.is_empty()
    }

    /// Whether the loading thread should fetch another package now:
    /// either there is spare capacity, or every resident sample has been
    /// accessed this epoch (the paper's trigger for reading new packages).
    pub fn wants_load(&self) -> bool {
        if self.has_pending_load() {
            return false;
        }
        self.used < self.config.capacity || self.fresh.is_empty()
    }

    /// Queue a package that will arrive from storage at `ready_at`.
    pub fn install_package(&mut self, pkg: Package, ready_at: SimTime) {
        self.pending.push_back((pkg, ready_at));
    }

    /// Integrate every pending package whose arrival time has passed.
    pub fn integrate(&mut self, now: SimTime) {
        while let Some((_, ready)) = self.pending.front() {
            if *ready > now {
                break;
            }
            let (pkg, _) = self.pending.pop_front().expect("checked front");
            self.add_package(pkg);
        }
    }

    /// Look up `id`; on a miss, pick a substitute and log the miss.
    pub fn lookup(&mut self, id: SampleId, rng: &mut StdRng) -> LFetch {
        if self.resident.contains_key(id) {
            self.mark_accessed(id);
            return LFetch::Hit;
        }
        self.record_miss(id);
        match self.pick_substitute(rng) {
            Some(sub) => LFetch::Substitute(sub),
            None => LFetch::Empty,
        }
    }

    /// Look up `id` without drawing a substitute on miss: returns true on
    /// a hit (marking the sample accessed), false on a miss (logging it).
    /// Used by the `Def` substitution policy and the warm-up pass.
    pub fn lookup_no_substitute(&mut self, id: SampleId) -> bool {
        if self.resident.contains_key(id) {
            self.mark_accessed(id);
            true
        } else {
            self.record_miss(id);
            false
        }
    }

    /// Drain up to `max` logged missed ids (for the next re-packing).
    pub fn take_missed(&mut self, max: usize) -> Vec<SampleId> {
        let take = max.min(self.missed_log.len());
        self.missed_log.drain(..take).collect()
    }

    /// Start a new epoch: every resident sample becomes fresh again.
    pub fn on_epoch_start(&mut self) {
        self.accessed.clear();
        self.fresh.clear();
        self.fresh_pos.clear();
        // The slab iterates in ascending-id order, so the fresh pool (and
        // thus substitution draws) matches the old sorted-index behaviour
        // without re-sorting the keys each epoch.
        self.fresh.reserve(self.resident.len());
        for (pos, id) in self.resident.keys().enumerate() {
            self.fresh.push(id);
            self.fresh_pos.insert(id, pos);
        }
    }

    fn record_miss(&mut self, id: SampleId) {
        // Bound the log so a pathological epoch cannot grow it without limit.
        if self.missed_log.len() > 1_000_000 {
            self.missed_log.pop_front();
        }
        self.missed_log.push_back(id);
    }

    fn pick_substitute(&mut self, rng: &mut StdRng) -> Option<SampleId> {
        if self.fresh.is_empty() {
            return None;
        }
        let idx = rng.gen_range(0..self.fresh.len());
        let id = self.fresh[idx];
        self.mark_accessed(id);
        Some(id)
    }

    fn mark_accessed(&mut self, id: SampleId) {
        if id.0 < self.accessed.universe() {
            self.accessed.insert(id);
        }
        if let Some(&pos) = self.fresh_pos.get(id) {
            let last = self.fresh.len() - 1;
            self.fresh.swap(pos, last);
            self.fresh_pos.insert(self.fresh[pos], pos);
            self.fresh.pop();
            self.fresh_pos.remove(id);
        }
    }

    fn push_fresh(&mut self, id: SampleId) {
        if !self.fresh_pos.contains_key(id) && !self.accessed.contains(id) {
            self.fresh_pos.insert(id, self.fresh.len());
            self.fresh.push(id);
        }
    }

    fn add_package(&mut self, pkg: Package) {
        let pkg_id = pkg.id();
        let mut owned = Vec::new();
        let mut owned_bytes = ByteSize::ZERO;
        for s in pkg.samples() {
            if self.resident.contains_key(s.id()) {
                continue;
            }
            self.resident.insert(s.id(), *s);
            self.used += s.size();
            owned_bytes += s.size();
            owned.push(s.id());
            self.push_fresh(s.id());
        }
        self.package_fifo.push_back((pkg_id, owned, owned_bytes));
        self.evict_to_fit();
    }

    fn evict_to_fit(&mut self) {
        while self.used > self.config.capacity && self.package_fifo.len() > 1 {
            let (_, ids, bytes) = self
                .package_fifo
                .pop_front()
                .expect("loop guard: fifo holds at least two packages");
            for id in ids {
                if self.resident.remove(id).is_some() {
                    // Remove from fresh if present.
                    if let Some(&pos) = self.fresh_pos.get(id) {
                        let last = self.fresh.len() - 1;
                        self.fresh.swap(pos, last);
                        self.fresh_pos.insert(self.fresh[pos], pos);
                        self.fresh.pop();
                        self.fresh_pos.remove(id);
                    }
                }
            }
            self.used -= bytes;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icache_types::SeedSequence;

    fn pkg(id: u64, ids: std::ops::Range<u64>, sz: u64) -> Package {
        Package::new(
            PackageId(id),
            ids.map(|i| SampleData::generate(SampleId(i), ByteSize::new(sz)))
                .collect(),
        )
    }

    fn lc(capacity: u64) -> LCache {
        LCache::new(LCacheConfig {
            capacity: ByteSize::new(capacity),
            num_samples: 1_000,
        })
    }

    #[test]
    fn packager_never_overshoots_the_target() {
        let mut p = Packager::new(ByteSize::kib(10), 7).unwrap();
        let pool: Vec<SampleId> = (0..100).map(SampleId).collect();
        for _ in 0..20 {
            let pkg = p.build(&[], &pool, |_| ByteSize::kib(3));
            assert!(
                pkg.total_bytes() <= ByteSize::kib(10),
                "{}",
                pkg.total_bytes()
            );
            // 3 KiB samples fill a 10 KiB target to 9 KiB exactly.
            assert_eq!(pkg.total_bytes(), ByteSize::kib(9));
        }
    }

    #[test]
    fn packager_pool_too_small_to_reach_target_still_packs_everything() {
        // A pool whose every distinct sample together cannot reach the
        // target: the package must contain them all and stop short.
        let mut p = Packager::new(ByteSize::mib(1), 7).unwrap();
        let pool: Vec<SampleId> = (0..4).map(SampleId).collect();
        let pkg = p.build(&[], &pool, |_| ByteSize::kib(3));
        assert!(
            !pkg.is_empty(),
            "a reachable pool must never yield an empty package"
        );
        assert_eq!(pkg.len(), 4, "all distinct pool samples get packed");
        assert_eq!(pkg.total_bytes(), ByteSize::kib(12));
        assert!(pkg.total_bytes() < ByteSize::mib(1));
    }

    #[test]
    fn packager_single_oversized_sample_is_the_only_overshoot() {
        // The very first sample may exceed the target so misses always
        // ship; fill samples never push past it.
        let mut p = Packager::new(ByteSize::kib(1), 7).unwrap();
        let pkg = p.build(&[SampleId(0)], &[], |_| ByteSize::kib(4));
        assert_eq!(pkg.len(), 1);
        assert_eq!(pkg.total_bytes(), ByteSize::kib(4));
    }

    #[test]
    fn packager_empty_inputs_give_empty_package() {
        let mut p = Packager::new(ByteSize::mib(1), 7).unwrap();
        let pkg = p.build(&[], &[], |_| ByteSize::kib(3));
        assert!(pkg.is_empty());
        assert_eq!(pkg.total_bytes(), ByteSize::ZERO);
    }

    #[test]
    fn hit_marks_sample_accessed() {
        let mut c = lc(10_000);
        c.install_package(pkg(0, 0..10, 100), SimTime::ZERO);
        c.integrate(SimTime::ZERO);
        assert_eq!(c.fresh_count(), 10);
        let mut rng = SeedSequence::new(0).rng("t");
        assert_eq!(c.lookup(SampleId(3), &mut rng), LFetch::Hit);
        assert_eq!(c.fresh_count(), 9);
    }

    #[test]
    fn miss_substitutes_unaccessed_resident() {
        let mut c = lc(10_000);
        c.install_package(pkg(0, 0..5, 100), SimTime::ZERO);
        c.integrate(SimTime::ZERO);
        let mut rng = SeedSequence::new(0).rng("t");
        match c.lookup(SampleId(900), &mut rng) {
            LFetch::Substitute(sub) => {
                assert!(sub.0 < 5, "substitute must be resident");
            }
            other => panic!("expected substitution, got {other:?}"),
        }
        assert_eq!(c.take_missed(10), vec![SampleId(900)]);
    }

    #[test]
    fn substitutes_are_never_repeated_within_an_epoch() {
        let mut c = lc(10_000);
        c.install_package(pkg(0, 0..5, 100), SimTime::ZERO);
        c.integrate(SimTime::ZERO);
        let mut rng = SeedSequence::new(0).rng("t");
        let mut served = Vec::new();
        for miss in 100..105 {
            if let LFetch::Substitute(s) = c.lookup(SampleId(miss), &mut rng) {
                served.push(s);
            }
        }
        served.sort_unstable();
        served.dedup();
        assert_eq!(
            served.len(),
            5,
            "each fresh sample substituted at most once"
        );
        // All fresh exhausted: next miss has nothing to offer.
        assert_eq!(c.lookup(SampleId(105), &mut rng), LFetch::Empty);
        assert!(c.wants_load(), "exhausted cache asks for a new package");
    }

    #[test]
    fn epoch_start_refreshes_accessed_set() {
        let mut c = lc(10_000);
        c.install_package(pkg(0, 0..3, 100), SimTime::ZERO);
        c.integrate(SimTime::ZERO);
        let mut rng = SeedSequence::new(0).rng("t");
        for i in 0..3 {
            c.lookup(SampleId(i), &mut rng);
        }
        assert_eq!(c.fresh_count(), 0);
        c.on_epoch_start();
        assert_eq!(c.fresh_count(), 3);
    }

    #[test]
    fn pending_packages_arrive_on_time() {
        let mut c = lc(10_000);
        c.install_package(pkg(0, 0..4, 100), SimTime::from_nanos(500));
        assert!(c.has_pending_load());
        c.integrate(SimTime::from_nanos(400));
        assert!(c.is_empty(), "not yet arrived");
        c.integrate(SimTime::from_nanos(500));
        assert_eq!(c.len(), 4);
        assert!(!c.has_pending_load());
    }

    #[test]
    fn oldest_package_evicts_when_over_capacity() {
        let mut c = lc(1_000); // room for one 10x100 package
        c.install_package(pkg(0, 0..10, 100), SimTime::ZERO);
        c.integrate(SimTime::ZERO);
        c.install_package(pkg(1, 10..20, 100), SimTime::ZERO);
        c.integrate(SimTime::ZERO);
        assert_eq!(c.len(), 10, "old package evicted");
        assert!(!c.contains(SampleId(0)));
        assert!(c.contains(SampleId(15)));
        assert!(c.used() <= c.capacity());
    }

    #[test]
    fn duplicate_samples_across_packages_are_not_double_counted() {
        let mut c = lc(10_000);
        c.install_package(pkg(0, 0..5, 100), SimTime::ZERO);
        c.install_package(pkg(1, 3..8, 100), SimTime::ZERO);
        c.integrate(SimTime::ZERO);
        assert_eq!(c.len(), 8);
        assert_eq!(c.used(), ByteSize::new(800));
    }

    #[test]
    fn wants_load_respects_pending_and_capacity() {
        let mut c = lc(1_000);
        assert!(c.wants_load(), "empty cache wants data");
        c.install_package(pkg(0, 0..10, 100), SimTime::from_nanos(99));
        assert!(!c.wants_load(), "load already in flight");
        c.integrate(SimTime::from_nanos(99));
        assert!(!c.wants_load(), "full and fresh");
    }

    #[test]
    fn packager_prioritises_missed_then_fills_randomly() {
        let mut p = Packager::new(ByteSize::new(1_000), 1).unwrap();
        let pool: Vec<SampleId> = (0..100).map(SampleId).collect();
        let pkg = p.build(&[SampleId(42), SampleId(42), SampleId(7)], &pool, |_| {
            ByteSize::new(100)
        });
        let ids: Vec<u64> = pkg.samples().iter().map(|s| s.id().0).collect();
        assert_eq!(&ids[..2], &[42, 7], "deduplicated missed ids first");
        assert_eq!(pkg.len(), 10, "filled to target size");
        assert_eq!(pkg.total_bytes(), ByteSize::new(1_000));
        let unique: std::collections::HashSet<u64> = ids.into_iter().collect();
        assert_eq!(unique.len(), 10, "no duplicates");
    }

    #[test]
    fn packager_handles_small_pools() {
        let mut p = Packager::new(ByteSize::mib(1), 1).unwrap();
        let pool: Vec<SampleId> = (0..3).map(SampleId).collect();
        let pkg = p.build(&[], &pool, |_| ByteSize::new(10));
        assert!(pkg.len() <= 3, "cannot exceed pool");
        assert!(!pkg.is_empty());
    }

    #[test]
    fn packager_rejects_zero_target() {
        assert!(Packager::new(ByteSize::ZERO, 1).is_err());
    }

    #[test]
    fn substitution_draws_match_the_sorted_collect_reference() {
        // The incrementally maintained resident index must reproduce the
        // old behaviour exactly: at epoch start the fresh pool is the
        // sorted resident ids, so an identically seeded RNG draws the
        // same substitute sequence as a reference that collects and
        // sorts the keys (what `on_epoch_start` used to do per epoch).
        let mut c = lc(2_000);
        c.install_package(pkg(0, 0..10, 100), SimTime::ZERO);
        c.install_package(pkg(1, 10..20, 100), SimTime::ZERO);
        c.integrate(SimTime::ZERO);
        // Force an eviction so the index sees removals too.
        c.install_package(pkg(2, 20..30, 100), SimTime::ZERO);
        c.integrate(SimTime::ZERO);
        c.on_epoch_start();

        let mut reference: Vec<SampleId> = c.resident.keys().collect();
        reference.sort_unstable();
        assert_eq!(c.fresh, reference, "fresh pool is the sorted residents");

        // Replay the swap-remove draw sequence against the reference pool
        // with a clone of the seeded RNG: every substitute must agree.
        let mut rng = SeedSequence::new(42).rng("sub");
        let mut ref_rng = SeedSequence::new(42).rng("sub");
        for miss in 500..515 {
            let expected = if reference.is_empty() {
                None
            } else {
                let idx = ref_rng.gen_range(0..reference.len());
                Some(reference.swap_remove(idx))
            };
            let got = match c.lookup(SampleId(miss), &mut rng) {
                LFetch::Substitute(s) => Some(s),
                LFetch::Empty => None,
                LFetch::Hit => panic!("misses only"),
            };
            assert_eq!(got, expected, "draw diverged at miss {miss}");
        }
    }

    #[test]
    fn set_capacity_shrinks_immediately() {
        let mut c = lc(2_000);
        c.install_package(pkg(0, 0..10, 100), SimTime::ZERO);
        c.install_package(pkg(1, 10..20, 100), SimTime::ZERO);
        c.integrate(SimTime::ZERO);
        assert_eq!(c.len(), 20);
        c.set_capacity(ByteSize::new(1_000));
        assert_eq!(c.len(), 10);
        assert!(c.used() <= c.capacity());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use icache_types::SeedSequence;
    use proptest::prelude::*;

    #[derive(Debug, Clone)]
    enum Op {
        Lookup(u64),
        InstallPackage(u64, u8),
        EpochStart,
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        prop_oneof![
            (0u64..200).prop_map(Op::Lookup),
            (0u64..200, 1u8..20).prop_map(|(start, n)| Op::InstallPackage(start, n)),
            Just(Op::EpochStart),
        ]
    }

    proptest! {
        /// Whatever the operation sequence: capacity within one package,
        /// substitutes are always resident and never repeat within an
        /// epoch, and hits only happen for resident samples.
        #[test]
        fn lcache_invariants(ops in proptest::collection::vec(op_strategy(), 1..150)) {
            let mut lc = LCache::new(LCacheConfig {
                capacity: ByteSize::new(1_000),
                num_samples: 200,
            });
            let mut rng = SeedSequence::new(1).rng("prop");
            let mut next_pkg = 0u64;
            let mut served_this_epoch: std::collections::HashSet<SampleId> = Default::default();
            for op in ops {
                match op {
                    Op::Lookup(raw) => {
                        let id = SampleId(raw);
                        match lc.lookup(id, &mut rng) {
                            LFetch::Hit => prop_assert!(lc.contains(id)),
                            LFetch::Substitute(sub) => {
                                prop_assert!(lc.contains(sub), "substitute must be resident");
                                prop_assert_ne!(sub, id);
                                prop_assert!(
                                    served_this_epoch.insert(sub),
                                    "substitute repeated within an epoch"
                                );
                            }
                            LFetch::Empty => {}
                        }
                    }
                    Op::InstallPackage(start, n) => {
                        let samples: Vec<SampleData> = (0..n as u64)
                            .map(|k| SampleData::generate(
                                SampleId((start + k) % 200),
                                ByteSize::new(50),
                            ))
                            .collect();
                        lc.install_package(Package::new(PackageId(next_pkg), samples), SimTime::ZERO);
                        next_pkg += 1;
                        lc.integrate(SimTime::ZERO);
                    }
                    Op::EpochStart => {
                        lc.on_epoch_start();
                        served_this_epoch.clear();
                    }
                }
                // One package of tolerance: a single resident package may
                // exceed a shrunken capacity, never more.
                prop_assert!(lc.used() <= lc.capacity() + ByteSize::new(50 * 20));
                prop_assert!(lc.fresh_count() <= lc.len());
            }
        }
    }
}
