//! Clairvoyant prefetching over the known per-epoch access order
//! (DESIGN.md §11).
//!
//! Because IIS/CIS fix an epoch's entire access sequence before the
//! epoch starts, the loader can overlap storage fetches with compute
//! instead of paying `compute + fetch` per request — the NoPFS premise
//! applied to iCache's two-region design. The module has two layers:
//!
//! * [`InflightWindow`] — the bounded back-pressure window: at most
//!   `depth` fetches in flight, no position delivered twice. Small and
//!   thread-safe so it can be model-checked under loom.
//! * [`PrefetchPipeline`] — the deterministic scheduler: plan-order
//!   fetches issue through the usual [`crate::CacheSystem`] the moment
//!   a window slot frees (so up to `depth` storage reads overlap in
//!   the backend's queueing model, and L-sample package loads amortize
//!   across their substitution group), and consumers see per-request
//!   latency `max(compute, stall)` with
//!   `prefetch.{issued,hits,late,cancelled}` accounting.

mod pipeline;
mod window;

pub use pipeline::{IssueRecord, PlannedAccess, PrefetchPipeline, PrefetchReport};
pub use window::InflightWindow;
