//! The clairvoyant prefetch scheduler (DESIGN.md §11).
//!
//! IIS/CIS fix the *entire* epoch's access order before the epoch
//! begins, so the loader knows every fetch it will ever make — the
//! premise of NoPFS-style clairvoyant prefetching. The
//! [`PrefetchPipeline`] walks that plan ahead of the consumer, keeping
//! at most `depth` fetches in flight
//! ([`crate::prefetch::InflightWindow`]): each fetch is issued the
//! moment a window slot is available, so up to `depth` storage reads
//! overlap in the backend's queueing model. By the time the consumer
//! asks for plan position `i` the data is usually already resident and
//! the per-request cost collapses from `compute + fetch` to
//! `max(compute, stall)`.
//!
//! Package granularity for L-samples comes for free: the pipeline
//! issues through the same [`crate::CacheSystem`], so the first
//! L-sample of a substitution group loads its whole ≥ 1 MB package and
//! every later member of the group is a cheap L-hit.

use std::collections::BTreeMap;
use std::collections::VecDeque;

use icache_obs::{Obs, TraceEvent};
use icache_storage::StorageBackend;
use icache_types::{ByteSize, Error, JobId, Result, SampleId, SimTime};

use crate::prefetch::InflightWindow;
use crate::system::{CacheSystem, Fetch};

/// One planned access in an epoch's fetch order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlannedAccess {
    /// Job that will consume the sample.
    pub job: JobId,
    /// Sample to fetch.
    pub id: SampleId,
    /// Its size in bytes.
    pub size: ByteSize,
}

/// One entry of the prefetcher's issue log: which plan position was
/// issued, in issue order, and how many fetches were in flight right
/// after the issue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IssueRecord {
    /// Zero-based position in the epoch plan.
    pub position: u64,
    /// The sample at that position.
    pub sample: SampleId,
    /// In-flight population immediately after this issue (≤ depth).
    pub in_flight: usize,
}

/// End-of-epoch accounting returned by [`PrefetchPipeline::finish`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PrefetchReport {
    /// Lookahead fetches issued by the prefetcher.
    pub issued: u64,
    /// Consumed positions whose data was resident before the consumer
    /// asked (stall == 0).
    pub hits: u64,
    /// Consumed positions the consumer had to wait for — still in
    /// flight, or demand-fetched outside the window.
    pub late: u64,
    /// Planned positions the prefetcher skipped (already demand-fetched)
    /// plus issues never consumed before the epoch ended.
    pub cancelled: u64,
    /// Total time consumers spent stalled waiting on data.
    pub stall: icache_types::SimDuration,
    /// The exact issue order, for invariant checks.
    pub issue_log: Vec<IssueRecord>,
}

/// A deterministic lookahead prefetcher over one epoch's known plan.
///
/// Issues happen in plan order, each at the virtual time the window
/// slot it occupies was freed by a past delivery (with `depth` slots
/// free at the epoch start) — so up to `depth` storage reads are
/// outstanding at once, and the storage backend's own queueing model
/// decides how much of that concurrency turns into throughput. The
/// consumer calls [`fetch`] with the plan position it wants; a position
/// never issued (possible when a multi-worker consumer runs far out of
/// plan order) falls back to a demand fetch at the request time and is
/// counted late.
///
/// [`fetch`]: PrefetchPipeline::fetch
#[derive(Debug)]
pub struct PrefetchPipeline {
    plan: Vec<PlannedAccess>,
    window: InflightWindow,
    /// Next plan index the prefetcher has not yet issued or skipped.
    next_issue: usize,
    /// Times at which window slots were freed, oldest first; an issue
    /// starts exactly when the slot it reuses became free (causality:
    /// the prefetcher cannot use capacity before a delivery released
    /// it).
    slot_free: VecDeque<SimTime>,
    /// Completed prefetches awaiting their consumer, by plan position.
    ready: BTreeMap<u64, Fetch>,
    consumed: Vec<bool>,
    report: PrefetchReport,
    obs: Obs,
}

impl PrefetchPipeline {
    /// Build a pipeline of `depth` over `plan`, with all window slots
    /// free at `start` (the epoch start). `depth == 0` is refused: the
    /// caller must bypass the pipeline entirely so depth 0 stays
    /// byte-identical to the unpiped driver.
    pub fn new(depth: usize, plan: Vec<PlannedAccess>, start: SimTime, obs: Obs) -> Result<Self> {
        if depth == 0 {
            return Err(Error::InvalidState(
                "prefetch pipeline requires depth >= 1; depth 0 must bypass the pipeline".into(),
            ));
        }
        let consumed = vec![false; plan.len()];
        Ok(PrefetchPipeline {
            plan,
            window: InflightWindow::new(depth),
            next_issue: 0,
            slot_free: VecDeque::from(vec![start; depth]),
            ready: BTreeMap::new(),
            consumed,
            report: PrefetchReport::default(),
            obs,
        })
    }

    /// The configured lookahead depth.
    pub fn depth(&self) -> usize {
        self.window.depth()
    }

    /// Number of planned accesses.
    pub fn plan_len(&self) -> usize {
        self.plan.len()
    }

    /// Issue lookahead fetches in plan order while a window slot is
    /// free. Each issue starts at the freeing time of the oldest free
    /// slot, so the backend sees up to `depth` temporally-overlapping
    /// reads and its queueing model sets their completion times.
    fn pump(&mut self, cache: &mut dyn CacheSystem, storage: &mut dyn StorageBackend) {
        while self.next_issue < self.plan.len() {
            let pos = self.next_issue;
            if self.consumed[pos] {
                // Demand-fetched before the sweep got here: skip it.
                self.report.cancelled += 1;
                self.obs.inc("prefetch.cancelled");
                self.next_issue += 1;
                continue;
            }
            let Some(&slot_freed) = self.slot_free.front() else {
                break; // window full
            };
            if !self.window.try_issue(pos as u64) {
                break;
            }
            self.slot_free.pop_front();
            let access = self.plan[pos];
            let fetch = cache.fetch(access.job, access.id, access.size, slot_freed, storage);
            self.ready.insert(pos as u64, fetch);
            self.report.issued += 1;
            self.report.issue_log.push(IssueRecord {
                position: pos as u64,
                sample: access.id,
                in_flight: self.window.in_flight(),
            });
            self.obs.inc("prefetch.issued");
            self.obs.emit(TraceEvent::PrefetchIssue {
                job: access.job.0 as u64,
                sample: access.id.0,
                position: pos as u64,
            });
            self.next_issue += 1;
        }
    }

    /// Consume plan position `position` at virtual time `now`.
    ///
    /// Returns the fetch as the consumer experiences it: `ready_at` is
    /// when the data is in the consumer's hands (`max(now, prefetch
    /// completion)`), so the consumer's stall is `ready_at - now`. A
    /// position the prefetcher never reached is demand-fetched at `now`
    /// and counted late.
    ///
    /// # Panics
    ///
    /// Panics if `position` is out of range or already consumed — the
    /// plan-driven callers index straight from the epoch plan.
    pub fn fetch(
        &mut self,
        position: usize,
        now: SimTime,
        cache: &mut dyn CacheSystem,
        storage: &mut dyn StorageBackend,
    ) -> Fetch {
        assert!(
            position < self.plan.len() && !self.consumed[position],
            "prefetch consumer must visit each plan position exactly once"
        );
        self.pump(cache, storage);
        let access = self.plan[position];
        let fetch = match self.ready.remove(&(position as u64)) {
            Some(prefetched) => {
                let delivered = self.window.consume(position as u64);
                debug_assert!(delivered, "ready entries are always in flight");
                let stall = prefetched.ready_at.saturating_since(now);
                if stall.is_zero() {
                    self.report.hits += 1;
                    self.obs.inc("prefetch.hits");
                } else {
                    self.report.late += 1;
                    self.report.stall += stall;
                    self.obs.inc("prefetch.late");
                    self.obs.emit(TraceEvent::PrefetchLate {
                        job: access.job.0 as u64,
                        sample: access.id.0,
                        position: position as u64,
                        wait_nanos: stall.as_nanos(),
                    });
                }
                let delivered_at = now.max(prefetched.ready_at);
                self.slot_free.push_back(delivered_at);
                Fetch {
                    ready_at: delivered_at,
                    ..prefetched
                }
            }
            None => {
                // The sweep has not reached this position (out-of-order
                // consumption beyond the lookahead): demand-fetch it.
                let fetch = cache.fetch(access.job, access.id, access.size, now, storage);
                let stall = fetch.ready_at.saturating_since(now);
                self.report.late += 1;
                self.report.stall += stall;
                self.obs.inc("prefetch.late");
                self.obs.emit(TraceEvent::PrefetchLate {
                    job: access.job.0 as u64,
                    sample: access.id.0,
                    position: position as u64,
                    wait_nanos: stall.as_nanos(),
                });
                fetch
            }
        };
        self.consumed[position] = true;
        fetch
    }

    /// Close the epoch: leftover issued-but-unconsumed prefetches are
    /// counted cancelled, and the final accounting is returned.
    pub fn finish(mut self) -> PrefetchReport {
        let leftovers = self.ready.len() as u64;
        if leftovers > 0 {
            self.report.cancelled += leftovers;
            self.obs.add("prefetch.cancelled", leftovers);
        }
        self.report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icache_storage::{Pfs, PfsConfig};
    use icache_types::{Dataset, SimDuration};

    fn plan_for(dataset: &Dataset, n: usize) -> Vec<PlannedAccess> {
        (0..n)
            .map(|i| {
                let id = SampleId(i as u64 % dataset.len());
                PlannedAccess {
                    job: JobId(0),
                    id,
                    size: dataset.sample_size(id),
                }
            })
            .collect()
    }

    fn lru(dataset: &Dataset) -> Box<dyn CacheSystem> {
        Box::new(LruStub::new(dataset.total_bytes() / 10))
    }

    // A tiny in-test LRU stand-in so the core crate's unit tests don't
    // depend on icache-baselines (which depends on core).
    struct LruStub {
        cap: ByteSize,
        used: ByteSize,
        resident: BTreeMap<SampleId, (ByteSize, u64)>,
        tick: u64,
        stats: crate::CacheStats,
    }

    impl LruStub {
        fn new(cap: ByteSize) -> Self {
            LruStub {
                cap,
                used: ByteSize::ZERO,
                resident: BTreeMap::new(),
                tick: 0,
                stats: crate::CacheStats::default(),
            }
        }
    }

    impl CacheSystem for LruStub {
        fn name(&self) -> &str {
            "lru-stub"
        }

        fn fetch(
            &mut self,
            _job: JobId,
            id: SampleId,
            size: ByteSize,
            now: SimTime,
            storage: &mut dyn StorageBackend,
        ) -> Fetch {
            self.tick += 1;
            if let Some(entry) = self.resident.get_mut(&id) {
                entry.1 = self.tick;
                self.stats.h_hits += 1;
                return Fetch {
                    ready_at: now + SimDuration::from_micros(1),
                    served_id: id,
                    outcome: crate::FetchOutcome::HitH,
                };
            }
            let ready_at = storage.read_sample(id, size, now);
            while self.used.as_u64() + size.as_u64() > self.cap.as_u64() {
                let Some((&victim, _)) = self.resident.iter().min_by_key(|(_, v)| v.1) else {
                    break;
                };
                let (vsize, _) = self
                    .resident
                    .remove(&victim)
                    .expect("victim chosen from resident map must be present");
                self.used = self.used.saturating_sub(vsize);
            }
            if size.as_u64() <= self.cap.as_u64() {
                self.resident.insert(id, (size, self.tick));
                self.used += size;
            }
            self.stats.misses += 1;
            Fetch {
                ready_at,
                served_id: id,
                outcome: crate::FetchOutcome::Miss,
            }
        }

        fn stats(&self) -> crate::CacheStats {
            self.stats
        }

        fn reset_stats(&mut self) {
            self.stats = crate::CacheStats::default();
        }

        fn used_bytes(&self) -> ByteSize {
            self.used
        }

        fn capacity(&self) -> ByteSize {
            self.cap
        }
    }

    #[test]
    fn depth_zero_is_refused() {
        let err = PrefetchPipeline::new(0, Vec::new(), SimTime::ZERO, Obs::noop());
        assert!(err.is_err(), "depth 0 must bypass the pipeline");
    }

    #[test]
    fn sequential_consumption_issues_every_position_once() {
        let dataset = Dataset::cifar10()
            .scaled(0.01)
            .expect("valid scale fraction");
        let plan = plan_for(&dataset, 64);
        let mut cache = lru(&dataset);
        let mut storage = Pfs::new(PfsConfig::orangefs_default()).expect("default PFS config");
        let mut pipe =
            PrefetchPipeline::new(4, plan.clone(), SimTime::ZERO, Obs::noop()).expect("depth 4");
        let mut now = SimTime::ZERO;
        for pos in 0..plan.len() {
            let f = pipe.fetch(pos, now, cache.as_mut(), &mut storage);
            assert!(f.ready_at >= now);
            now = f.ready_at + SimDuration::from_micros(50);
        }
        let report = pipe.finish();
        assert_eq!(report.issued, plan.len() as u64, "every position issued");
        assert_eq!(report.cancelled, 0);
        assert_eq!(
            report.hits + report.late,
            plan.len() as u64,
            "conservation: every consumed position is a hit or late"
        );
        let mut positions: Vec<u64> = report.issue_log.iter().map(|r| r.position).collect();
        assert!(
            report.issue_log.iter().all(|r| r.in_flight <= 4),
            "issue log never exceeds depth"
        );
        positions.dedup();
        assert_eq!(positions.len(), plan.len(), "issue stream duplicate-free");
    }

    #[test]
    fn deeper_window_never_increases_stall() {
        let dataset = Dataset::cifar10()
            .scaled(0.01)
            .expect("valid scale fraction");
        let plan = plan_for(&dataset, 128);
        let compute = SimDuration::from_micros(200);
        let mut stalls = Vec::new();
        for depth in [1usize, 2, 4, 8] {
            let mut cache = lru(&dataset);
            let mut storage = Pfs::new(PfsConfig::orangefs_default()).expect("default PFS config");
            let mut pipe = PrefetchPipeline::new(depth, plan.clone(), SimTime::ZERO, Obs::noop())
                .expect("nonzero depth");
            let mut now = SimTime::ZERO;
            for pos in 0..plan.len() {
                let f = pipe.fetch(pos, now, cache.as_mut(), &mut storage);
                now = f.ready_at + compute;
            }
            stalls.push(pipe.finish().stall);
        }
        for pair in stalls.windows(2) {
            assert!(
                pair[1] <= pair[0],
                "stall must be non-increasing in depth: {stalls:?}"
            );
        }
    }

    #[test]
    fn out_of_order_consumer_demand_fetches_late_positions() {
        let dataset = Dataset::cifar10()
            .scaled(0.01)
            .expect("valid scale fraction");
        let plan = plan_for(&dataset, 16);
        let mut cache = lru(&dataset);
        let mut storage = Pfs::new(PfsConfig::orangefs_default()).expect("default PFS config");
        let mut pipe =
            PrefetchPipeline::new(2, plan.clone(), SimTime::ZERO, Obs::noop()).expect("depth 2");
        // Jump straight to the last position: far outside the window.
        let f = pipe.fetch(plan.len() - 1, SimTime::ZERO, cache.as_mut(), &mut storage);
        assert!(f.ready_at > SimTime::ZERO, "demand fetch pays storage time");
        // Now walk the rest; the skipped position is swept as cancelled.
        let mut now = f.ready_at;
        for pos in 0..plan.len() - 1 {
            let f = pipe.fetch(pos, now, cache.as_mut(), &mut storage);
            now = f.ready_at;
        }
        let report = pipe.finish();
        assert_eq!(report.hits + report.late, plan.len() as u64);
        assert!(report.late >= 1, "the jumped position was late");
        assert_eq!(
            report.issued + report.cancelled,
            report.issue_log.len() as u64 + report.cancelled,
            "issue log matches issued count"
        );
    }
}
