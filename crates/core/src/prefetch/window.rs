//! The bounded in-flight window behind the clairvoyant prefetcher.
//!
//! The window is the back-pressure contract of the prefetch pipeline
//! (DESIGN.md §11): at most `depth` plan positions may be *in flight* —
//! issued to storage but not yet delivered to the consumer — at any
//! instant, and no position may be delivered twice. The type is
//! thread-safe so the same invariants can be model-checked under racing
//! producer/consumer threads (`crates/core/tests/loom_model.rs`); the
//! deterministic [`crate::prefetch::PrefetchPipeline`] drives it from a
//! single thread.

use std::collections::BTreeSet;
use std::sync::Mutex;

#[derive(Debug, Default)]
struct WindowState {
    /// Positions issued and not yet delivered.
    in_flight: BTreeSet<u64>,
    /// Positions delivered to the consumer (each exactly once).
    delivered: BTreeSet<u64>,
    /// High-water mark of `in_flight.len()`.
    max_in_flight: usize,
    /// Total issues ever admitted.
    issued: u64,
    /// Total deliveries.
    consumed: u64,
}

/// A bounded window of in-flight prefetches keyed by plan position.
///
/// # Examples
///
/// ```
/// use icache_core::prefetch::InflightWindow;
///
/// let w = InflightWindow::new(2);
/// assert!(w.try_issue(0) && w.try_issue(1));
/// assert!(!w.try_issue(2), "window of 2 is full");
/// assert!(w.consume(0), "first delivery succeeds");
/// assert!(!w.consume(0), "never deliver a position twice");
/// assert!(w.try_issue(2), "consuming freed a slot");
/// assert!(w.check_invariants());
/// ```
#[derive(Debug)]
pub struct InflightWindow {
    depth: usize,
    state: Mutex<WindowState>,
}

impl InflightWindow {
    /// A window admitting at most `depth` outstanding positions
    /// (`depth == 0` admits nothing — the disabled pipeline).
    pub fn new(depth: usize) -> Self {
        InflightWindow {
            depth,
            state: Mutex::new(WindowState::default()),
        }
    }

    /// The configured window depth.
    pub fn depth(&self) -> usize {
        self.depth
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, WindowState> {
        // A poisoned lock means a racing thread panicked mid-update; the
        // window's sets are still structurally sound, so keep going and
        // let `check_invariants` judge the state.
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Try to admit `position` into the window. Returns `false` when the
    /// window is full or the position was already issued or delivered —
    /// the caller must retry after a delivery frees a slot.
    pub fn try_issue(&self, position: u64) -> bool {
        let mut s = self.lock();
        if s.in_flight.len() >= self.depth
            || s.delivered.contains(&position)
            || !s.in_flight.insert(position)
        {
            return false;
        }
        s.issued += 1;
        s.max_in_flight = s.max_in_flight.max(s.in_flight.len());
        true
    }

    /// Deliver `position` to the consumer, freeing its window slot.
    /// Returns `false` when the position is not in flight or was already
    /// delivered — a second delivery of the same position never succeeds.
    pub fn consume(&self, position: u64) -> bool {
        let mut s = self.lock();
        if !s.in_flight.remove(&position) || !s.delivered.insert(position) {
            return false;
        }
        s.consumed += 1;
        true
    }

    /// Positions currently in flight.
    pub fn in_flight(&self) -> usize {
        self.lock().in_flight.len()
    }

    /// The largest number of positions ever simultaneously in flight.
    pub fn max_in_flight(&self) -> usize {
        self.lock().max_in_flight
    }

    /// Total issues admitted over the window's lifetime.
    pub fn issued(&self) -> u64 {
        self.lock().issued
    }

    /// Total positions delivered.
    pub fn consumed(&self) -> u64 {
        self.lock().consumed
    }

    /// Structural invariants: the in-flight population never exceeded
    /// `depth`, no position is both in flight and delivered, and the
    /// counters agree with the sets.
    pub fn check_invariants(&self) -> bool {
        let s = self.lock();
        s.max_in_flight <= self.depth
            && s.in_flight.len() <= self.depth
            && s.in_flight.is_disjoint(&s.delivered)
            && s.issued == s.consumed + s.in_flight.len() as u64
            && s.consumed == s.delivered.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_bounds_in_flight_population() {
        let w = InflightWindow::new(3);
        for p in 0..3u64 {
            assert!(w.try_issue(p), "slot {p} free");
        }
        assert!(!w.try_issue(3), "window full");
        assert_eq!(w.in_flight(), 3);
        assert!(w.consume(1));
        assert!(w.try_issue(3), "delivery freed a slot");
        assert_eq!(w.max_in_flight(), 3);
        assert!(w.check_invariants());
    }

    #[test]
    fn no_position_is_delivered_twice_or_reissued() {
        let w = InflightWindow::new(2);
        assert!(w.try_issue(7));
        assert!(!w.try_issue(7), "double issue refused");
        assert!(w.consume(7));
        assert!(!w.consume(7), "double delivery refused");
        assert!(!w.try_issue(7), "reissue after delivery refused");
        assert!(!w.consume(9), "never-issued position refused");
        assert_eq!(w.issued(), 1);
        assert_eq!(w.consumed(), 1);
        assert!(w.check_invariants());
    }

    #[test]
    fn zero_depth_admits_nothing() {
        let w = InflightWindow::new(0);
        assert!(!w.try_issue(0));
        assert_eq!(w.in_flight(), 0);
        assert!(w.check_invariants());
    }
}
