//! Persistent-memory victim tier (§VI, "PM-based cache").
//!
//! The paper builds its cache in DRAM and defers a persistent-memory tier
//! to future work: "emerging large-capacity persistent memory (PM) is
//! another option … it has relatively lower performance than DRAM". This
//! module implements that extension: a second-level *victim cache* that
//! catches samples evicted from the DRAM H-region. An H-miss then checks
//! PM before paying for remote storage, and a PM hit re-promotes the
//! sample into DRAM.

use crate::dense::IdSlab;
use icache_types::{ByteSize, Error, Result, SampleId, SimDuration};
use std::collections::VecDeque;

/// Configuration of the PM victim tier.
#[derive(Debug, Clone, PartialEq)]
pub struct PmTierConfig {
    /// PM capacity (typically several times DRAM).
    pub capacity: ByteSize,
    /// Software + media latency of one PM read.
    pub read_latency: SimDuration,
    /// PM read bandwidth, bytes/second.
    pub bandwidth: f64,
}

impl PmTierConfig {
    /// Optane-class defaults: ~5 µs software read path, ~2.5 GB/s reads.
    pub fn optane(capacity: ByteSize) -> Self {
        PmTierConfig {
            capacity,
            read_latency: SimDuration::from_micros(5),
            bandwidth: 2.5e9,
        }
    }

    fn validate(&self) -> Result<()> {
        if self.capacity.is_zero() {
            return Err(Error::invalid_config("pm capacity", "must be non-zero"));
        }
        if !(self.bandwidth > 0.0 && self.bandwidth.is_finite()) {
            return Err(Error::invalid_config(
                "pm bandwidth",
                "must be positive and finite",
            ));
        }
        Ok(())
    }
}

/// A FIFO victim cache over sample ids.
///
/// Victim tiers see already-filtered traffic (only DRAM evictions land
/// here), so FIFO replacement captures most of the value at minimal
/// bookkeeping — the classic victim-cache design point.
///
/// # Examples
///
/// ```
/// use icache_core::{PmTierConfig, VictimCache};
/// use icache_types::{ByteSize, SampleId};
///
/// let mut pm = VictimCache::new(PmTierConfig::optane(ByteSize::kib(8)))?;
/// pm.insert(SampleId(1), ByteSize::kib(3));
/// assert!(pm.contains(SampleId(1)));
/// assert_eq!(pm.promote(SampleId(1)), Some(ByteSize::kib(3)));
/// assert!(!pm.contains(SampleId(1)), "promotion removes from PM");
/// # Ok::<(), icache_types::Error>(())
/// ```
#[derive(Debug, Clone)]
pub struct VictimCache {
    config: PmTierConfig,
    used: ByteSize,
    items: IdSlab<ByteSize>,
    order: VecDeque<SampleId>,
    hits: u64,
    misses: u64,
}

impl VictimCache {
    /// An empty victim tier.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] for a zero capacity or
    /// non-positive bandwidth.
    pub fn new(config: PmTierConfig) -> Result<Self> {
        config.validate()?;
        Ok(VictimCache {
            config,
            used: ByteSize::ZERO,
            items: IdSlab::new(),
            order: VecDeque::new(),
            hits: 0,
            misses: 0,
        })
    }

    /// Configured capacity.
    pub fn capacity(&self) -> ByteSize {
        self.config.capacity
    }

    /// Bytes resident.
    pub fn used(&self) -> ByteSize {
        self.used
    }

    /// Number of resident samples.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// PM hits served.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// PM lookups that missed.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Whether `id` resides in PM (no counter side effects).
    pub fn contains(&self, id: SampleId) -> bool {
        self.items.contains_key(id)
    }

    /// Service time of reading `size` bytes out of PM.
    pub fn read_cost(&self, size: ByteSize) -> SimDuration {
        self.config.read_latency + SimDuration::from_secs_f64(size.as_f64() / self.config.bandwidth)
    }

    /// Accept a DRAM eviction. Items larger than the tier are dropped;
    /// oldest victims are displaced FIFO. Returns the displaced ids.
    pub fn insert(&mut self, id: SampleId, size: ByteSize) -> Vec<SampleId> {
        if self.items.contains_key(id) || size > self.config.capacity {
            return Vec::new();
        }
        let mut displaced = Vec::new();
        while self.used + size > self.config.capacity {
            let victim = self.order.pop_front().expect("used > 0 implies entries");
            let vsize = self.items.remove(victim).expect("order and items agree");
            self.used -= vsize;
            displaced.push(victim);
        }
        self.items.insert(id, size);
        self.order.push_back(id);
        self.used += size;
        displaced
    }

    /// Look up `id`, removing it on a hit (the caller re-promotes it into
    /// DRAM). Returns its size when present.
    pub fn promote(&mut self, id: SampleId) -> Option<ByteSize> {
        match self.items.remove(id) {
            Some(size) => {
                self.used -= size;
                self.order.retain(|&x| x != id);
                self.hits += 1;
                Some(size)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pm(cap_kib: u64) -> VictimCache {
        VictimCache::new(PmTierConfig::optane(ByteSize::kib(cap_kib))).unwrap()
    }

    #[test]
    fn fifo_displacement() {
        let mut v = pm(9); // three 3 KiB items
        for i in 0..3 {
            assert!(v.insert(SampleId(i), ByteSize::kib(3)).is_empty());
        }
        let displaced = v.insert(SampleId(3), ByteSize::kib(3));
        assert_eq!(displaced, vec![SampleId(0)], "oldest victim leaves first");
        assert_eq!(v.len(), 3);
        assert!(v.used() <= v.capacity());
    }

    #[test]
    fn promote_removes_and_counts() {
        let mut v = pm(9);
        v.insert(SampleId(7), ByteSize::kib(3));
        assert_eq!(v.promote(SampleId(7)), Some(ByteSize::kib(3)));
        assert_eq!(v.promote(SampleId(7)), None);
        assert_eq!(v.hits(), 1);
        assert_eq!(v.misses(), 1);
        assert!(v.is_empty());
    }

    #[test]
    fn duplicate_and_oversized_inserts_are_noops() {
        let mut v = pm(9);
        v.insert(SampleId(1), ByteSize::kib(3));
        assert!(v.insert(SampleId(1), ByteSize::kib(3)).is_empty());
        assert_eq!(v.len(), 1);
        assert!(v.insert(SampleId(2), ByteSize::kib(100)).is_empty());
        assert!(!v.contains(SampleId(2)));
    }

    #[test]
    fn read_cost_is_slower_than_dram_faster_than_storage() {
        let v = pm(1024);
        let cost = v.read_cost(ByteSize::kib(3));
        // ~5 us + ~1.2 us transfer: far above DRAM (~0.3 us) and far
        // below a remote random read (~600 us).
        assert!(cost > SimDuration::from_micros(4));
        assert!(cost < SimDuration::from_micros(50));
    }

    #[test]
    fn config_validation() {
        assert!(VictimCache::new(PmTierConfig::optane(ByteSize::ZERO)).is_err());
        let mut cfg = PmTierConfig::optane(ByteSize::kib(1));
        cfg.bandwidth = f64::NAN;
        assert!(VictimCache::new(cfg).is_err());
    }
}
