//! The small-top heap (H-heap).

use crate::dense::IdSlab;
use icache_types::{ImportanceValue, SampleId};

/// An indexed binary min-heap keyed by importance value.
///
/// This is the paper's *H-heap* (§III-B): heap objects are
/// `(importance, sample)` pairs, the top node is the least-important cached
/// H-sample — the eviction candidate. Beyond a plain binary heap it keeps a
/// position map so that arbitrary samples can be re-keyed or removed in
/// `O(log n)` when importance values change or samples are evicted through
/// other paths.
///
/// Ordering ties break toward the lower sample id, making eviction order
/// fully deterministic.
///
/// # Examples
///
/// ```
/// use icache_core::HHeap;
/// use icache_types::{ImportanceValue, SampleId};
///
/// let mut heap = HHeap::new();
/// heap.insert(SampleId(1), ImportanceValue::new(5.0)?);
/// heap.insert(SampleId(2), ImportanceValue::new(1.0)?);
/// assert_eq!(heap.peek_min(), Some((SampleId(2), ImportanceValue::new(1.0)?)));
/// # Ok::<(), icache_types::Error>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct HHeap {
    nodes: Vec<(ImportanceValue, SampleId)>,
    /// id → slot index; a dense slab so the sift hot path pays one
    /// array write per swap instead of a hash per swap.
    pos: IdSlab<usize>,
}

impl HHeap {
    /// An empty heap.
    pub fn new() -> Self {
        HHeap::default()
    }

    /// An empty heap with room for `cap` nodes.
    pub fn with_capacity(cap: usize) -> Self {
        HHeap {
            nodes: Vec::with_capacity(cap),
            pos: IdSlab::with_capacity(cap),
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the heap has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Whether `id` has a node in the heap.
    pub fn contains(&self, id: SampleId) -> bool {
        self.pos.contains_key(id)
    }

    /// The current key of `id`, if present.
    pub fn key_of(&self, id: SampleId) -> Option<ImportanceValue> {
        self.pos.get(id).map(|&i| self.nodes[i].0)
    }

    /// The top node: the least important `(id, importance)` pair.
    pub fn peek_min(&self) -> Option<(SampleId, ImportanceValue)> {
        self.nodes.first().map(|&(iv, id)| (id, iv))
    }

    /// Insert `id` with key `iv`, or re-key it if already present.
    /// Returns true when the id was newly inserted.
    pub fn insert(&mut self, id: SampleId, iv: ImportanceValue) -> bool {
        if let Some(&i) = self.pos.get(id) {
            self.rekey_at(i, iv);
            return false;
        }
        self.nodes.push((iv, id));
        let i = self.nodes.len() - 1;
        self.pos.insert(id, i);
        self.sift_up(i);
        true
    }

    /// Remove and return the top (least important) node.
    pub fn pop_min(&mut self) -> Option<(SampleId, ImportanceValue)> {
        if self.nodes.is_empty() {
            return None;
        }
        let (iv, id) = self.nodes[0];
        self.remove_at(0);
        Some((id, iv))
    }

    /// Remove `id`'s node. Returns its key if it was present.
    pub fn remove(&mut self, id: SampleId) -> Option<ImportanceValue> {
        let i = *self.pos.get(id)?;
        let key = self.nodes[i].0;
        self.remove_at(i);
        Some(key)
    }

    /// Change `id`'s key. Returns false when `id` is not in the heap.
    pub fn update_key(&mut self, id: SampleId, iv: ImportanceValue) -> bool {
        match self.pos.get(id) {
            Some(&i) => {
                self.rekey_at(i, iv);
                true
            }
            None => false,
        }
    }

    /// Iterate over all `(id, importance)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (SampleId, ImportanceValue)> + '_ {
        self.nodes.iter().map(|&(iv, id)| (id, iv))
    }

    /// The id stored at dense slot `index` (heap order, unspecified).
    /// Enables O(1) uniform random selection of a resident sample.
    pub fn id_at(&self, index: usize) -> Option<SampleId> {
        self.nodes.get(index).map(|&(_, id)| id)
    }

    /// Drain the heap into an unordered vector of `(id, importance)`.
    pub fn drain(&mut self) -> Vec<(SampleId, ImportanceValue)> {
        self.pos.clear();
        self.nodes.drain(..).map(|(iv, id)| (id, iv)).collect()
    }

    /// Internal consistency check (used by tests): heap order holds and
    /// the position map is exact.
    #[doc(hidden)]
    pub fn check_invariants(&self) -> bool {
        for i in 1..self.nodes.len() {
            let parent = (i - 1) / 2;
            if Self::less(&self.nodes[i], &self.nodes[parent]) {
                return false;
            }
        }
        self.pos.len() == self.nodes.len()
            && self
                .pos
                .iter()
                .all(|(id, &i)| self.nodes.get(i).map(|n| n.1) == Some(id))
    }

    #[inline]
    fn less(a: &(ImportanceValue, SampleId), b: &(ImportanceValue, SampleId)) -> bool {
        (a.0, a.1) < (b.0, b.1)
    }

    fn rekey_at(&mut self, i: usize, iv: ImportanceValue) {
        let old = self.nodes[i].0;
        self.nodes[i].0 = iv;
        if iv < old {
            self.sift_up(i);
        } else {
            self.sift_down(i);
        }
    }

    fn remove_at(&mut self, i: usize) {
        let last = self.nodes.len() - 1;
        self.pos.remove(self.nodes[i].1);
        if i != last {
            self.nodes.swap(i, last);
            self.pos.insert(self.nodes[i].1, i);
            self.nodes.pop();
            // The moved node may need to travel either direction.
            self.sift_up(i);
            self.sift_down(i);
        } else {
            self.nodes.pop();
        }
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if Self::less(&self.nodes[i], &self.nodes[parent]) {
                self.nodes.swap(i, parent);
                self.pos.insert(self.nodes[i].1, i);
                self.pos.insert(self.nodes[parent].1, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        let n = self.nodes.len();
        loop {
            let (l, r) = (2 * i + 1, 2 * i + 2);
            let mut smallest = i;
            if l < n && Self::less(&self.nodes[l], &self.nodes[smallest]) {
                smallest = l;
            }
            if r < n && Self::less(&self.nodes[r], &self.nodes[smallest]) {
                smallest = r;
            }
            if smallest == i {
                break;
            }
            self.nodes.swap(i, smallest);
            self.pos.insert(self.nodes[i].1, i);
            self.pos.insert(self.nodes[smallest].1, smallest);
            i = smallest;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(v: f64) -> ImportanceValue {
        ImportanceValue::new(v).unwrap()
    }

    #[test]
    fn pop_min_yields_ascending_keys() {
        let mut h = HHeap::new();
        for (i, v) in [5.0, 1.0, 3.0, 2.0, 4.0].iter().enumerate() {
            h.insert(SampleId(i as u64), iv(*v));
        }
        let mut out = Vec::new();
        while let Some((_, k)) = h.pop_min() {
            out.push(k.get());
        }
        assert_eq!(out, vec![1.0, 2.0, 3.0, 4.0, 5.0]);
    }

    #[test]
    fn ties_break_toward_lower_id() {
        let mut h = HHeap::new();
        h.insert(SampleId(9), iv(1.0));
        h.insert(SampleId(2), iv(1.0));
        assert_eq!(h.pop_min().unwrap().0, SampleId(2));
        assert_eq!(h.pop_min().unwrap().0, SampleId(9));
    }

    #[test]
    fn insert_existing_rekeys() {
        let mut h = HHeap::new();
        assert!(h.insert(SampleId(1), iv(5.0)));
        assert!(!h.insert(SampleId(1), iv(0.5)));
        assert_eq!(h.len(), 1);
        assert_eq!(h.key_of(SampleId(1)), Some(iv(0.5)));
    }

    #[test]
    fn update_key_moves_node_both_directions() {
        let mut h = HHeap::new();
        for i in 0..10u64 {
            h.insert(SampleId(i), iv(1.0 + i as f64));
        }
        assert!(h.update_key(SampleId(9), iv(0.1)));
        assert_eq!(h.peek_min().unwrap().0, SampleId(9));
        assert!(h.update_key(SampleId(9), iv(100.0)));
        assert_eq!(h.peek_min().unwrap().0, SampleId(0));
        assert!(!h.update_key(SampleId(77), iv(1.0)));
        assert!(h.check_invariants());
    }

    #[test]
    fn remove_arbitrary_nodes_keeps_invariants() {
        let mut h = HHeap::new();
        for i in 0..50u64 {
            h.insert(SampleId(i), iv(((i * 37) % 50) as f64));
        }
        for i in (0..50u64).step_by(3) {
            assert!(h.remove(SampleId(i)).is_some());
            assert!(h.check_invariants());
        }
        assert!(h.remove(SampleId(0)).is_none(), "already removed");
        assert_eq!(h.len(), 50 - 17);
    }

    #[test]
    fn drain_empties_heap() {
        let mut h = HHeap::new();
        h.insert(SampleId(0), iv(1.0));
        h.insert(SampleId(1), iv(2.0));
        let all = h.drain();
        assert_eq!(all.len(), 2);
        assert!(h.is_empty());
        assert!(!h.contains(SampleId(0)));
    }

    #[test]
    fn contains_and_key_of_agree() {
        let mut h = HHeap::new();
        h.insert(SampleId(3), iv(7.0));
        assert!(h.contains(SampleId(3)));
        assert_eq!(h.key_of(SampleId(3)), Some(iv(7.0)));
        assert!(!h.contains(SampleId(4)));
        assert_eq!(h.key_of(SampleId(4)), None);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    #[derive(Debug, Clone)]
    enum Op {
        Insert(u64, u32),
        PopMin,
        Remove(u64),
        Update(u64, u32),
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        prop_oneof![
            (0u64..40, any::<u32>()).prop_map(|(id, v)| Op::Insert(id, v)),
            Just(Op::PopMin),
            (0u64..40).prop_map(Op::Remove),
            (0u64..40, any::<u32>()).prop_map(|(id, v)| Op::Update(id, v)),
        ]
    }

    proptest! {
        /// The indexed heap behaves exactly like a sorted reference map
        /// under arbitrary operation sequences.
        #[test]
        fn matches_reference_model(ops in proptest::collection::vec(op_strategy(), 1..200)) {
            let mut heap = HHeap::new();
            let mut model: std::collections::BTreeMap<u64, u32> = Default::default();
            for op in ops {
                match op {
                    Op::Insert(id, v) => {
                        heap.insert(SampleId(id), ImportanceValue::new(v as f64).unwrap());
                        model.insert(id, v);
                    }
                    Op::PopMin => {
                        let got = heap.pop_min();
                        let want = model
                            .iter()
                            .map(|(&id, &v)| (v, id))
                            .min()
                            .map(|(v, id)| (id, v));
                        match (got, want) {
                            (None, None) => {}
                            (Some((gid, giv)), Some((wid, wv))) => {
                                prop_assert_eq!(gid.0, wid);
                                prop_assert_eq!(giv.get(), wv as f64);
                                model.remove(&wid);
                            }
                            other => prop_assert!(false, "mismatch: {:?}", other),
                        }
                    }
                    Op::Remove(id) => {
                        let got = heap.remove(SampleId(id));
                        let want = model.remove(&id);
                        prop_assert_eq!(got.map(|k| k.get()), want.map(|v| v as f64));
                    }
                    Op::Update(id, v) => {
                        let did = heap.update_key(SampleId(id), ImportanceValue::new(v as f64).unwrap());
                        if let std::collections::btree_map::Entry::Occupied(mut e) = model.entry(id) {
                            prop_assert!(did);
                            e.insert(v);
                        } else {
                            prop_assert!(!did);
                        }
                    }
                }
                prop_assert!(heap.check_invariants());
                prop_assert_eq!(heap.len(), model.len());
            }
        }
    }
}
