//! The iCache client module (§III-A, §IV).
//!
//! In the paper the client is a PyTorch `Dataset` subclass
//! (`iCacheImageFolder`) that forwards reads to the iCache server over gRPC
//! (`rpc_loader`) and pushes importance updates (`update_ipersample`).
//! Here the client is an in-process object holding the job's H-list and
//! forwarding batches through any [`CacheSystem`].

use crate::{CacheSystem, Fetch};
use icache_sampling::{HList, ImportanceTable};
use icache_storage::StorageBackend;
use icache_types::{Dataset, JobId, SampleId, SimTime};

/// A training job's client module: owns the job identity and its H-list.
///
/// # Examples
///
/// ```
/// use icache_core::{IcacheClient, IcacheConfig, IcacheManager};
/// use icache_sampling::ImportanceTable;
/// use icache_storage::LocalTier;
/// use icache_types::{Dataset, JobId, SampleId, SimTime};
///
/// let ds = Dataset::cifar10();
/// let mut cache = IcacheManager::new(IcacheConfig::for_dataset(&ds, 0.2)?, &ds)?;
/// let mut storage = LocalTier::tmpfs();
/// let mut client = IcacheClient::new(JobId(0), &ds);
///
/// // Build + push an H-list, then load a batch through the cache.
/// let mut table = ImportanceTable::new(ds.len());
/// table.record_loss(SampleId(3), 8.0);
/// client.update_ipersample(&table, 0.1, &mut cache);
/// let batch = client.rpc_loader(&[SampleId(3), SampleId(4)], SimTime::ZERO,
///                               &mut cache, &mut storage);
/// assert_eq!(batch.len(), 2);
/// # Ok::<(), icache_types::Error>(())
/// ```
#[derive(Debug, Clone)]
pub struct IcacheClient {
    job: JobId,
    dataset: Dataset,
    hlist: HList,
}

impl IcacheClient {
    /// A client for `job` training on `dataset`.
    pub fn new(job: JobId, dataset: &Dataset) -> Self {
        IcacheClient {
            job,
            dataset: dataset.clone(),
            hlist: HList::empty(dataset.len()),
        }
    }

    /// The job this client belongs to.
    pub fn job(&self) -> JobId {
        self.job
    }

    /// The client's current H-list.
    pub fn hlist(&self) -> &HList {
        &self.hlist
    }

    /// Rebuild the H-list from fresh importance values and push it to the
    /// server (the paper's `update_ipersample` interface). `h_fraction` is
    /// the fraction of the dataset treated as H-samples.
    pub fn update_ipersample(
        &mut self,
        table: &ImportanceTable,
        h_fraction: f64,
        cache: &mut dyn CacheSystem,
    ) -> &HList {
        self.hlist = HList::top_fraction(table, h_fraction);
        cache.update_hlist(self.job, &self.hlist);
        &self.hlist
    }

    /// Fetch a batch of samples through the cache (the paper's
    /// `rpc_loader` interface). Requests are issued back-to-back: each
    /// request is submitted when the previous one completes, as a blocking
    /// PyTorch worker would.
    pub fn rpc_loader(
        &self,
        ids: &[SampleId],
        start: SimTime,
        cache: &mut dyn CacheSystem,
        storage: &mut dyn StorageBackend,
    ) -> Vec<Fetch> {
        let mut now = start;
        ids.iter()
            .map(|&id| {
                let f = cache.fetch(self.job, id, self.dataset.sample_size(id), now, storage);
                now = f.ready_at;
                f
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FetchOutcome, IcacheConfig, IcacheManager};
    use icache_storage::LocalTier;
    use icache_types::{ByteSize, DatasetBuilder, SizeModel};

    fn setup() -> (Dataset, IcacheManager, LocalTier) {
        let ds = DatasetBuilder::new("t", 500)
            .size_model(SizeModel::Fixed(ByteSize::kib(3)))
            .build()
            .unwrap();
        let m = IcacheManager::new(IcacheConfig::for_dataset(&ds, 0.3).unwrap(), &ds).unwrap();
        (ds, m, LocalTier::tmpfs())
    }

    #[test]
    fn update_ipersample_builds_and_pushes_hlist() {
        let (ds, mut cache, _st) = setup();
        let mut client = IcacheClient::new(JobId(1), &ds);
        let mut t = ImportanceTable::new(ds.len());
        t.record_loss(SampleId(7), 99.0);
        let hl = client.update_ipersample(&t, 0.02, &mut cache);
        assert!(hl.contains(SampleId(7)));
        assert_eq!(client.hlist().len(), 10);
    }

    #[test]
    fn rpc_loader_issues_blocking_sequential_requests() {
        let (ds, mut cache, mut st) = setup();
        let mut client = IcacheClient::new(JobId(0), &ds);
        let mut t = ImportanceTable::new(ds.len());
        for i in 0..ds.len() {
            t.record_loss(SampleId(i), if i < 50 { 50.0 } else { 0.01 });
        }
        client.update_ipersample(&t, 0.1, &mut cache);
        let ids: Vec<SampleId> = (0..10).map(SampleId).collect();
        let fetches = client.rpc_loader(&ids, SimTime::ZERO, &mut cache, &mut st);
        assert_eq!(fetches.len(), 10);
        for w in fetches.windows(2) {
            assert!(w[1].ready_at >= w[0].ready_at, "requests are sequential");
        }
        // Cold cache: every H request was a miss the first time.
        assert!(fetches.iter().all(|f| f.outcome == FetchOutcome::Miss));
        // Second pass hits.
        let again = client.rpc_loader(&ids, fetches[9].ready_at, &mut cache, &mut st);
        assert!(again.iter().all(|f| f.outcome == FetchOutcome::HitH));
    }
}
