//! Dense-ID containers: slab-indexed maps for the per-request hot paths.
//!
//! Sample ids are dense contiguous integers `0..dataset.len()`
//! ([`SampleId`] is documented as an index), which is exactly the
//! precondition for slab/arena indexing: a `SampleId → V` map can be a
//! `Vec` indexed by `id.index()` instead of an ordered tree, turning
//! every lookup on the replay hot path into one array access instead of
//! an `O(log n)` walk.
//!
//! Determinism contract (DESIGN.md §12): [`IdSlab`] iterates in
//! **ascending id order**, exactly like `BTreeMap<SampleId, V>`, via an
//! occupancy bitmap walked word by word with `trailing_zeros`. The
//! model-based proptests in this module drive an [`IdSlab`] and a
//! `BTreeMap` (and an [`IdSet`] and a `BTreeSet`) through identical
//! operation sequences and assert identical observable state, including
//! iteration order — the property that keeps every golden byte-stable
//! across the BTree → slab migration.
//!
//! When `SampleId` keys are *sparse* (e.g. hashing-assigned directory
//! shards) or the key is not a `SampleId` at all (`JobId`, `NodeId`,
//! epoch counters), a slab would waste memory proportional to the key
//! range — those maps stay on `BTreeMap`.
//!
//! [`IdSet`] (the companion fixed-universe bitmap set) lives in
//! `icache_types` and is re-exported here so the dense layer has one
//! import surface.

pub use icache_types::IdSet;
use icache_types::SampleId;

/// A `SampleId → V` map backed by a slab (`Vec<Option<V>>`) plus an
/// occupancy bitmap for ascending-id iteration.
///
/// Mirrors the `BTreeMap<SampleId, V>` surface actually used by the
/// cache hot paths (`len`/`get`/`insert`/`remove`/`iter`/`retain`/…)
/// with O(1) point operations and O(words + occupied) iteration in
/// ascending id order. The slab grows automatically to the largest
/// inserted id; ids are expected to be dense (`0..dataset.len()`), so
/// capacity is bounded by the dataset size.
///
/// # Examples
///
/// ```
/// use icache_core::dense::IdSlab;
/// use icache_types::SampleId;
///
/// let mut slab: IdSlab<u32> = IdSlab::new();
/// slab.insert(SampleId(3), 30);
/// slab.insert(SampleId(1), 10);
/// assert_eq!(slab.get(SampleId(3)), Some(&30));
/// // Iteration is in ascending id order, like a BTreeMap.
/// let ids: Vec<_> = slab.keys().collect();
/// assert_eq!(ids, vec![SampleId(1), SampleId(3)]);
/// ```
#[derive(Clone)]
pub struct IdSlab<V> {
    slots: Vec<Option<V>>,
    /// Occupancy bitmap: bit `i % 64` of `words[i / 64]` is set iff
    /// `slots[i]` holds a value. `words.len() * 64 >= slots.len()`.
    words: Vec<u64>,
    len: usize,
}

impl<V> Default for IdSlab<V> {
    fn default() -> Self {
        IdSlab::new()
    }
}

impl<V> IdSlab<V> {
    /// An empty slab.
    pub fn new() -> Self {
        IdSlab {
            slots: Vec::new(),
            words: Vec::new(),
            len: 0,
        }
    }

    /// An empty slab pre-sized for ids `0..cap` (no reallocation until
    /// an id `>= cap` is inserted).
    pub fn with_capacity(cap: usize) -> Self {
        IdSlab {
            slots: Vec::with_capacity(cap),
            words: Vec::with_capacity(cap.div_ceil(64)),
            len: 0,
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the slab holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether `id` has an entry.
    #[inline]
    pub fn contains_key(&self, id: SampleId) -> bool {
        let i = id.index();
        self.words
            .get(i / 64)
            .is_some_and(|w| w & (1u64 << (i % 64)) != 0)
    }

    /// A reference to `id`'s value, if present.
    #[inline]
    pub fn get(&self, id: SampleId) -> Option<&V> {
        self.slots.get(id.index())?.as_ref()
    }

    /// A mutable reference to `id`'s value, if present.
    #[inline]
    pub fn get_mut(&mut self, id: SampleId) -> Option<&mut V> {
        self.slots.get_mut(id.index())?.as_mut()
    }

    /// Insert `id → value`. Returns the previous value if present.
    pub fn insert(&mut self, id: SampleId, value: V) -> Option<V> {
        let i = id.index();
        if i >= self.slots.len() {
            self.slots.resize_with(i + 1, || None);
        }
        if i / 64 >= self.words.len() {
            self.words.resize(i / 64 + 1, 0);
        }
        self.words[i / 64] |= 1u64 << (i % 64);
        let prev = self.slots[i].replace(value);
        if prev.is_none() {
            self.len += 1;
        }
        prev
    }

    /// Remove `id`'s entry. Returns its value if it was present.
    pub fn remove(&mut self, id: SampleId) -> Option<V> {
        let i = id.index();
        let prev = self.slots.get_mut(i)?.take();
        if prev.is_some() {
            self.words[i / 64] &= !(1u64 << (i % 64));
            self.len -= 1;
        }
        prev
    }

    /// Remove every entry, keeping the allocated capacity.
    pub fn clear(&mut self) {
        self.slots.clear();
        self.words.clear();
        self.len = 0;
    }

    /// Iterate `(id, &value)` in ascending id order.
    pub fn iter(&self) -> impl Iterator<Item = (SampleId, &V)> + '_ {
        self.occupied().map(move |i| {
            let v = self.slots[i]
                .as_ref()
                .expect("occupancy bit set for an empty slot");
            (SampleId(i as u64), v)
        })
    }

    /// Iterate ids in ascending order.
    pub fn keys(&self) -> impl Iterator<Item = SampleId> + '_ {
        self.occupied().map(|i| SampleId(i as u64))
    }

    /// Iterate values in ascending id order.
    pub fn values(&self) -> impl Iterator<Item = &V> + '_ {
        self.iter().map(|(_, v)| v)
    }

    /// Keep only the entries for which `f` returns true, visiting in
    /// ascending id order (the `BTreeMap::retain` contract).
    pub fn retain(&mut self, mut f: impl FnMut(SampleId, &mut V) -> bool) {
        for wi in 0..self.words.len() {
            let mut bits = self.words[wi];
            while bits != 0 {
                let i = wi * 64 + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let keep = self.slots[i]
                    .as_mut()
                    .map(|v| f(SampleId(i as u64), v))
                    .expect("occupancy bit set for an empty slot");
                if !keep {
                    self.slots[i] = None;
                    self.words[wi] &= !(1u64 << (i % 64));
                    self.len -= 1;
                }
            }
        }
    }

    /// Slot indexes with their occupancy bit set, ascending.
    fn occupied(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            std::iter::successors((w != 0).then_some(w), |&bits| {
                let next = bits & (bits - 1);
                (next != 0).then_some(next)
            })
            .map(move |bits| wi * 64 + bits.trailing_zeros() as usize)
        })
    }
}

impl<V: std::fmt::Debug> std::fmt::Debug for IdSlab<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_map().entries(self.iter()).finish()
    }
}

impl<V: PartialEq> PartialEq for IdSlab<V> {
    fn eq(&self, other: &Self) -> bool {
        self.len == other.len
            && self
                .iter()
                .zip(other.iter())
                .all(|((ai, av), (bi, bv))| ai == bi && av == bv)
    }
}

impl<V: Eq> Eq for IdSlab<V> {}

impl<V> FromIterator<(SampleId, V)> for IdSlab<V> {
    fn from_iter<I: IntoIterator<Item = (SampleId, V)>>(iter: I) -> Self {
        let mut slab = IdSlab::new();
        slab.extend(iter);
        slab
    }
}

impl<V> Extend<(SampleId, V)> for IdSlab<V> {
    fn extend<I: IntoIterator<Item = (SampleId, V)>>(&mut self, iter: I) {
        for (id, v) in iter {
            self.insert(id, v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_ops_round_trip() {
        let mut s: IdSlab<u32> = IdSlab::with_capacity(8);
        assert!(s.is_empty());
        assert_eq!(s.insert(SampleId(5), 50), None);
        assert_eq!(s.insert(SampleId(5), 55), Some(50));
        assert_eq!(s.len(), 1);
        assert!(s.contains_key(SampleId(5)));
        assert!(!s.contains_key(SampleId(4)));
        assert_eq!(s.get(SampleId(5)), Some(&55));
        *s.get_mut(SampleId(5)).expect("present") += 1;
        assert_eq!(s.remove(SampleId(5)), Some(56));
        assert_eq!(s.remove(SampleId(5)), None);
        assert!(s.is_empty());
    }

    #[test]
    fn iteration_is_ascending_across_word_boundaries() {
        let mut s: IdSlab<u64> = IdSlab::new();
        for id in [200u64, 0, 63, 64, 65, 127, 128, 1] {
            s.insert(SampleId(id), id * 2);
        }
        let ids: Vec<u64> = s.keys().map(|id| id.0).collect();
        assert_eq!(ids, vec![0, 1, 63, 64, 65, 127, 128, 200]);
        assert!(s.iter().all(|(id, &v)| v == id.0 * 2));
        assert_eq!(s.values().sum::<u64>(), ids.iter().sum::<u64>() * 2);
    }

    #[test]
    fn retain_visits_ascending_and_drops() {
        let mut s: IdSlab<u64> = (0..130u64).map(|i| (SampleId(i), i)).collect();
        let mut visited = Vec::new();
        s.retain(|id, v| {
            visited.push(id.0);
            *v % 3 == 0
        });
        assert!(visited.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(s.len(), (0..130u64).filter(|i| i % 3 == 0).count());
        assert!(s.keys().all(|id| id.0 % 3 == 0));
    }

    #[test]
    fn clear_resets_and_capacity_survives() {
        let mut s: IdSlab<u8> = IdSlab::new();
        s.insert(SampleId(70), 7);
        s.clear();
        assert!(s.is_empty());
        assert!(!s.contains_key(SampleId(70)));
        assert_eq!(s.iter().count(), 0);
        s.insert(SampleId(2), 2);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn equality_and_debug_see_entries_not_capacity() {
        let mut a: IdSlab<u8> = IdSlab::new();
        let mut b: IdSlab<u8> = IdSlab::with_capacity(1000);
        a.insert(SampleId(9), 1);
        b.insert(SampleId(900), 2);
        b.insert(SampleId(9), 1);
        b.remove(SampleId(900));
        assert_eq!(a, b, "trailing empty capacity must not affect equality");
        assert_eq!(format!("{a:?}"), "{SampleId(9): 1}");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::{BTreeMap, BTreeSet};

    /// The op vocabulary the satellite spec names: insert / remove /
    /// get / iter / retain. `iter` and `get` are checked after every
    /// op; `retain` keeps a pseudo-random subset derived from the op's
    /// modulus so runs are reproducible.
    #[derive(Debug, Clone)]
    enum Op {
        Insert(u64, u32),
        Remove(u64),
        Get(u64),
        Retain(u64),
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        prop_oneof![
            (0u64..200, any::<u32>()).prop_map(|(id, v)| Op::Insert(id, v)),
            (0u64..200, any::<u32>()).prop_map(|(id, v)| Op::Insert(id, v)),
            (0u64..200).prop_map(Op::Remove),
            (0u64..200).prop_map(Op::Get),
            (2u64..5).prop_map(Op::Retain),
        ]
    }

    proptest! {
        /// Model-based differential: an [`IdSlab`] driven by an
        /// arbitrary op sequence is observationally identical to a
        /// `BTreeMap` driven by the same sequence — same return
        /// values, same length, same iteration order.
        #[test]
        fn idslab_matches_btreemap(ops in proptest::collection::vec(op_strategy(), 1..300)) {
            let mut slab: IdSlab<u32> = IdSlab::new();
            let mut model: BTreeMap<SampleId, u32> = BTreeMap::new();
            for op in ops {
                match op {
                    Op::Insert(id, v) => {
                        prop_assert_eq!(slab.insert(SampleId(id), v), model.insert(SampleId(id), v));
                    }
                    Op::Remove(id) => {
                        prop_assert_eq!(slab.remove(SampleId(id)), model.remove(&SampleId(id)));
                    }
                    Op::Get(id) => {
                        prop_assert_eq!(slab.get(SampleId(id)), model.get(&SampleId(id)));
                        prop_assert_eq!(slab.contains_key(SampleId(id)), model.contains_key(&SampleId(id)));
                    }
                    Op::Retain(m) => {
                        slab.retain(|id, v| (id.0 + u64::from(*v)) % m != 0);
                        model.retain(|id, v| (id.0 + u64::from(*v)) % m != 0);
                    }
                }
                prop_assert_eq!(slab.len(), model.len());
                let got: Vec<(SampleId, u32)> = slab.iter().map(|(id, &v)| (id, v)).collect();
                let want: Vec<(SampleId, u32)> = model.iter().map(|(&id, &v)| (id, v)).collect();
                prop_assert_eq!(got, want, "iteration order must match BTreeMap exactly");
            }
        }

        /// Same differential for the bitmap set: an [`IdSet`] driven by
        /// insert/remove sequences matches a `BTreeSet`, including
        /// ascending iteration order.
        #[test]
        fn idset_matches_btreeset(ops in proptest::collection::vec((0u64..128, any::<bool>()), 1..300)) {
            let mut set = IdSet::new(128);
            let mut model: BTreeSet<SampleId> = BTreeSet::new();
            for (id, add) in ops {
                if add {
                    prop_assert_eq!(set.insert(SampleId(id)), model.insert(SampleId(id)));
                } else {
                    prop_assert_eq!(set.remove(SampleId(id)), model.remove(&SampleId(id)));
                }
                prop_assert_eq!(set.len(), model.len());
                prop_assert_eq!(set.contains(SampleId(id)), model.contains(&SampleId(id)));
                let got: Vec<SampleId> = set.iter().collect();
                let want: Vec<SampleId> = model.iter().copied().collect();
                prop_assert_eq!(got, want, "iteration order must match BTreeSet exactly");
            }
        }
    }
}
