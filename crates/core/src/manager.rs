//! The iCache cache manager (system overview, §III-A; Algorithm 1).

use crate::dense::{IdSet, IdSlab};
use crate::service::{RecoveryEntry, RecoveryRegion};
use crate::{
    CacheStats, CacheSystem, Fetch, FetchOutcome, HCache, LCache, LCacheConfig, LFetch,
    MultiJobCoordinator, Packager, PmTierConfig, SampleData, VictimCache,
};
use icache_obs::{Obs, Observable, TraceEvent};
use icache_sampling::HList;
use icache_storage::StorageBackend;
use icache_types::{
    ByteSize, Dataset, Epoch, Error, ImportanceValue, JobId, Result, SampleId, SimDuration, SimTime,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::{BTreeMap, BTreeSet};

/// What to do when a requested L-sample is missing from the L-cache
/// (the §V-E substitution-policy study).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Substitution {
    /// `Def`: no substitution — read the missed sample from storage.
    None,
    /// `ST_HC`: substitute with a random H-cache resident (hurts accuracy
    /// by over-training important samples; shown inferior in Table III).
    FromH,
    /// `ST_LC`: substitute with an un-accessed L-cache resident — the
    /// policy iCache adopts.
    #[default]
    FromL,
}

/// Configuration of an [`IcacheManager`].
#[derive(Debug, Clone, PartialEq)]
pub struct IcacheConfig {
    /// Total cache capacity (H-cache + L-cache).
    pub capacity: ByteSize,
    /// Initial fraction of capacity given to the H-region (the paper's
    /// default split is 9:1).
    pub initial_h_fraction: f64,
    /// Package size used by dynamic packaging (≥ 1 MB in the paper).
    pub package_size: ByteSize,
    /// Cost of one client↔server RPC round trip.
    pub rpc_overhead: SimDuration,
    /// DRAM copy bandwidth for serving hits, bytes/second.
    pub dram_bandwidth: f64,
    /// Enable the multi-job module (benefit probing + AIV aggregation).
    pub multi_job: bool,
    /// Benefit threshold above which a job is cache-eligible (paper: 1.5).
    pub benefit_threshold: f64,
    /// Samples per probe phase (the paper's 20 mini-batches of 256).
    pub probe_samples: u64,
    /// Seed for substitution and packaging randomness.
    pub seed: u64,
    /// Sustained throughput of the asynchronous loading thread
    /// (bytes/second), covering re-packing CPU and its polite, background-
    /// priority storage reads. Limits how fast the L-cache refreshes.
    pub loader_bandwidth: f64,
    /// L-cache miss policy (§V-E; default `ST_LC`).
    pub substitution: Substitution,
    /// Disable the L-cache entirely (the Fig. 10 `+HC` ablation: all
    /// capacity goes to the H-region, L misses always hit storage).
    pub enable_lcache: bool,
    /// Manage the cache with H-lists from this job only (the Fig. 14
    /// `INDA`/`INDB` schemes); updates from other jobs are dropped.
    pub hlist_filter: Option<JobId>,
    /// Optional persistent-memory victim tier behind the H-region (§VI
    /// extension): DRAM evictions spill to PM, and H-misses check PM
    /// before paying for remote storage.
    pub pm_tier: Option<PmTierConfig>,
}

impl IcacheConfig {
    /// The paper's defaults for a cache holding `cache_fraction` of
    /// `dataset` (§V-A: 20 % cache, 9:1 split, 1 MB packages).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] when `cache_fraction` is not in
    /// `(0, 1]`.
    pub fn for_dataset(dataset: &Dataset, cache_fraction: f64) -> Result<Self> {
        if !(cache_fraction > 0.0 && cache_fraction <= 1.0) {
            return Err(Error::invalid_config("cache_fraction", "must be in (0, 1]"));
        }
        Ok(IcacheConfig {
            capacity: dataset.total_bytes().scaled(cache_fraction),
            initial_h_fraction: 0.9,
            package_size: ByteSize::mib(1),
            rpc_overhead: SimDuration::from_micros(50),
            dram_bandwidth: 10.0e9,
            multi_job: false,
            benefit_threshold: 1.5,
            probe_samples: 20 * 256,
            seed: 0x1CAC4E,
            loader_bandwidth: 2.5e6,
            substitution: Substitution::FromL,
            enable_lcache: true,
            hlist_filter: None,
            pm_tier: None,
        })
    }

    fn validate(&self) -> Result<()> {
        if self.capacity.is_zero() {
            return Err(Error::invalid_config("capacity", "must be non-zero"));
        }
        if !(self.initial_h_fraction >= 0.0 && self.initial_h_fraction <= 1.0) {
            return Err(Error::invalid_config(
                "initial_h_fraction",
                "must be in [0, 1]",
            ));
        }
        if self.package_size.is_zero() {
            return Err(Error::invalid_config("package_size", "must be non-zero"));
        }
        if !(self.dram_bandwidth > 0.0 && self.dram_bandwidth.is_finite()) {
            return Err(Error::invalid_config(
                "dram_bandwidth",
                "must be positive and finite",
            ));
        }
        if !(self.loader_bandwidth > 0.0 && self.loader_bandwidth.is_finite()) {
            return Err(Error::invalid_config(
                "loader_bandwidth",
                "must be positive and finite",
            ));
        }
        Ok(())
    }
}

/// The iCache server + manager: a two-region importance-informed cache.
///
/// * Requests for samples on the requesting job's H-list go to the
///   [`HCache`]; misses there are fetched from storage and admitted by
///   importance (Algorithm 1).
/// * Other requests go to the [`LCache`]; misses there are substituted
///   with an un-accessed resident L-sample, and an asynchronous loading
///   thread streams in dynamically re-packed packages.
/// * Region sizes are re-balanced each epoch from observed access
///   frequencies: `Size_hcache = Size_cache · f_H / (f_H + f_L)`.
/// * With [`IcacheConfig::multi_job`] enabled, the embedded
///   [`MultiJobCoordinator`] probes each job's caching benefit and manages
///   the heap with aggregated importance values.
///
/// See the [crate docs](crate) for an end-to-end example.
#[derive(Debug)]
pub struct IcacheManager {
    config: IcacheConfig,
    dataset: Dataset,
    hcache: HCache,
    lcache: LCache,
    packager: Packager,
    coordinator: MultiJobCoordinator,
    effective_iv: IdSlab<ImportanceValue>,
    l_pool: Vec<SampleId>,
    loader_busy: SimTime,
    rng: StdRng,
    stats: CacheStats,
    /// Per-job views of the same counters (multi-tenant observability,
    /// Fig. 14's per-job hit ratios).
    job_stats: BTreeMap<JobId, CacheStats>,
    h_accesses: u64,
    l_accesses: u64,
    /// H-cache residents already used as substitutes this epoch (ST_HC).
    h_sub_used: IdSet,
    victim: Option<VictimCache>,
    primary_job: Option<JobId>,
    /// Shared observability handle (metrics registry + trace ring).
    obs: Obs,
    /// Epoch of the primary job, for event attribution.
    current_epoch: u64,
}

impl IcacheManager {
    /// Build a manager for `dataset` with `config`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] for invalid capacities, fractions,
    /// or bandwidths.
    pub fn new(config: IcacheConfig, dataset: &Dataset) -> Result<Self> {
        config.validate()?;
        // L-cache floor: one package, but never more than half the cache
        // (tiny caches would otherwise leave the H-region empty).
        let min_l = config.package_size.min(config.capacity / 2);
        let l_capacity = if config.enable_lcache {
            config
                .capacity
                .saturating_sub(config.capacity.scaled(config.initial_h_fraction))
                .max(min_l)
        } else {
            ByteSize::ZERO
        };
        let h_capacity = config.capacity.saturating_sub(l_capacity);
        let coordinator = MultiJobCoordinator::new(
            dataset.len(),
            config.benefit_threshold,
            config.probe_samples,
        )?;
        let victim = config.pm_tier.clone().map(VictimCache::new).transpose()?;
        Ok(IcacheManager {
            victim,
            hcache: HCache::new(h_capacity),
            lcache: LCache::new(LCacheConfig {
                capacity: l_capacity,
                num_samples: dataset.len(),
            }),
            packager: Packager::new(config.package_size, config.seed ^ 0xFACC)?,
            coordinator,
            effective_iv: IdSlab::new(),
            l_pool: dataset.ids().collect(),
            loader_busy: SimTime::ZERO,
            rng: StdRng::seed_from_u64(config.seed),
            stats: CacheStats::default(),
            job_stats: BTreeMap::new(),
            h_accesses: 0,
            l_accesses: 0,
            h_sub_used: IdSet::new(dataset.len()),
            primary_job: None,
            obs: Obs::noop(),
            current_epoch: 0,
            dataset: dataset.clone(),
            config,
        })
    }

    /// The embedded multi-job coordinator (read access for reports).
    pub fn coordinator(&self) -> &MultiJobCoordinator {
        &self.coordinator
    }

    /// Current H-region capacity.
    pub fn h_capacity(&self) -> ByteSize {
        self.hcache.capacity()
    }

    /// Current L-region capacity.
    pub fn l_capacity(&self) -> ByteSize {
        self.lcache.capacity()
    }

    /// Number of samples resident in the H-region.
    pub fn h_len(&self) -> usize {
        self.hcache.len()
    }

    /// Number of samples resident in the L-region.
    pub fn l_len(&self) -> usize {
        self.lcache.len()
    }

    /// Whether `id` currently resides in either region (used by the
    /// distributed cache's directory lookups).
    pub fn contains_cached(&self, id: SampleId) -> bool {
        self.hcache.contains(id) || self.lcache.contains(id)
    }

    /// The PM victim tier, when configured.
    pub fn pm_tier(&self) -> Option<&VictimCache> {
        self.victim.as_ref()
    }

    /// This job's view of the cache counters (Fig. 14's per-job hit
    /// ratios). Zeroed stats for jobs that never fetched.
    pub fn stats_for(&self, job: JobId) -> CacheStats {
        self.job_stats.get(&job).copied().unwrap_or_default()
    }

    /// Record H-region evictions in the registry and the event trace.
    fn note_evictions(&mut self, evicted: &[SampleId]) {
        self.obs.add("cache.evictions", evicted.len() as u64);
        for &id in evicted {
            self.obs.emit(TraceEvent::Eviction {
                sample: id.0,
                bytes: self.dataset.sample_size(id).as_u64(),
            });
        }
    }

    /// Spill evicted H-samples into the PM tier.
    fn spill_to_pm(&mut self, evicted: &[SampleId]) {
        if let Some(pm) = &mut self.victim {
            for &id in evicted {
                let size = self.dataset.sample_size(id);
                pm.insert(id, size);
                self.obs.inc("cache.pm_spills");
                self.obs.emit(TraceEvent::SpillToPm {
                    sample: id.0,
                    bytes: size.as_u64(),
                });
            }
        }
    }

    fn hit_service(&self, size: ByteSize) -> SimDuration {
        self.config.rpc_overhead
            + SimDuration::from_secs_f64(size.as_f64() / self.config.dram_bandwidth)
    }

    fn admission_value(&self, job: JobId, id: SampleId) -> ImportanceValue {
        self.effective_iv.get(id).copied().unwrap_or_else(|| {
            self.coordinator
                .hlist(job)
                .and_then(|h| h.importance(id))
                .unwrap_or(ImportanceValue::ZERO)
        })
    }

    fn maybe_trigger_load(&mut self, now: SimTime, storage: &mut dyn StorageBackend) {
        if !self.config.enable_lcache
            || self.lcache.capacity().is_zero()
            || !self.lcache.wants_load()
            || self.l_pool.is_empty()
            // The loading thread issues work only when virtual time has
            // reached its pacing horizon; submitting future-dated reads
            // would jump the storage queues past in-flight demand reads.
            || now < self.loader_busy
        {
            return;
        }
        let missed = self.lcache.take_missed(4 * 1024);
        let sizes = |id: SampleId| self.dataset.sample_size(id);
        // Never build a package larger than the L-region itself.
        let target = self.config.package_size.min(self.lcache.capacity());
        let pkg = self
            .packager
            .build_with_target(&missed, &self.l_pool, sizes, target);
        if pkg.is_empty() {
            return;
        }
        self.obs.inc("lcache.packages_built");
        self.obs
            .add("lcache.package_bytes", pkg.total_bytes().as_u64());
        self.obs.emit(TraceEvent::PackageBuild {
            package: pkg.id().0,
            samples: pkg.len() as u64,
            bytes: pkg.total_bytes().as_u64(),
        });
        let ready = storage.read_package(pkg.total_bytes(), now);
        // The loading thread also pays its re-packing/decode budget: it
        // cannot start the next package before its own bandwidth allows.
        let pacing =
            SimDuration::from_secs_f64(pkg.total_bytes().as_f64() / self.config.loader_bandwidth);
        self.loader_busy = ready.max(now + pacing);
        self.lcache.install_package(pkg, ready);
    }

    fn rebuild_l_pool(&mut self) {
        self.l_pool = self
            .dataset
            .ids()
            .filter(|&id| !self.coordinator.is_h_for_any(id))
            .collect();
    }

    fn fetch_h(
        &mut self,
        job: JobId,
        id: SampleId,
        size: ByteSize,
        now: SimTime,
        storage: &mut dyn StorageBackend,
    ) -> Fetch {
        self.h_accesses += 1;
        if self.hcache.contains(id) {
            self.stats.h_hits += 1;
            self.stats.bytes_from_cache += size;
            self.obs.inc("cache.h_hits");
            self.obs.emit(TraceEvent::HHit {
                job: job.0 as u64,
                sample: id.0,
            });
            return Fetch {
                ready_at: now + self.hit_service(size),
                served_id: id,
                outcome: FetchOutcome::HitH,
            };
        }
        // PM victim tier: promoted back into DRAM on a hit (§VI).
        if self
            .victim
            .as_mut()
            .is_some_and(|pm| pm.promote(id).is_some())
        {
            self.stats.pm_hits += 1;
            self.stats.bytes_from_cache += size;
            self.obs.inc("cache.pm_hits");
            self.obs.emit(TraceEvent::HHit {
                job: job.0 as u64,
                sample: id.0,
            });
            let pm = self.victim.as_ref().expect("checked above");
            let ready = now + self.config.rpc_overhead + pm.read_cost(size);
            let iv = self.admission_value(job, id);
            let result = self.hcache.admit(SampleData::generate(id, size), iv);
            if result.admitted {
                self.stats.insertions += 1;
                self.stats.evictions += result.evicted.len() as u64;
                self.obs.inc("cache.insertions");
                self.note_evictions(&result.evicted);
            }
            let evicted = result.evicted;
            self.spill_to_pm(&evicted);
            return Fetch {
                ready_at: ready,
                served_id: id,
                outcome: FetchOutcome::HitH,
            };
        }
        // Miss: read from storage and decide admission (Alg. 1 lines 8–16).
        let done = storage.read_sample(id, size, now);
        self.stats.misses += 1;
        self.stats.bytes_from_storage += size;
        self.obs.inc("cache.misses");
        self.obs.emit(TraceEvent::Miss {
            job: job.0 as u64,
            sample: id.0,
        });
        let iv = self.admission_value(job, id);
        let result = self.hcache.admit(SampleData::generate(id, size), iv);
        if result.admitted {
            self.stats.insertions += 1;
            self.stats.evictions += result.evicted.len() as u64;
            self.obs.inc("cache.insertions");
            self.note_evictions(&result.evicted);
        } else {
            self.stats.rejections += 1;
            self.obs.inc("cache.rejections");
        }
        self.spill_to_pm(&result.evicted);
        Fetch {
            ready_at: done + self.config.rpc_overhead,
            served_id: id,
            outcome: FetchOutcome::Miss,
        }
    }

    fn fetch_l(
        &mut self,
        job: JobId,
        id: SampleId,
        size: ByteSize,
        now: SimTime,
        storage: &mut dyn StorageBackend,
        allow_substitute: bool,
    ) -> Fetch {
        self.l_accesses += 1;
        if !self.config.enable_lcache {
            return self.storage_miss(job, id, size, now, storage);
        }
        if !allow_substitute || self.config.substitution == Substitution::None {
            return if self.lcache.lookup_no_substitute(id) {
                self.l_hit(job, id, size, now)
            } else {
                self.storage_miss(job, id, size, now, storage)
            };
        }
        match self.lcache.lookup(id, &mut self.rng) {
            LFetch::Hit => self.l_hit(job, id, size, now),
            // The L-cache proposes an un-accessed L resident; the final
            // decision follows the configured §V-E policy.
            LFetch::Substitute(sub) => match self.config.substitution {
                Substitution::FromL => {
                    self.stats.substitutions += 1;
                    let sub_size = self.dataset.sample_size(sub);
                    self.stats.bytes_from_cache += sub_size;
                    self.obs.inc("cache.substitutions");
                    self.obs.emit(TraceEvent::Substitution {
                        job: job.0 as u64,
                        requested: id.0,
                        substitute: sub.0,
                        kind: "st_lc",
                    });
                    Fetch {
                        ready_at: now + self.hit_service(sub_size),
                        served_id: sub,
                        outcome: FetchOutcome::Substituted {
                            by: sub,
                            from_h: false,
                        },
                    }
                }
                Substitution::FromH => self.substitute_from_h(job, id, size, now, storage),
                Substitution::None => self.storage_miss(job, id, size, now, storage),
            },
            LFetch::Empty => match self.config.substitution {
                Substitution::FromH => self.substitute_from_h(job, id, size, now, storage),
                _ => self.storage_miss(job, id, size, now, storage),
            },
        }
    }

    fn l_hit(&mut self, job: JobId, id: SampleId, size: ByteSize, now: SimTime) -> Fetch {
        self.stats.l_hits += 1;
        self.stats.bytes_from_cache += size;
        self.obs.inc("cache.l_hits");
        self.obs.emit(TraceEvent::LHit {
            job: job.0 as u64,
            sample: id.0,
        });
        Fetch {
            ready_at: now + self.hit_service(size),
            served_id: id,
            outcome: FetchOutcome::HitL,
        }
    }

    fn substitute_from_h(
        &mut self,
        job: JobId,
        id: SampleId,
        size: ByteSize,
        now: SimTime,
        storage: &mut dyn StorageBackend,
    ) -> Fetch {
        // Substitutes must not repeat within an epoch (the same freshness
        // rule the L-cache applies); bounded retries keep the draw O(1).
        let mut pick = None;
        for _ in 0..8 {
            match self.hcache.random_resident(&mut self.rng) {
                Some(c) if !self.h_sub_used.contains(c) => {
                    pick = Some(c);
                    break;
                }
                Some(_) => continue,
                None => break,
            }
        }
        match pick {
            Some(sub) => {
                self.h_sub_used.insert(sub);
                self.stats.substitutions += 1;
                let sub_size = self.dataset.sample_size(sub);
                self.stats.bytes_from_cache += sub_size;
                self.obs.inc("cache.substitutions");
                self.obs.emit(TraceEvent::Substitution {
                    job: job.0 as u64,
                    requested: id.0,
                    substitute: sub.0,
                    kind: "st_hc",
                });
                Fetch {
                    ready_at: now + self.hit_service(sub_size),
                    served_id: sub,
                    outcome: FetchOutcome::Substituted {
                        by: sub,
                        from_h: true,
                    },
                }
            }
            None => self.storage_miss(job, id, size, now, storage),
        }
    }

    fn storage_miss(
        &mut self,
        job: JobId,
        id: SampleId,
        size: ByteSize,
        now: SimTime,
        storage: &mut dyn StorageBackend,
    ) -> Fetch {
        let done = storage.read_sample(id, size, now);
        self.stats.misses += 1;
        self.stats.bytes_from_storage += size;
        self.obs.inc("cache.misses");
        self.obs.emit(TraceEvent::Miss {
            job: job.0 as u64,
            sample: id.0,
        });
        Fetch {
            ready_at: done + self.config.rpc_overhead,
            served_id: id,
            outcome: FetchOutcome::Miss,
        }
    }

    /// Snapshot resident cache contents for a warm-restart recovery
    /// index (sorted by region then sample id): every H-sample with its
    /// current effective importance, every L-sample with importance
    /// zero.
    pub fn residency_snapshot(&self) -> Vec<RecoveryEntry> {
        let mut out: Vec<RecoveryEntry> = self
            .hcache
            .ids()
            .map(|id| RecoveryEntry {
                region: RecoveryRegion::H,
                id,
                size: self.dataset.sample_size(id),
                iv: self
                    .effective_iv
                    .get(id)
                    .copied()
                    .unwrap_or(ImportanceValue::ZERO)
                    .get(),
            })
            .collect();
        out.extend(self.lcache.resident_ids().map(|id| RecoveryEntry {
            region: RecoveryRegion::L,
            id,
            size: self.dataset.sample_size(id),
            iv: 0.0,
        }));
        out.sort_by_key(|e| (e.region, e.id));
        out
    }

    /// Rebuild cache residency from a recovery index after a warm
    /// restart: H entries are re-admitted individually at their recorded
    /// importance, L entries are re-packaged (package-size chunks,
    /// deterministic — the packager's random fill is never consulted)
    /// and installed ready at `now`. Restoration is not demand traffic:
    /// it touches no fetch counters, no traces, and no storage backend —
    /// the payload comes from the node's local disk image.
    ///
    /// Returns `(restored_ids, h_count, l_count)`; entries squeezed out
    /// by capacity (the fresh manager starts at the configured region
    /// split, which may be tighter than the snapshot's) are dropped from
    /// all three.
    pub fn restore_residency(
        &mut self,
        entries: &[RecoveryEntry],
        now: SimTime,
    ) -> (Vec<SampleId>, u64, u64) {
        let mut restored_h: BTreeSet<SampleId> = BTreeSet::new();
        let mut sizes: BTreeMap<SampleId, ByteSize> = BTreeMap::new();
        let mut l_ids: Vec<SampleId> = Vec::new();
        for e in entries {
            match e.region {
                RecoveryRegion::H => {
                    let iv = ImportanceValue::saturating(e.iv);
                    let result = self.hcache.admit(SampleData::generate(e.id, e.size), iv);
                    if result.admitted {
                        restored_h.insert(e.id);
                    }
                    for v in result.evicted {
                        restored_h.remove(&v);
                    }
                }
                RecoveryRegion::L => {
                    sizes.insert(e.id, e.size);
                    l_ids.push(e.id);
                }
            }
        }
        // Chunk the L residency into package-size groups and rebuild
        // each as one package; with an empty fill pool the packager
        // takes exactly the listed samples.
        let target = self.config.package_size;
        let mut groups: Vec<(Vec<SampleId>, ByteSize)> = Vec::new();
        let mut group: Vec<SampleId> = Vec::new();
        let mut group_bytes = ByteSize::ZERO;
        for id in l_ids {
            let sz = sizes.get(&id).copied().unwrap_or(ByteSize::ZERO);
            if !group.is_empty() && group_bytes + sz > target {
                groups.push((std::mem::take(&mut group), group_bytes));
                group_bytes = ByteSize::ZERO;
            }
            group.push(id);
            group_bytes += sz;
        }
        if !group.is_empty() {
            groups.push((group, group_bytes));
        }
        let mut restored_l: Vec<SampleId> = Vec::new();
        for (ids, bytes) in groups {
            let pkg = self.packager.build_with_target(
                &ids,
                &[],
                |i| sizes.get(&i).copied().unwrap_or(ByteSize::ZERO),
                bytes,
            );
            self.lcache.install_package(pkg, now);
            restored_l.extend(ids);
        }
        self.lcache.integrate(now);
        restored_l.retain(|id| self.lcache.contains(*id));
        let h = restored_h.len() as u64;
        let l = restored_l.len() as u64;
        let mut all: Vec<SampleId> = restored_h.into_iter().collect();
        all.extend(restored_l);
        (all, h, l)
    }
}

impl Observable for IcacheManager {
    fn set_obs(&mut self, obs: Obs) {
        // Seed the gauges so snapshots carry the split before the first
        // rebalance; every rebalance keeps them current.
        obs.set_gauge("cache.h_capacity", self.hcache.capacity().as_f64());
        obs.set_gauge("cache.l_capacity", self.lcache.capacity().as_f64());
        self.coordinator.set_obs(obs.clone());
        self.obs = obs;
    }
}

impl CacheSystem for IcacheManager {
    fn name(&self) -> &str {
        "icache"
    }

    fn fetch(
        &mut self,
        job: JobId,
        id: SampleId,
        size: ByteSize,
        now: SimTime,
        storage: &mut dyn StorageBackend,
    ) -> Fetch {
        if self.primary_job.is_none() {
            self.primary_job = Some(job);
        }
        self.lcache.integrate(now);

        // Benefit probe, phase 1: bypass the cache entirely (§III-D).
        if self.config.multi_job {
            self.coordinator.register_job(job);
            if self.coordinator.should_bypass(job) {
                let done = storage.read_sample(id, size, now) + self.config.rpc_overhead;
                self.stats.misses += 1;
                self.stats.bytes_from_storage += size;
                self.obs.inc("cache.misses");
                self.obs.emit(TraceEvent::Miss {
                    job: job.0 as u64,
                    sample: id.0,
                });
                let per_job = self.job_stats.entry(job).or_default();
                per_job.misses += 1;
                per_job.bytes_from_storage += size;
                self.coordinator
                    .record_fetch(job, done.saturating_since(now));
                return Fetch {
                    ready_at: done,
                    served_id: id,
                    outcome: FetchOutcome::Miss,
                };
            }
        }

        // Before the first H-list arrives (the warm-up epoch) there is no
        // importance information: serve as a plain pass-through + fill,
        // without substitution — warm-up must remain a clean full pass.
        let have_hlist = self.coordinator.hlist(job).is_some();
        let is_h = self.coordinator.hlist(job).is_some_and(|h| h.contains(id));
        let before = self.stats;
        let fetch = if is_h {
            self.fetch_h(job, id, size, now, storage)
        } else {
            self.fetch_l(job, id, size, now, storage, have_hlist)
        };
        self.obs
            .observe("cache.fetch", fetch.ready_at.saturating_since(now));
        // Attribute this fetch's counter movement to the requesting job.
        let delta = self.stats.delta_since(&before);
        let per_job = self.job_stats.entry(job).or_default();
        per_job.h_hits += delta.h_hits;
        per_job.l_hits += delta.l_hits;
        per_job.pm_hits += delta.pm_hits;
        per_job.substitutions += delta.substitutions;
        per_job.misses += delta.misses;
        per_job.insertions += delta.insertions;
        per_job.evictions += delta.evictions;
        per_job.rejections += delta.rejections;
        per_job.bytes_from_cache += delta.bytes_from_cache;
        per_job.bytes_from_storage += delta.bytes_from_storage;

        if self.config.multi_job {
            self.coordinator
                .record_fetch(job, fetch.ready_at.saturating_since(now));
        }
        self.maybe_trigger_load(now, storage);
        fetch
    }

    fn update_hlist(&mut self, job: JobId, hlist: &HList) {
        if self.config.hlist_filter.is_some_and(|only| only != job) {
            return;
        }
        self.coordinator.set_hlist(job, hlist.clone());
        self.effective_iv = if self.config.multi_job && self.coordinator.job_count() > 1 {
            self.coordinator.aggregate().into_iter().collect()
        } else {
            hlist.entries().iter().map(|e| (e.id, e.iv)).collect()
        };
        self.hcache.begin_refresh(&self.effective_iv);
        self.obs.emit(TraceEvent::ShadowHeapRefill {
            epoch: self.current_epoch,
            entries: self.effective_iv.len() as u64,
        });
        self.rebuild_l_pool();
    }

    fn on_epoch_start(&mut self, job: JobId, epoch: Epoch) {
        if self.config.multi_job {
            self.coordinator.register_job(job);
            self.coordinator.on_epoch_start(job);
        }
        if self.primary_job.is_none() {
            self.primary_job = Some(job);
        }
        if self.primary_job == Some(job) {
            self.current_epoch = epoch.0 as u64;
            self.lcache.on_epoch_start();
            self.h_sub_used.clear();
        }
    }

    fn on_epoch_end(&mut self, job: JobId, epoch: Epoch) {
        if self.primary_job != Some(job) {
            return;
        }
        self.hcache.finish_refresh();
        // Frequency-driven region re-balancing (§III-A). Warm-up accesses
        // carry no H/L classification, so rebalancing waits for the first
        // H-list.
        let total = self.h_accesses + self.l_accesses;
        if total > 0 && self.config.enable_lcache && self.coordinator.any_hlist() {
            let h_frac = self.h_accesses as f64 / total as f64;
            let min_l = self.config.package_size.min(self.config.capacity / 2);
            let h_cap = self
                .config
                .capacity
                .scaled(h_frac)
                .min(self.config.capacity.saturating_sub(min_l));
            let evicted = self.hcache.resize(h_cap);
            self.stats.evictions += evicted.len() as u64;
            self.note_evictions(&evicted);
            self.spill_to_pm(&evicted);
            let l_cap = self.config.capacity.saturating_sub(h_cap);
            self.lcache.set_capacity(l_cap);
            self.obs.set_gauge("cache.h_capacity", h_cap.as_f64());
            self.obs.set_gauge("cache.l_capacity", l_cap.as_f64());
            self.obs.emit(TraceEvent::RegionRebalance {
                epoch: epoch.0 as u64,
                h_bytes: h_cap.as_u64(),
                l_bytes: l_cap.as_u64(),
                evicted: evicted.len() as u64,
            });
        }
        self.h_accesses = 0;
        self.l_accesses = 0;
        // DESIGN.md §7: `cache.hit_ratio` is defined as the paper-style
        // ratio at the last epoch boundary.
        self.obs
            .set_gauge("cache.hit_ratio", self.stats.hit_ratio());
    }

    fn set_obs(&mut self, obs: icache_obs::Obs) {
        Observable::set_obs(self, obs);
    }

    fn stats(&self) -> CacheStats {
        self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
        self.job_stats.clear();
    }

    fn used_bytes(&self) -> ByteSize {
        self.hcache.used() + self.lcache.used()
    }

    fn capacity(&self) -> ByteSize {
        self.config.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icache_sampling::ImportanceTable;
    use icache_storage::{LocalTier, Pfs, PfsConfig};
    use icache_types::DatasetBuilder;

    fn tiny_dataset() -> Dataset {
        DatasetBuilder::new("tiny", 1_000)
            .size_model(icache_types::SizeModel::Fixed(ByteSize::kib(3)))
            .build()
            .unwrap()
    }

    fn manager(ds: &Dataset, frac: f64) -> IcacheManager {
        IcacheManager::new(IcacheConfig::for_dataset(ds, frac).unwrap(), ds).unwrap()
    }

    fn hlist(ds: &Dataset, hot: u64, frac: f64) -> HList {
        let mut t = ImportanceTable::new(ds.len());
        for i in 0..ds.len() {
            t.record_loss(SampleId(i), if i < hot { 10.0 + i as f64 } else { 0.01 });
        }
        HList::top_fraction(&t, frac)
    }

    #[test]
    fn config_for_dataset_sizes_regions() {
        let ds = tiny_dataset();
        let m = manager(&ds, 0.2);
        assert_eq!(m.capacity(), ds.total_bytes().scaled(0.2));
        assert!(m.l_capacity() >= ByteSize::mib(1).min(m.capacity() / 2));
        assert_eq!(m.h_capacity() + m.l_capacity(), m.capacity());
    }

    #[test]
    fn h_sample_miss_then_hit() {
        let ds = tiny_dataset();
        let mut m = manager(&ds, 0.2);
        let mut st = LocalTier::tmpfs();
        m.update_hlist(JobId(0), &hlist(&ds, 100, 0.1));

        let id = SampleId(0);
        let sz = ds.sample_size(id);
        let first = m.fetch(JobId(0), id, sz, SimTime::ZERO, &mut st);
        assert_eq!(first.outcome, FetchOutcome::Miss);
        let second = m.fetch(JobId(0), id, sz, first.ready_at, &mut st);
        assert_eq!(second.outcome, FetchOutcome::HitH);
        assert_eq!(m.stats().h_hits, 1);
        assert_eq!(m.stats().misses, 1);
    }

    #[test]
    fn l_sample_requests_trigger_package_loads_and_substitution() {
        let ds = tiny_dataset();
        let mut m = manager(&ds, 0.2);
        let mut st = LocalTier::tmpfs();
        m.update_hlist(JobId(0), &hlist(&ds, 100, 0.1));
        m.on_epoch_start(JobId(0), Epoch(0));

        // First L request misses (cache cold) and kicks the loader.
        let f0 = m.fetch(
            JobId(0),
            SampleId(999),
            ds.sample_size(SampleId(999)),
            SimTime::ZERO,
            &mut st,
        );
        assert_eq!(f0.outcome, FetchOutcome::Miss);
        // Give the loader time to land packages, then request more L samples.
        let mut now = SimTime::from_nanos(50_000_000);
        let mut served_from_cache = 0;
        for i in 900..999u64 {
            let f = m.fetch(
                JobId(0),
                SampleId(i),
                ds.sample_size(SampleId(i)),
                now,
                &mut st,
            );
            now = f.ready_at;
            if f.outcome.served_from_cache() {
                served_from_cache += 1;
            }
        }
        assert!(
            served_from_cache > 50,
            "only {served_from_cache} L requests served from cache"
        );
        assert!(m.l_len() > 0);
    }

    #[test]
    fn hlist_update_refreshes_admission_values() {
        let ds = tiny_dataset();
        let mut m = manager(&ds, 0.05);
        let mut st = LocalTier::tmpfs();
        m.update_hlist(JobId(0), &hlist(&ds, 50, 0.05));
        // Fill H-cache with hot samples.
        let mut now = SimTime::ZERO;
        for i in 0..50u64 {
            let f = m.fetch(
                JobId(0),
                SampleId(i),
                ds.sample_size(SampleId(i)),
                now,
                &mut st,
            );
            now = f.ready_at;
        }
        assert!(m.h_len() > 0);
        // New H-list with different hot set: old residents demote to zero.
        m.update_hlist(JobId(0), &hlist(&ds, 100, 0.05));
        assert!(m.h_len() > 0);
    }

    #[test]
    fn epoch_end_rebalances_regions_by_frequency() {
        let ds = tiny_dataset();
        let mut m = manager(&ds, 0.2);
        let mut st = LocalTier::tmpfs();
        m.update_hlist(JobId(0), &hlist(&ds, 100, 0.1));
        m.on_epoch_start(JobId(0), Epoch(0));
        let mut now = SimTime::ZERO;
        // 90% of accesses go to H samples.
        for rep in 0..9 {
            for i in 0..100u64 {
                let _ = rep;
                let f = m.fetch(
                    JobId(0),
                    SampleId(i),
                    ds.sample_size(SampleId(i)),
                    now,
                    &mut st,
                );
                now = f.ready_at;
            }
        }
        for i in 900..1000u64 {
            let f = m.fetch(
                JobId(0),
                SampleId(i),
                ds.sample_size(SampleId(i)),
                now,
                &mut st,
            );
            now = f.ready_at;
        }
        let h_before = m.h_capacity();
        m.on_epoch_end(JobId(0), Epoch(0));
        assert!(m.h_capacity() >= h_before, "9:1 access ratio keeps H large");
        assert_eq!(m.h_capacity() + m.l_capacity(), m.capacity());
    }

    #[test]
    fn multi_job_probe_bypasses_then_uses_cache() {
        let ds = tiny_dataset();
        let mut cfg = IcacheConfig::for_dataset(&ds, 0.2).unwrap();
        cfg.multi_job = true;
        cfg.probe_samples = 5;
        let mut m = IcacheManager::new(cfg, &ds).unwrap();
        let mut st = Pfs::new(PfsConfig::orangefs_default()).unwrap();
        m.update_hlist(JobId(0), &hlist(&ds, 100, 0.1));
        m.on_epoch_start(JobId(0), Epoch(0));

        let mut now = SimTime::ZERO;
        for i in 0..5u64 {
            let f = m.fetch(
                JobId(0),
                SampleId(i),
                ds.sample_size(SampleId(i)),
                now,
                &mut st,
            );
            assert_eq!(f.outcome, FetchOutcome::Miss, "probe phase 1 bypasses");
            now = f.ready_at;
        }
        // Phase 2: H hits now count (samples 0..5 were NOT admitted during
        // bypass, so fetch them again: misses first, then hits).
        for i in 0..5u64 {
            let f = m.fetch(
                JobId(0),
                SampleId(i),
                ds.sample_size(SampleId(i)),
                now,
                &mut st,
            );
            now = f.ready_at;
        }
        assert!(m.coordinator().benefit(JobId(0)).is_some());
    }

    #[test]
    fn capacity_accounting_spans_both_regions() {
        let ds = tiny_dataset();
        let mut m = manager(&ds, 0.2);
        let mut st = LocalTier::tmpfs();
        m.update_hlist(JobId(0), &hlist(&ds, 100, 0.1));
        m.on_epoch_start(JobId(0), Epoch(0));
        let mut now = SimTime::ZERO;
        for i in 0..1000u64 {
            let f = m.fetch(
                JobId(0),
                SampleId(i),
                ds.sample_size(SampleId(i)),
                now,
                &mut st,
            );
            now = f.ready_at;
        }
        assert!(m.used_bytes() <= m.capacity());
        assert!(m.used_bytes() > ByteSize::ZERO);
    }

    #[test]
    fn per_job_stats_partition_the_global_counters() {
        let ds = tiny_dataset();
        let mut m = manager(&ds, 0.2);
        let mut st = LocalTier::tmpfs();
        m.update_hlist(JobId(0), &hlist(&ds, 200, 0.3));
        m.update_hlist(JobId(1), &hlist(&ds, 200, 0.3));
        m.on_epoch_start(JobId(0), Epoch(0));
        let mut now = SimTime::ZERO;
        for i in 0..60u64 {
            let job = JobId((i % 2) as u32);
            let f = m.fetch(job, SampleId(i), ds.sample_size(SampleId(i)), now, &mut st);
            now = f.ready_at;
        }
        let s0 = m.stats_for(JobId(0));
        let s1 = m.stats_for(JobId(1));
        let total = m.stats();
        assert_eq!(s0.requests() + s1.requests(), total.requests());
        assert_eq!(s0.requests(), 30);
        assert_eq!(s1.requests(), 30);
        assert_eq!(
            m.stats_for(JobId(9)).requests(),
            0,
            "unknown jobs are zeroed"
        );
    }

    #[test]
    fn pm_tier_catches_dram_evictions() {
        let ds = tiny_dataset();
        // Tiny DRAM cache so evictions flow; PM large enough to hold them.
        let mut cfg = IcacheConfig::for_dataset(&ds, 0.05).unwrap();
        cfg.pm_tier = Some(crate::PmTierConfig::optane(ds.total_bytes()));
        let mut m = IcacheManager::new(cfg, &ds).unwrap();
        let mut st = LocalTier::tmpfs();
        m.update_hlist(JobId(0), &hlist(&ds, 500, 0.5));
        m.on_epoch_start(JobId(0), Epoch(0));
        let mut now = SimTime::ZERO;
        // Sweep enough H-samples to overflow DRAM into PM…
        for pass in 0..2 {
            for i in 0..500u64 {
                let _ = pass;
                let f = m.fetch(
                    JobId(0),
                    SampleId(i),
                    ds.sample_size(SampleId(i)),
                    now,
                    &mut st,
                );
                now = f.ready_at;
            }
        }
        let s = m.stats();
        assert!(s.evictions > 0, "DRAM must have spilled");
        assert!(s.pm_hits > 0, "re-reads of spilled samples must hit PM");
        assert_eq!(m.pm_tier().unwrap().hits(), s.pm_hits);
        // PM hits are cache hits in the paper's metric.
        assert!(s.hit_ratio() > s.strict_hit_ratio() - 1e-12);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let ds = tiny_dataset();
        assert!(IcacheConfig::for_dataset(&ds, 0.0).is_err());
        assert!(IcacheConfig::for_dataset(&ds, 1.5).is_err());
        let mut cfg = IcacheConfig::for_dataset(&ds, 0.2).unwrap();
        cfg.dram_bandwidth = -1.0;
        assert!(IcacheManager::new(cfg, &ds).is_err());
    }
}
