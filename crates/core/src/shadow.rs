//! The shadow-heap refresh mechanism.

use crate::dense::IdSlab;
use crate::HHeap;
use icache_types::{ImportanceValue, SampleId};

/// An H-heap with the paper's *shadow heap* refresh protocol (§III-B).
///
/// Importance values change between epochs. Rebuilding the whole heap with
/// fresh keys would block the fetch path for `O(n log n)`; instead, when new
/// values arrive ([`ShadowedHeap::begin_refresh`]):
///
/// * the current heap is **frozen** — it becomes read-only and is *used
///   only for item eviction* (its stale keys still identify reasonable
///   victims, because importance is strongly autocorrelated across
///   epochs);
/// * all changes — insertions, evictions, value updates — are **recorded
///   in the shadow heap** under the new keys;
/// * nodes migrate lazily from frozen to shadow as they are touched, and
///   whatever remains migrates in bulk on [`ShadowedHeap::finish_refresh`]
///   (or automatically once the frozen heap drains).
///
/// Outside a refresh window the type behaves exactly like [`HHeap`].
///
/// # Examples
///
/// ```
/// use icache_core::ShadowedHeap;
/// use icache_types::{ImportanceValue, SampleId};
///
/// let mut heap = ShadowedHeap::new();
/// heap.insert(SampleId(1), ImportanceValue::new(1.0)?);
/// heap.insert(SampleId(2), ImportanceValue::new(2.0)?);
///
/// // New epoch: sample 1 became very important. Any (id, value)
/// // iterator opens the window — no dedicated map required.
/// heap.begin_refresh([(SampleId(1), ImportanceValue::new(9.0)?)]);
///
/// // Eviction still serves from the frozen heap's (old) order…
/// assert_eq!(heap.peek_evict_candidate().map(|(id, _)| id), Some(SampleId(1)));
/// heap.finish_refresh();
/// // …but after the refresh the new key is in force.
/// assert_eq!(heap.key_of(SampleId(1)), Some(ImportanceValue::new(9.0)?));
/// # Ok::<(), icache_types::Error>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct ShadowedHeap {
    active: HHeap,
    refresh: Option<RefreshState>,
}

#[derive(Debug, Clone)]
struct RefreshState {
    /// The pre-refresh heap: stale keys, eviction source.
    frozen: HHeap,
    /// The post-refresh heap under construction: fresh keys.
    shadow: HHeap,
    /// New keys not yet applied to nodes still sitting in `frozen`.
    pending: IdSlab<ImportanceValue>,
}

impl ShadowedHeap {
    /// An empty heap, not refreshing.
    pub fn new() -> Self {
        ShadowedHeap::default()
    }

    /// Whether a refresh window is open.
    pub fn is_refreshing(&self) -> bool {
        self.refresh.is_some()
    }

    /// Total number of tracked samples.
    pub fn len(&self) -> usize {
        match &self.refresh {
            Some(r) => r.frozen.len() + r.shadow.len(),
            None => self.active.len(),
        }
    }

    /// True when no samples are tracked.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether `id` is tracked (in whichever heap).
    pub fn contains(&self, id: SampleId) -> bool {
        match &self.refresh {
            Some(r) => r.frozen.contains(id) || r.shadow.contains(id),
            None => self.active.contains(id),
        }
    }

    /// The key currently associated with `id`. During a refresh this is
    /// the *new* key when one is known (shadow or pending), otherwise the
    /// frozen key.
    pub fn key_of(&self, id: SampleId) -> Option<ImportanceValue> {
        match &self.refresh {
            Some(r) => r
                .shadow
                .key_of(id)
                .or_else(|| r.pending.get(id).copied().filter(|_| r.frozen.contains(id)))
                .or_else(|| r.frozen.key_of(id)),
            None => self.active.key_of(id),
        }
    }

    /// Open a refresh window: freeze the current heap and record `fresh`
    /// as the new keys to apply. If a window is already open it is first
    /// finished.
    ///
    /// Takes any `(id, value)` iterator so call sites can stream their
    /// fresh keys (e.g. map over a borrowed table) instead of building
    /// and handing over a dedicated `HashMap`.
    pub fn begin_refresh(&mut self, fresh: impl IntoIterator<Item = (SampleId, ImportanceValue)>) {
        if self.refresh.is_some() {
            self.finish_refresh();
        }
        let frozen = std::mem::take(&mut self.active);
        self.refresh = Some(RefreshState {
            frozen,
            shadow: HHeap::new(),
            pending: fresh.into_iter().collect(),
        });
    }

    /// Close the refresh window: migrate every remaining frozen node into
    /// the shadow heap (applying its pending key if one exists) and make
    /// the shadow heap active. A no-op when no window is open.
    pub fn finish_refresh(&mut self) {
        if let Some(mut r) = self.refresh.take() {
            for (id, old_key) in r.frozen.drain() {
                let key = r.pending.get(id).copied().unwrap_or(old_key);
                r.shadow.insert(id, key);
            }
            self.active = r.shadow;
        }
    }

    /// Insert `id` (or re-key it). During a refresh the change is recorded
    /// in the shadow heap; a node still in the frozen heap migrates.
    /// Returns true when `id` was not previously tracked.
    pub fn insert(&mut self, id: SampleId, iv: ImportanceValue) -> bool {
        match &mut self.refresh {
            Some(r) => {
                let was_frozen = r.frozen.remove(id).is_some();
                r.pending.remove(id);
                let newly = r.shadow.insert(id, iv);
                let result = newly && !was_frozen;
                self.auto_finish();
                result
            }
            None => self.active.insert(id, iv),
        }
    }

    /// Remove `id` from whichever heap currently tracks it.
    pub fn remove(&mut self, id: SampleId) -> Option<ImportanceValue> {
        match &mut self.refresh {
            Some(r) => {
                let out = r.frozen.remove(id).or_else(|| r.shadow.remove(id));
                r.pending.remove(id);
                self.auto_finish();
                out
            }
            None => self.active.remove(id),
        }
    }

    /// Re-key `id`. Returns false when it is not tracked.
    pub fn update_key(&mut self, id: SampleId, iv: ImportanceValue) -> bool {
        match &mut self.refresh {
            Some(r) => {
                if r.frozen.remove(id).is_some() {
                    r.pending.remove(id);
                    r.shadow.insert(id, iv);
                    self.auto_finish();
                    true
                } else {
                    r.shadow.update_key(id, iv)
                }
            }
            None => self.active.update_key(id, iv),
        }
    }

    /// The current eviction candidate. During a refresh this is the frozen
    /// heap's top node (the paper's "read-only, used only for item
    /// eviction"); once the frozen heap drains, the shadow's.
    pub fn peek_evict_candidate(&self) -> Option<(SampleId, ImportanceValue)> {
        match &self.refresh {
            Some(r) => r.frozen.peek_min().or_else(|| r.shadow.peek_min()),
            None => self.active.peek_min(),
        }
    }

    /// Pop the eviction candidate.
    pub fn pop_evict(&mut self) -> Option<(SampleId, ImportanceValue)> {
        match &mut self.refresh {
            Some(r) => {
                let out = r.frozen.pop_min().or_else(|| r.shadow.pop_min());
                if let Some((id, _)) = out {
                    r.pending.remove(id);
                }
                self.auto_finish();
                out
            }
            None => self.active.pop_min(),
        }
    }

    /// The id at dense slot `index` across whichever heaps are live
    /// (frozen first, then shadow). Enables O(1) random resident picks.
    pub fn id_at(&self, index: usize) -> Option<SampleId> {
        match &self.refresh {
            Some(r) => {
                if index < r.frozen.len() {
                    r.frozen.id_at(index)
                } else {
                    r.shadow.id_at(index - r.frozen.len())
                }
            }
            None => self.active.id_at(index),
        }
    }

    fn auto_finish(&mut self) {
        if self.refresh.as_ref().is_some_and(|r| r.frozen.is_empty()) {
            self.finish_refresh();
        }
    }

    /// Naive alternative to the shadow protocol: rebuild the entire heap
    /// with `fresh` keys at once. Exposed for the ablation benchmark that
    /// compares refresh costs.
    pub fn rebuild_naive(&mut self, fresh: &IdSlab<ImportanceValue>) {
        self.finish_refresh();
        let nodes = self.active.drain();
        let mut rebuilt = HHeap::with_capacity(nodes.len());
        for (id, old) in nodes {
            rebuilt.insert(id, fresh.get(id).copied().unwrap_or(old));
        }
        self.active = rebuilt;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn iv(v: f64) -> ImportanceValue {
        ImportanceValue::new(v).unwrap()
    }

    fn heap_with(vals: &[(u64, f64)]) -> ShadowedHeap {
        let mut h = ShadowedHeap::new();
        for &(id, v) in vals {
            h.insert(SampleId(id), iv(v));
        }
        h
    }

    #[test]
    fn behaves_like_plain_heap_outside_refresh() {
        let mut h = heap_with(&[(1, 3.0), (2, 1.0), (3, 2.0)]);
        assert_eq!(h.pop_evict().unwrap().0, SampleId(2));
        assert_eq!(h.len(), 2);
        assert!(!h.is_refreshing());
    }

    #[test]
    fn eviction_during_refresh_uses_frozen_order() {
        let mut h = heap_with(&[(1, 1.0), (2, 2.0), (3, 3.0)]);
        // New values invert the order, but evictions still follow the old.
        let fresh: HashMap<_, _> = [
            (SampleId(1), iv(30.0)),
            (SampleId(2), iv(20.0)),
            (SampleId(3), iv(10.0)),
        ]
        .into();
        h.begin_refresh(fresh);
        assert!(h.is_refreshing());
        assert_eq!(
            h.pop_evict().unwrap().0,
            SampleId(1),
            "frozen min, stale key"
        );
    }

    #[test]
    fn finish_refresh_applies_pending_keys() {
        let mut h = heap_with(&[(1, 1.0), (2, 2.0)]);
        h.begin_refresh([(SampleId(1), iv(9.0))]);
        h.finish_refresh();
        assert!(!h.is_refreshing());
        assert_eq!(h.key_of(SampleId(1)), Some(iv(9.0)));
        assert_eq!(
            h.key_of(SampleId(2)),
            Some(iv(2.0)),
            "no pending key keeps old"
        );
        assert_eq!(h.peek_evict_candidate().unwrap().0, SampleId(2));
    }

    #[test]
    fn touched_nodes_migrate_to_shadow() {
        let mut h = heap_with(&[(1, 1.0), (2, 2.0), (3, 3.0)]);
        h.begin_refresh(HashMap::new());
        assert!(h.update_key(SampleId(1), iv(50.0)));
        // id 1 left the frozen heap: the eviction candidate is now id 2.
        assert_eq!(h.peek_evict_candidate().unwrap().0, SampleId(2));
        assert_eq!(h.key_of(SampleId(1)), Some(iv(50.0)));
        assert_eq!(h.len(), 3);
    }

    #[test]
    fn inserts_during_refresh_land_in_shadow() {
        let mut h = heap_with(&[(1, 5.0)]);
        h.begin_refresh(HashMap::new());
        assert!(h.insert(SampleId(9), iv(0.1)));
        // Frozen still nonempty: candidate comes from frozen despite the
        // shadow holding a smaller key.
        assert_eq!(h.peek_evict_candidate().unwrap().0, SampleId(1));
        h.pop_evict();
        // Frozen drained -> refresh auto-finishes, shadow takes over.
        assert!(!h.is_refreshing());
        assert_eq!(h.peek_evict_candidate().unwrap().0, SampleId(9));
    }

    #[test]
    fn reinserting_frozen_node_does_not_double_count() {
        let mut h = heap_with(&[(1, 5.0), (2, 6.0)]);
        h.begin_refresh(HashMap::new());
        assert!(!h.insert(SampleId(1), iv(7.0)), "already tracked");
        assert_eq!(h.len(), 2);
    }

    #[test]
    fn remove_reaches_both_heaps() {
        let mut h = heap_with(&[(1, 1.0), (2, 2.0)]);
        h.begin_refresh(HashMap::new());
        h.insert(SampleId(3), iv(3.0));
        assert_eq!(h.remove(SampleId(3)), Some(iv(3.0)), "from shadow");
        assert_eq!(h.remove(SampleId(1)), Some(iv(1.0)), "from frozen");
        assert_eq!(h.remove(SampleId(42)), None);
    }

    #[test]
    fn begin_refresh_twice_finishes_first_window() {
        let mut h = heap_with(&[(1, 1.0)]);
        h.begin_refresh([(SampleId(1), iv(4.0))]);
        h.begin_refresh(HashMap::new());
        // First window's pending key must have been applied.
        assert_eq!(h.key_of(SampleId(1)), Some(iv(4.0)));
    }

    #[test]
    fn rebuild_naive_matches_finish_refresh_result() {
        let vals: Vec<(u64, f64)> = (0..30).map(|i| (i, (i * 7 % 30) as f64)).collect();
        let fresh: IdSlab<ImportanceValue> = (0..30)
            .map(|i| (SampleId(i), iv(((i * 13) % 30) as f64)))
            .collect();

        let mut a = heap_with(&vals);
        // Streamed from a borrow: no clone handed to the refresh window.
        a.begin_refresh(fresh.iter().map(|(id, &v)| (id, v)));
        a.finish_refresh();

        let mut b = heap_with(&vals);
        b.rebuild_naive(&fresh);

        let mut out_a = Vec::new();
        while let Some(x) = a.pop_evict() {
            out_a.push(x);
        }
        let mut out_b = Vec::new();
        while let Some(x) = b.pop_evict() {
            out_b.push(x);
        }
        assert_eq!(out_a, out_b);
    }

    #[test]
    fn key_of_prefers_new_keys_during_refresh() {
        let mut h = heap_with(&[(1, 1.0)]);
        h.begin_refresh([(SampleId(1), iv(8.0))]);
        assert_eq!(h.key_of(SampleId(1)), Some(iv(8.0)), "pending key visible");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::{BTreeMap, HashMap};

    /// Frozen heap, shadow heap, and pending insertions of an in-flight
    /// refresh in the reference model.
    type RefreshState = (BTreeMap<u64, u32>, BTreeMap<u64, u32>, HashMap<u64, u32>);

    /// A naive map-based re-implementation of the shadow protocol used as
    /// the reference model.
    #[derive(Default)]
    struct Model {
        active: BTreeMap<u64, u32>,
        refresh: Option<RefreshState>,
    }

    impl Model {
        fn len(&self) -> usize {
            match &self.refresh {
                Some((frozen, shadow, _)) => frozen.len() + shadow.len(),
                None => self.active.len(),
            }
        }

        fn min_of(map: &BTreeMap<u64, u32>) -> Option<(u64, u32)> {
            map.iter()
                .map(|(&id, &k)| (k, id))
                .min()
                .map(|(k, id)| (id, k))
        }

        fn auto_finish(&mut self) {
            if self.refresh.as_ref().is_some_and(|(f, _, _)| f.is_empty()) {
                self.finish();
            }
        }

        fn insert(&mut self, id: u64, key: u32) {
            match &mut self.refresh {
                Some((frozen, shadow, pending)) => {
                    frozen.remove(&id);
                    pending.remove(&id);
                    shadow.insert(id, key);
                    self.auto_finish();
                }
                None => {
                    self.active.insert(id, key);
                }
            }
        }

        fn remove(&mut self, id: u64) {
            match &mut self.refresh {
                Some((frozen, shadow, pending)) => {
                    if frozen.remove(&id).is_none() {
                        shadow.remove(&id);
                    }
                    pending.remove(&id);
                    self.auto_finish();
                }
                None => {
                    self.active.remove(&id);
                }
            }
        }

        fn update(&mut self, id: u64, key: u32) {
            match &mut self.refresh {
                Some((frozen, shadow, pending)) => {
                    if frozen.remove(&id).is_some() {
                        pending.remove(&id);
                        shadow.insert(id, key);
                        self.auto_finish();
                    } else if shadow.contains_key(&id) {
                        shadow.insert(id, key);
                    }
                }
                None => {
                    if self.active.contains_key(&id) {
                        self.active.insert(id, key);
                    }
                }
            }
        }

        fn pop_evict(&mut self) -> Option<(u64, u32)> {
            let out = match &mut self.refresh {
                Some((frozen, shadow, pending)) => {
                    let pick = Self::min_of(frozen).or_else(|| Self::min_of(shadow));
                    if let Some((id, _)) = pick {
                        if frozen.remove(&id).is_none() {
                            shadow.remove(&id);
                        }
                        pending.remove(&id);
                    }
                    pick
                }
                None => {
                    let pick = Self::min_of(&self.active);
                    if let Some((id, _)) = pick {
                        self.active.remove(&id);
                    }
                    pick
                }
            };
            self.auto_finish();
            out
        }

        fn begin_refresh(&mut self, fresh: HashMap<u64, u32>) {
            self.finish();
            let frozen = std::mem::take(&mut self.active);
            self.refresh = Some((frozen, BTreeMap::new(), fresh));
        }

        fn finish(&mut self) {
            if let Some((frozen, mut shadow, pending)) = self.refresh.take() {
                for (id, old) in frozen {
                    shadow.insert(id, pending.get(&id).copied().unwrap_or(old));
                }
                self.active = shadow;
            }
        }
    }

    #[derive(Debug, Clone)]
    enum Op {
        Insert(u64, u32),
        Remove(u64),
        Update(u64, u32),
        PopEvict,
        BeginRefresh(Vec<(u64, u32)>),
        FinishRefresh,
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        prop_oneof![
            (0u64..24, 0u32..1000).prop_map(|(id, k)| Op::Insert(id, k)),
            (0u64..24).prop_map(Op::Remove),
            (0u64..24, 0u32..1000).prop_map(|(id, k)| Op::Update(id, k)),
            Just(Op::PopEvict),
            proptest::collection::vec((0u64..24, 0u32..1000), 0..8).prop_map(Op::BeginRefresh),
            Just(Op::FinishRefresh),
        ]
    }

    fn iv(k: u32) -> ImportanceValue {
        ImportanceValue::saturating(k as f64)
    }

    proptest! {
        /// The shadowed heap matches a naive map-based model of the
        /// protocol under arbitrary operation sequences.
        #[test]
        fn matches_reference_model(ops in proptest::collection::vec(op_strategy(), 1..120)) {
            let mut heap = ShadowedHeap::new();
            let mut model = Model::default();
            for op in ops {
                match op {
                    Op::Insert(id, k) => {
                        heap.insert(SampleId(id), iv(k));
                        model.insert(id, k);
                    }
                    Op::Remove(id) => {
                        heap.remove(SampleId(id));
                        model.remove(id);
                    }
                    Op::Update(id, k) => {
                        heap.update_key(SampleId(id), iv(k));
                        model.update(id, k);
                    }
                    Op::PopEvict => {
                        let got = heap.pop_evict();
                        let want = model.pop_evict();
                        prop_assert_eq!(
                            got.map(|(id, v)| (id.0, v.get() as u32)),
                            want
                        );
                    }
                    Op::BeginRefresh(pairs) => {
                        let fresh_heap: HashMap<SampleId, ImportanceValue> =
                            pairs.iter().map(|&(id, k)| (SampleId(id), iv(k))).collect();
                        let fresh_model: HashMap<u64, u32> =
                            pairs.iter().copied().collect();
                        heap.begin_refresh(fresh_heap);
                        model.begin_refresh(fresh_model);
                    }
                    Op::FinishRefresh => {
                        heap.finish_refresh();
                        model.finish();
                    }
                }
                prop_assert_eq!(heap.len(), model.len());
                prop_assert_eq!(heap.is_refreshing(), model.refresh.is_some());
            }
            // Drain both and compare the full eviction order.
            let mut got = Vec::new();
            while let Some((id, v)) = heap.pop_evict() {
                got.push((id.0, v.get() as u32));
            }
            let mut want = Vec::new();
            while let Some(x) = model.pop_evict() {
                want.push(x);
            }
            prop_assert_eq!(got, want);
        }
    }
}
