//! Heartbeat-based membership and directory ownership.
//!
//! Liveness: every non-crashed node beacons [`crate::service::CacheRpc::Heartbeat`]
//! messages around a gossip ring; deliveries feed a shared suspicion
//! table (the directory service's membership view). A node whose last
//! heard beacon ages past `suspect_after` becomes [`NodeState::Suspect`];
//! past `down_after` it is declared [`NodeState::Down`], which is the
//! only transition that triggers repartitioning. A rejoin resets the
//! node straight to [`NodeState::Alive`].
//!
//! Ownership: [`Partitioner`] assigns every sample's *directory shard*
//! by rendezvous (highest-random-weight) hashing over the live node
//! set. Rendezvous hashing moves only the entries owned by a departed
//! node (minimal disruption) and is a pure function of
//! `(sample, live set)`, so repartition results are deterministic.

use icache_obs::{Obs, Observable, TraceEvent};
use icache_types::{splitmix64, NodeId, NodeState, SampleId, SimDuration, SimTime};

/// Failure-detector timing. `None` in the service config disables churn
/// machinery entirely (static membership, the compatibility default).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HeartbeatConfig {
    /// Beacon period per node.
    pub interval: SimDuration,
    /// Silence after which a node becomes suspect.
    pub suspect_after: SimDuration,
    /// Silence after which a suspect is declared down.
    pub down_after: SimDuration,
    /// How long a client waits on an unresponsive peer before falling
    /// back to storage.
    pub rpc_timeout: SimDuration,
}

impl Default for HeartbeatConfig {
    fn default() -> Self {
        HeartbeatConfig {
            interval: SimDuration::from_millis(10),
            suspect_after: SimDuration::from_millis(25),
            down_after: SimDuration::from_millis(60),
            rpc_timeout: SimDuration::from_millis(5),
        }
    }
}

/// The shared membership table: per-node state driven by heartbeat
/// receipt times.
#[derive(Debug)]
pub struct Membership {
    states: Vec<NodeState>,
    last_heard: Vec<SimTime>,
    /// Crashed nodes stop beaconing; the detector discovers this only
    /// through silence.
    crashed: Vec<bool>,
    config: HeartbeatConfig,
    version: u64,
    obs: Obs,
}

impl Observable for Membership {
    fn set_obs(&mut self, obs: Obs) {
        self.obs = obs;
    }
}

impl Membership {
    /// All `n` nodes alive at time zero.
    pub fn new(n: usize, config: HeartbeatConfig) -> Self {
        Membership {
            states: vec![NodeState::Alive; n],
            last_heard: vec![SimTime::ZERO; n],
            crashed: vec![false; n],
            config,
            version: 0,
            obs: Obs::noop(),
        }
    }

    /// The detector's timing parameters.
    pub fn config(&self) -> HeartbeatConfig {
        self.config
    }

    /// Current state of `node`.
    pub fn state(&self, node: NodeId) -> NodeState {
        self.states[node.0 as usize]
    }

    /// Whether `node` participates in ownership (not declared down).
    pub fn is_live(&self, node: NodeId) -> bool {
        self.states[node.0 as usize].is_live()
    }

    /// Whether `node` has crashed (stopped beaconing), regardless of
    /// whether the detector has noticed yet.
    pub fn is_crashed(&self, node: NodeId) -> bool {
        self.crashed[node.0 as usize]
    }

    /// Nodes not declared down, ascending.
    pub fn live(&self) -> Vec<NodeId> {
        (0..self.states.len() as u32)
            .map(NodeId)
            .filter(|n| self.is_live(*n))
            .collect()
    }

    /// Monotonic version, bumped on every state transition.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Record a crash: the node stops beaconing. Its state is *not*
    /// changed here — only silence observed by [`Membership::advance`]
    /// moves it through suspect to down.
    pub fn crash(&mut self, node: NodeId) {
        self.crashed[node.0 as usize] = true;
    }

    /// Record a delivered heartbeat (or any proof of life) from `node`.
    pub fn note_heard(&mut self, node: NodeId, at: SimTime) {
        let i = node.0 as usize;
        if at > self.last_heard[i] {
            self.last_heard[i] = at;
        }
        // A beacon that arrives before the down threshold clears a
        // suspicion without any repartitioning.
        if self.states[i] == NodeState::Suspect && !self.crashed[i] {
            self.transition(node, NodeState::Alive);
        }
    }

    /// Rejoin `node`: beaconing resumes and the node is alive again.
    /// Returns true when the state actually changed (the caller then
    /// repartitions).
    pub fn rejoin(&mut self, node: NodeId, now: SimTime) -> bool {
        let i = node.0 as usize;
        self.crashed[i] = false;
        self.last_heard[i] = now;
        if self.states[i] != NodeState::Alive {
            self.transition(node, NodeState::Alive);
            true
        } else {
            false
        }
    }

    /// Graceful departure: the node is declared down immediately (no
    /// suspicion window). Returns true when the state changed.
    pub fn leave(&mut self, node: NodeId) -> bool {
        let i = node.0 as usize;
        self.crashed[i] = true;
        if self.states[i] != NodeState::Down {
            self.transition(node, NodeState::Down);
            true
        } else {
            false
        }
    }

    /// Age every node's last-heard time against `now` and apply the
    /// suspect/down thresholds. Returns the nodes newly declared down
    /// (the caller repartitions when non-empty).
    pub fn advance(&mut self, now: SimTime) -> Vec<NodeId> {
        let mut newly_down = Vec::new();
        for i in 0..self.states.len() {
            let node = NodeId(i as u32);
            let silence = now.saturating_since(self.last_heard[i]);
            match self.states[i] {
                NodeState::Alive if silence > self.config.suspect_after => {
                    self.transition(node, NodeState::Suspect);
                }
                NodeState::Suspect if silence > self.config.down_after => {
                    self.transition(node, NodeState::Down);
                    newly_down.push(node);
                }
                _ => {}
            }
        }
        newly_down
    }

    fn transition(&mut self, node: NodeId, to: NodeState) {
        let i = node.0 as usize;
        if self.states[i] == to {
            return;
        }
        self.states[i] = to;
        self.version += 1;
        // The name is picked inside the match, where the contract
        // checker cannot see it:
        // lint: metric("svc.membership.alive_transitions")
        // lint: metric("svc.membership.suspects")
        // lint: metric("svc.membership.downs")
        self.obs.inc(match to {
            NodeState::Alive => "svc.membership.alive_transitions",
            NodeState::Suspect => "svc.membership.suspects",
            NodeState::Down => "svc.membership.downs",
        });
        self.obs.emit(TraceEvent::MembershipChange {
            node: node.0 as u64,
            state: to.name(),
        });
    }
}

/// Rendezvous-hash ownership of directory shards over the live node set.
#[derive(Debug, Clone)]
pub struct Partitioner {
    live: Vec<NodeId>,
    version: u64,
}

impl Partitioner {
    /// Ownership over `live` nodes (must be non-empty and is kept
    /// sorted; `version` tags the partition map for traces).
    pub fn new(mut live: Vec<NodeId>, version: u64) -> Self {
        live.sort_unstable();
        Partitioner { live, version }
    }

    /// The nodes this map distributes over.
    pub fn live(&self) -> &[NodeId] {
        &self.live
    }

    /// The partition-map version.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The directory shard responsible for `sample`: the live node with
    /// the highest rendezvous weight. Falls back to the lowest live node
    /// id on the (never observed) event of a full weight tie.
    pub fn owner(&self, sample: SampleId) -> NodeId {
        self.live
            .iter()
            .copied()
            .max_by_key(|n| (rendezvous_weight(sample, *n), std::cmp::Reverse(n.0)))
            .unwrap_or(NodeId(0))
    }
}

/// Highest-random-weight score for `(sample, node)`.
fn rendezvous_weight(sample: SampleId, node: NodeId) -> u64 {
    splitmix64(sample.0 ^ (u64::from(node.0) + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn detector() -> Membership {
        Membership::new(3, HeartbeatConfig::default())
    }

    #[test]
    fn silence_walks_alive_suspect_down() {
        let mut m = detector();
        m.crash(NodeId(1));
        // Nodes 0 and 2 keep beaconing.
        let t1 = SimTime::ZERO + SimDuration::from_millis(30);
        m.note_heard(NodeId(0), t1);
        m.note_heard(NodeId(2), t1);
        assert!(m.advance(t1).is_empty());
        assert_eq!(m.state(NodeId(1)), NodeState::Suspect);
        assert!(m.is_live(NodeId(1)), "suspects still own their shards");

        let t2 = SimTime::ZERO + SimDuration::from_millis(70);
        m.note_heard(NodeId(0), t2);
        m.note_heard(NodeId(2), t2);
        assert_eq!(m.advance(t2), vec![NodeId(1)]);
        assert_eq!(m.state(NodeId(1)), NodeState::Down);
        assert_eq!(m.live(), vec![NodeId(0), NodeId(2)]);
        assert!(m.version() >= 2);
    }

    #[test]
    fn late_heartbeat_clears_a_suspicion() {
        let mut m = detector();
        let t1 = SimTime::ZERO + SimDuration::from_millis(30);
        m.note_heard(NodeId(0), t1);
        m.note_heard(NodeId(2), t1);
        m.advance(t1);
        assert_eq!(m.state(NodeId(1)), NodeState::Suspect);
        m.note_heard(NodeId(1), t1 + SimDuration::from_millis(1));
        assert_eq!(m.state(NodeId(1)), NodeState::Alive);
    }

    #[test]
    fn rejoin_restores_a_down_node() {
        let mut m = detector();
        m.crash(NodeId(1));
        // Two detector passes: the first ages node 1 into suspicion, the
        // second (past the down threshold) declares it down.
        let late = SimTime::ZERO + SimDuration::from_millis(200);
        m.note_heard(NodeId(0), late);
        m.note_heard(NodeId(2), late);
        m.advance(late);
        assert_eq!(m.state(NodeId(1)), NodeState::Suspect);
        let later = late + SimDuration::from_millis(100);
        m.note_heard(NodeId(0), later);
        m.note_heard(NodeId(2), later);
        m.advance(later);
        assert_eq!(m.state(NodeId(1)), NodeState::Down);
        assert!(m.rejoin(NodeId(1), later + SimDuration::from_millis(1)));
        assert_eq!(m.state(NodeId(1)), NodeState::Alive);
        assert!(!m.is_crashed(NodeId(1)));
        assert_eq!(m.live().len(), 3);
    }

    #[test]
    fn leave_is_an_immediate_down() {
        let mut m = detector();
        assert!(m.leave(NodeId(2)));
        assert_eq!(m.state(NodeId(2)), NodeState::Down);
        assert!(!m.leave(NodeId(2)), "second leave is a no-op");
    }

    #[test]
    fn transitions_are_counted_and_traced() {
        let obs = Obs::new();
        let mut m = detector().with_obs(obs.clone());
        m.crash(NodeId(0));
        let t = SimTime::ZERO + SimDuration::from_millis(100);
        m.note_heard(NodeId(1), t);
        m.note_heard(NodeId(2), t);
        m.advance(t); // 0 -> suspect (then next advance -> down)
        let t2 = t + SimDuration::from_millis(100);
        // Live nodes keep beaconing, so only the crashed node ages out.
        m.note_heard(NodeId(1), t2);
        m.note_heard(NodeId(2), t2);
        m.advance(t2);
        assert_eq!(obs.counter("svc.membership.suspects"), 1);
        assert_eq!(obs.counter("svc.membership.downs"), 1);
        let events: Vec<(String, u64)> = obs.trace_event_counts();
        assert_eq!(events, vec![("membership_change".to_string(), 2)]);
    }

    #[test]
    fn rendezvous_ownership_is_total_and_minimally_disruptive() {
        let all = Partitioner::new(vec![NodeId(0), NodeId(1), NodeId(2)], 0);
        let without_1 = Partitioner::new(vec![NodeId(0), NodeId(2)], 1);
        let mut moved = 0;
        for s in 0..1000u64 {
            let before = all.owner(SampleId(s));
            let after = without_1.owner(SampleId(s));
            assert!(all.live().contains(&before));
            assert!(without_1.live().contains(&after));
            if before != NodeId(1) {
                // Minimal disruption: survivors keep their entries.
                assert_eq!(before, after, "sample {s} moved needlessly");
            } else {
                moved += 1;
            }
        }
        assert!(moved > 200, "node 1 owned a fair share, moved {moved}");
    }

    #[test]
    fn ownership_spreads_across_nodes() {
        let p = Partitioner::new(vec![NodeId(0), NodeId(1), NodeId(2)], 0);
        let mut counts = [0u32; 3];
        for s in 0..3000u64 {
            counts[p.owner(SampleId(s)).0 as usize] += 1;
        }
        for (i, c) in counts.iter().enumerate() {
            assert!(*c > 600, "node {i} owns too little: {c}/3000");
        }
    }
}
