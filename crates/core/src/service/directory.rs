//! The sample→node directory and its change vocabulary.
//!
//! The paper shares one key-value directory among all training nodes so
//! cached data is never duplicated (§III-E). In the sharded service the
//! directory is physically partitioned: each live node hosts one
//! [`DirectoryKv`] shard and the partitioner (see
//! [`crate::service::Partitioner`]) routes every sample to exactly one
//! shard, so the counters below aggregate across shards exactly as they
//! did for the old single-map directory.

use icache_obs::{Obs, Observable, TraceEvent};
use icache_types::{NodeId, SampleId};
use std::collections::BTreeMap;

/// What a [`DirectoryKv::insert`] actually did.
///
/// The old API returned `Option<NodeId>` (the previous owner), which
/// conflated three cases the counters and callers kept re-deriving:
/// a fresh insert, a remap to a different node, and a same-owner no-op.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DirectoryChange {
    /// The sample had no owner; a fresh mapping was added.
    Inserted,
    /// The sample moved to a different node (counted as a remap and
    /// traced as `directory_remap`).
    Remapped {
        /// The node that owned the sample before this insert.
        from: NodeId,
    },
    /// The mapping already named this owner; nothing changed.
    Unchanged,
}

impl DirectoryChange {
    /// The previous owner, when there was one.
    pub fn previous(self) -> Option<NodeId> {
        match self {
            DirectoryChange::Inserted => None,
            DirectoryChange::Remapped { from } => Some(from),
            DirectoryChange::Unchanged => None,
        }
    }
}

/// The distributed key-value directory: which node caches which sample.
///
/// The paper shares one such store among all training nodes so that cached
/// data is never duplicated: a sample cached anywhere is read from that
/// node instead of storage.
///
/// Directory traffic is recorded in the attached [`Obs`] registry under
/// `dist.directory.lookups` / `.inserts` / `.removes` / `.remaps`. Fresh
/// inserts and successful removes are what get counted, so at any point
/// `len() == inserts − removes`; an insert that overwrites an existing
/// mapping with a different node counts as a *remap* (and emits a
/// [`TraceEvent::DirectoryRemap`]), not as an insert.
///
/// `DirectoryKv` is deliberately **not** `Clone`: a clone would share the
/// original's `Obs` handle and double-count directory traffic the moment
/// both copies serve lookups. Use [`DirectoryKv::detach`] to copy the
/// mapping with a fresh detached observability handle.
///
/// # Examples
///
/// ```
/// use icache_core::{DirectoryChange, DirectoryKv};
/// use icache_obs::{Obs, Observable};
/// use icache_types::{NodeId, SampleId};
///
/// let obs = Obs::new();
/// let mut dir = DirectoryKv::new();
/// dir.set_obs(obs.clone());
/// assert_eq!(dir.insert(SampleId(5), NodeId(1)), DirectoryChange::Inserted);
/// assert_eq!(dir.lookup(SampleId(5)), Some(NodeId(1)));
/// // Overwriting with a different node is a remap, not a fresh insert.
/// assert_eq!(
///     dir.insert(SampleId(5), NodeId(2)),
///     DirectoryChange::Remapped { from: NodeId(1) }
/// );
/// assert_eq!(obs.counter("dist.directory.inserts"), 1);
/// assert_eq!(obs.counter("dist.directory.remaps"), 1);
/// dir.remove(SampleId(5));
/// assert_eq!(dir.lookup(SampleId(5)), None);
/// assert_eq!(
///     dir.len() as u64,
///     obs.counter("dist.directory.inserts") - obs.counter("dist.directory.removes")
/// );
/// ```
#[derive(Debug)]
pub struct DirectoryKv {
    map: BTreeMap<SampleId, NodeId>,
    obs: Obs,
}

impl Default for DirectoryKv {
    fn default() -> Self {
        DirectoryKv {
            map: BTreeMap::new(),
            obs: Obs::noop(),
        }
    }
}

impl Observable for DirectoryKv {
    fn set_obs(&mut self, obs: Obs) {
        self.obs = obs;
    }
}

impl DirectoryKv {
    /// An empty directory.
    pub fn new() -> Self {
        DirectoryKv::default()
    }

    /// Copy the mapping into a new directory with a fresh detached
    /// [`Obs::noop`] handle.
    ///
    /// This is the only sanctioned way to duplicate a directory: the
    /// copy starts from zero counters and records nothing into the
    /// original's registry, so diagnostic copies can never double-count
    /// live traffic.
    pub fn detach(&self) -> Self {
        DirectoryKv {
            map: self.map.clone(),
            obs: Obs::noop(),
        }
    }

    /// Number of registered samples.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no samples are registered.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The node caching `id`, if any.
    pub fn lookup(&self, id: SampleId) -> Option<NodeId> {
        self.obs.inc("dist.directory.lookups");
        self.map.get(&id).copied()
    }

    /// [`DirectoryKv::lookup`] without touching the `lookups` counter —
    /// for internal reconciliation reads (repartitioning, recovery
    /// anti-entropy) that are not fetch-path directory traffic.
    pub fn peek(&self, id: SampleId) -> Option<NodeId> {
        self.map.get(&id).copied()
    }

    /// Register `id` as cached on `node`.
    ///
    /// Overwriting an existing mapping with a *different* node counts as
    /// a remap and emits [`TraceEvent::DirectoryRemap`]; re-inserting the
    /// same owner is a no-op for the counters.
    pub fn insert(&mut self, id: SampleId, node: NodeId) -> DirectoryChange {
        let prev = self.map.insert(id, node);
        match prev {
            None => {
                self.obs.inc("dist.directory.inserts");
                DirectoryChange::Inserted
            }
            Some(old) if old != node => {
                self.obs.inc("dist.directory.remaps");
                self.obs.emit(TraceEvent::DirectoryRemap {
                    sample: id.0,
                    from_node: old.0 as u64,
                    to_node: node.0 as u64,
                });
                DirectoryChange::Remapped { from: old }
            }
            Some(_) => DirectoryChange::Unchanged,
        }
    }

    /// Unregister `id`; returns the previous owner. Removing a missing
    /// sample is a no-op for the counters.
    pub fn remove(&mut self, id: SampleId) -> Option<NodeId> {
        let prev = self.map.remove(&id);
        if prev.is_some() {
            self.obs.inc("dist.directory.removes");
        }
        prev
    }

    /// Iterate `(sample, owner)` entries in sample order.
    pub fn entries(&self) -> impl Iterator<Item = (SampleId, NodeId)> + '_ {
        self.map.iter().map(|(&s, &n)| (s, n))
    }

    /// Install a mapping without touching any counter — used when a
    /// repartition moves an entry between shards (the entry itself is
    /// not new; only its metadata host changed).
    pub(crate) fn adopt(&mut self, id: SampleId, node: NodeId) {
        self.map.insert(id, node);
    }

    /// Drain the whole mapping (counter-neutral), leaving the shard
    /// empty — the first step of a repartition.
    pub(crate) fn take_map(&mut self) -> BTreeMap<SampleId, NodeId> {
        std::mem::take(&mut self.map)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_classifies_fresh_remap_and_noop() {
        let obs = Obs::new();
        let mut dir = DirectoryKv::new().with_obs(obs.clone());
        assert_eq!(
            dir.insert(SampleId(1), NodeId(0)),
            DirectoryChange::Inserted
        );
        assert_eq!(
            dir.insert(SampleId(1), NodeId(0)),
            DirectoryChange::Unchanged
        );
        assert_eq!(
            dir.insert(SampleId(1), NodeId(3)),
            DirectoryChange::Remapped { from: NodeId(0) }
        );
        assert_eq!(
            DirectoryChange::Remapped { from: NodeId(3) }.previous(),
            Some(NodeId(3))
        );
        assert_eq!(DirectoryChange::Inserted.previous(), None);
        assert_eq!(obs.counter("dist.directory.inserts"), 1);
        assert_eq!(obs.counter("dist.directory.remaps"), 1);
    }

    #[test]
    fn detach_copies_the_map_but_not_the_registry() {
        let obs = Obs::new();
        let mut dir = DirectoryKv::new().with_obs(obs.clone());
        dir.insert(SampleId(7), NodeId(1));
        let copy = dir.detach();
        assert_eq!(copy.len(), 1);
        assert_eq!(copy.peek(SampleId(7)), Some(NodeId(1)));
        // Counting traffic on the copy must not reach the original registry.
        assert_eq!(copy.lookup(SampleId(7)), Some(NodeId(1)));
        assert_eq!(obs.counter("dist.directory.lookups"), 0);
    }

    #[test]
    fn peek_and_adopt_are_counter_neutral() {
        let obs = Obs::new();
        let mut dir = DirectoryKv::new().with_obs(obs.clone());
        dir.adopt(SampleId(2), NodeId(1));
        assert_eq!(dir.peek(SampleId(2)), Some(NodeId(1)));
        assert_eq!(dir.len(), 1);
        assert_eq!(obs.counter("dist.directory.inserts"), 0);
        assert_eq!(obs.counter("dist.directory.lookups"), 0);
        let drained = dir.take_map();
        assert_eq!(drained.len(), 1);
        assert!(dir.is_empty());
        assert_eq!(obs.counter("dist.directory.removes"), 0);
    }

    #[test]
    fn entries_iterate_in_sample_order() {
        let mut dir = DirectoryKv::new();
        dir.adopt(SampleId(9), NodeId(0));
        dir.adopt(SampleId(3), NodeId(1));
        let got: Vec<_> = dir.entries().collect();
        assert_eq!(
            got,
            vec![(SampleId(3), NodeId(1)), (SampleId(9), NodeId(0))]
        );
    }
}
