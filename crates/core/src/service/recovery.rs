//! Warm-restart recovery indexes.
//!
//! Every node with recovery enabled writes a small index of its resident
//! samples on a periodic cadence (`ServiceConfig::index_interval`) and at
//! each of its epoch ends: one line per sample with region, id, payload
//! size, and admission importance. After a crash the
//! rejoining node replays the most recent index against its fresh
//! manager — re-admitting H-samples and re-packaging L-samples from the
//! local disk image — instead of refetching everything from shared
//! storage (the warm restart of the churn experiment).
//!
//! The file format is a deterministic line protocol (sorted by region
//! then id, exact float round-trip via Rust's shortest representation):
//!
//! ```text
//! icache-recovery v1
//! node 1
//! epoch 3
//! h 5 3072 12.5
//! l 10 3072 0.0
//! ```

use icache_types::{ByteSize, Epoch, Error, NodeId, Result, SampleId};
use std::collections::BTreeMap;
use std::path::PathBuf;

/// Which cache region a recovered sample belonged to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RecoveryRegion {
    /// High-importance region (individually admitted samples).
    H,
    /// Low-importance region (package-resident samples).
    L,
}

impl RecoveryRegion {
    fn tag(self) -> &'static str {
        match self {
            RecoveryRegion::H => "h",
            RecoveryRegion::L => "l",
        }
    }
}

/// One resident sample in a recovery index.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecoveryEntry {
    /// Region the sample was resident in at snapshot time.
    pub region: RecoveryRegion,
    /// The sample.
    pub id: SampleId,
    /// Payload size (so restore needs no dataset round trip).
    pub size: ByteSize,
    /// Admission importance at snapshot time (H-region re-admission
    /// uses it; zero for L entries).
    pub iv: f64,
}

/// A node's snapshot of resident cache contents at one instant.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryIndex {
    /// The node that wrote the index.
    pub node: NodeId,
    /// The cluster epoch current when the snapshot was taken.
    pub epoch: Epoch,
    /// Resident samples, sorted by (region, id).
    pub entries: Vec<RecoveryEntry>,
}

impl RecoveryIndex {
    /// Total payload bytes the index describes (what a warm restore
    /// reads back from local disk).
    pub fn payload_bytes(&self) -> ByteSize {
        self.entries.iter().map(|e| e.size).sum()
    }

    /// Serialize to the deterministic line protocol.
    pub fn to_text(&self) -> String {
        let mut entries = self.entries.clone();
        entries.sort_by_key(|e| (e.region, e.id));
        let mut out = String::from("icache-recovery v1\n");
        out.push_str(&format!("node {}\n", self.node.0));
        out.push_str(&format!("epoch {}\n", self.epoch.0));
        for e in &entries {
            out.push_str(&format!(
                "{} {} {} {:?}\n",
                e.region.tag(),
                e.id.0,
                e.size.as_u64(),
                e.iv
            ));
        }
        out
    }

    /// Parse the line protocol.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidState`] on a bad magic line or any
    /// malformed record; a truncated index must not silently restore a
    /// subset. Entries must be strictly ascending by `(region, id)` —
    /// the order [`RecoveryIndex::to_text`] writes — so a corrupt or
    /// hand-edited index with duplicate or out-of-order entries is
    /// rejected instead of double-restoring a sample on warm rejoin.
    pub fn parse(text: &str) -> Result<Self> {
        let bad = |what: &str| Error::InvalidState(format!("recovery index: {what}"));
        let mut lines = text.lines();
        if lines.next() != Some("icache-recovery v1") {
            return Err(bad("missing `icache-recovery v1` magic"));
        }
        let node = lines
            .next()
            .and_then(|l| l.strip_prefix("node "))
            .and_then(|v| v.parse::<u32>().ok())
            .map(NodeId)
            .ok_or_else(|| bad("malformed node line"))?;
        let epoch = lines
            .next()
            .and_then(|l| l.strip_prefix("epoch "))
            .and_then(|v| v.parse::<u32>().ok())
            .map(Epoch)
            .ok_or_else(|| bad("malformed epoch line"))?;
        let mut entries: Vec<RecoveryEntry> = Vec::new();
        for line in lines {
            if line.is_empty() {
                continue;
            }
            let mut parts = line.split(' ');
            let region = match parts.next() {
                Some("h") => RecoveryRegion::H,
                Some("l") => RecoveryRegion::L,
                _ => return Err(bad("unknown region tag")),
            };
            let id = parts
                .next()
                .and_then(|v| v.parse::<u64>().ok())
                .map(SampleId)
                .ok_or_else(|| bad("malformed sample id"))?;
            let size = parts
                .next()
                .and_then(|v| v.parse::<u64>().ok())
                .map(ByteSize::new)
                .ok_or_else(|| bad("malformed size"))?;
            let iv = parts
                .next()
                .and_then(|v| v.parse::<f64>().ok())
                .filter(|v| v.is_finite() && *v >= 0.0)
                .ok_or_else(|| bad("malformed importance value"))?;
            if parts.next().is_some() {
                return Err(bad("trailing fields on entry line"));
            }
            if let Some(prev) = entries.last() {
                let prev_key: (RecoveryRegion, SampleId) = (prev.region, prev.id);
                if prev_key == (region, id) {
                    return Err(bad("duplicate (region, id) entry"));
                }
                if prev_key > (region, id) {
                    return Err(bad("entries out of (region, id) order"));
                }
            }
            entries.push(RecoveryEntry {
                region,
                id,
                size,
                iv,
            });
        }
        Ok(RecoveryIndex {
            node,
            epoch,
            entries,
        })
    }
}

/// Where recovery indexes live.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum RecoveryMode {
    /// No indexes are written; every restart is cold (the compatibility
    /// default — zero filesystem traffic, zero new counters).
    #[default]
    Disabled,
    /// Indexes held in memory, modelling a node-local disk that
    /// survives the cache process crash. Deterministic and hermetic —
    /// the default for churn simulations.
    Memory,
    /// Indexes written as real files (`node<i>.recovery`) under the
    /// given directory.
    Dir(PathBuf),
}

/// The store behind [`RecoveryMode`].
#[derive(Debug)]
pub enum RecoveryStore {
    /// See [`RecoveryMode::Disabled`].
    Disabled,
    /// See [`RecoveryMode::Memory`].
    Memory(BTreeMap<u32, String>),
    /// See [`RecoveryMode::Dir`].
    Dir(PathBuf),
}

impl RecoveryStore {
    /// Build the store for a mode.
    pub fn new(mode: &RecoveryMode) -> Self {
        match mode {
            RecoveryMode::Disabled => RecoveryStore::Disabled,
            RecoveryMode::Memory => RecoveryStore::Memory(BTreeMap::new()),
            RecoveryMode::Dir(dir) => RecoveryStore::Dir(dir.clone()),
        }
    }

    /// Whether indexes are being written at all.
    pub fn enabled(&self) -> bool {
        !matches!(self, RecoveryStore::Disabled)
    }

    /// Persist `index`, replacing the node's previous snapshot.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidState`] when the backing directory cannot
    /// be written.
    pub fn save(&mut self, index: &RecoveryIndex) -> Result<()> {
        match self {
            RecoveryStore::Disabled => Ok(()),
            RecoveryStore::Memory(map) => {
                map.insert(index.node.0, index.to_text());
                Ok(())
            }
            RecoveryStore::Dir(dir) => {
                let path = dir.join(format!("node{}.recovery", index.node.0));
                std::fs::create_dir_all(&dir).map_err(|e| {
                    Error::InvalidState(format!("recovery dir {}: {e}", dir.display()))
                })?;
                std::fs::write(&path, index.to_text()).map_err(|e| {
                    Error::InvalidState(format!("recovery write {}: {e}", path.display()))
                })
            }
        }
    }

    /// The most recent index for `node`, if one was written and parses
    /// cleanly (a corrupt on-disk index degrades to a cold restart).
    pub fn load(&self, node: NodeId) -> Option<RecoveryIndex> {
        let text = match self {
            RecoveryStore::Disabled => return None,
            RecoveryStore::Memory(map) => map.get(&node.0).cloned()?,
            RecoveryStore::Dir(dir) => {
                std::fs::read_to_string(dir.join(format!("node{}.recovery", node.0))).ok()?
            }
        };
        RecoveryIndex::parse(&text).ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn index() -> RecoveryIndex {
        RecoveryIndex {
            node: NodeId(1),
            epoch: Epoch(3),
            entries: vec![
                RecoveryEntry {
                    region: RecoveryRegion::L,
                    id: SampleId(10),
                    size: ByteSize::kib(3),
                    iv: 0.0,
                },
                RecoveryEntry {
                    region: RecoveryRegion::H,
                    id: SampleId(5),
                    size: ByteSize::kib(3),
                    iv: 12.5,
                },
            ],
        }
    }

    #[test]
    fn text_round_trips_and_sorts_entries() {
        let idx = index();
        let text = idx.to_text();
        assert!(text.starts_with("icache-recovery v1\nnode 1\nepoch 3\n"));
        // Serialization sorts (region, id), so H entries precede L.
        let h_pos = text.find("h 5 ").expect("H entry serialized");
        let l_pos = text.find("l 10 ").expect("L entry serialized");
        assert!(h_pos < l_pos);
        let parsed = RecoveryIndex::parse(&text).expect("round trip parse");
        assert_eq!(parsed.node, idx.node);
        assert_eq!(parsed.epoch, idx.epoch);
        assert_eq!(parsed.entries.len(), 2);
        assert_eq!(parsed.payload_bytes(), ByteSize::kib(6));
    }

    #[test]
    fn corrupt_indexes_are_rejected() {
        assert!(RecoveryIndex::parse("nonsense").is_err());
        assert!(RecoveryIndex::parse("icache-recovery v1\nnode x\nepoch 0\n").is_err());
        assert!(RecoveryIndex::parse("icache-recovery v1\nnode 0\nepoch 0\nq 1 2 3.0\n").is_err());
        assert!(
            RecoveryIndex::parse("icache-recovery v1\nnode 0\nepoch 0\nh 1 2 NaN\n").is_err(),
            "non-finite importance must not restore"
        );
    }

    /// Every `parse` error path, table-driven: one corrupt input per
    /// `InvalidState` message, checked against the exact cause string so
    /// a refactor cannot silently collapse two failure modes into one.
    #[test]
    fn every_parse_error_path_names_its_cause() {
        const HEADER: &str = "icache-recovery v1\nnode 0\nepoch 0\n";
        let entry = |line: &str| format!("{HEADER}{line}\n");
        let cases: Vec<(&str, String)> = vec![
            ("empty input", String::new()),
            (
                "wrong magic",
                "icache-recovery v2\nnode 0\nepoch 0\n".into(),
            ),
            ("truncated after magic", "icache-recovery v1\n".into()),
            (
                "non-numeric node",
                "icache-recovery v1\nnode x\nepoch 0\n".into(),
            ),
            (
                "truncated after node",
                "icache-recovery v1\nnode 0\n".into(),
            ),
            (
                "non-numeric epoch",
                "icache-recovery v1\nnode 0\nepoch x\n".into(),
            ),
            ("unknown region tag", entry("q 1 3072 1.0")),
            ("region-only truncated line", entry("h")),
            ("non-numeric sample id", entry("h x 3072 1.0")),
            ("line truncated after id", entry("h 1")),
            ("non-numeric size", entry("h 1 x 1.0")),
            ("line truncated after size", entry("h 1 3072")),
            ("non-numeric importance", entry("h 1 3072 x")),
            ("negative importance", entry("h 1 3072 -1.0")),
            ("infinite importance", entry("h 1 3072 inf")),
            ("trailing field", entry("h 1 3072 1.0 extra")),
            ("duplicate entry", entry("h 5 3072 1.0\nh 5 3072 1.0")),
            ("ids out of order", entry("h 9 3072 1.0\nh 5 3072 1.0")),
            ("regions out of order", entry("l 1 3072 0.0\nh 5 3072 1.0")),
        ];
        let expected = [
            ("empty input", "missing `icache-recovery v1` magic"),
            ("wrong magic", "missing `icache-recovery v1` magic"),
            ("truncated after magic", "malformed node line"),
            ("non-numeric node", "malformed node line"),
            ("truncated after node", "malformed epoch line"),
            ("non-numeric epoch", "malformed epoch line"),
            ("unknown region tag", "unknown region tag"),
            ("region-only truncated line", "malformed sample id"),
            ("non-numeric sample id", "malformed sample id"),
            ("line truncated after id", "malformed size"),
            ("non-numeric size", "malformed size"),
            ("line truncated after size", "malformed importance value"),
            ("non-numeric importance", "malformed importance value"),
            ("negative importance", "malformed importance value"),
            ("infinite importance", "malformed importance value"),
            ("trailing field", "trailing fields on entry line"),
            ("duplicate entry", "duplicate (region, id) entry"),
            ("ids out of order", "entries out of (region, id) order"),
            ("regions out of order", "entries out of (region, id) order"),
        ];
        assert_eq!(cases.len(), expected.len(), "tables must stay in sync");
        for ((name, input), (ename, cause)) in cases.iter().zip(expected) {
            assert_eq!(*name, ename, "tables must stay in sync");
            let err = RecoveryIndex::parse(input).expect_err(&format!("`{name}` must be rejected"));
            let msg = format!("{err}");
            assert!(
                msg.contains(cause),
                "`{name}` should report `{cause}`, got: {msg}"
            );
        }
    }

    /// A corrupt persisted snapshot must degrade to a cold restart
    /// (`load` returns `None`), never a partial or panicking restore —
    /// in both the in-memory store and the on-disk one.
    #[test]
    fn corrupt_store_degrades_to_cold_restart() {
        // Memory store with a snapshot whose tail was lost mid-write.
        let good = index().to_text();
        let truncated = good[..good.len() - 4].replace("h 5 3072", "h 5");
        let mut map = BTreeMap::new();
        map.insert(1u32, truncated.clone());
        let store = RecoveryStore::Memory(map);
        assert!(
            store.load(NodeId(1)).is_none(),
            "corrupt memory snapshot must cold-restart"
        );

        // Dir store pointed at a corrupt on-disk file.
        let dir =
            std::env::temp_dir().join(format!("icache-recovery-corrupt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("scratch dir");
        std::fs::write(dir.join("node1.recovery"), &truncated).expect("write corrupt index");
        let store = RecoveryStore::new(&RecoveryMode::Dir(dir.clone()));
        assert!(
            store.load(NodeId(1)).is_none(),
            "corrupt on-disk snapshot must cold-restart"
        );
        assert!(
            store.load(NodeId(2)).is_none(),
            "missing snapshot is a cold restart, not an error"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn duplicate_entries_are_rejected() {
        // A duplicated line would double-restore sample 5 on warm rejoin.
        let text = "icache-recovery v1\nnode 0\nepoch 0\nh 5 3072 1.0\nh 5 3072 1.0\n";
        let err = RecoveryIndex::parse(text).expect_err("duplicate entry must fail");
        assert!(format!("{err}").contains("duplicate"), "{err}");
    }

    #[test]
    fn out_of_order_entries_are_rejected() {
        // Ids descending within a region.
        let text = "icache-recovery v1\nnode 0\nepoch 0\nh 9 3072 1.0\nh 5 3072 1.0\n";
        let err = RecoveryIndex::parse(text).expect_err("descending ids must fail");
        assert!(format!("{err}").contains("order"), "{err}");
        // L entries must never precede H entries.
        let text = "icache-recovery v1\nnode 0\nepoch 0\nl 1 3072 0.0\nh 5 3072 1.0\n";
        assert!(RecoveryIndex::parse(text).is_err(), "L before H must fail");
        // Same id in both regions stays legal: (h, 5) < (l, 5).
        let text = "icache-recovery v1\nnode 0\nepoch 0\nh 5 3072 1.0\nl 5 3072 0.0\n";
        let idx = RecoveryIndex::parse(text).expect("cross-region same id is ordered");
        assert_eq!(idx.entries.len(), 2);
    }

    #[test]
    fn memory_store_replaces_per_node_snapshots() {
        let mut store = RecoveryStore::new(&RecoveryMode::Memory);
        assert!(store.enabled());
        store.save(&index()).expect("memory save never fails");
        let mut newer = index();
        newer.epoch = Epoch(4);
        store.save(&newer).expect("memory save never fails");
        let loaded = store.load(NodeId(1)).expect("snapshot present");
        assert_eq!(loaded.epoch, Epoch(4));
        assert!(store.load(NodeId(0)).is_none());
    }

    #[test]
    fn disabled_store_writes_and_loads_nothing() {
        let mut store = RecoveryStore::new(&RecoveryMode::Disabled);
        assert!(!store.enabled());
        store.save(&index()).expect("disabled save is a no-op");
        assert!(store.load(NodeId(1)).is_none());
    }

    #[test]
    fn dir_store_round_trips_through_files() {
        let dir = std::env::temp_dir().join(format!("icache-recovery-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut store = RecoveryStore::new(&RecoveryMode::Dir(dir.clone()));
        store.save(&index()).expect("dir save");
        let loaded = store.load(NodeId(1)).expect("file parsed");
        assert_eq!(loaded, {
            let mut idx = index();
            idx.entries.sort_by_key(|e| (e.region, e.id));
            idx
        });
        let _ = std::fs::remove_dir_all(&dir);
    }
}
