//! The sharded cache service: the cluster event loop.
//!
//! [`CacheService`] owns the nodes, the simulated network, the
//! membership table, and the recovery store, and drives every fetch as
//! a sequence of [`CacheRpc`] exchanges: local probe → directory shard
//! lookup → peer read or storage fall-through, with the directory kept
//! in sync through `DirectoryUpdate` messages. All timing flows from
//! the `SimTime` values the training loop passes in — the service holds
//! a high-water clock (`max` of every fetch time seen) to drive
//! heartbeats and suspicion deterministically.
//!
//! [`crate::DistributedCache`] wraps this type as a thin compatibility
//! facade; churn experiments drive it directly.

use crate::service::{
    CacheRpc, CacheRpcReply, DirectoryOp, HeartbeatConfig, LinkConfig, Membership, NodeHandle,
    Partitioner, RecoveryIndex, RecoveryMode, RecoveryStore, ServiceNode, SimNet,
};
use crate::{
    CacheStats, CacheSystem, DistributedConfig, Fetch, FetchOutcome, IcacheConfig, IcacheManager,
    RemoteFetchKind,
};
use icache_obs::{Obs, Observable, TraceEvent};
use icache_sampling::HList;
use icache_storage::StorageBackend;
use icache_types::{
    ByteSize, Dataset, Epoch, Error, JobId, NodeId, NodeState, Result, SampleId, SimDuration,
    SimTime,
};
use std::collections::BTreeMap;

/// Configuration of the sharded cache service.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceConfig {
    /// Number of cache nodes.
    pub nodes: usize,
    /// Per-node cache configuration (each node's seed is offset by its
    /// index, as the direct-call cluster always did).
    pub node_config: IcacheConfig,
    /// Control-plane link profile (directory traffic, heartbeats).
    /// Metadata messages carry zero modelled bytes, so only the latency
    /// matters; it defaults to zero, which reproduces the direct-call
    /// cluster's timing exactly.
    pub control: LinkConfig,
    /// Data-plane link profile (peer cache reads): the old
    /// `remote_hop` / `interconnect_bandwidth` pair.
    pub data: LinkConfig,
    /// Serialize per-link transfers (FIFO queuing behind earlier
    /// messages) instead of modelling links as uncontended.
    pub serialize_links: bool,
    /// Failure-detector timing; `None` freezes membership (no
    /// heartbeats, no suspicion — the compatibility default).
    pub heartbeat: Option<HeartbeatConfig>,
    /// Race remote reads against a hedged local storage fetch, first
    /// responder winning by sim-time (ties go to the peer).
    pub race_fetches: bool,
    /// Where recovery indexes are written (warm restarts).
    pub recovery: RecoveryMode,
    /// Local-disk read bandwidth charged when a warm restart replays
    /// its recovery index, bytes/second.
    pub recovery_bandwidth: f64,
    /// How often each live node snapshots its residency into the
    /// recovery store *between* epoch boundaries. Epoch-end-only
    /// snapshots (`None`) miss everything admitted since the last
    /// boundary — a node killed mid-epoch would restart from a view one
    /// full epoch stale.
    pub index_interval: Option<SimDuration>,
    /// Keep service-plane metrics (`svc.*`) and events out of the
    /// shared registry. The compatibility facade sets this so pre- and
    /// post-redesign `--nodes N` runs serialize byte-identically; churn
    /// runs leave it off.
    pub quiet_service_plane: bool,
}

impl ServiceConfig {
    /// Service defaults for a cluster of `nodes` nodes, each caching
    /// `per_node_fraction` of `dataset`: static membership, no racing,
    /// recovery disabled.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] when `nodes` is zero or the
    /// per-node config is invalid.
    pub fn for_dataset(dataset: &Dataset, nodes: usize, per_node_fraction: f64) -> Result<Self> {
        Ok(
            ServiceConfig::from_distributed(&DistributedConfig::for_dataset(
                dataset,
                nodes,
                per_node_fraction,
            )?)
            .exposed(),
        )
    }

    /// The exact semantics of a [`DistributedConfig`]: zero-latency
    /// control plane, static membership, quiet service plane.
    pub fn from_distributed(config: &DistributedConfig) -> Self {
        ServiceConfig {
            nodes: config.nodes,
            node_config: config.node_config.clone(),
            control: LinkConfig {
                latency: SimDuration::ZERO,
                bandwidth: config.interconnect_bandwidth,
            },
            data: LinkConfig {
                latency: config.remote_hop,
                bandwidth: config.interconnect_bandwidth,
            },
            serialize_links: false,
            heartbeat: None,
            race_fetches: false,
            recovery: RecoveryMode::Disabled,
            recovery_bandwidth: 2e9,
            index_interval: None,
            quiet_service_plane: true,
        }
    }

    /// Expose service-plane metrics in the shared registry.
    pub fn exposed(mut self) -> Self {
        self.quiet_service_plane = false;
        self
    }

    /// Enable the churn machinery: default failure detector and an
    /// in-memory recovery store.
    pub fn with_churn(mut self) -> Self {
        self.heartbeat = Some(HeartbeatConfig::default());
        self.recovery = RecoveryMode::Memory;
        self.index_interval = Some(SimDuration::from_millis(50));
        self.quiet_service_plane = false;
        self
    }
}

/// A scheduled membership change, applied at cluster epoch boundaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChurnEvent {
    /// Crash `node` mid-epoch: after the cluster has served half as
    /// many fetches in `epoch` as it served in the previous epoch
    /// (immediately at the epoch start when there is no history).
    Kill {
        /// Node to crash.
        node: NodeId,
        /// Epoch in which the crash fires.
        epoch: Epoch,
    },
    /// Bring `node` back at the start of `epoch`.
    Rejoin {
        /// Node to revive.
        node: NodeId,
        /// Epoch whose start triggers the rejoin.
        epoch: Epoch,
        /// Warm restart (replay the recovery index) vs. cold (empty).
        warm: bool,
    },
}

/// The multi-node iCache as a message-passing service.
///
/// See the [module docs](crate::service::cluster) for the fetch path; the
/// public surface is [`CacheSystem`] (fetch/epoch hooks), the
/// [`CacheService::rpc_from`] message entry point, churn scheduling, and
/// read-only views ([`CacheService::node`], directory accessors).
#[derive(Debug)]
pub struct CacheService {
    config: ServiceConfig,
    dataset: Dataset,
    nodes: Vec<ServiceNode>,
    membership: Membership,
    partitioner: Partitioner,
    net: SimNet,
    recovery: RecoveryStore,
    pending_churn: Vec<ChurnEvent>,
    /// Armed mid-epoch kill: fires when the countdown reaches zero.
    kill_countdown: Option<(NodeId, u64)>,
    cluster_epoch: Option<Epoch>,
    prev_epoch_fetches: u64,
    epoch_fetches: u64,
    next_heartbeat: Vec<SimTime>,
    next_index_write: Vec<SimTime>,
    /// Latest importance view pushed per job. A rejoining node's fresh
    /// manager replays these before restoring residency — without the
    /// H-list, restored hot samples would be routed down the L path and
    /// never found.
    hlists: BTreeMap<JobId, HList>,
    /// High-water mark of every `now` the training loop has passed in;
    /// drives heartbeats and suspicion.
    clock: SimTime,
    remote_hits: u64,
    remote_bytes: ByteSize,
    /// Stats accumulated by managers that have since crashed. A crash
    /// loses cache *contents*, not measurement history — the training
    /// loop's per-epoch deltas must never go backwards.
    lost_stats: CacheStats,
    obs: Obs,
    svc_obs: Obs,
}

impl CacheService {
    /// Build the service for `dataset`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] when `nodes` is zero or any
    /// per-node manager cannot be built.
    pub fn new(config: ServiceConfig, dataset: &Dataset) -> Result<Self> {
        if config.nodes == 0 {
            return Err(Error::invalid_config("nodes", "must be at least 1"));
        }
        let nodes = (0..config.nodes)
            .map(|i| {
                let mut c = config.node_config.clone();
                c.seed = c.seed.wrapping_add(i as u64);
                Ok(ServiceNode::new(
                    NodeId(i as u32),
                    IcacheManager::new(c, dataset)?,
                ))
            })
            .collect::<Result<Vec<_>>>()?;
        let membership = Membership::new(config.nodes, config.heartbeat.unwrap_or_default());
        let partitioner = Partitioner::new(membership.live(), 0);
        let mut net = SimNet::new(config.control, config.data);
        net.set_serialize(config.serialize_links);
        let recovery = RecoveryStore::new(&config.recovery);
        Ok(CacheService {
            nodes,
            membership,
            partitioner,
            net,
            recovery,
            pending_churn: Vec::new(),
            kill_countdown: None,
            cluster_epoch: None,
            prev_epoch_fetches: 0,
            epoch_fetches: 0,
            next_heartbeat: vec![SimTime::ZERO; config.nodes],
            next_index_write: vec![SimTime::ZERO; config.nodes],
            hlists: BTreeMap::new(),
            clock: SimTime::ZERO,
            remote_hits: 0,
            remote_bytes: ByteSize::ZERO,
            lost_stats: CacheStats::default(),
            obs: Obs::noop(),
            svc_obs: Obs::noop(),
            dataset: dataset.clone(),
            config,
        })
    }

    /// The service configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// Number of node slots (live or not).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Read-only view of node `i`.
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of range (node ids are dense `0..nodes`).
    pub fn node(&self, i: usize) -> NodeHandle<'_> {
        NodeHandle {
            node: &self.nodes[i],
            state: self.membership.state(NodeId(i as u32)),
        }
    }

    /// Peer-cache hits served so far.
    pub fn remote_hits(&self) -> u64 {
        self.remote_hits
    }

    /// The failure detector's view of `node`.
    pub fn membership_state(&self, node: NodeId) -> NodeState {
        self.membership.state(node)
    }

    /// Nodes not declared down, ascending.
    pub fn live_nodes(&self) -> Vec<NodeId> {
        self.membership.live()
    }

    /// The directory shard responsible for `id` under the current
    /// partition map.
    pub fn shard_of(&self, id: SampleId) -> NodeId {
        self.partitioner.owner(id)
    }

    /// The partition-map version (bumps on every membership change).
    pub fn partition_version(&self) -> u64 {
        self.partitioner.version()
    }

    /// Total directory entries across every shard.
    pub fn directory_len(&self) -> usize {
        self.nodes.iter().map(|n| n.shard.len()).sum()
    }

    /// Every `(sample, owner)` mapping, sorted by sample (counter-free).
    pub fn directory_entries(&self) -> Vec<(SampleId, NodeId)> {
        let mut all: Vec<(SampleId, NodeId)> =
            self.nodes.iter().flat_map(|n| n.shard.entries()).collect();
        all.sort_unstable_by_key(|(s, _)| *s);
        all
    }

    /// The node caching `id`, if any — a counted directory read routed
    /// to the responsible shard, exactly like the fetch path's lookup.
    pub fn directory_lookup(&self, id: SampleId) -> Option<NodeId> {
        let shard = self.partitioner.owner(id);
        self.nodes[shard.0 as usize].shard.lookup(id)
    }

    /// Schedule a mid-epoch crash of `node` during `epoch`.
    pub fn schedule_kill(&mut self, node: NodeId, epoch: Epoch) {
        self.pending_churn.push(ChurnEvent::Kill { node, epoch });
    }

    /// Schedule `node` to rejoin at the start of `epoch`.
    pub fn schedule_rejoin(&mut self, node: NodeId, epoch: Epoch, warm: bool) {
        self.pending_churn
            .push(ChurnEvent::Rejoin { node, epoch, warm });
    }

    /// Crash `node` now: its cache contents and in-memory stats are
    /// lost, it stops beaconing and answering messages. With a failure
    /// detector configured the cluster discovers the silence through
    /// suspicion; with static membership the node is declared down (and
    /// the directory repartitioned) immediately.
    pub fn kill_node(&mut self, node: NodeId, now: SimTime) {
        let i = node.0 as usize;
        if self.nodes[i].crashed {
            return;
        }
        self.clock = self.clock.max(now);
        self.retire_manager(i);
        self.svc_obs.inc("svc.kills");
        if self.config.heartbeat.is_some() {
            self.membership.crash(node);
        } else if self.membership.leave(node) {
            self.repartition();
        }
    }

    /// Drop node `i`'s manager, folding its accumulated stats into the
    /// cluster tally first (measurements survive the process).
    fn retire_manager(&mut self, i: usize) {
        if let Some(m) = self.nodes[i].manager.take() {
            absorb(&mut self.lost_stats, &m.stats());
        }
        self.nodes[i].crashed = true;
    }

    /// Gracefully remove `node`: immediate down, no suspicion window.
    pub fn leave_node(&mut self, node: NodeId, now: SimTime) {
        let i = node.0 as usize;
        self.clock = self.clock.max(now);
        if !self.nodes[i].crashed {
            let to = NodeId(((i + 1) % self.nodes.len()) as u32);
            self.net
                .express(node, to, CacheRpc::Leave { node }, self.clock);
        }
        self.retire_manager(i);
        if self.membership.leave(node) {
            self.repartition();
        }
    }

    /// Revive `node` with a fresh manager; `warm` replays the recovery
    /// index (when one exists) instead of restarting empty.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] when the replacement manager
    /// cannot be built (the node then stays down).
    pub fn rejoin_node(&mut self, node: NodeId, now: SimTime, warm: bool) -> Result<()> {
        let i = node.0 as usize;
        if self.nodes[i].is_up() {
            return Ok(());
        }
        self.clock = self.clock.max(now);
        let mut c = self.config.node_config.clone();
        c.seed = c.seed.wrapping_add(i as u64);
        let mut manager = IcacheManager::new(c, &self.dataset)?;
        CacheSystem::set_obs(&mut manager, self.obs.clone());
        // Pull the current importance view from the coordinator: the
        // crash dropped every H-list push the node missed, and without
        // them the fresh manager would route all hot samples down the L
        // path until the next epoch-end broadcast.
        for (job, hlist) in &self.hlists {
            manager.update_hlist(*job, hlist);
        }
        let to = NodeId(((i + 1) % self.nodes.len()) as u32);
        self.net
            .express(node, to, CacheRpc::Join { node, warm }, self.clock);
        self.nodes[i].manager = Some(manager);
        self.nodes[i].crashed = false;
        self.next_heartbeat[i] = self.clock;
        self.next_index_write[i] = self.clock;
        self.svc_obs.inc("svc.rejoins");
        if self.membership.rejoin(node, self.clock) {
            self.repartition();
        }
        if warm {
            self.warm_restore(node);
        } else {
            self.svc_obs.inc("svc.recovery.cold_restarts");
        }
        Ok(())
    }

    /// The message-passing entry point: deliver one request from
    /// `from` to `to` over the simulated network and return the reply
    /// with the sim-time at which the sender holds it. Crashed
    /// receivers never answer; the sender gets
    /// [`CacheRpcReply::TimedOut`] after its RPC timer expires.
    pub fn rpc_from(
        &mut self,
        from: NodeId,
        to: NodeId,
        rpc: CacheRpc,
        now: SimTime,
        storage: &mut dyn StorageBackend,
    ) -> (CacheRpcReply, SimTime) {
        self.clock = self.clock.max(now);
        if self.nodes[to.0 as usize].crashed {
            self.svc_obs.inc("svc.rpc_timeouts");
            return (CacheRpcReply::TimedOut, now + self.rpc_timeout());
        }
        let delivered = self.net.express(from, to, rpc, now);
        let reply = self.nodes[to.0 as usize].handle(rpc, delivered, storage);
        (reply, delivered + self.config.control.latency)
    }

    fn rpc_timeout(&self) -> SimDuration {
        self.config
            .heartbeat
            .map(|h| h.rpc_timeout)
            .unwrap_or(SimDuration::ZERO)
    }

    fn node_of(&self, job: JobId) -> usize {
        job.0 as usize % self.nodes.len()
    }

    /// Classify where a fetch for `job`/`id` would be served from,
    /// without performing it (counted directory read, like the old
    /// direct-call cluster).
    pub fn classify(&self, job: JobId, id: SampleId) -> RemoteFetchKind {
        let local = self.node_of(job);
        if self.nodes[local].is_up() && self.nodes[local].contains_cached(id) {
            return RemoteFetchKind::Local;
        }
        match self.remote_owner_view(local, id) {
            Some(_) => RemoteFetchKind::RemoteCache,
            None => RemoteFetchKind::Storage,
        }
    }

    /// The peer that could serve `id` to node `local` right now:
    /// directory hit on a different, reachable node that still holds
    /// the sample.
    fn remote_owner_view(&self, local: usize, id: SampleId) -> Option<NodeId> {
        let shard = self.partitioner.owner(id);
        if self.nodes[shard.0 as usize].crashed {
            return None;
        }
        match self.nodes[shard.0 as usize].shard.lookup(id) {
            Some(owner)
                if owner.0 as usize != local
                    && self.nodes[owner.0 as usize].contains_cached(id) =>
            {
                Some(owner)
            }
            _ => None,
        }
    }

    /// Route a fetch through the requesting node's own manager and keep
    /// the directory's residency view in sync.
    fn local_fetch(
        &mut self,
        local: usize,
        job: JobId,
        id: SampleId,
        size: ByteSize,
        now: SimTime,
        storage: &mut dyn StorageBackend,
    ) -> Fetch {
        let me = NodeId(local as u32);
        let reply = self.nodes[local].handle(
            CacheRpc::FetchLocal {
                job,
                sample: id,
                size,
            },
            now,
            storage,
        );
        let fetch = match reply {
            CacheRpcReply::Fetched(f) => f,
            // Crashed home node: the client reads storage directly and
            // caches nothing.
            _ => {
                self.svc_obs.inc("svc.dead_node_fetches");
                Fetch {
                    ready_at: storage.read_sample(id, size, now),
                    served_id: id,
                    outcome: FetchOutcome::Miss,
                }
            }
        };
        // Register fresh residency; unregister when the sample is served
        // from storage but was not admitted anywhere.
        if self.nodes[local].contains_cached(id) {
            let (_, _) = self.shard_rpc(
                me,
                CacheRpc::DirectoryUpdate {
                    sample: id,
                    op: DirectoryOp::Insert(me),
                },
                now,
                storage,
            );
        } else {
            let (owner, t) = self.shard_rpc(me, CacheRpc::Lookup { sample: id }, now, storage);
            if owner == CacheRpcReply::Owner(Some(me)) {
                let (_, _) = self.shard_rpc(
                    me,
                    CacheRpc::DirectoryUpdate {
                        sample: id,
                        op: DirectoryOp::Remove,
                    },
                    t,
                    storage,
                );
            }
        }
        fetch
    }

    /// Send a directory message to the shard responsible for its sample.
    fn shard_rpc(
        &mut self,
        from: NodeId,
        rpc: CacheRpc,
        now: SimTime,
        storage: &mut dyn StorageBackend,
    ) -> (CacheRpcReply, SimTime) {
        let sample = match rpc {
            CacheRpc::Lookup { sample } | CacheRpc::DirectoryUpdate { sample, .. } => sample,
            _ => return (CacheRpcReply::NotFound, now),
        };
        let shard = self.partitioner.owner(sample);
        self.rpc_from(from, shard, rpc, now, storage)
    }

    fn serve_remote(
        &mut self,
        local: usize,
        owner: NodeId,
        job: JobId,
        id: SampleId,
        bytes: ByteSize,
        now: SimTime,
    ) -> Fetch {
        let ready_at = self.net.transfer(owner, NodeId(local as u32), bytes, now);
        self.remote_hits += 1;
        self.remote_bytes += bytes;
        self.obs.inc(&self.nodes[local].keys.remote_hits);
        self.obs.inc("dist.remote_hits");
        self.obs.emit(TraceEvent::RemoteHit {
            job: job.0 as u64,
            sample: id.0,
            node: owner.0 as u64,
        });
        Fetch {
            ready_at,
            served_id: id,
            outcome: FetchOutcome::HitH,
        }
    }

    fn storage_fetch(
        &mut self,
        local: usize,
        job: JobId,
        id: SampleId,
        size: ByteSize,
        now: SimTime,
        storage: &mut dyn StorageBackend,
    ) -> Fetch {
        self.obs.inc(&self.nodes[local].keys.storage_fetches);
        self.local_fetch(local, job, id, size, now, storage)
    }

    /// Fire an armed mid-epoch kill when its fetch countdown expires.
    fn poll_kill_countdown(&mut self) {
        if let Some((node, left)) = self.kill_countdown {
            if left == 0 {
                self.kill_countdown = None;
                let at = self.clock;
                self.kill_node(node, at);
            } else {
                self.kill_countdown = Some((node, left - 1));
            }
        }
    }

    /// Beacon due heartbeats around the gossip ring, deliver what is
    /// due, and age the suspicion table. Only runs with a detector
    /// configured.
    fn run_failure_detector(&mut self, storage: &mut dyn StorageBackend) {
        let Some(hb) = self.config.heartbeat else {
            return;
        };
        let n = self.nodes.len();
        if n > 1 {
            for i in 0..n {
                if self.nodes[i].crashed {
                    continue;
                }
                while self.next_heartbeat[i] <= self.clock {
                    let at = self.next_heartbeat[i];
                    let to = NodeId(((i + 1) % n) as u32);
                    self.net.send(
                        NodeId(i as u32),
                        to,
                        CacheRpc::Heartbeat {
                            version: self.membership.version(),
                        },
                        at,
                    );
                    self.svc_obs.inc("svc.heartbeats_sent");
                    self.next_heartbeat[i] = at + hb.interval;
                }
            }
            for env in self.net.deliver_due(self.clock) {
                let receiver = env.to.0 as usize;
                if self.nodes[receiver].crashed {
                    // Beacons addressed to a dead node are lost; the
                    // sender is still provably alive, so the shared
                    // table hears it anyway (the ring re-routes).
                    self.membership.note_heard(env.from, env.deliver_at);
                    continue;
                }
                let _ = self.nodes[receiver].handle(env.rpc, env.deliver_at, storage);
                self.membership.note_heard(env.from, env.deliver_at);
            }
        }
        if !self.membership.advance(self.clock).is_empty() {
            self.repartition();
        }
    }

    /// Rebuild the partition map over the live set, move every shard
    /// entry to its new home (tracing `directory_remap` per move), and
    /// purge residency entries whose owner is down (counted as
    /// directory removes, preserving `len == inserts − removes`).
    fn repartition(&mut self) {
        let live = self.membership.live();
        let version = self.membership.version();
        self.partitioner = Partitioner::new(live.clone(), version);
        let mut all: Vec<(SampleId, NodeId, NodeId)> = Vec::new();
        for node in &mut self.nodes {
            let old_shard = node.id;
            for (s, owner) in node.shard.take_map() {
                all.push((s, owner, old_shard));
            }
        }
        all.sort_unstable_by_key(|&(s, _, _)| s);
        let mut purged = 0u64;
        let mut moved = 0u64;
        for (s, owner, old_shard) in all {
            if !self.membership.is_live(owner) {
                purged += 1;
                continue;
            }
            let new_shard = self.partitioner.owner(s);
            self.nodes[new_shard.0 as usize].shard.adopt(s, owner);
            if new_shard != old_shard {
                moved += 1;
                self.svc_obs.emit(TraceEvent::DirectoryRemap {
                    sample: s.0,
                    from_node: old_shard.0 as u64,
                    to_node: new_shard.0 as u64,
                });
            }
        }
        if purged > 0 {
            self.obs.add("dist.directory.removes", purged);
        }
        self.svc_obs.add("svc.repartition.moved", moved);
        self.svc_obs.add("svc.repartition.purged", purged);
        self.svc_obs.emit(TraceEvent::PartitionUpdate {
            version,
            live: live.len() as u64,
            moved,
            purged,
        });
    }

    /// Replay the node's recovery index against its fresh manager,
    /// skipping samples another live node owns by now (no duplication).
    fn warm_restore(&mut self, node: NodeId) {
        let Some(index) = self.recovery.load(node) else {
            self.svc_obs.inc("svc.recovery.cold_restarts");
            return;
        };
        let i = node.0 as usize;
        let mut keep = Vec::new();
        let mut skipped = 0u64;
        for e in &index.entries {
            let shard = self.partitioner.owner(e.id);
            match self.nodes[shard.0 as usize].shard.peek(e.id) {
                Some(owner) if owner != node => skipped += 1,
                _ => keep.push(*e),
            }
        }
        let bytes: ByteSize = keep.iter().map(|e| e.size).sum();
        let ready_at = self.clock
            + SimDuration::from_secs_f64(bytes.as_f64() / self.config.recovery_bandwidth);
        let Some(manager) = self.nodes[i].manager.as_mut() else {
            return;
        };
        let (restored, h, l) = manager.restore_residency(&keep, ready_at);
        for id in &restored {
            let shard = self.partitioner.owner(*id);
            self.nodes[shard.0 as usize].shard.insert(*id, node);
        }
        self.svc_obs.inc("svc.recovery.warm_restarts");
        self.svc_obs.add("svc.recovery.restored_samples", h + l);
        self.svc_obs.add("svc.recovery.skipped", skipped);
        self.svc_obs.add("svc.recovery.bytes", bytes.as_u64());
        self.svc_obs.emit(TraceEvent::WarmRecovery {
            node: node.0 as u64,
            restored_h: h,
            restored_l: l,
            skipped,
        });
    }

    /// Write the node's residency snapshot into the recovery store.
    fn write_recovery_index(&mut self, i: usize, epoch: Epoch) {
        if !self.recovery.enabled() {
            return;
        }
        let Some(manager) = self.nodes[i].manager.as_ref() else {
            return;
        };
        let index = RecoveryIndex {
            node: NodeId(i as u32),
            epoch,
            entries: manager.residency_snapshot(),
        };
        if self.recovery.save(&index).is_ok() {
            self.svc_obs.inc("svc.recovery.index_writes");
        }
    }

    /// Snapshot live nodes' residency on the periodic cadence, so a
    /// mid-epoch crash restarts from a view at most one interval stale
    /// rather than one full epoch.
    fn poll_index_writes(&mut self) {
        let Some(interval) = self.config.index_interval else {
            return;
        };
        let epoch = self.cluster_epoch.unwrap_or(Epoch(0));
        for i in 0..self.nodes.len() {
            if self.nodes[i].is_up() && self.next_index_write[i] <= self.clock {
                self.write_recovery_index(i, epoch);
                self.next_index_write[i] = self.clock + interval;
            }
        }
    }

    /// Apply scheduled churn for the cluster epoch that just began.
    fn on_cluster_epoch(&mut self, epoch: Epoch) {
        self.prev_epoch_fetches = self.epoch_fetches;
        self.epoch_fetches = 0;
        let due: Vec<ChurnEvent> = self
            .pending_churn
            .iter()
            .copied()
            .filter(|e| match e {
                ChurnEvent::Kill { epoch: e2, .. } | ChurnEvent::Rejoin { epoch: e2, .. } => {
                    *e2 == epoch
                }
            })
            .collect();
        self.pending_churn.retain(|e| match e {
            ChurnEvent::Kill { epoch: e2, .. } | ChurnEvent::Rejoin { epoch: e2, .. } => {
                *e2 != epoch
            }
        });
        for ev in due {
            match ev {
                ChurnEvent::Kill { node, .. } => {
                    let countdown = self.prev_epoch_fetches / 2;
                    if countdown == 0 {
                        let at = self.clock;
                        self.kill_node(node, at);
                    } else {
                        self.kill_countdown = Some((node, countdown));
                    }
                }
                ChurnEvent::Rejoin { node, warm, .. } => {
                    if self.rejoin_node(node, self.clock, warm).is_err() {
                        self.svc_obs.inc("svc.rejoin_failures");
                    }
                }
            }
        }
    }
}

impl Observable for CacheService {
    fn set_obs(&mut self, obs: Obs) {
        // One shared handle across every layer of the cluster: node
        // managers, the directory shards, and the cluster-level
        // counters all record into the same registry and trace ring.
        for node in &mut self.nodes {
            if let Some(m) = node.manager.as_mut() {
                CacheSystem::set_obs(m, obs.clone());
            }
            node.shard.set_obs(obs.clone());
        }
        obs.set_gauge("dist.nodes", self.nodes.len() as f64);
        self.obs = obs.clone();
        // The service plane (net, membership, recovery, churn) records
        // separately so the compatibility facade can keep it out of
        // golden snapshots.
        let svc = if self.config.quiet_service_plane {
            Obs::noop()
        } else {
            obs
        };
        self.net.set_obs(svc.clone());
        self.membership.set_obs(svc.clone());
        self.svc_obs = svc;
    }
}

impl CacheSystem for CacheService {
    fn name(&self) -> &str {
        "icache-service"
    }

    fn fetch(
        &mut self,
        job: JobId,
        id: SampleId,
        size: ByteSize,
        now: SimTime,
        storage: &mut dyn StorageBackend,
    ) -> Fetch {
        self.clock = self.clock.max(now);
        self.poll_kill_countdown();
        self.run_failure_detector(storage);
        self.poll_index_writes();
        self.epoch_fetches += 1;

        let local = self.node_of(job);
        let me = NodeId(local as u32);
        if self.nodes[local].is_up() && self.nodes[local].contains_cached(id) {
            self.obs.inc(&self.nodes[local].keys.local_hits);
            return self.local_fetch(local, job, id, size, now, storage);
        }
        let (lookup, t_dir) = self.shard_rpc(me, CacheRpc::Lookup { sample: id }, now, storage);
        let owner = match lookup {
            CacheRpcReply::Owner(o) => o,
            // Shard host crashed and not yet repartitioned away: the
            // lookup timed out and the client treats it as a miss.
            _ => None,
        };
        if let Some(owner_id) = owner {
            if owner_id != me {
                let (reply, t_remote) = self.rpc_from(
                    me,
                    owner_id,
                    CacheRpc::FetchRemote {
                        job,
                        sample: id,
                        size,
                    },
                    t_dir,
                    storage,
                );
                if let CacheRpcReply::RemoteData { bytes, .. } = reply {
                    if self.config.race_fetches {
                        // Hedge: issue the local storage fetch too and let
                        // the first responder win (ties go to the peer).
                        let hedged = self.local_fetch(local, job, id, size, t_remote, storage);
                        let remote_ready =
                            t_remote + self.net.data_link(owner_id, me).transfer_time(bytes);
                        if remote_ready <= hedged.ready_at {
                            self.svc_obs.inc("svc.race.remote_wins");
                            return self.serve_remote(local, owner_id, job, id, bytes, t_remote);
                        }
                        self.svc_obs.inc("svc.race.storage_wins");
                        self.obs.inc(&self.nodes[local].keys.storage_fetches);
                        return hedged;
                    }
                    return self.serve_remote(local, owner_id, job, id, bytes, t_dir);
                }
                // Owner unreachable (timed out) or no longer holds the
                // sample: fall through to storage from where the
                // exchange left off.
                return self.storage_fetch(local, job, id, size, t_remote, storage);
            }
        }
        self.storage_fetch(local, job, id, size, t_dir, storage)
    }

    fn update_hlist(&mut self, job: JobId, hlist: &HList) {
        // Every live node needs the importance view to manage its
        // regions; crashed nodes miss the broadcast and catch up from
        // the retained copy when they rejoin.
        self.hlists.insert(job, hlist.clone());
        for node in &mut self.nodes {
            if let Some(m) = node.manager.as_mut() {
                m.update_hlist(job, hlist);
            }
        }
    }

    fn on_epoch_start(&mut self, job: JobId, epoch: Epoch) {
        if self.cluster_epoch.is_none_or(|e| epoch > e) {
            self.cluster_epoch = Some(epoch);
            self.on_cluster_epoch(epoch);
        }
        let i = self.node_of(job);
        if let Some(m) = self.nodes[i].manager.as_mut() {
            m.on_epoch_start(job, epoch);
        }
    }

    fn on_epoch_end(&mut self, job: JobId, epoch: Epoch) {
        let i = self.node_of(job);
        if let Some(m) = self.nodes[i].manager.as_mut() {
            m.on_epoch_end(job, epoch);
            self.write_recovery_index(i, epoch);
        }
    }

    fn stats(&self) -> CacheStats {
        let mut total = self.lost_stats;
        for n in &self.nodes {
            let Some(m) = n.manager.as_ref() else {
                continue;
            };
            absorb(&mut total, &m.stats());
        }
        // Peer hits are cache hits of the cluster.
        total.h_hits += self.remote_hits;
        total.bytes_from_cache += self.remote_bytes;
        total
    }

    fn set_obs(&mut self, obs: Obs) {
        Observable::set_obs(self, obs);
    }

    fn reset_stats(&mut self) {
        for n in &mut self.nodes {
            if let Some(m) = n.manager.as_mut() {
                m.reset_stats();
            }
        }
        self.lost_stats = CacheStats::default();
        self.remote_hits = 0;
        self.remote_bytes = ByteSize::ZERO;
    }

    fn used_bytes(&self) -> ByteSize {
        self.nodes
            .iter()
            .filter_map(|n| n.manager.as_ref())
            .map(|m| m.used_bytes())
            .sum()
    }

    fn capacity(&self) -> ByteSize {
        self.nodes
            .iter()
            .filter_map(|n| n.manager.as_ref())
            .map(|m| m.capacity())
            .sum()
    }
}

/// Field-wise accumulate `s` into `total`.
fn absorb(total: &mut CacheStats, s: &CacheStats) {
    total.h_hits += s.h_hits;
    total.l_hits += s.l_hits;
    total.pm_hits += s.pm_hits;
    total.substitutions += s.substitutions;
    total.misses += s.misses;
    total.insertions += s.insertions;
    total.evictions += s.evictions;
    total.rejections += s.rejections;
    total.bytes_from_cache += s.bytes_from_cache;
    total.bytes_from_storage += s.bytes_from_storage;
}
