//! The sharded cache service: iCache's multi-node mode as a
//! message-passing system.
//!
//! This module replaces the old direct-call cluster (a `Vec` of
//! managers mutated behind a shared directory) with an explicit
//! service: nodes exchange [`CacheRpc`] messages over a simulated
//! network ([`SimNet`]) with configurable per-link latency and
//! bandwidth, membership is tracked by a heartbeat failure detector
//! ([`Membership`]), and the sample→node directory is sharded across
//! the live nodes by rendezvous hashing ([`Partitioner`]), moving
//! shards (and purging dead residency) whenever membership changes.
//! Crashed nodes can rejoin warm by replaying a small per-node
//! [`RecoveryIndex`] written at epoch ends.
//!
//! Layering, bottom up:
//!
//! - [`rpc`] — the message vocabulary ([`CacheRpc`] / [`CacheRpcReply`]).
//! - [`net`] — the deterministic simulated interconnect ([`SimNet`]).
//! - [`directory`] — one directory shard ([`DirectoryKv`]) and the
//!   [`DirectoryChange`] outcome of an insert.
//! - [`membership`] — heartbeat suspicion and rendezvous ownership.
//! - [`recovery`] — warm-restart index files.
//! - [`node`] — one cluster member and its [`NodeHandle`] view.
//! - [`cluster`] — [`CacheService`], the event loop tying it together.
//!
//! Everything is driven by `SimTime` passed in from the training loop;
//! there are no wall clocks and no background threads, so every run is
//! a pure function of (config, seed, schedule) — including kills,
//! suspicion, repartitions, and recovery.
//!
//! [`crate::DistributedCache`] remains as a thin facade over
//! [`CacheService`] with the exact observable behavior of the old
//! direct-call cluster.

pub mod cluster;
pub mod directory;
pub mod membership;
pub mod net;
pub mod node;
pub mod recovery;
pub mod rpc;

pub use cluster::{CacheService, ChurnEvent, ServiceConfig};
pub use directory::{DirectoryChange, DirectoryKv};
pub use membership::{HeartbeatConfig, Membership, Partitioner};
pub use net::{Envelope, LinkConfig, SimNet};
pub use node::NodeHandle;
pub(crate) use node::ServiceNode;
pub use recovery::{RecoveryEntry, RecoveryIndex, RecoveryMode, RecoveryRegion, RecoveryStore};
pub use rpc::{CacheRpc, CacheRpcReply, DirectoryOp};
