//! A deterministic simulated interconnect.
//!
//! Messages travel over directed links with configurable latency and
//! bandwidth, queued FIFO per link and delivered strictly by simulated
//! time (`SimTime`); ties break on a global send sequence number, so
//! delivery order is a pure function of the send history. No wall
//! clocks anywhere — the determinism lint applies to this module.

use crate::service::CacheRpc;
use icache_obs::{Obs, Observable};
use icache_types::{ByteSize, NodeId, SimDuration, SimTime};
use std::collections::{BTreeMap, VecDeque};

/// Latency/bandwidth of one directed link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkConfig {
    /// One-way propagation latency.
    pub latency: SimDuration,
    /// Transfer bandwidth in bytes/second.
    pub bandwidth: f64,
}

impl LinkConfig {
    /// Time for `bytes` to traverse this link.
    pub fn transfer_time(&self, bytes: ByteSize) -> SimDuration {
        self.latency + SimDuration::from_secs_f64(bytes.as_f64() / self.bandwidth)
    }
}

/// A queued message: one [`CacheRpc`] in flight between two nodes.
#[derive(Debug, Clone)]
pub struct Envelope {
    /// Sending node.
    pub from: NodeId,
    /// Receiving node.
    pub to: NodeId,
    /// When the message entered the link queue.
    pub sent_at: SimTime,
    /// When the message reaches the receiver.
    pub deliver_at: SimTime,
    /// Global send sequence number (the deterministic tiebreak).
    pub seq: u64,
    /// The request being carried.
    pub rpc: CacheRpc,
}

/// The simulated network: per-link FIFO queues over the `SimTime` clock.
///
/// Two planes share the fabric. *Control* messages (directory traffic,
/// heartbeats, membership) are metadata-sized and ride the control link
/// profile; *data* transfers (peer cache reads) are charged the data
/// link profile via [`SimNet::transfer`]. Per-link overrides let churn
/// experiments slow individual paths down.
#[derive(Debug)]
pub struct SimNet {
    control: LinkConfig,
    data: LinkConfig,
    overrides: BTreeMap<(u32, u32), LinkConfig>,
    queues: BTreeMap<(u32, u32), VecDeque<Envelope>>,
    /// When each link's tail transfer finishes (used only when
    /// `serialize` is set — back-to-back sends then queue behind each
    /// other instead of overlapping).
    busy: BTreeMap<(u32, u32), SimTime>,
    serialize: bool,
    next_seq: u64,
    obs: Obs,
}

impl Observable for SimNet {
    fn set_obs(&mut self, obs: Obs) {
        self.obs = obs;
    }
}

impl SimNet {
    /// A fabric with the given control/data link profiles.
    pub fn new(control: LinkConfig, data: LinkConfig) -> Self {
        SimNet {
            control,
            data,
            overrides: BTreeMap::new(),
            queues: BTreeMap::new(),
            busy: BTreeMap::new(),
            serialize: false,
            next_seq: 0,
            obs: Obs::noop(),
        }
    }

    /// Override the data-link profile of one directed link.
    pub fn set_link(&mut self, from: NodeId, to: NodeId, link: LinkConfig) {
        self.overrides.insert((from.0, to.0), link);
    }

    /// Serialize transfers per link: a send may not start before the
    /// link's previous transfer finished. Off by default (links are
    /// modelled as uncontended).
    pub fn set_serialize(&mut self, on: bool) {
        self.serialize = on;
    }

    /// The data-link profile between two nodes (override or default).
    pub fn data_link(&self, from: NodeId, to: NodeId) -> LinkConfig {
        self.overrides
            .get(&(from.0, to.0))
            .copied()
            .unwrap_or(self.data)
    }

    /// Messages queued but not yet delivered.
    pub fn in_flight(&self) -> usize {
        self.queues.values().map(|q| q.len()).sum()
    }

    /// Queue a control-plane request; returns its delivery time.
    pub fn send(&mut self, from: NodeId, to: NodeId, rpc: CacheRpc, now: SimTime) -> SimTime {
        let link = self.control;
        let key = (from.0, to.0);
        let start = if self.serialize {
            now.max(self.busy.get(&key).copied().unwrap_or(SimTime::ZERO))
        } else {
            now
        };
        let deliver_at = start + link.transfer_time(rpc.request_bytes());
        if self.serialize {
            self.busy.insert(key, deliver_at);
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.obs.inc("svc.net.sent");
        self.queues.entry(key).or_default().push_back(Envelope {
            from,
            to,
            sent_at: now,
            deliver_at,
            seq,
            rpc,
        });
        deliver_at
    }

    /// Send a control-plane request and deliver it in the same step:
    /// the synchronous request/reply path of the service (the caller
    /// blocks on the reply anyway, so the message never sits in a
    /// queue). Returns the delivery time. Counts as one sent and one
    /// delivered message.
    pub fn express(&mut self, from: NodeId, to: NodeId, rpc: CacheRpc, now: SimTime) -> SimTime {
        let _ = rpc;
        let key = (from.0, to.0);
        let start = if self.serialize {
            now.max(self.busy.get(&key).copied().unwrap_or(SimTime::ZERO))
        } else {
            now
        };
        let deliver_at = start + self.control.latency;
        if self.serialize {
            self.busy.insert(key, deliver_at);
        }
        self.next_seq += 1;
        self.obs.inc("svc.net.sent");
        self.obs.add("svc.net.delivered", 1);
        deliver_at
    }

    /// Charge a data-plane payload transfer on the `from → to` link and
    /// return its completion time. This is the peer-read path: latency
    /// plus `bytes / bandwidth`, optionally serialized behind earlier
    /// transfers on the same link.
    pub fn transfer(&mut self, from: NodeId, to: NodeId, bytes: ByteSize, now: SimTime) -> SimTime {
        let link = self.data_link(from, to);
        let key = (from.0, to.0);
        let start = if self.serialize {
            now.max(self.busy.get(&key).copied().unwrap_or(SimTime::ZERO))
        } else {
            now
        };
        let done = start + link.transfer_time(bytes);
        if self.serialize {
            self.busy.insert(key, done);
        }
        self.obs.inc("svc.net.transfers");
        self.obs.add("svc.net.bytes", bytes.as_u64());
        done
    }

    /// Deliver every queued message due by `now`, ordered by
    /// `(deliver_at, seq)` — a deterministic merge of the per-link FIFO
    /// queues.
    pub fn deliver_due(&mut self, now: SimTime) -> Vec<Envelope> {
        let mut due: Vec<Envelope> = Vec::new();
        for q in self.queues.values_mut() {
            while q.front().is_some_and(|e| e.deliver_at <= now) {
                if let Some(e) = q.pop_front() {
                    due.push(e);
                }
            }
        }
        due.sort_by_key(|e| (e.deliver_at, e.seq));
        self.obs.add("svc.net.delivered", due.len() as u64);
        due
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icache_types::SampleId;

    fn net() -> SimNet {
        SimNet::new(
            LinkConfig {
                latency: SimDuration::from_micros(10),
                bandwidth: 1e9,
            },
            LinkConfig {
                latency: SimDuration::from_micros(80),
                bandwidth: 1.25e9,
            },
        )
    }

    #[test]
    fn control_sends_arrive_after_latency_in_fifo_order() {
        let mut n = net();
        let t0 = SimTime::ZERO;
        let a = n.send(NodeId(0), NodeId(1), CacheRpc::Heartbeat { version: 0 }, t0);
        let b = n.send(
            NodeId(0),
            NodeId(1),
            CacheRpc::Lookup {
                sample: SampleId(1),
            },
            t0,
        );
        assert_eq!(a, t0 + SimDuration::from_micros(10));
        assert_eq!(a, b, "uncontended links overlap");
        assert_eq!(n.in_flight(), 2);
        let due = n.deliver_due(a);
        assert_eq!(due.len(), 2);
        assert!(due[0].seq < due[1].seq, "FIFO by send sequence");
        assert_eq!(n.in_flight(), 0);
    }

    #[test]
    fn undelivered_messages_wait_for_their_time() {
        let mut n = net();
        let t = n.send(
            NodeId(1),
            NodeId(0),
            CacheRpc::Heartbeat { version: 1 },
            SimTime::ZERO,
        );
        assert!(n.deliver_due(SimTime::from_nanos(9_999)).is_empty());
        assert_eq!(n.deliver_due(t).len(), 1);
    }

    #[test]
    fn data_transfer_charges_latency_plus_bandwidth() {
        let mut n = net();
        let done = n.transfer(
            NodeId(1),
            NodeId(0),
            ByteSize::new(1_250_000),
            SimTime::ZERO,
        );
        // 80 µs latency + 1.25 MB / 1.25 GB/s = 80 µs + 1 ms.
        assert_eq!(
            done,
            SimTime::ZERO + SimDuration::from_micros(80) + SimDuration::from_millis(1)
        );
    }

    #[test]
    fn serialized_links_queue_back_to_back() {
        let mut n = net();
        n.set_serialize(true);
        let first = n.transfer(
            NodeId(0),
            NodeId(1),
            ByteSize::new(1_250_000),
            SimTime::ZERO,
        );
        let second = n.transfer(
            NodeId(0),
            NodeId(1),
            ByteSize::new(1_250_000),
            SimTime::ZERO,
        );
        assert!(second > first, "second transfer waits for the link");
        // The reverse direction is a different link and does not queue.
        let reverse = n.transfer(
            NodeId(1),
            NodeId(0),
            ByteSize::new(1_250_000),
            SimTime::ZERO,
        );
        assert_eq!(reverse, first);
    }

    #[test]
    fn per_link_overrides_slow_one_path_only() {
        let mut n = net();
        n.set_link(
            NodeId(0),
            NodeId(1),
            LinkConfig {
                latency: SimDuration::from_millis(5),
                bandwidth: 1.25e9,
            },
        );
        let slow = n.transfer(NodeId(0), NodeId(1), ByteSize::new(0), SimTime::ZERO);
        let fast = n.transfer(NodeId(1), NodeId(0), ByteSize::new(0), SimTime::ZERO);
        assert_eq!(slow, SimTime::ZERO + SimDuration::from_millis(5));
        assert_eq!(fast, SimTime::ZERO + SimDuration::from_micros(80));
    }

    #[test]
    fn net_counters_flow_into_the_installed_obs() {
        let obs = Obs::new();
        let mut n = net().with_obs(obs.clone());
        n.send(
            NodeId(0),
            NodeId(1),
            CacheRpc::Heartbeat { version: 0 },
            SimTime::ZERO,
        );
        n.transfer(NodeId(0), NodeId(1), ByteSize::new(100), SimTime::ZERO);
        n.deliver_due(SimTime::ZERO + SimDuration::from_secs_f64(1.0));
        assert_eq!(obs.counter("svc.net.sent"), 1);
        assert_eq!(obs.counter("svc.net.delivered"), 1);
        assert_eq!(obs.counter("svc.net.transfers"), 1);
        assert_eq!(obs.counter("svc.net.bytes"), 100);
    }
}
