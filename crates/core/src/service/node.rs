//! One node of the sharded cache service.
//!
//! A `ServiceNode` bundles what one machine hosts: its cache manager
//! (absent while crashed) and its directory shard. All access goes
//! through `ServiceNode::handle` — the [`CacheRpc`] dispatch that is
//! the node's entire API — or through the read-only [`NodeHandle`]
//! facade handed out for diagnostics and tests, which replaces the old
//! direct `&[IcacheManager]` access.

use crate::service::{CacheRpc, CacheRpcReply, DirectoryKv, DirectoryOp};
use crate::{CacheStats, CacheSystem, IcacheManager};
use icache_storage::StorageBackend;
use icache_types::{ByteSize, NodeId, NodeState, SampleId, SimTime};

/// Per-node counter names, pre-rendered so the fetch hot path does not
/// format strings.
#[derive(Debug)]
pub(crate) struct NodeCounterKeys {
    pub(crate) local_hits: String,
    pub(crate) remote_hits: String,
    pub(crate) storage_fetches: String,
}

impl NodeCounterKeys {
    /// Counter names are assembled once here and emitted through the
    /// cached strings, so the contract checker learns them from these
    /// declarations:
    // lint: metric("dist.node{*}.local_hits")
    // lint: metric("dist.node{*}.remote_hits")
    // lint: metric("dist.node{*}.storage_fetches")
    pub(crate) fn new(i: usize) -> Self {
        NodeCounterKeys {
            local_hits: format!("dist.node{i}.local_hits"),
            remote_hits: format!("dist.node{i}.remote_hits"),
            storage_fetches: format!("dist.node{i}.storage_fetches"),
        }
    }
}

/// One cluster member: manager + directory shard + crash flag.
#[derive(Debug)]
pub(crate) struct ServiceNode {
    pub(crate) id: NodeId,
    /// `None` while the node is crashed (cache contents lost).
    pub(crate) manager: Option<IcacheManager>,
    /// This node's slice of the sample→node directory.
    pub(crate) shard: DirectoryKv,
    /// Crashed nodes ignore every message until they rejoin.
    pub(crate) crashed: bool,
    pub(crate) keys: NodeCounterKeys,
}

impl ServiceNode {
    pub(crate) fn new(id: NodeId, manager: IcacheManager) -> Self {
        ServiceNode {
            id,
            manager: Some(manager),
            shard: DirectoryKv::new(),
            crashed: false,
            keys: NodeCounterKeys::new(id.0 as usize),
        }
    }

    /// Whether the node is up and holding a manager.
    pub(crate) fn is_up(&self) -> bool {
        !self.crashed && self.manager.is_some()
    }

    /// Whether the node's cache holds `id` (false while crashed).
    pub(crate) fn contains_cached(&self, id: SampleId) -> bool {
        self.manager
            .as_ref()
            .is_some_and(|m| !self.crashed && m.contains_cached(id))
    }

    /// Dispatch one request. Crashed nodes never reply — the service
    /// synthesizes [`CacheRpcReply::TimedOut`] on their behalf so the
    /// caller pays the RPC timeout instead of blocking forever.
    pub(crate) fn handle(
        &mut self,
        rpc: CacheRpc,
        now: SimTime,
        storage: &mut dyn StorageBackend,
    ) -> CacheRpcReply {
        if self.crashed {
            return CacheRpcReply::TimedOut;
        }
        match rpc {
            CacheRpc::Lookup { sample } => CacheRpcReply::Owner(self.shard.lookup(sample)),
            CacheRpc::FetchLocal { job, sample, size } => match &mut self.manager {
                Some(m) => CacheRpcReply::Fetched(m.fetch(job, sample, size, now, storage)),
                None => CacheRpcReply::TimedOut,
            },
            CacheRpc::FetchRemote { sample, size, .. } => {
                if self.contains_cached(sample) {
                    CacheRpcReply::RemoteData {
                        sample,
                        bytes: size,
                    }
                } else {
                    CacheRpcReply::NotFound
                }
            }
            CacheRpc::DirectoryUpdate { sample, op } => match op {
                DirectoryOp::Insert(node) => {
                    CacheRpcReply::Updated(self.shard.insert(sample, node))
                }
                DirectoryOp::Remove => match self.shard.remove(sample) {
                    Some(_) => CacheRpcReply::Ack,
                    None => CacheRpcReply::NotFound,
                },
            },
            CacheRpc::Heartbeat { .. } | CacheRpc::Join { .. } | CacheRpc::Leave { .. } => {
                // Liveness and membership are cluster-level concerns; the
                // node merely acknowledges receipt.
                CacheRpcReply::Ack
            }
        }
    }
}

/// Read-only view of one service node, replacing direct manager access.
///
/// Obtained from [`crate::service::CacheService::node`]; everything a
/// diagnostic, test, or report needs from a node flows through here.
#[derive(Debug)]
pub struct NodeHandle<'a> {
    pub(crate) node: &'a ServiceNode,
    pub(crate) state: NodeState,
}

impl NodeHandle<'_> {
    /// The node's cluster id.
    pub fn id(&self) -> NodeId {
        self.node.id
    }

    /// The failure detector's view of this node.
    pub fn state(&self) -> NodeState {
        self.state
    }

    /// Whether the node currently serves traffic (not crashed).
    pub fn is_up(&self) -> bool {
        self.node.is_up()
    }

    /// Whether this node's cache holds `id` right now.
    pub fn contains_cached(&self, id: SampleId) -> bool {
        self.node.contains_cached(id)
    }

    /// The node's cache counters; zeroed while crashed (a crash loses
    /// the process, and with it the in-memory stats).
    pub fn stats(&self) -> CacheStats {
        self.node
            .manager
            .as_ref()
            .map(|m| m.stats())
            .unwrap_or_default()
    }

    /// Bytes resident in this node's cache.
    pub fn used_bytes(&self) -> ByteSize {
        self.node
            .manager
            .as_ref()
            .map(|m| m.used_bytes())
            .unwrap_or(ByteSize::ZERO)
    }

    /// Entries in this node's directory shard.
    pub fn shard_len(&self) -> usize {
        self.node.shard.len()
    }
}
