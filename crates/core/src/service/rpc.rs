//! The message vocabulary of the sharded cache service.
//!
//! Every interaction between nodes — directory reads and writes, peer
//! cache reads, liveness, membership — is expressed as a [`CacheRpc`]
//! request answered by a [`CacheRpcReply`]. The request enum is the
//! entire node-facing API surface: nothing reaches another node's
//! manager or directory shard except through one of these messages
//! travelling over the [`crate::service::SimNet`].

use crate::service::DirectoryChange;
use crate::Fetch;
use icache_types::{ByteSize, JobId, NodeId, SampleId};

/// A directory mutation carried by [`CacheRpc::DirectoryUpdate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DirectoryOp {
    /// Register the sample as cached on `NodeId`.
    Insert(NodeId),
    /// Unregister the sample.
    Remove,
}

/// A request sent from one node (or a training client) to a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheRpc {
    /// Ask the receiver's directory shard which node caches `sample`.
    Lookup {
        /// Sample to resolve.
        sample: SampleId,
    },
    /// Fetch through the receiver's own manager (client → its co-located
    /// node; the only message that may touch backing storage).
    FetchLocal {
        /// Requesting job.
        job: JobId,
        /// Sample to fetch.
        sample: SampleId,
        /// Payload size of the sample.
        size: ByteSize,
    },
    /// Read a cached sample out of the receiver's memory for a peer.
    FetchRemote {
        /// Requesting job.
        job: JobId,
        /// Sample to read.
        sample: SampleId,
        /// Payload size of the sample.
        size: ByteSize,
    },
    /// Mutate the receiver's directory shard.
    DirectoryUpdate {
        /// Sample whose mapping changes.
        sample: SampleId,
        /// The mutation to apply.
        op: DirectoryOp,
    },
    /// Liveness beacon for the failure detector.
    Heartbeat {
        /// Sender's membership version (detects stale beacons).
        version: u64,
    },
    /// Announce (re)joining the cluster.
    Join {
        /// The joining node.
        node: NodeId,
        /// Whether the node intends a warm (index-driven) restart.
        warm: bool,
    },
    /// Announce a graceful departure.
    Leave {
        /// The departing node.
        node: NodeId,
    },
}

impl CacheRpc {
    /// Short machine-readable name (used for per-kind message counters).
    pub fn name(&self) -> &'static str {
        match self {
            CacheRpc::Lookup { .. } => "lookup",
            CacheRpc::FetchLocal { .. } => "fetch_local",
            CacheRpc::FetchRemote { .. } => "fetch_remote",
            CacheRpc::DirectoryUpdate { .. } => "directory_update",
            CacheRpc::Heartbeat { .. } => "heartbeat",
            CacheRpc::Join { .. } => "join",
            CacheRpc::Leave { .. } => "leave",
        }
    }

    /// Bytes this *request* puts on the wire. Control messages are
    /// metadata-sized and modelled as free; only data replies (the
    /// sample payload answering [`CacheRpc::FetchRemote`]) pay for
    /// bandwidth, which [`crate::service::SimNet::transfer`] charges
    /// separately.
    pub fn request_bytes(&self) -> ByteSize {
        ByteSize::ZERO
    }
}

/// The answer to a [`CacheRpc`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CacheRpcReply {
    /// Directory shard answer: the owner of the sample, if any.
    Owner(Option<NodeId>),
    /// A completed local fetch (timing included).
    Fetched(Fetch),
    /// The receiver holds the requested sample and will stream `bytes`
    /// over the interconnect.
    RemoteData {
        /// The sample being streamed.
        sample: SampleId,
        /// Payload size the transfer will carry.
        bytes: ByteSize,
    },
    /// Result of a directory mutation.
    Updated(DirectoryChange),
    /// The receiver does not hold the requested sample (or shard entry).
    NotFound,
    /// Plain acknowledgement (heartbeats, membership announcements).
    Ack,
    /// The receiver never answered: the sender's RPC timer expired.
    /// Synthesized by the service on behalf of crashed nodes.
    TimedOut,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_names_cover_the_vocabulary() {
        let reqs = [
            CacheRpc::Lookup {
                sample: SampleId(1),
            },
            CacheRpc::FetchLocal {
                job: JobId(0),
                sample: SampleId(1),
                size: ByteSize::kib(3),
            },
            CacheRpc::FetchRemote {
                job: JobId(0),
                sample: SampleId(1),
                size: ByteSize::kib(3),
            },
            CacheRpc::DirectoryUpdate {
                sample: SampleId(1),
                op: DirectoryOp::Insert(NodeId(0)),
            },
            CacheRpc::Heartbeat { version: 0 },
            CacheRpc::Join {
                node: NodeId(1),
                warm: true,
            },
            CacheRpc::Leave { node: NodeId(1) },
        ];
        let names: Vec<_> = reqs.iter().map(|r| r.name()).collect();
        assert_eq!(
            names,
            vec![
                "lookup",
                "fetch_local",
                "fetch_remote",
                "directory_update",
                "heartbeat",
                "join",
                "leave"
            ]
        );
        for r in &reqs {
            assert!(r.request_bytes().is_zero(), "requests are metadata-sized");
        }
    }
}
