//! Cached sample payloads.

use bytes::Bytes;
use icache_types::{splitmix64, ByteSize, SampleId};

/// A sample as held by the cache: identity, size, and a digest standing in
/// for the payload.
///
/// The simulator never needs the image bytes themselves — only their size
/// (for capacity accounting and transfer timing) and a way to check that
/// the right sample was produced. [`SampleData::materialize`] can generate
/// the deterministic pseudo-payload when a test or example wants real
/// bytes to flow.
///
/// # Examples
///
/// ```
/// use icache_core::SampleData;
/// use icache_types::{ByteSize, SampleId};
///
/// let a = SampleData::generate(SampleId(1), ByteSize::new(64));
/// let b = SampleData::generate(SampleId(1), ByteSize::new(64));
/// assert_eq!(a.digest(), b.digest());
/// assert_eq!(a.materialize().len(), 64);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SampleData {
    id: SampleId,
    size: ByteSize,
    digest: u64,
}

impl SampleData {
    /// Create the canonical payload descriptor for `(id, size)`.
    pub fn generate(id: SampleId, size: ByteSize) -> Self {
        let digest = splitmix64(splitmix64(id.0) ^ size.as_u64().rotate_left(32));
        SampleData { id, size, digest }
    }

    /// The sample this payload belongs to.
    pub fn id(&self) -> SampleId {
        self.id
    }

    /// Payload size.
    pub fn size(&self) -> ByteSize {
        self.size
    }

    /// Content digest (deterministic in `(id, size)`).
    pub fn digest(&self) -> u64 {
        self.digest
    }

    /// Produce the actual pseudo-random payload bytes.
    ///
    /// Intended for tests and examples; the simulation hot path never
    /// materialises payloads.
    pub fn materialize(&self) -> Bytes {
        let n = self.size.as_u64() as usize;
        let mut out = Vec::with_capacity(n);
        let mut state = self.digest;
        while out.len() < n {
            state = splitmix64(state);
            let chunk = state.to_le_bytes();
            let take = chunk.len().min(n - out.len());
            out.extend_from_slice(&chunk[..take]);
        }
        Bytes::from(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_depends_on_id_and_size() {
        let base = SampleData::generate(SampleId(1), ByteSize::new(10));
        assert_ne!(
            base.digest(),
            SampleData::generate(SampleId(2), ByteSize::new(10)).digest()
        );
        assert_ne!(
            base.digest(),
            SampleData::generate(SampleId(1), ByteSize::new(11)).digest()
        );
    }

    #[test]
    fn materialize_is_deterministic_and_sized() {
        let d = SampleData::generate(SampleId(9), ByteSize::new(100));
        let a = d.materialize();
        let b = d.materialize();
        assert_eq!(a, b);
        assert_eq!(a.len(), 100);
    }

    #[test]
    fn zero_size_materialises_empty() {
        let d = SampleData::generate(SampleId(0), ByteSize::ZERO);
        assert!(d.materialize().is_empty());
    }
}
