//! The H-cache: the high-importance region.

use crate::dense::IdSlab;
use crate::{SampleData, ShadowedHeap};
use icache_types::{ByteSize, ImportanceValue, SampleId};

/// Result of offering a sample to the H-cache.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct AdmitResult {
    /// Whether the incoming sample is now cached.
    pub admitted: bool,
    /// Samples that were evicted to make room (empty when rejected).
    pub evicted: Vec<SampleId>,
}

/// The high-importance cache region (§III-B, Algorithm 1).
///
/// A key-value store of H-samples plus the shadowed H-heap. Admission
/// follows the paper exactly: while the region is full, the incoming
/// sample displaces top-of-heap victims only if its importance exceeds
/// theirs; otherwise it is not admitted. Eviction is atomic — if the
/// incoming sample ultimately cannot fit, any provisionally popped victims
/// are restored.
///
/// # Examples
///
/// ```
/// use icache_core::{HCache, SampleData};
/// use icache_types::{ByteSize, ImportanceValue, SampleId};
///
/// let mut hc = HCache::new(ByteSize::new(100));
/// let item = |id, sz| SampleData::generate(SampleId(id), ByteSize::new(sz));
/// let iv = |v| ImportanceValue::new(v).unwrap();
///
/// assert!(hc.admit(item(1, 60), iv(1.0)).admitted);
/// assert!(hc.admit(item(2, 60), iv(5.0)).admitted, "displaces #1");
/// assert!(!hc.admit(item(3, 60), iv(0.5)).admitted, "below the bar");
/// assert!(hc.contains(SampleId(2)));
/// ```
#[derive(Debug, Clone, Default)]
pub struct HCache {
    capacity: ByteSize,
    used: ByteSize,
    items: IdSlab<SampleData>,
    heap: ShadowedHeap,
}

impl HCache {
    /// An empty H-cache with the given byte capacity.
    pub fn new(capacity: ByteSize) -> Self {
        HCache {
            capacity,
            ..Default::default()
        }
    }

    /// Configured capacity.
    pub fn capacity(&self) -> ByteSize {
        self.capacity
    }

    /// Bytes currently occupied.
    pub fn used(&self) -> ByteSize {
        self.used
    }

    /// Number of cached samples.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Whether `id` is cached.
    pub fn contains(&self, id: SampleId) -> bool {
        self.items.contains_key(id)
    }

    /// Read `id` from the region, if cached.
    pub fn get(&self, id: SampleId) -> Option<&SampleData> {
        self.items.get(id)
    }

    /// The least importance currently protected by the region.
    pub fn min_importance(&self) -> Option<ImportanceValue> {
        self.heap.peek_evict_candidate().map(|(_, iv)| iv)
    }

    /// Offer `data` with importance `iv` (Algorithm 1 lines 9–16).
    ///
    /// If the sample is already cached its importance is refreshed. If it
    /// can never fit (larger than the whole region) it is rejected.
    pub fn admit(&mut self, data: SampleData, iv: ImportanceValue) -> AdmitResult {
        let id = data.id();
        if self.items.contains_key(id) {
            self.heap.update_key(id, iv);
            return AdmitResult {
                admitted: true,
                evicted: Vec::new(),
            };
        }
        if data.size() > self.capacity {
            return AdmitResult::default();
        }
        // Fast path: free space available.
        if self.used + data.size() <= self.capacity {
            self.insert_unchecked(data, iv);
            return AdmitResult {
                admitted: true,
                evicted: Vec::new(),
            };
        }
        // Full: pop victims while they are strictly less important.
        let mut popped: Vec<(SampleId, ImportanceValue)> = Vec::new();
        let mut freed = ByteSize::ZERO;
        let needed = data.size();
        while self.used.saturating_sub(freed) + needed > self.capacity {
            match self.heap.peek_evict_candidate() {
                Some((vid, viv)) if viv < iv => {
                    self.heap.pop_evict();
                    freed += self.items.get(vid).expect("victim is cached").size();
                    popped.push((vid, viv));
                }
                _ => {
                    // Cannot make room: restore provisional victims.
                    for (vid, viv) in popped {
                        self.heap.insert(vid, viv);
                    }
                    return AdmitResult::default();
                }
            }
        }
        let evicted: Vec<SampleId> = popped
            .into_iter()
            .map(|(vid, _)| {
                let item = self.items.remove(vid).expect("victim is cached");
                self.used -= item.size();
                vid
            })
            .collect();
        self.insert_unchecked(data, iv);
        AdmitResult {
            admitted: true,
            evicted,
        }
    }

    /// Remove `id` outright (used when a sample is demoted or the region
    /// shrinks). Returns true if it was cached.
    pub fn evict(&mut self, id: SampleId) -> bool {
        match self.items.remove(id) {
            Some(item) => {
                self.used -= item.size();
                self.heap.remove(id);
                true
            }
            None => false,
        }
    }

    /// Shrink or grow the region to `new_capacity`, evicting
    /// least-important samples as needed. Returns the evicted ids.
    pub fn resize(&mut self, new_capacity: ByteSize) -> Vec<SampleId> {
        self.capacity = new_capacity;
        let mut evicted = Vec::new();
        while self.used > self.capacity {
            let (vid, _) = self.heap.pop_evict().expect("used > 0 implies nodes exist");
            let item = self.items.remove(vid).expect("heap and map agree");
            self.used -= item.size();
            evicted.push(vid);
        }
        evicted
    }

    /// Open a shadow-heap refresh window with new importance values.
    /// Cached samples absent from `fresh` are re-keyed to zero — they are
    /// no longer H-samples and become prime eviction candidates.
    pub fn begin_refresh(&mut self, fresh: &IdSlab<ImportanceValue>) {
        // Streamed straight into the window — no intermediate map here.
        let items = &self.items;
        self.heap.begin_refresh(
            items
                .keys()
                .map(|id| (id, fresh.get(id).copied().unwrap_or(ImportanceValue::ZERO))),
        );
    }

    /// Close the refresh window (typically at the next epoch boundary).
    pub fn finish_refresh(&mut self) {
        self.heap.finish_refresh();
    }

    /// Whether a refresh window is open.
    pub fn is_refreshing(&self) -> bool {
        self.heap.is_refreshing()
    }

    /// Iterate over cached ids in ascending id order.
    pub fn ids(&self) -> impl Iterator<Item = SampleId> + '_ {
        self.items.keys()
    }

    /// A uniformly random resident sample (used by the `ST_HC`
    /// substitution-policy ablation of §V-E). Returns `None` when empty.
    pub fn random_resident(&self, rng: &mut impl rand::Rng) -> Option<SampleId> {
        if self.items.is_empty() {
            return None;
        }
        self.heap.id_at(rng.gen_range(0..self.len()))
    }

    fn insert_unchecked(&mut self, data: SampleData, iv: ImportanceValue) {
        self.used += data.size();
        self.heap.insert(data.id(), iv);
        self.items.insert(data.id(), data);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn item(id: u64, sz: u64) -> SampleData {
        SampleData::generate(SampleId(id), ByteSize::new(sz))
    }

    fn iv(v: f64) -> ImportanceValue {
        ImportanceValue::new(v).unwrap()
    }

    #[test]
    fn fills_free_space_without_eviction() {
        let mut hc = HCache::new(ByteSize::new(100));
        assert!(hc.admit(item(1, 40), iv(1.0)).admitted);
        assert!(hc.admit(item(2, 40), iv(0.1)).admitted);
        assert_eq!(hc.used(), ByteSize::new(80));
        assert_eq!(hc.len(), 2);
    }

    #[test]
    fn eviction_requires_strictly_higher_importance() {
        let mut hc = HCache::new(ByteSize::new(100));
        hc.admit(item(1, 100), iv(2.0));
        let equal = hc.admit(item(2, 100), iv(2.0));
        assert!(!equal.admitted, "equal importance does not displace");
        let higher = hc.admit(item(3, 100), iv(2.1));
        assert!(higher.admitted);
        assert_eq!(higher.evicted, vec![SampleId(1)]);
        assert!(hc.contains(SampleId(3)));
        assert!(!hc.contains(SampleId(1)));
    }

    #[test]
    fn multi_victim_eviction_is_atomic() {
        let mut hc = HCache::new(ByteSize::new(100));
        hc.admit(item(1, 50), iv(1.0));
        hc.admit(item(2, 50), iv(5.0));
        // Incoming 100-byte sample with iv 3: would need both victims but
        // #2's importance (5) exceeds 3 -> reject, and #1 must survive.
        let r = hc.admit(item(3, 100), iv(3.0));
        assert!(!r.admitted);
        assert!(hc.contains(SampleId(1)), "provisional victim restored");
        assert!(hc.contains(SampleId(2)));
        assert_eq!(hc.used(), ByteSize::new(100));
        assert_eq!(hc.min_importance(), Some(iv(1.0)));
    }

    #[test]
    fn oversized_items_are_rejected() {
        let mut hc = HCache::new(ByteSize::new(10));
        assert!(!hc.admit(item(1, 11), iv(100.0)).admitted);
        assert!(hc.is_empty());
    }

    #[test]
    fn readmitting_updates_importance() {
        let mut hc = HCache::new(ByteSize::new(100));
        hc.admit(item(1, 50), iv(1.0));
        hc.admit(item(2, 50), iv(2.0));
        // Refresh #1's importance upward, then a new sample must displace #2.
        assert!(hc.admit(item(1, 50), iv(9.0)).admitted);
        let r = hc.admit(item(3, 50), iv(3.0));
        assert!(r.admitted);
        assert_eq!(r.evicted, vec![SampleId(2)]);
    }

    #[test]
    fn resize_shrinks_by_importance_order() {
        let mut hc = HCache::new(ByteSize::new(300));
        hc.admit(item(1, 100), iv(1.0));
        hc.admit(item(2, 100), iv(3.0));
        hc.admit(item(3, 100), iv(2.0));
        let evicted = hc.resize(ByteSize::new(150));
        assert_eq!(evicted, vec![SampleId(1), SampleId(3)]);
        assert!(hc.contains(SampleId(2)));
        assert_eq!(hc.capacity(), ByteSize::new(150));
    }

    #[test]
    fn refresh_demotes_absent_samples_to_zero() {
        let mut hc = HCache::new(ByteSize::new(200));
        hc.admit(item(1, 100), iv(5.0));
        hc.admit(item(2, 100), iv(1.0));
        // New H-list only contains #2 (now very important).
        let fresh: IdSlab<_> = [(SampleId(2), iv(9.0))].into_iter().collect();
        hc.begin_refresh(&fresh);
        hc.finish_refresh();
        // #1 was demoted to zero: any positive-importance sample displaces it.
        let r = hc.admit(item(3, 100), iv(0.5));
        assert!(r.admitted);
        assert_eq!(r.evicted, vec![SampleId(1)]);
    }

    #[test]
    fn explicit_evict_frees_space() {
        let mut hc = HCache::new(ByteSize::new(100));
        hc.admit(item(1, 100), iv(1.0));
        assert!(hc.evict(SampleId(1)));
        assert!(!hc.evict(SampleId(1)));
        assert_eq!(hc.used(), ByteSize::ZERO);
        assert!(hc.admit(item(2, 100), iv(0.1)).admitted);
    }

    #[test]
    fn get_returns_cached_payload() {
        let mut hc = HCache::new(ByteSize::new(100));
        let d = item(4, 10);
        hc.admit(d, iv(1.0));
        assert_eq!(hc.get(SampleId(4)), Some(&d));
        assert_eq!(hc.get(SampleId(5)), None);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Capacity accounting never breaks, whatever the admission
        /// sequence: used <= capacity, and used equals the sum of cached
        /// item sizes.
        #[test]
        fn capacity_invariants(ops in proptest::collection::vec(
            (0u64..30, 1u64..40, 0u32..100), 1..300)) {
            let mut hc = HCache::new(ByteSize::new(100));
            for (id, sz, ivv) in ops {
                let _ = hc.admit(
                    SampleData::generate(SampleId(id), ByteSize::new(sz)),
                    ImportanceValue::new(ivv as f64).unwrap(),
                );
                prop_assert!(hc.used() <= hc.capacity());
                let sum: ByteSize = hc.ids().map(|i| hc.get(i).unwrap().size()).sum();
                prop_assert_eq!(sum, hc.used());
            }
        }

        /// After any admission sequence, the minimum importance protected
        /// by the cache never decreases when a higher-importance item is
        /// offered to a full cache.
        #[test]
        fn admission_bar_is_monotone_when_full(ivs in proptest::collection::vec(0u32..1000, 1..200)) {
            let mut hc = HCache::new(ByteSize::new(50)); // 5 items of 10 bytes
            let mut last_min: Option<f64> = None;
            for (i, ivv) in ivs.into_iter().enumerate() {
                hc.admit(
                    SampleData::generate(SampleId(i as u64), ByteSize::new(10)),
                    ImportanceValue::new(ivv as f64).unwrap(),
                );
                if hc.used() == hc.capacity() {
                    let cur = hc.min_importance().unwrap().get();
                    if let Some(prev) = last_min {
                        prop_assert!(cur >= prev, "bar regressed: {} -> {}", prev, cur);
                    }
                    last_min = Some(cur);
                }
            }
        }
    }
}
