//! The iCache system: an importance-sampling-informed cache for I/O-bound
//! DNN training (HPCA'23).
//!
//! This crate implements the paper's contribution in full:
//!
//! * [`HHeap`] — the *small-top heap*: an indexed min-heap keyed by
//!   importance value whose top node is the eviction candidate (§III-B).
//! * [`ShadowedHeap`] — the shadow-heap mechanism that refreshes the heap
//!   cheaply when importance values change across epochs (§III-B).
//! * [`HCache`] — the high-importance region: a key-value store admitting
//!   and evicting by importance (Algorithm 1).
//! * [`LCache`] + [`Packager`] — the low-importance region: samples are
//!   loaded in ≥ 1 MB *packages* built by dynamic packaging, misses are
//!   served by *substitution* with an un-accessed cached L-sample
//!   (§III-C).
//! * [`IcacheManager`] — the cache manager that partitions capacity
//!   between the regions by observed access frequencies, pulls H-lists
//!   from clients, and serves Algorithm 1's `get_batch` path.
//! * [`MultiJobCoordinator`] — cache-benefit probing and aggregated
//!   importance values for concurrent jobs on one dataset (§III-D).
//! * [`service`] — the multi-node extension as a sharded,
//!   message-passing cache service (§III-E): [`CacheService`] nodes
//!   exchanging [`service::CacheRpc`] messages over a simulated
//!   interconnect, with heartbeat membership, rendezvous-hashed
//!   directory shards ([`DirectoryKv`]), repartitioning on churn, and
//!   warm restarts from per-node recovery indexes. [`DistributedCache`]
//!   remains as the static-membership facade.
//! * [`IcacheClient`] — the client module mirroring the paper's
//!   `iCacheImageFolder` / `rpc_loader` / `update_ipersample` interfaces.
//! * [`concurrent`] — the lock-striped in-node cache
//!   ([`ConcurrentManager`]): one node serving many data-loader threads
//!   concurrently via striped resident maps, a sharded H-heap with a
//!   deterministic cross-shard eviction merge, atomic counters, and an
//!   epoch write barrier (DESIGN.md §8).
//! * [`prefetch`] — the clairvoyant prefetch pipeline
//!   ([`PrefetchPipeline`]): since IIS/CIS fix the epoch's access order
//!   in advance, a bounded lookahead window overlaps storage fetches
//!   with simulated compute so per-request latency becomes
//!   `max(compute, stall)` instead of `compute + fetch` (DESIGN.md
//!   §11).
//!
//! The crate is substrate-agnostic: all I/O timing flows through the
//! [`icache_storage::StorageBackend`] passed into each fetch, and every
//! cache system (including the baselines in `icache-baselines`)
//! implements the common [`CacheSystem`] trait.
//!
//! # Examples
//!
//! ```
//! use icache_core::{CacheSystem, IcacheConfig, IcacheManager};
//! use icache_sampling::{HList, ImportanceTable};
//! use icache_storage::{Pfs, PfsConfig, StorageBackend};
//! use icache_types::{ByteSize, Dataset, JobId, SampleId, SimTime};
//!
//! let dataset = Dataset::cifar10();
//! let mut cache = IcacheManager::new(IcacheConfig::for_dataset(&dataset, 0.2)?, &dataset)?;
//! let mut storage = Pfs::new(PfsConfig::orangefs_default())?;
//!
//! // Tell the cache which samples are important…
//! let mut table = ImportanceTable::new(dataset.len());
//! table.record_loss(SampleId(0), 9.0);
//! cache.update_hlist(JobId(0), &HList::top_fraction(&table, 0.1));
//!
//! // …and fetch through it.
//! let fetch = cache.fetch(JobId(0), SampleId(0), dataset.sample_size(SampleId(0)),
//!                         SimTime::ZERO, &mut storage);
//! assert!(fetch.ready_at > SimTime::ZERO);
//! # Ok::<(), icache_types::Error>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod client;
pub mod concurrent;
mod data;
pub mod dense;
mod distributed;
mod hcache;
mod hheap;
mod lcache;
mod manager;
mod multijob;
pub mod prefetch;
mod server;
pub mod service;
mod shadow;
mod stats;
mod system;
mod victim;

pub use client::IcacheClient;
pub use concurrent::{
    AtomicCacheStats, ConcurrentCache, ConcurrentManager, FreshPool, MutexCache, ShardedHeap,
    StripedMap,
};
pub use data::SampleData;
pub use dense::{IdSet, IdSlab};
pub use distributed::{DirectoryView, DistributedCache, DistributedConfig, RemoteFetchKind};
pub use hcache::{AdmitResult, HCache};
pub use hheap::HHeap;
pub use lcache::{LCache, LCacheConfig, LFetch, Package, PackageId, Packager};
pub use manager::{IcacheConfig, IcacheManager, Substitution};
pub use multijob::{BenefitProbe, JobBenefit, MultiJobCoordinator, ProbePhase};
pub use prefetch::{InflightWindow, IssueRecord, PlannedAccess, PrefetchPipeline, PrefetchReport};
pub use server::{IcacheServer, Request, Response};
pub use service::{
    CacheRpc, CacheRpcReply, CacheService, ChurnEvent, DirectoryChange, DirectoryKv,
    HeartbeatConfig, LinkConfig, NodeHandle, RecoveryIndex, RecoveryMode, ServiceConfig,
};
pub use shadow::ShadowedHeap;
pub use stats::CacheStats;
pub use system::{CacheSystem, Fetch, FetchOutcome};
pub use victim::{PmTierConfig, VictimCache};
