//! The common cache-system interface.

use crate::CacheStats;
use icache_sampling::HList;
use icache_storage::StorageBackend;
use icache_types::{ByteSize, Epoch, JobId, SampleId, SimTime};

/// What happened to a fetch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FetchOutcome {
    /// Served the requested sample from the H-region (or a baseline's
    /// single region).
    HitH,
    /// Served the requested sample from the L-region.
    HitL,
    /// Served from storage (possibly admitted into the cache afterwards).
    Miss,
    /// Served a *different* cached sample via substitutability.
    Substituted {
        /// The sample actually delivered.
        by: SampleId,
        /// Whether the substitute came from the H-region.
        from_h: bool,
    },
}

impl FetchOutcome {
    /// True for any outcome served from memory (hit or substitution).
    pub fn served_from_cache(self) -> bool {
        !matches!(self, FetchOutcome::Miss)
    }
}

/// The result of fetching one sample through a cache system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fetch {
    /// Virtual time at which the data is in host memory.
    pub ready_at: SimTime,
    /// The sample actually delivered (differs from the request under
    /// substitution).
    pub served_id: SampleId,
    /// Classification of the fetch.
    pub outcome: FetchOutcome,
}

/// A cache system sitting between data loaders and a storage backend.
///
/// Implemented by [`crate::IcacheManager`] and by every baseline in
/// `icache-baselines`; the training simulator drives all systems through
/// this one interface. The storage backend is passed per call so several
/// jobs (and the cache's own loading thread) can share one backend owned
/// by the simulator.
pub trait CacheSystem {
    /// System name for reports (`"icache"`, `"lru"`, `"quiver"`, …).
    fn name(&self) -> &str;

    /// Fetch `id` (of `size` bytes) for `job` at virtual time `now`.
    fn fetch(
        &mut self,
        job: JobId,
        id: SampleId,
        size: ByteSize,
        now: SimTime,
        storage: &mut dyn StorageBackend,
    ) -> Fetch;

    /// Deliver a fresh H-list from `job`'s client (periodic pull, §III-A).
    /// Baselines that ignore importance simply drop it.
    fn update_hlist(&mut self, job: JobId, hlist: &HList) {
        let _ = (job, hlist);
    }

    /// Notify the start of an epoch (resets per-epoch structures such as
    /// the L-cache accessed-set).
    fn on_epoch_start(&mut self, job: JobId, epoch: Epoch) {
        let _ = (job, epoch);
    }

    /// Notify the end of an epoch (region resizing, repacking).
    fn on_epoch_end(&mut self, job: JobId, epoch: Epoch) {
        let _ = (job, epoch);
    }

    /// Attach an observability handle (metrics registry + trace buffer).
    /// Systems that emit structured events store a clone; the default
    /// implementation ignores it, so baselines stay untouched.
    fn set_obs(&mut self, obs: icache_obs::Obs) {
        let _ = obs;
    }

    /// Accumulated statistics.
    fn stats(&self) -> CacheStats;

    /// Reset accumulated statistics.
    fn reset_stats(&mut self);

    /// Current cache occupancy in bytes (diagnostics).
    fn used_bytes(&self) -> ByteSize;

    /// Configured capacity in bytes.
    fn capacity(&self) -> ByteSize;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_classification() {
        assert!(FetchOutcome::HitH.served_from_cache());
        assert!(FetchOutcome::HitL.served_from_cache());
        assert!(FetchOutcome::Substituted {
            by: SampleId(1),
            from_h: false
        }
        .served_from_cache());
        assert!(!FetchOutcome::Miss.served_from_cache());
    }
}
