//! Request/response server facade (§IV API parity).
//!
//! The paper's server is a Go process speaking gRPC: clients call
//! `rpc_loader` to fetch batches and `update_ipersample` to push
//! importance updates. This module reproduces that wire-level shape — a
//! typed request/response envelope over the in-process manager — so that
//! a downstream user porting the design to a real transport has the exact
//! message vocabulary and dispatch loop to lift out.

use crate::{CacheStats, CacheSystem, Fetch};
use icache_sampling::HList;
use icache_storage::StorageBackend;
use icache_types::{ByteSize, Dataset, Epoch, JobId, SampleId, SimTime};

/// A request a client can send to the iCache server.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// `rpc_loader`: fetch a batch of samples for a job.
    Load {
        /// The requesting job.
        job: JobId,
        /// Samples to fetch, in batch order.
        ids: Vec<SampleId>,
        /// Virtual submission time of the batch.
        now: SimTime,
    },
    /// `update_ipersample`: push the job's fresh H-list.
    UpdateImportance {
        /// The publishing job.
        job: JobId,
        /// The new H-list.
        hlist: HList,
    },
    /// Epoch boundary notification (start).
    EpochStart {
        /// The job whose epoch begins.
        job: JobId,
        /// Which epoch begins.
        epoch: Epoch,
    },
    /// Epoch boundary notification (end).
    EpochEnd {
        /// The job whose epoch ended.
        job: JobId,
        /// Which epoch ended.
        epoch: Epoch,
    },
    /// Fetch the server's counters.
    Stats,
}

/// The server's reply to a [`Request`].
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Reply to [`Request::Load`]: one [`Fetch`] per requested id.
    Batch(Vec<Fetch>),
    /// Acknowledgement of a state-changing request.
    Ack,
    /// Reply to [`Request::Stats`].
    Stats(CacheStats),
    /// The request referenced a sample outside the dataset.
    UnknownSample(SampleId),
}

/// The iCache server: dispatches [`Request`]s onto any [`CacheSystem`].
///
/// # Examples
///
/// ```
/// use icache_core::{IcacheConfig, IcacheManager, IcacheServer, Request, Response};
/// use icache_storage::LocalTier;
/// use icache_types::{Dataset, JobId, SampleId, SimTime};
///
/// let ds = Dataset::cifar10();
/// let manager = IcacheManager::new(IcacheConfig::for_dataset(&ds, 0.2)?, &ds)?;
/// let mut server = IcacheServer::new(manager, ds);
/// let mut storage = LocalTier::tmpfs();
///
/// let reply = server.handle(
///     Request::Load { job: JobId(0), ids: vec![SampleId(1), SampleId(2)], now: SimTime::ZERO },
///     &mut storage,
/// );
/// match reply {
///     Response::Batch(fetches) => assert_eq!(fetches.len(), 2),
///     other => panic!("unexpected reply {other:?}"),
/// }
/// # Ok::<(), icache_types::Error>(())
/// ```
#[derive(Debug)]
pub struct IcacheServer<C> {
    cache: C,
    dataset: Dataset,
    requests_served: u64,
}

impl<C: CacheSystem> IcacheServer<C> {
    /// Wrap `cache` (serving `dataset`) behind the request interface.
    pub fn new(cache: C, dataset: Dataset) -> Self {
        IcacheServer {
            cache,
            dataset,
            requests_served: 0,
        }
    }

    /// The wrapped cache (read access).
    pub fn cache(&self) -> &C {
        &self.cache
    }

    /// Total requests dispatched.
    pub fn requests_served(&self) -> u64 {
        self.requests_served
    }

    /// Unwrap the server back into its cache.
    pub fn into_cache(self) -> C {
        self.cache
    }

    /// Dispatch one request.
    pub fn handle(&mut self, request: Request, storage: &mut dyn StorageBackend) -> Response {
        self.requests_served += 1;
        match request {
            Request::Load { job, ids, now } => {
                let mut out = Vec::with_capacity(ids.len());
                let mut t = now;
                for id in ids {
                    if !self.dataset.contains(id) {
                        return Response::UnknownSample(id);
                    }
                    let f = self
                        .cache
                        .fetch(job, id, self.dataset.sample_size(id), t, storage);
                    t = f.ready_at;
                    out.push(f);
                }
                Response::Batch(out)
            }
            Request::UpdateImportance { job, hlist } => {
                self.cache.update_hlist(job, &hlist);
                Response::Ack
            }
            Request::EpochStart { job, epoch } => {
                self.cache.on_epoch_start(job, epoch);
                Response::Ack
            }
            Request::EpochEnd { job, epoch } => {
                self.cache.on_epoch_end(job, epoch);
                Response::Ack
            }
            Request::Stats => Response::Stats(self.cache.stats()),
        }
    }

    /// Current cache occupancy (diagnostics).
    pub fn used_bytes(&self) -> ByteSize {
        self.cache.used_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{IcacheConfig, IcacheManager};
    use icache_sampling::ImportanceTable;
    use icache_storage::LocalTier;
    use icache_types::{ByteSize, DatasetBuilder, SizeModel};

    fn server() -> (IcacheServer<IcacheManager>, LocalTier, Dataset) {
        let ds = DatasetBuilder::new("srv", 500)
            .size_model(SizeModel::Fixed(ByteSize::kib(3)))
            .build()
            .unwrap();
        let mgr = IcacheManager::new(IcacheConfig::for_dataset(&ds, 0.3).unwrap(), &ds).unwrap();
        (IcacheServer::new(mgr, ds.clone()), LocalTier::tmpfs(), ds)
    }

    #[test]
    fn load_then_stats_roundtrip() {
        let (mut srv, mut st, _ds) = server();
        let r = srv.handle(
            Request::Load {
                job: JobId(0),
                ids: (0..8).map(SampleId).collect(),
                now: SimTime::ZERO,
            },
            &mut st,
        );
        let Response::Batch(fetches) = r else {
            panic!("expected batch")
        };
        assert_eq!(fetches.len(), 8);
        let Response::Stats(stats) = srv.handle(Request::Stats, &mut st) else {
            panic!("expected stats")
        };
        assert_eq!(stats.requests(), 8);
        assert_eq!(srv.requests_served(), 2);
    }

    #[test]
    fn importance_update_changes_routing() {
        let (mut srv, mut st, ds) = server();
        let mut t = ImportanceTable::new(ds.len());
        for id in ds.ids() {
            t.record_loss(id, if id.0 < 100 { 90.0 } else { 0.01 });
        }
        let ack = srv.handle(
            Request::UpdateImportance {
                job: JobId(0),
                hlist: icache_sampling::HList::top_fraction(&t, 0.2),
            },
            &mut st,
        );
        assert_eq!(ack, Response::Ack);
        // An H-sample loads, then hits the H-region.
        for _ in 0..2 {
            srv.handle(
                Request::Load {
                    job: JobId(0),
                    ids: vec![SampleId(5)],
                    now: SimTime::ZERO,
                },
                &mut st,
            );
        }
        let Response::Stats(stats) = srv.handle(Request::Stats, &mut st) else {
            panic!()
        };
        assert_eq!(stats.h_hits, 1);
    }

    #[test]
    fn unknown_samples_are_rejected_without_side_effects() {
        let (mut srv, mut st, _ds) = server();
        let r = srv.handle(
            Request::Load {
                job: JobId(0),
                ids: vec![SampleId(9_999)],
                now: SimTime::ZERO,
            },
            &mut st,
        );
        assert_eq!(r, Response::UnknownSample(SampleId(9_999)));
        let Response::Stats(stats) = srv.handle(Request::Stats, &mut st) else {
            panic!()
        };
        assert_eq!(stats.requests(), 0);
    }

    #[test]
    fn epoch_notifications_ack() {
        let (mut srv, mut st, _ds) = server();
        assert_eq!(
            srv.handle(
                Request::EpochStart {
                    job: JobId(0),
                    epoch: Epoch(0)
                },
                &mut st
            ),
            Response::Ack
        );
        assert_eq!(
            srv.handle(
                Request::EpochEnd {
                    job: JobId(0),
                    epoch: Epoch(0)
                },
                &mut st
            ),
            Response::Ack
        );
        let cache = srv.into_cache();
        assert_eq!(cache.name(), "icache");
    }
}
