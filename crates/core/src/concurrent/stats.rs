//! Cache counters on atomics, so concurrent fetch paths never take a
//! lock just to count.

use crate::CacheStats;
use icache_types::ByteSize;
use std::sync::atomic::{AtomicU64, Ordering};

/// [`CacheStats`] with every counter on an [`AtomicU64`].
///
/// Counters are advanced with `Relaxed` ordering: each is an
/// independent monotonic tally, and cross-counter consistency is only
/// needed at epoch boundaries, where the caller holds the epoch write
/// barrier and all loader threads are quiesced. A [`snapshot`] taken
/// mid-flight may therefore be *slightly* torn across counters (e.g.
/// a fetch counted as a hit whose bytes are not yet added) but each
/// individual counter is exact.
///
/// [`snapshot`]: AtomicCacheStats::snapshot
#[derive(Debug, Default)]
pub struct AtomicCacheStats {
    /// See [`CacheStats::h_hits`].
    pub h_hits: AtomicU64,
    /// See [`CacheStats::l_hits`].
    pub l_hits: AtomicU64,
    /// See [`CacheStats::pm_hits`].
    pub pm_hits: AtomicU64,
    /// See [`CacheStats::substitutions`].
    pub substitutions: AtomicU64,
    /// See [`CacheStats::misses`].
    pub misses: AtomicU64,
    /// See [`CacheStats::insertions`].
    pub insertions: AtomicU64,
    /// See [`CacheStats::evictions`].
    pub evictions: AtomicU64,
    /// See [`CacheStats::rejections`].
    pub rejections: AtomicU64,
    /// See [`CacheStats::bytes_from_cache`] (raw bytes).
    pub bytes_from_cache: AtomicU64,
    /// See [`CacheStats::bytes_from_storage`] (raw bytes).
    pub bytes_from_storage: AtomicU64,
}

impl AtomicCacheStats {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        AtomicCacheStats::default()
    }

    /// Bump `counter` by one.
    #[inline]
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Add `bytes` to a byte counter.
    #[inline]
    pub fn add_bytes(counter: &AtomicU64, bytes: ByteSize) {
        counter.fetch_add(bytes.as_u64(), Ordering::Relaxed);
    }

    /// Materialize a plain [`CacheStats`] view of the counters.
    pub fn snapshot(&self) -> CacheStats {
        CacheStats {
            h_hits: self.h_hits.load(Ordering::Relaxed),
            l_hits: self.l_hits.load(Ordering::Relaxed),
            pm_hits: self.pm_hits.load(Ordering::Relaxed),
            substitutions: self.substitutions.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            rejections: self.rejections.load(Ordering::Relaxed),
            bytes_from_cache: ByteSize::new(self.bytes_from_cache.load(Ordering::Relaxed)),
            bytes_from_storage: ByteSize::new(self.bytes_from_storage.load(Ordering::Relaxed)),
        }
    }

    /// Zero every counter (epoch-barrier only).
    pub fn reset(&self) {
        self.h_hits.store(0, Ordering::Relaxed);
        self.l_hits.store(0, Ordering::Relaxed);
        self.pm_hits.store(0, Ordering::Relaxed);
        self.substitutions.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        self.insertions.store(0, Ordering::Relaxed);
        self.evictions.store(0, Ordering::Relaxed);
        self.rejections.store(0, Ordering::Relaxed);
        self.bytes_from_cache.store(0, Ordering::Relaxed);
        self.bytes_from_storage.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_bumps() {
        let s = AtomicCacheStats::new();
        AtomicCacheStats::bump(&s.h_hits);
        AtomicCacheStats::bump(&s.h_hits);
        AtomicCacheStats::bump(&s.misses);
        AtomicCacheStats::add_bytes(&s.bytes_from_cache, ByteSize::kib(4));
        let snap = s.snapshot();
        assert_eq!(snap.h_hits, 2);
        assert_eq!(snap.misses, 1);
        assert_eq!(snap.bytes_from_cache, ByteSize::kib(4));
        assert_eq!(snap.requests(), 3);
        s.reset();
        assert_eq!(s.snapshot(), CacheStats::default());
    }
}
