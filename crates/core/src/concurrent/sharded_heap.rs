//! The H-heap sharded across lock stripes.

use super::{lock_counted, stripe_count};
use crate::HHeap;
use icache_types::{ImportanceValue, SampleId};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard};

/// An indexed min-heap split into one [`HHeap`] per stripe.
///
/// Point operations (insert / remove / re-key) touch only the owning
/// stripe's lock. Eviction needs the *global* minimum: it locks every
/// shard in ascending index order (a deadlock-free total order) and
/// merges the per-shard minima deterministically — lowest
/// `(importance, id)` wins, ties break toward the lower id exactly as
/// in the sequential [`HHeap`]. With all shard locks held the merge is
/// exact, not approximate.
#[derive(Debug)]
pub struct ShardedHeap {
    shards: Box<[Mutex<HHeap>]>,
    mask: u64,
    len: AtomicUsize,
    contention: AtomicU64,
}

impl ShardedHeap {
    /// A heap sharded over `shards` locks (rounded up to a power of
    /// two, clamped to `[1, 1024]`).
    pub fn new(shards: usize) -> Self {
        let n = stripe_count(shards);
        ShardedHeap {
            shards: (0..n).map(|_| Mutex::new(HHeap::new())).collect(),
            mask: (n - 1) as u64,
            len: AtomicUsize::new(0),
            contention: AtomicU64::new(0),
        }
    }

    /// Number of shards.
    pub fn shard_len(&self) -> usize {
        self.shards.len()
    }

    #[inline]
    fn shard_of(&self, id: SampleId) -> &Mutex<HHeap> {
        &self.shards[(id.0 & self.mask) as usize]
    }

    /// Insert `id` with key `iv`, or re-key it if already present.
    /// Returns true when the id was newly inserted.
    pub fn insert(&self, id: SampleId, iv: ImportanceValue) -> bool {
        let fresh = lock_counted(self.shard_of(id), &self.contention).insert(id, iv);
        if fresh {
            self.len.fetch_add(1, Ordering::Relaxed);
        }
        fresh
    }

    /// Remove `id`'s node. Returns its key if it was present.
    pub fn remove(&self, id: SampleId) -> Option<ImportanceValue> {
        let prev = lock_counted(self.shard_of(id), &self.contention).remove(id);
        if prev.is_some() {
            self.len.fetch_sub(1, Ordering::Relaxed);
        }
        prev
    }

    /// Change `id`'s key. Returns false when `id` is not present.
    pub fn update_key(&self, id: SampleId, iv: ImportanceValue) -> bool {
        lock_counted(self.shard_of(id), &self.contention).update_key(id, iv)
    }

    /// Whether `id` has a node in any shard.
    pub fn contains(&self, id: SampleId) -> bool {
        lock_counted(self.shard_of(id), &self.contention).contains(id)
    }

    /// Total nodes across shards (counter, not a lock sweep).
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Relaxed)
    }

    /// True when every shard is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Contended lock acquisitions observed so far.
    pub fn contended(&self) -> u64 {
        self.contention.load(Ordering::Relaxed)
    }

    /// Lock every shard in ascending index order, reporting each shard
    /// index to `witness` at the moment its lock is taken. The witness
    /// lets the loom model assert the ascending acquisition discipline
    /// itself, not just the merge result.
    fn lock_all(&self, witness: &mut dyn FnMut(usize)) -> Vec<MutexGuard<'_, HHeap>> {
        self.shards
            .iter()
            .enumerate()
            .map(|(i, s)| {
                let guard = lock_counted(s, &self.contention);
                witness(i);
                guard
            })
            .collect()
    }

    /// The global minimum `(id, importance)` without removing it.
    /// Takes every shard lock; exact under concurrency.
    pub fn peek_global_min(&self) -> Option<(SampleId, ImportanceValue)> {
        let guards = self.lock_all(&mut |_| {});
        Self::min_of(&guards)
    }

    /// Remove and return the global minimum node (deterministic
    /// cross-shard merge: lowest `(importance, id)`).
    pub fn pop_global_min(&self) -> Option<(SampleId, ImportanceValue)> {
        self.pop_global_min_witnessed(&mut |_| {})
    }

    /// [`pop_global_min`] with the lock-acquisition witness exposed:
    /// `witness` receives each shard index as its lock is acquired.
    /// Test hook for the loom model asserting the all-shards-ascending
    /// order; not part of the stable API.
    ///
    /// [`pop_global_min`]: ShardedHeap::pop_global_min
    #[doc(hidden)]
    pub fn pop_global_min_witnessed(
        &self,
        witness: &mut dyn FnMut(usize),
    ) -> Option<(SampleId, ImportanceValue)> {
        let mut guards = self.lock_all(witness);
        let (id, _) = Self::min_of(&guards)?;
        let popped = guards[(id.0 & self.mask) as usize]
            .pop_min()
            .expect("shard min vanished while every shard lock was held");
        self.len.fetch_sub(1, Ordering::Relaxed);
        Some(popped)
    }

    fn min_of(guards: &[MutexGuard<'_, HHeap>]) -> Option<(SampleId, ImportanceValue)> {
        guards
            .iter()
            .filter_map(|g| g.peek_min())
            .min_by_key(|&(id, iv)| (iv, id))
    }

    /// Run `f` on every shard in ascending index order with its lock
    /// held (epoch-barrier bulk operations: refresh, drain). The
    /// caller must fix up the length counter via [`set_len`] if `f`
    /// changes populations.
    ///
    /// [`set_len`]: ShardedHeap::set_len
    pub fn for_each_shard(&self, mut f: impl FnMut(&mut HHeap)) {
        for s in self.shards.iter() {
            f(&mut lock_counted(s, &self.contention));
        }
    }

    /// Recompute the length counter from shard populations
    /// (epoch-barrier use, after a bulk [`for_each_shard`] edit).
    ///
    /// [`for_each_shard`]: ShardedHeap::for_each_shard
    pub fn set_len(&self) {
        let mut total = 0;
        for s in self.shards.iter() {
            total += lock_counted(s, &self.contention).len();
        }
        self.len.store(total, Ordering::Relaxed);
    }

    /// Internal consistency check (tests): every shard's heap
    /// invariants hold, ids live on their owning shard, and the atomic
    /// length matches the shard sum.
    #[doc(hidden)]
    pub fn check_invariants(&self) -> bool {
        let mut total = 0;
        for (i, s) in self.shards.iter().enumerate() {
            let guard = lock_counted(s, &self.contention);
            if !guard.check_invariants() {
                return false;
            }
            if guard.iter().any(|(id, _)| (id.0 & self.mask) as usize != i) {
                return false;
            }
            total += guard.len();
        }
        total == self.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(v: f64) -> ImportanceValue {
        ImportanceValue::new(v).expect("finite non-negative test key")
    }

    #[test]
    fn pop_global_min_merges_across_shards_ascending() {
        let h = ShardedHeap::new(4);
        // Keys chosen so ascending key order hops between shards.
        for (id, v) in [(0u64, 5.0), (1, 3.0), (2, 4.0), (3, 1.0), (7, 2.0)] {
            assert!(h.insert(SampleId(id), iv(v)));
        }
        assert_eq!(h.len(), 5);
        let mut keys = Vec::new();
        while let Some((_, k)) = h.pop_global_min() {
            keys.push(k.get());
            assert!(h.check_invariants());
        }
        assert_eq!(keys, vec![1.0, 2.0, 3.0, 4.0, 5.0]);
        assert!(h.is_empty());
    }

    #[test]
    fn global_min_ties_break_toward_lower_id_across_shards() {
        let h = ShardedHeap::new(4);
        // Same key on different shards: the lower id must win the merge.
        h.insert(SampleId(6), iv(1.0));
        h.insert(SampleId(3), iv(1.0));
        h.insert(SampleId(9), iv(1.0));
        assert_eq!(h.peek_global_min(), Some((SampleId(3), iv(1.0))));
        assert_eq!(h.pop_global_min(), Some((SampleId(3), iv(1.0))));
        assert_eq!(h.pop_global_min(), Some((SampleId(6), iv(1.0))));
        assert_eq!(h.pop_global_min(), Some((SampleId(9), iv(1.0))));
    }

    #[test]
    fn point_ops_stay_shard_local() {
        let h = ShardedHeap::new(2);
        assert!(h.insert(SampleId(4), iv(2.0)));
        assert!(!h.insert(SampleId(4), iv(0.5)), "re-key, not insert");
        assert!(h.contains(SampleId(4)));
        assert!(h.update_key(SampleId(4), iv(9.0)));
        assert!(!h.update_key(SampleId(5), iv(1.0)));
        assert_eq!(h.remove(SampleId(4)), Some(iv(9.0)));
        assert_eq!(h.remove(SampleId(4)), None);
        assert!(h.check_invariants());
    }

    #[test]
    fn bulk_refresh_then_set_len() {
        let h = ShardedHeap::new(4);
        for i in 0..20u64 {
            h.insert(SampleId(i), iv(1.0 + i as f64));
        }
        // Epoch-barrier style bulk edit: drop every node with an odd id.
        h.for_each_shard(|shard| {
            let odd: Vec<SampleId> = shard
                .iter()
                .map(|(id, _)| id)
                .filter(|id| id.0 % 2 == 1)
                .collect();
            for id in odd {
                shard.remove(id);
            }
        });
        h.set_len();
        assert_eq!(h.len(), 10);
        assert!(h.check_invariants());
    }
}
