//! Lock-striped resident map and substitution fresh-pool.

use super::{lock_counted, stripe_count};
use crate::dense::IdSlab;
use icache_types::SampleId;
use rand::Rng;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

/// A concurrent `SampleId → V` map striped across `N` mutexes.
///
/// Stripe selection is `id & (N-1)`; sample ids are contiguous
/// integers, so consecutive ids fall on distinct stripes and a hot
/// id range spreads across all locks. Per-stripe storage is an
/// [`IdSlab`] keyed by the *local* id `id >> log2(N)` — the ids
/// landing on one stripe are exactly `{stripe + k·N}`, so shifting
/// away the stripe bits keeps each slab dense. Ascending local keys
/// are ascending global ids within a stripe, keeping in-stripe
/// iteration (epoch-barrier bulk operations) deterministic.
#[derive(Debug)]
pub struct StripedMap<V> {
    stripes: Box<[Mutex<IdSlab<V>>]>,
    mask: u64,
    shift: u32,
    len: AtomicUsize,
    contention: AtomicU64,
}

impl<V> StripedMap<V> {
    /// A map striped over `stripes` locks (rounded up to a power of
    /// two, clamped to `[1, 1024]`).
    pub fn new(stripes: usize) -> Self {
        let n = stripe_count(stripes);
        StripedMap {
            stripes: (0..n).map(|_| Mutex::new(IdSlab::new())).collect(),
            mask: (n - 1) as u64,
            shift: (n as u64).trailing_zeros(),
            len: AtomicUsize::new(0),
            contention: AtomicU64::new(0),
        }
    }

    /// Number of stripes.
    pub fn stripe_len(&self) -> usize {
        self.stripes.len()
    }

    #[inline]
    fn stripe_of(&self, id: SampleId) -> &Mutex<IdSlab<V>> {
        &self.stripes[(id.0 & self.mask) as usize]
    }

    /// The stripe-local key: the id with its stripe bits shifted away.
    #[inline]
    fn local_key(&self, id: SampleId) -> SampleId {
        SampleId(id.0 >> self.shift)
    }

    /// Reconstruct the global id from a stripe index and its local key.
    #[inline]
    fn global_id(&self, stripe: usize, local: SampleId) -> SampleId {
        SampleId((local.0 << self.shift) | stripe as u64)
    }

    /// Insert `id → value`. Returns the previous value if present.
    pub fn insert(&self, id: SampleId, value: V) -> Option<V> {
        let local = self.local_key(id);
        let prev = lock_counted(self.stripe_of(id), &self.contention).insert(local, value);
        if prev.is_none() {
            self.len.fetch_add(1, Ordering::Relaxed);
        }
        prev
    }

    /// Remove `id`. Returns its value if it was present.
    pub fn remove(&self, id: SampleId) -> Option<V> {
        let local = self.local_key(id);
        let prev = lock_counted(self.stripe_of(id), &self.contention).remove(local);
        if prev.is_some() {
            self.len.fetch_sub(1, Ordering::Relaxed);
        }
        prev
    }

    /// Whether `id` is present.
    pub fn contains(&self, id: SampleId) -> bool {
        lock_counted(self.stripe_of(id), &self.contention).contains_key(self.local_key(id))
    }

    /// A copy of `id`'s value, if present.
    pub fn get(&self, id: SampleId) -> Option<V>
    where
        V: Clone,
    {
        lock_counted(self.stripe_of(id), &self.contention)
            .get(self.local_key(id))
            .cloned()
    }

    /// Total entries across all stripes (counter, not a lock sweep).
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Relaxed)
    }

    /// True when no entries are resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Contended lock acquisitions observed so far.
    pub fn contended(&self) -> u64 {
        self.contention.load(Ordering::Relaxed)
    }

    /// Largest single-stripe population (stripe-balance gauge).
    pub fn max_stripe_population(&self) -> usize {
        self.stripes
            .iter()
            .map(|s| lock_counted(s, &self.contention).len())
            .max()
            .unwrap_or(0)
    }

    /// Visit every entry, stripe by stripe in ascending stripe index,
    /// ids ascending within a stripe. Epoch-barrier use only: each
    /// stripe lock is held for the duration of its visit, and entries
    /// moving between stripes mid-walk (impossible — stripe is a pure
    /// function of id) or inserted behind the walk are the caller's
    /// concern.
    pub fn for_each(&self, mut f: impl FnMut(SampleId, &V)) {
        for (i, s) in self.stripes.iter().enumerate() {
            let guard = lock_counted(s, &self.contention);
            for (local, v) in guard.iter() {
                f(self.global_id(i, local), v);
            }
        }
    }

    /// All resident ids in ascending order (epoch-barrier use only).
    pub fn sorted_ids(&self) -> Vec<SampleId> {
        let mut out = Vec::with_capacity(self.len());
        self.for_each(|id, _| out.push(id));
        out.sort_unstable();
        out
    }

    /// Internal consistency check (tests): the atomic length matches
    /// the sum of stripe populations and every local key round-trips
    /// through id reconstruction back onto its stripe.
    #[doc(hidden)]
    pub fn check_invariants(&self) -> bool {
        let mut total = 0;
        for (i, s) in self.stripes.iter().enumerate() {
            let guard = lock_counted(s, &self.contention);
            total += guard.len();
            if guard
                .keys()
                .any(|local| (self.global_id(i, local).0 & self.mask) as usize != i)
            {
                return false;
            }
        }
        total == self.len()
    }
}

/// Per-stripe state of the [`FreshPool`].
#[derive(Debug)]
struct FreshStripe {
    /// Un-accessed resident ids with O(1) random removal.
    fresh: Vec<SampleId>,
    /// local id → index into `fresh` (the position-map invariant the
    /// loom model tests pin: `fresh[pos[local(id)]] == id` for every
    /// entry). Keyed by `id >> shift` so the slab stays dense.
    pos: IdSlab<usize>,
    /// The pool's stripe-count shift, for local-key computation.
    shift: u32,
}

impl FreshStripe {
    fn new(shift: u32) -> Self {
        FreshStripe {
            fresh: Vec::new(),
            pos: IdSlab::new(),
            shift,
        }
    }

    #[inline]
    fn local(&self, id: SampleId) -> SampleId {
        SampleId(id.0 >> self.shift)
    }

    fn swap_remove(&mut self, id: SampleId) -> bool {
        match self.pos.remove(self.local(id)) {
            None => false,
            Some(at) => {
                let last = self.fresh.len() - 1;
                self.fresh.swap(at, last);
                self.fresh.pop();
                if at < self.fresh.len() {
                    let moved = self.local(self.fresh[at]);
                    self.pos.insert(moved, at);
                }
                true
            }
        }
    }
}

/// The L-region substitution pool, striped like [`StripedMap`].
///
/// Holds resident-but-not-yet-accessed sample ids; a substitution draw
/// removes a uniformly random id from a random stripe (scanning
/// forward when the first stripe is empty), and marking a sample
/// accessed removes it from its stripe in O(log n).
#[derive(Debug)]
pub struct FreshPool {
    stripes: Box<[Mutex<FreshStripe>]>,
    mask: u64,
    len: AtomicUsize,
    contention: AtomicU64,
}

impl FreshPool {
    /// A pool striped over `stripes` locks (rounded up to a power of
    /// two, clamped to `[1, 1024]`).
    pub fn new(stripes: usize) -> Self {
        let n = stripe_count(stripes);
        let shift = (n as u64).trailing_zeros();
        FreshPool {
            stripes: (0..n)
                .map(|_| Mutex::new(FreshStripe::new(shift)))
                .collect(),
            mask: (n - 1) as u64,
            len: AtomicUsize::new(0),
            contention: AtomicU64::new(0),
        }
    }

    #[inline]
    fn stripe_of(&self, id: SampleId) -> &Mutex<FreshStripe> {
        &self.stripes[(id.0 & self.mask) as usize]
    }

    /// Add `id` to the pool if absent. Returns true when added.
    pub fn push(&self, id: SampleId) -> bool {
        let mut s = lock_counted(self.stripe_of(id), &self.contention);
        let local = s.local(id);
        if s.pos.contains_key(local) {
            return false;
        }
        let slot = s.fresh.len();
        s.pos.insert(local, slot);
        s.fresh.push(id);
        self.len.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// Remove `id` (it was accessed or evicted). Returns true when it
    /// was in the pool.
    pub fn remove(&self, id: SampleId) -> bool {
        let removed = lock_counted(self.stripe_of(id), &self.contention).swap_remove(id);
        if removed {
            self.len.fetch_sub(1, Ordering::Relaxed);
        }
        removed
    }

    /// Draw (and remove) a substitution candidate: a uniformly random
    /// id from the first non-empty stripe at or after a random start.
    pub fn draw(&self, rng: &mut impl Rng) -> Option<SampleId> {
        if self.is_empty() {
            return None;
        }
        let start = rng.gen_range(0..self.stripes.len());
        for k in 0..self.stripes.len() {
            let i = (start + k) & self.mask as usize;
            let mut s = lock_counted(&self.stripes[i], &self.contention);
            if s.fresh.is_empty() {
                continue;
            }
            let at = rng.gen_range(0..s.fresh.len());
            let id = s.fresh[at];
            s.swap_remove(id);
            self.len.fetch_sub(1, Ordering::Relaxed);
            return Some(id);
        }
        None
    }

    /// Pool population (counter, not a lock sweep).
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Relaxed)
    }

    /// True when no candidate is available.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Contended lock acquisitions observed so far.
    pub fn contended(&self) -> u64 {
        self.contention.load(Ordering::Relaxed)
    }

    /// Replace the pool contents with `ids` (epoch-barrier use only:
    /// the per-epoch fresh rebuild from the resident index).
    pub fn rebuild(&self, ids: impl IntoIterator<Item = SampleId>) {
        for s in self.stripes.iter() {
            let mut guard = lock_counted(s, &self.contention);
            guard.fresh.clear();
            guard.pos.clear();
        }
        self.len.store(0, Ordering::Relaxed);
        for id in ids {
            self.push(id);
        }
    }

    /// Internal consistency check (tests): position-map invariant per
    /// stripe and the atomic length matches the stripe sum.
    #[doc(hidden)]
    pub fn check_invariants(&self) -> bool {
        let mut total = 0;
        for (i, s) in self.stripes.iter().enumerate() {
            let guard = lock_counted(s, &self.contention);
            total += guard.fresh.len();
            if guard.pos.len() != guard.fresh.len() {
                return false;
            }
            for (local, &at) in guard.pos.iter() {
                let id = SampleId((local.0 << guard.shift) | i as u64);
                if guard.fresh.get(at) != Some(&id) || (id.0 & self.mask) as usize != i {
                    return false;
                }
            }
        }
        total == self.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn striped_map_round_trips_and_balances() {
        let m: StripedMap<u64> = StripedMap::new(4);
        assert_eq!(m.stripe_len(), 4);
        for i in 0..64u64 {
            assert!(m.insert(SampleId(i), i * 10).is_none());
        }
        assert_eq!(m.len(), 64);
        assert!(m.contains(SampleId(7)));
        assert_eq!(m.insert(SampleId(7), 99), Some(70));
        assert_eq!(m.len(), 64, "overwrite keeps length");
        assert_eq!(m.remove(SampleId(7)), Some(99));
        assert!(!m.contains(SampleId(7)));
        assert_eq!(m.len(), 63);
        // Contiguous ids spread evenly: 4 stripes × 16 ids, minus the
        // removed one.
        assert_eq!(m.max_stripe_population(), 16);
        assert!(m.check_invariants());
        let ids = m.sorted_ids();
        assert_eq!(ids.len(), 63);
        assert!(ids.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn stripe_count_rounds_to_power_of_two() {
        assert_eq!(StripedMap::<()>::new(0).stripe_len(), 1);
        assert_eq!(StripedMap::<()>::new(3).stripe_len(), 4);
        assert_eq!(StripedMap::<()>::new(16).stripe_len(), 16);
        assert_eq!(StripedMap::<()>::new(100_000).stripe_len(), 1024);
    }

    #[test]
    fn fresh_pool_draw_removes_and_scans_stripes() {
        let p = FreshPool::new(4);
        let mut rng = StdRng::seed_from_u64(7);
        for i in 0..32u64 {
            assert!(p.push(SampleId(i)));
        }
        assert!(!p.push(SampleId(0)), "duplicate push is a no-op");
        assert_eq!(p.len(), 32);
        let mut drawn = std::collections::BTreeSet::new();
        for _ in 0..32 {
            let id = p.draw(&mut rng).expect("pool has candidates");
            assert!(drawn.insert(id), "{id:?} drawn twice");
            assert!(p.check_invariants());
        }
        assert!(p.is_empty());
        assert!(p.draw(&mut rng).is_none());
    }

    #[test]
    fn fresh_pool_remove_keeps_position_invariant() {
        let p = FreshPool::new(2);
        for i in 0..16u64 {
            p.push(SampleId(i));
        }
        for i in (0..16u64).step_by(3) {
            assert!(p.remove(SampleId(i)));
            assert!(p.check_invariants());
        }
        assert!(!p.remove(SampleId(0)), "already removed");
        assert_eq!(p.len(), 16 - 6);
    }

    #[test]
    fn fresh_pool_rebuild_replaces_contents() {
        let p = FreshPool::new(4);
        p.push(SampleId(1));
        p.push(SampleId(2));
        p.rebuild((10..20).map(SampleId));
        assert_eq!(p.len(), 10);
        assert!(!p.remove(SampleId(1)), "old contents gone");
        assert!(p.remove(SampleId(15)));
        assert!(p.check_invariants());
    }
}
