//! The lock-striped concurrent cache manager.

use super::{lock_counted, stripe_count, AtomicCacheStats, FreshPool, ShardedHeap, StripedMap};
use crate::dense::{IdSet, IdSlab};
use crate::{CacheStats, CacheSystem, Fetch, FetchOutcome, IcacheConfig, Packager, Substitution};
use icache_obs::Obs;
use icache_sampling::HList;
use icache_storage::StorageBackend;
use icache_types::{
    ByteSize, Dataset, Epoch, Error, ImportanceValue, JobId, Result, SampleId, SimDuration, SimTime,
};
use rand::rngs::StdRng;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, RwLock};

/// A cache node servable by many loader threads concurrently.
///
/// Unlike [`CacheSystem`], fetches take `&self` (the structures are
/// internally synchronized) plus the calling thread's own storage
/// handle and RNG — each loader thread owns a deterministic RNG
/// stream, so a run is reproducible *given* a thread interleaving,
/// and the aggregate counters are exact regardless of interleaving.
pub trait ConcurrentCache: Send + Sync {
    /// System name for reports.
    fn name(&self) -> &str;

    /// Fetch `id` (of `size` bytes) for `job` at the calling thread's
    /// virtual time `now`.
    fn fetch(
        &self,
        job: JobId,
        id: SampleId,
        size: ByteSize,
        now: SimTime,
        storage: &mut dyn StorageBackend,
        rng: &mut StdRng,
    ) -> Fetch;

    /// Deliver a fresh H-list (epoch write barrier).
    fn update_hlist(&self, job: JobId, hlist: &HList);

    /// Start an epoch (epoch write barrier).
    fn on_epoch_start(&self, job: JobId, epoch: Epoch);

    /// End an epoch (epoch write barrier; publishes metrics).
    fn on_epoch_end(&self, job: JobId, epoch: Epoch);

    /// Attach an observability handle.
    fn set_obs(&self, obs: Obs);

    /// Aggregate counters (exact; see [`AtomicCacheStats`]).
    fn stats(&self) -> CacheStats;

    /// Current occupancy in bytes.
    fn used_bytes(&self) -> ByteSize;

    /// Configured capacity in bytes.
    fn capacity(&self) -> ByteSize;

    /// Contended lock acquisitions observed so far (all locks).
    fn contended(&self) -> u64;
}

/// Any sequential [`CacheSystem`] behind one coarse lock.
///
/// This is the contention baseline the striped manager is measured
/// against, and how single-lock baselines (LRU, Quiver, …) join a
/// multi-threaded replay: correctness is free, scalability is not —
/// every fetch serializes on the one mutex.
pub struct MutexCache {
    name: String,
    inner: Mutex<Box<dyn CacheSystem + Send>>,
    contention: AtomicU64,
}

impl MutexCache {
    /// Wrap `inner` behind a single lock.
    pub fn new(inner: Box<dyn CacheSystem + Send>) -> Self {
        MutexCache {
            name: inner.name().to_string(),
            inner: Mutex::new(inner),
            contention: AtomicU64::new(0),
        }
    }
}

impl std::fmt::Debug for MutexCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MutexCache")
            .field("name", &self.name)
            .finish()
    }
}

impl ConcurrentCache for MutexCache {
    fn name(&self) -> &str {
        &self.name
    }

    fn fetch(
        &self,
        job: JobId,
        id: SampleId,
        size: ByteSize,
        now: SimTime,
        storage: &mut dyn StorageBackend,
        _rng: &mut StdRng,
    ) -> Fetch {
        lock_counted(&self.inner, &self.contention).fetch(job, id, size, now, storage)
    }

    fn update_hlist(&self, job: JobId, hlist: &HList) {
        lock_counted(&self.inner, &self.contention).update_hlist(job, hlist);
    }

    fn on_epoch_start(&self, job: JobId, epoch: Epoch) {
        lock_counted(&self.inner, &self.contention).on_epoch_start(job, epoch);
    }

    fn on_epoch_end(&self, job: JobId, epoch: Epoch) {
        lock_counted(&self.inner, &self.contention).on_epoch_end(job, epoch);
    }

    fn set_obs(&self, obs: Obs) {
        lock_counted(&self.inner, &self.contention).set_obs(obs);
    }

    fn stats(&self) -> CacheStats {
        lock_counted(&self.inner, &self.contention).stats()
    }

    fn used_bytes(&self) -> ByteSize {
        lock_counted(&self.inner, &self.contention).used_bytes()
    }

    fn capacity(&self) -> ByteSize {
        lock_counted(&self.inner, &self.contention).capacity()
    }

    fn contended(&self) -> u64 {
        self.contention.load(Ordering::Relaxed)
    }
}

/// State owned by the (logical) asynchronous loading thread: package
/// construction, the package FIFO, and in-flight loads. One lock —
/// loads are rare next to fetches, and `try_lock` callers skip the
/// tick entirely when another thread is already driving the loader.
#[derive(Debug)]
struct LoaderState {
    packager: Packager,
    /// Ids eligible for package fill (everything not on any H-list).
    l_pool: Vec<SampleId>,
    /// Loaded packages in FIFO order with the ids each one *added*.
    fifo: VecDeque<(Vec<SampleId>, ByteSize)>,
    /// Packages read but not yet arrived (ready_at in the future).
    pending: VecDeque<(crate::Package, SimTime)>,
    /// Loading-thread pacing horizon (virtual time).
    busy: SimTime,
}

/// The lock-striped concurrent counterpart of [`crate::IcacheManager`].
///
/// Serves the single-tenant replay shape: two regions, H-heap
/// admission, L-region packages with `ST_LC` substitution, per-epoch
/// rebalance. The advanced sequential features (multi-job probing, PM
/// victim tier, `ST_HC` substitution, per-job H-list filters) stay on
/// the sequential manager — [`ConcurrentManager::new`] rejects configs
/// that ask for them.
///
/// Concurrency contract (DESIGN.md §8):
///
/// * fetches hold the epoch gate's **read** lock; `update_hlist` /
///   `on_epoch_start` / `on_epoch_end` hold **write** (stop-the-world);
/// * resident membership is striped ([`StripedMap`], [`FreshPool`]),
///   the H-heap is sharded ([`ShardedHeap`]), counters are atomics
///   ([`AtomicCacheStats`]);
/// * H-region admissions (the multi-victim eviction loop) serialize on
///   one admit lock — hits stay stripe-local; misses already pay a
///   storage round trip, so the admit lock is off the fast path;
/// * per-event traces are **not** emitted: unlike the sequential
///   manager, only counters and gauges are recorded, published at
///   epoch boundaries and on [`ConcurrentCache::set_obs`].
#[derive(Debug)]
pub struct ConcurrentManager {
    config: IcacheConfig,
    dataset: Dataset,
    stripes: usize,
    /// Epoch gate: fetches read, epoch-boundary operations write.
    gate: RwLock<()>,
    /// Which ids are currently H-samples (read-mostly; written only
    /// under the gate's write lock). A dense bitmap over the dataset
    /// universe: the membership test on every fetch is one word load.
    h_members: RwLock<IdSet>,
    have_hlist: AtomicBool,
    /// Admission importance per id (written under the write gate).
    effective_iv: RwLock<IdSlab<ImportanceValue>>,
    // H region.
    h_items: StripedMap<ByteSize>,
    h_heap: ShardedHeap,
    h_used: AtomicU64,
    h_capacity: AtomicU64,
    admit: Mutex<()>,
    // L region.
    l_resident: StripedMap<ByteSize>,
    l_fresh: FreshPool,
    l_used: AtomicU64,
    l_capacity: AtomicU64,
    loader: Mutex<LoaderState>,
    missed: Mutex<VecDeque<SampleId>>,
    // Counters.
    stats: AtomicCacheStats,
    epoch_h_accesses: AtomicU64,
    epoch_l_accesses: AtomicU64,
    /// Contended acquisitions of the admit/loader/missed locks (stripe
    /// locks count their own; [`ConcurrentCache::contended`] sums all).
    own_contention: AtomicU64,
    /// `cache.lock_contention` already published to the registry.
    published_contention: AtomicU64,
    obs: Mutex<Obs>,
    /// Counter values already published to the registry (the registry
    /// is add-only, so publishes are deltas).
    published: Mutex<CacheStats>,
}

impl ConcurrentManager {
    /// Build a striped manager for `dataset` with `config`, spreading
    /// each region over `stripes` locks (rounded up to a power of two).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] for invalid capacities or
    /// bandwidths (as [`crate::IcacheManager::new`]), and for features
    /// the concurrent path does not serve: `multi_job`, `pm_tier`,
    /// `hlist_filter`, and `ST_HC` substitution.
    pub fn new(config: IcacheConfig, dataset: &Dataset, stripes: usize) -> Result<Self> {
        // Reuse the sequential validation wholesale by building the
        // region split the same way IcacheManager::new does.
        if config.multi_job {
            return Err(Error::invalid_config(
                "multi_job",
                "not served by ConcurrentManager; use the sequential IcacheManager",
            ));
        }
        if config.pm_tier.is_some() {
            return Err(Error::invalid_config(
                "pm_tier",
                "not served by ConcurrentManager; use the sequential IcacheManager",
            ));
        }
        if config.hlist_filter.is_some() {
            return Err(Error::invalid_config(
                "hlist_filter",
                "not served by ConcurrentManager; use the sequential IcacheManager",
            ));
        }
        if config.substitution == Substitution::FromH {
            return Err(Error::invalid_config(
                "substitution",
                "ST_HC is not served by ConcurrentManager; use the sequential IcacheManager",
            ));
        }
        // Region split identical to the sequential manager.
        let seq = crate::IcacheManager::new(config.clone(), dataset)?;
        let h_capacity = seq.h_capacity();
        let l_capacity = seq.l_capacity();
        drop(seq);
        let n = stripe_count(stripes);
        Ok(ConcurrentManager {
            stripes: n,
            gate: RwLock::new(()),
            h_members: RwLock::new(IdSet::new(dataset.len())),
            have_hlist: AtomicBool::new(false),
            effective_iv: RwLock::new(IdSlab::new()),
            h_items: StripedMap::new(n),
            h_heap: ShardedHeap::new(n),
            h_used: AtomicU64::new(0),
            h_capacity: AtomicU64::new(h_capacity.as_u64()),
            admit: Mutex::new(()),
            l_resident: StripedMap::new(n),
            l_fresh: FreshPool::new(n),
            l_used: AtomicU64::new(0),
            l_capacity: AtomicU64::new(l_capacity.as_u64()),
            loader: Mutex::new(LoaderState {
                packager: Packager::new(config.package_size, config.seed ^ 0xFACC)?,
                l_pool: dataset.ids().collect(),
                fifo: VecDeque::new(),
                pending: VecDeque::new(),
                busy: SimTime::ZERO,
            }),
            missed: Mutex::new(VecDeque::new()),
            stats: AtomicCacheStats::new(),
            epoch_h_accesses: AtomicU64::new(0),
            epoch_l_accesses: AtomicU64::new(0),
            own_contention: AtomicU64::new(0),
            published_contention: AtomicU64::new(0),
            obs: Mutex::new(Obs::noop()),
            published: Mutex::new(CacheStats::default()),
            dataset: dataset.clone(),
            config,
        })
    }

    /// Number of lock stripes per region structure.
    pub fn stripe_len(&self) -> usize {
        self.stripes
    }

    /// Current H-region capacity.
    pub fn h_capacity(&self) -> ByteSize {
        ByteSize::new(self.h_capacity.load(Ordering::Relaxed))
    }

    /// Current L-region capacity.
    pub fn l_capacity(&self) -> ByteSize {
        ByteSize::new(self.l_capacity.load(Ordering::Relaxed))
    }

    /// Number of samples resident in the H-region.
    pub fn h_len(&self) -> usize {
        self.h_items.len()
    }

    /// Number of samples resident in the L-region.
    pub fn l_len(&self) -> usize {
        self.l_resident.len()
    }

    fn hit_service(&self, size: ByteSize) -> SimDuration {
        self.config.rpc_overhead
            + SimDuration::from_secs_f64(size.as_f64() / self.config.dram_bandwidth)
    }

    fn hit(&self, id: SampleId, size: ByteSize, now: SimTime, outcome: FetchOutcome) -> Fetch {
        AtomicCacheStats::add_bytes(&self.stats.bytes_from_cache, size);
        Fetch {
            ready_at: now + self.hit_service(size),
            served_id: id,
            outcome,
        }
    }

    fn storage_miss(
        &self,
        id: SampleId,
        size: ByteSize,
        now: SimTime,
        storage: &mut dyn StorageBackend,
    ) -> Fetch {
        let done = storage.read_sample(id, size, now);
        AtomicCacheStats::bump(&self.stats.misses);
        AtomicCacheStats::add_bytes(&self.stats.bytes_from_storage, size);
        Fetch {
            ready_at: done + self.config.rpc_overhead,
            served_id: id,
            outcome: FetchOutcome::Miss,
        }
    }

    fn fetch_h(
        &self,
        id: SampleId,
        size: ByteSize,
        now: SimTime,
        storage: &mut dyn StorageBackend,
    ) -> Fetch {
        self.epoch_h_accesses.fetch_add(1, Ordering::Relaxed);
        if self.h_items.contains(id) {
            AtomicCacheStats::bump(&self.stats.h_hits);
            return self.hit(id, size, now, FetchOutcome::HitH);
        }
        let fetch = self.storage_miss(id, size, now, storage);
        let iv = self
            .effective_iv
            .read()
            .expect("effective_iv lock poisoned: a writer panicked")
            .get(id)
            .copied()
            .unwrap_or(ImportanceValue::ZERO);
        if !self.admit_h(id, size, iv) {
            AtomicCacheStats::bump(&self.stats.rejections);
        }
        fetch
    }

    /// The H-region admission loop (Algorithm 1 lines 9–16), serialized
    /// on the admit lock so the multi-victim evict-or-restore sequence
    /// is atomic. Returns whether the sample was admitted.
    fn admit_h(&self, id: SampleId, size: ByteSize, iv: ImportanceValue) -> bool {
        let capacity = self.h_capacity.load(Ordering::Relaxed);
        if size.as_u64() > capacity {
            return false;
        }
        let _adm = lock_counted(&self.admit, &self.own_contention);
        if self.h_items.contains(id) {
            // Raced with another thread admitting the same id: refresh
            // its key, admission itself already happened.
            self.h_heap.insert(id, iv);
            return true;
        }
        let needed = size.as_u64();
        let mut freed = 0u64;
        let mut popped: Vec<(SampleId, ImportanceValue, ByteSize)> = Vec::new();
        while self.h_used.load(Ordering::Relaxed).saturating_sub(freed) + needed > capacity {
            match self.h_heap.peek_global_min() {
                Some((vid, viv)) if viv < iv => {
                    self.h_heap.pop_global_min();
                    let vsize = self.h_items.get(vid).unwrap_or(ByteSize::ZERO);
                    freed += vsize.as_u64();
                    popped.push((vid, viv, vsize));
                }
                _ => {
                    // Cannot make room: restore provisional victims.
                    for (vid, viv, _) in popped {
                        self.h_heap.insert(vid, viv);
                    }
                    return false;
                }
            }
        }
        for (vid, _, vsize) in popped {
            self.h_items.remove(vid);
            self.h_used.fetch_sub(vsize.as_u64(), Ordering::Relaxed);
            AtomicCacheStats::bump(&self.stats.evictions);
        }
        self.h_items.insert(id, size);
        self.h_heap.insert(id, iv);
        self.h_used.fetch_add(needed, Ordering::Relaxed);
        AtomicCacheStats::bump(&self.stats.insertions);
        true
    }

    fn fetch_l(
        &self,
        id: SampleId,
        size: ByteSize,
        now: SimTime,
        storage: &mut dyn StorageBackend,
        rng: &mut StdRng,
        allow_substitute: bool,
    ) -> Fetch {
        self.epoch_l_accesses.fetch_add(1, Ordering::Relaxed);
        if !self.config.enable_lcache {
            return self.storage_miss(id, size, now, storage);
        }
        if self.l_resident.contains(id) {
            self.l_fresh.remove(id);
            AtomicCacheStats::bump(&self.stats.l_hits);
            return self.hit(id, size, now, FetchOutcome::HitL);
        }
        {
            let mut missed = lock_counted(&self.missed, &self.own_contention);
            if missed.len() > 1_000_000 {
                missed.pop_front();
            }
            missed.push_back(id);
        }
        if allow_substitute && self.config.substitution == Substitution::FromL {
            if let Some(sub) = self.l_fresh.draw(rng) {
                AtomicCacheStats::bump(&self.stats.substitutions);
                let sub_size = self.dataset.sample_size(sub);
                AtomicCacheStats::add_bytes(&self.stats.bytes_from_cache, sub_size);
                return Fetch {
                    ready_at: now + self.hit_service(sub_size),
                    served_id: sub,
                    outcome: FetchOutcome::Substituted {
                        by: sub,
                        from_h: false,
                    },
                };
            }
        }
        self.storage_miss(id, size, now, storage)
    }

    /// One cooperative loader tick: whichever fetch thread gets the
    /// loader lock integrates arrived packages and maybe starts the
    /// next package read. Threads that find the lock busy skip — the
    /// loader is logically one asynchronous thread, not a barrier.
    fn loader_tick(&self, now: SimTime, storage: &mut dyn StorageBackend) {
        if !self.config.enable_lcache {
            return;
        }
        let Ok(mut st) = self.loader.try_lock() else {
            return;
        };
        // Integrate packages whose virtual arrival time has passed.
        while st.pending.front().is_some_and(|(_, ready)| *ready <= now) {
            let (pkg, _) = st.pending.pop_front().expect("front checked above");
            self.install_package(&mut st, pkg);
        }
        // Maybe start the next package read (pacing + demand gates).
        let l_cap = self.l_capacity.load(Ordering::Relaxed);
        let wants = st.pending.is_empty()
            && (self.l_used.load(Ordering::Relaxed) < l_cap || self.l_fresh.is_empty());
        if l_cap == 0 || now < st.busy || !wants || st.l_pool.is_empty() {
            return;
        }
        let missed: Vec<SampleId> = {
            let mut log = lock_counted(&self.missed, &self.own_contention);
            let take = log.len().min(4 * 1024);
            log.drain(..take).collect()
        };
        let ds = &self.dataset;
        let target = self.config.package_size.min(ByteSize::new(l_cap));
        let st = &mut *st;
        let pkg =
            st.packager
                .build_with_target(&missed, &st.l_pool, |id| ds.sample_size(id), target);
        if pkg.is_empty() {
            return;
        }
        // lint: allow(locks-io): the loader guard IS the asynchronous loader's identity — read_package only schedules a virtual-time arrival (pending is drained on later ticks), it never blocks the calling trainer thread
        let ready = storage.read_package(pkg.total_bytes(), now);
        let pacing =
            SimDuration::from_secs_f64(pkg.total_bytes().as_f64() / self.config.loader_bandwidth);
        st.busy = ready.max(now + pacing);
        st.pending.push_back((pkg, ready));
    }

    fn install_package(&self, st: &mut LoaderState, pkg: crate::Package) {
        let mut owned = Vec::new();
        let mut owned_bytes = ByteSize::ZERO;
        for s in pkg.samples() {
            if self.l_resident.insert(s.id(), s.size()).is_some() {
                continue;
            }
            self.l_used.fetch_add(s.size().as_u64(), Ordering::Relaxed);
            owned_bytes += s.size();
            owned.push(s.id());
            self.l_fresh.push(s.id());
        }
        st.fifo.push_back((owned, owned_bytes));
        self.evict_l_to_fit(st);
    }

    fn evict_l_to_fit(&self, st: &mut LoaderState) {
        let capacity = self.l_capacity.load(Ordering::Relaxed);
        while self.l_used.load(Ordering::Relaxed) > capacity && st.fifo.len() > 1 {
            let (ids, bytes) = st
                .fifo
                .pop_front()
                .expect("loop guard: fifo holds at least two packages");
            for id in ids {
                if self.l_resident.remove(id).is_some() {
                    self.l_fresh.remove(id);
                }
            }
            self.l_used.fetch_sub(bytes.as_u64(), Ordering::Relaxed);
        }
    }

    /// Publish counters and gauges into the attached Obs registry.
    /// Counter publishes are deltas against the last publish (the
    /// registry is add-only); called under the write gate at epoch ends
    /// and by drivers after a replay completes.
    pub fn publish_obs(&self) {
        let obs = self
            .obs
            .lock()
            .expect("obs handle lock poisoned: a publisher panicked")
            .clone();
        let snap = self.stats.snapshot();
        let mut published = self
            .published
            .lock()
            .expect("published-stats lock poisoned: a publisher panicked");
        let delta = snap.delta_since(&published);
        *published = snap;
        drop(published);
        obs.add("cache.h_hits", delta.h_hits);
        obs.add("cache.l_hits", delta.l_hits);
        obs.add("cache.substitutions", delta.substitutions);
        obs.add("cache.misses", delta.misses);
        obs.add("cache.insertions", delta.insertions);
        obs.add("cache.evictions", delta.evictions);
        obs.add("cache.rejections", delta.rejections);
        obs.set_gauge("cache.h_capacity", self.h_capacity().as_f64());
        obs.set_gauge("cache.l_capacity", self.l_capacity().as_f64());
        obs.set_gauge("cache.hit_ratio", snap.hit_ratio());
        obs.set_gauge("cache.stripe.count", self.stripes as f64);
        obs.set_gauge(
            "cache.stripe.h_max_residents",
            self.h_items.max_stripe_population() as f64,
        );
        obs.set_gauge(
            "cache.stripe.l_max_residents",
            self.l_resident.max_stripe_population() as f64,
        );
        let contended = self.contended();
        let published_contention = self.published_contention.swap(contended, Ordering::Relaxed);
        obs.add(
            "cache.lock_contention",
            contended.saturating_sub(published_contention),
        );
    }
}

impl ConcurrentCache for ConcurrentManager {
    fn name(&self) -> &str {
        "icache"
    }

    fn fetch(
        &self,
        _job: JobId,
        id: SampleId,
        size: ByteSize,
        now: SimTime,
        storage: &mut dyn StorageBackend,
        rng: &mut StdRng,
    ) -> Fetch {
        let _gate = self
            .gate
            .read()
            .expect("epoch gate poisoned: a barrier holder panicked");
        let have_hlist = self.have_hlist.load(Ordering::Relaxed);
        let is_h = have_hlist
            && self
                .h_members
                .read()
                .expect("h_members lock poisoned: a writer panicked")
                .contains(id);
        let fetch = if is_h {
            self.fetch_h(id, size, now, storage)
        } else {
            // Before the first H-list (warm-up) everything is L-class
            // without substitution, as in the sequential manager.
            self.fetch_l(id, size, now, storage, rng, have_hlist)
        };
        self.loader_tick(now, storage);
        fetch
    }

    fn update_hlist(&self, _job: JobId, hlist: &HList) {
        let _barrier = self
            .gate
            .write()
            .expect("epoch gate poisoned: a barrier holder panicked");
        let fresh: IdSlab<ImportanceValue> = hlist.entries().iter().map(|e| (e.id, e.iv)).collect();
        let mut members = IdSet::new(self.dataset.len());
        members.extend(fresh.keys());
        // Re-key every resident H-sample to its fresh importance
        // (absent → zero: no longer an H-sample, prime eviction
        // candidate). The write barrier replaces the sequential shadow-
        // heap protocol: the rebuild is exclusive, so there is no fetch
        // traffic to keep serving mid-refresh.
        self.h_heap.for_each_shard(|shard| {
            let resident: Vec<SampleId> = shard.iter().map(|(id, _)| id).collect();
            for id in resident {
                let iv = fresh.get(id).copied().unwrap_or(ImportanceValue::ZERO);
                shard.update_key(id, iv);
            }
        });
        {
            let mut st = lock_counted(&self.loader, &self.own_contention);
            st.l_pool = self
                .dataset
                .ids()
                .filter(|&id| !members.contains(id))
                .collect();
        }
        *self
            .h_members
            .write()
            .expect("h_members lock poisoned: a writer panicked") = members;
        *self
            .effective_iv
            .write()
            .expect("effective_iv lock poisoned: a writer panicked") = fresh;
        self.have_hlist.store(true, Ordering::Relaxed);
    }

    fn on_epoch_start(&self, _job: JobId, _epoch: Epoch) {
        let _barrier = self
            .gate
            .write()
            .expect("epoch gate poisoned: a barrier holder panicked");
        // Every resident L-sample becomes fresh again, in ascending id
        // order exactly like the sequential rebuild.
        self.l_fresh.rebuild(self.l_resident.sorted_ids());
    }

    fn on_epoch_end(&self, _job: JobId, _epoch: Epoch) {
        let _barrier = self
            .gate
            .write()
            .expect("epoch gate poisoned: a barrier holder panicked");
        let h_acc = self.epoch_h_accesses.swap(0, Ordering::Relaxed);
        let l_acc = self.epoch_l_accesses.swap(0, Ordering::Relaxed);
        let total = h_acc + l_acc;
        if total > 0 && self.config.enable_lcache && self.have_hlist.load(Ordering::Relaxed) {
            // Frequency-driven region re-balancing (§III-A), identical
            // arithmetic to the sequential manager.
            let h_frac = h_acc as f64 / total as f64;
            let min_l = self.config.package_size.min(self.config.capacity / 2);
            let h_cap = self
                .config
                .capacity
                .scaled(h_frac)
                .min(self.config.capacity.saturating_sub(min_l));
            self.h_capacity.store(h_cap.as_u64(), Ordering::Relaxed);
            {
                // Shrink H to fit: evict global minima (barrier is
                // exclusive, the admit lock is taken for uniformity).
                let _adm = lock_counted(&self.admit, &self.own_contention);
                while self.h_used.load(Ordering::Relaxed) > h_cap.as_u64() {
                    let Some((vid, _)) = self.h_heap.pop_global_min() else {
                        break;
                    };
                    let vsize = self.h_items.remove(vid).unwrap_or(ByteSize::ZERO);
                    self.h_used.fetch_sub(vsize.as_u64(), Ordering::Relaxed);
                    AtomicCacheStats::bump(&self.stats.evictions);
                }
            }
            let l_cap = self.config.capacity.saturating_sub(h_cap);
            self.l_capacity.store(l_cap.as_u64(), Ordering::Relaxed);
            let mut st = lock_counted(&self.loader, &self.own_contention);
            self.evict_l_to_fit(&mut st);
        }
        self.publish_obs();
    }

    fn set_obs(&self, obs: Obs) {
        *self
            .obs
            .lock()
            .expect("obs handle lock poisoned: a publisher panicked") = obs;
        self.publish_obs();
    }

    fn stats(&self) -> CacheStats {
        self.stats.snapshot()
    }

    fn used_bytes(&self) -> ByteSize {
        ByteSize::new(self.h_used.load(Ordering::Relaxed) + self.l_used.load(Ordering::Relaxed))
    }

    fn capacity(&self) -> ByteSize {
        self.config.capacity
    }

    fn contended(&self) -> u64 {
        self.own_contention.load(Ordering::Relaxed)
            + self.h_items.contended()
            + self.h_heap.contended()
            + self.l_resident.contended()
            + self.l_fresh.contended()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icache_sampling::ImportanceTable;
    use icache_storage::LocalTier;
    use icache_types::{DatasetBuilder, SeedSequence};
    use rand::SeedableRng;

    fn tiny_dataset() -> Dataset {
        DatasetBuilder::new("tiny", 1_000)
            .size_model(icache_types::SizeModel::Fixed(ByteSize::kib(3)))
            .build()
            .expect("valid test dataset")
    }

    fn hlist(ds: &Dataset, hot: u64, frac: f64) -> HList {
        let mut t = ImportanceTable::new(ds.len());
        for i in 0..ds.len() {
            t.record_loss(SampleId(i), if i < hot { 10.0 + i as f64 } else { 0.01 });
        }
        HList::top_fraction(&t, frac)
    }

    fn manager(ds: &Dataset, frac: f64, stripes: usize) -> ConcurrentManager {
        let cfg = IcacheConfig::for_dataset(ds, frac).expect("valid test config");
        ConcurrentManager::new(cfg, ds, stripes).expect("valid test manager")
    }

    #[test]
    fn unsupported_features_are_rejected() {
        let ds = tiny_dataset();
        let mut cfg = IcacheConfig::for_dataset(&ds, 0.2).expect("valid test config");
        cfg.multi_job = true;
        assert!(ConcurrentManager::new(cfg, &ds, 8).is_err());
        let mut cfg = IcacheConfig::for_dataset(&ds, 0.2).expect("valid test config");
        cfg.substitution = Substitution::FromH;
        assert!(ConcurrentManager::new(cfg, &ds, 8).is_err());
    }

    #[test]
    fn h_miss_then_hit_single_thread() {
        let ds = tiny_dataset();
        let m = manager(&ds, 0.2, 8);
        let mut st = LocalTier::tmpfs();
        let mut rng = StdRng::seed_from_u64(1);
        m.update_hlist(JobId(0), &hlist(&ds, 100, 0.1));
        let id = SampleId(0);
        let sz = ds.sample_size(id);
        let first = m.fetch(JobId(0), id, sz, SimTime::ZERO, &mut st, &mut rng);
        assert_eq!(first.outcome, FetchOutcome::Miss);
        let second = m.fetch(JobId(0), id, sz, first.ready_at, &mut st, &mut rng);
        assert_eq!(second.outcome, FetchOutcome::HitH);
        let s = m.stats();
        assert_eq!(s.h_hits, 1);
        assert_eq!(s.misses, 1);
        assert!(m.used_bytes() <= m.capacity());
    }

    #[test]
    fn l_requests_package_load_and_substitute() {
        let ds = tiny_dataset();
        let m = manager(&ds, 0.2, 8);
        let mut st = LocalTier::tmpfs();
        let mut rng = StdRng::seed_from_u64(2);
        m.update_hlist(JobId(0), &hlist(&ds, 100, 0.1));
        m.on_epoch_start(JobId(0), Epoch(0));
        let f0 = m.fetch(
            JobId(0),
            SampleId(999),
            ds.sample_size(SampleId(999)),
            SimTime::ZERO,
            &mut st,
            &mut rng,
        );
        assert_eq!(f0.outcome, FetchOutcome::Miss);
        let mut now = SimTime::from_nanos(50_000_000);
        let mut served = 0;
        for i in 900..999u64 {
            let f = m.fetch(
                JobId(0),
                SampleId(i),
                ds.sample_size(SampleId(i)),
                now,
                &mut st,
                &mut rng,
            );
            now = f.ready_at;
            if f.outcome.served_from_cache() {
                served += 1;
            }
        }
        assert!(served > 50, "only {served} L requests served from cache");
        assert!(m.l_len() > 0);
    }

    #[test]
    fn epoch_end_rebalances_toward_h() {
        let ds = tiny_dataset();
        let m = manager(&ds, 0.2, 8);
        let mut st = LocalTier::tmpfs();
        let mut rng = StdRng::seed_from_u64(3);
        m.update_hlist(JobId(0), &hlist(&ds, 100, 0.1));
        m.on_epoch_start(JobId(0), Epoch(0));
        let mut now = SimTime::ZERO;
        for rep in 0..9 {
            for i in 0..100u64 {
                let _ = rep;
                let f = m.fetch(
                    JobId(0),
                    SampleId(i),
                    ds.sample_size(SampleId(i)),
                    now,
                    &mut st,
                    &mut rng,
                );
                now = f.ready_at;
            }
        }
        for i in 900..1000u64 {
            let f = m.fetch(
                JobId(0),
                SampleId(i),
                ds.sample_size(SampleId(i)),
                now,
                &mut st,
                &mut rng,
            );
            now = f.ready_at;
        }
        let h_before = m.h_capacity();
        m.on_epoch_end(JobId(0), Epoch(0));
        assert!(m.h_capacity() >= h_before, "9:1 access ratio keeps H large");
        assert_eq!(m.h_capacity() + m.l_capacity(), m.capacity());
    }

    #[test]
    fn many_threads_counters_add_up() {
        let ds = tiny_dataset();
        let m = manager(&ds, 0.2, 8);
        m.update_hlist(JobId(0), &hlist(&ds, 100, 0.1));
        m.on_epoch_start(JobId(0), Epoch(0));
        let threads = 4;
        let per_thread = 500usize;
        std::thread::scope(|scope| {
            for t in 0..threads {
                let m = &m;
                let ds = &ds;
                scope.spawn(move || {
                    let mut st = LocalTier::tmpfs();
                    let mut rng = SeedSequence::new(42).rng(&format!("loader{t}"));
                    let mut now = SimTime::ZERO;
                    for k in 0..per_thread {
                        let id = SampleId(((k * threads + t) % 1000) as u64);
                        let f = m.fetch(JobId(0), id, ds.sample_size(id), now, &mut st, &mut rng);
                        now = f.ready_at;
                    }
                });
            }
        });
        let s = m.stats();
        assert_eq!(s.requests(), (threads * per_thread) as u64);
        assert!(m.used_bytes() <= m.capacity());
        assert!(self_check(&m));
        m.on_epoch_end(JobId(0), Epoch(0));
    }

    fn self_check(m: &ConcurrentManager) -> bool {
        m.h_items.check_invariants()
            && m.h_heap.check_invariants()
            && m.l_resident.check_invariants()
            && m.l_fresh.check_invariants()
    }
}
