//! Concurrent in-node cache: lock-striped structures serving many
//! loader threads from one cache node.
//!
//! The sequential [`crate::IcacheManager`] is the deterministic
//! reference implementation — single-threaded, byte-identical per seed,
//! and the only path tier-1 goldens exercise. This module adds the
//! production shape: one node fielding fetches from `N` data-loader
//! threads concurrently.
//!
//! Layout (DESIGN.md §8 "In-node concurrency"):
//!
//! * **Striped maps** ([`StripedMap`], [`FreshPool`]): resident
//!   membership and the substitution fresh-pool are split across
//!   `stripes` locks keyed by `SampleId` (stripe = `id & (stripes-1)`);
//!   ids are contiguous, so adjacent samples land on different stripes.
//! * **Sharded H-heap** ([`ShardedHeap`]): one indexed min-heap per
//!   stripe; eviction takes every shard lock in ascending index order
//!   and merges the per-shard minima deterministically (lowest
//!   `(importance, id)` wins).
//! * **Atomic counters** ([`AtomicCacheStats`]): hit/miss/substitution
//!   counting never serializes readers.
//! * **Epoch write barrier**: fetches hold a [`std::sync::RwLock`] read
//!   guard; epoch-boundary operations (rebalance, fresh-pool rebuild,
//!   H-list refresh) take the write guard and run stop-the-world.
//! * **`workers == 1` short-circuit**: drivers must route
//!   single-threaded runs through the sequential manager so golden
//!   outputs stay byte-identical; [`MutexCache`] exists to wrap any
//!   [`crate::CacheSystem`] (baselines) behind one coarse lock for
//!   multi-threaded comparison runs.

mod manager;
mod sharded_heap;
mod stats;
mod striped;

pub use manager::{ConcurrentCache, ConcurrentManager, MutexCache};
pub use sharded_heap::ShardedHeap;
pub use stats::AtomicCacheStats;
pub use striped::{FreshPool, StripedMap};

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};

/// Round a requested stripe count up to a power of two (≥ 1, capped at
/// 1024) so stripe selection is a mask instead of a division.
pub(crate) fn stripe_count(requested: usize) -> usize {
    requested.clamp(1, 1024).next_power_of_two()
}

/// Acquire `m`, counting the acquisition as contended when the lock was
/// not immediately free (feeds the `cache.lock_contention` counter).
pub(crate) fn lock_counted<'a, T>(m: &'a Mutex<T>, contention: &AtomicU64) -> MutexGuard<'a, T> {
    match m.try_lock() {
        Ok(guard) => guard,
        Err(_) => {
            contention.fetch_add(1, Ordering::Relaxed);
            m.lock()
                .expect("stripe lock poisoned: a holder panicked mid-update")
        }
    }
}
