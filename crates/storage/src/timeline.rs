//! A single-server resource over a busy-interval timeline.

use icache_types::{SimDuration, SimTime};
use std::collections::BTreeMap;

/// A capacity-1 resource that tracks its busy time as a set of intervals
/// rather than a single horizon.
///
/// [`crate::FifoResource`] assumes submissions arrive in non-decreasing
/// virtual time: anything submitted "late" queues behind the entire busy
/// horizon, even if the server was idle at the requested instant. That is
/// exactly right for one job's in-order request stream, but a simulator
/// component that issues work at a *future* or *past* instant (an
/// asynchronous loading thread, an out-of-phase peer job) would corrupt a
/// horizon-based queue. `TimelineResource` instead books the earliest idle
/// gap at or after the submission time — for monotone submission streams
/// it is bit-for-bit equivalent to `FifoResource` (verified by property
/// test), and for out-of-order streams it degrades gracefully instead of
/// inflating every later request.
///
/// Adjacent and overlapping bookings are coalesced, so steady-state memory
/// is a handful of intervals.
///
/// # Examples
///
/// ```
/// use icache_storage::TimelineResource;
/// use icache_types::{SimDuration, SimTime};
///
/// let mut r = TimelineResource::new();
/// // Book far in the future…
/// let future = SimTime::from_nanos(1_000_000);
/// r.submit(future, SimDuration::from_micros(100));
/// // …the past is still free: an earlier submission backfills the gap.
/// let done = r.submit(SimTime::ZERO, SimDuration::from_micros(10));
/// assert_eq!(done.as_nanos(), 10_000);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TimelineResource {
    /// Non-overlapping busy intervals: start ns → end ns.
    busy: BTreeMap<u64, u64>,
    busy_time: SimDuration,
    jobs_served: u64,
}

impl TimelineResource {
    /// A fresh, idle resource.
    pub fn new() -> Self {
        TimelineResource::default()
    }

    /// Book `service` at the earliest idle instant at or after `now`;
    /// returns the completion time.
    pub fn submit(&mut self, now: SimTime, service: SimDuration) -> SimTime {
        let dur = service.as_nanos();
        let mut start = now.as_nanos();
        // Walk intervals that could collide, pushing the candidate start
        // past each overlap. Intervals are sorted; begin from the last
        // interval starting at or before the candidate.
        loop {
            // The interval at or before `start` may cover it.
            if let Some((_, &end)) = self.busy.range(..=start).next_back() {
                if end > start {
                    start = end;
                    continue;
                }
            }
            // The next interval after `start` may truncate the gap.
            match self.busy.range(start..).next() {
                Some((&next_start, _)) if next_start < start + dur => {
                    start = *self.busy.get(&next_start).expect("key exists");
                }
                _ => break,
            }
        }
        let end = start + dur;
        self.insert_interval(start, end);
        self.busy_time += service;
        self.jobs_served += 1;
        SimTime::from_nanos(end)
    }

    fn insert_interval(&mut self, mut start: u64, mut end: u64) {
        if start == end {
            return;
        }
        // Coalesce with the predecessor if contiguous.
        if let Some((&ps, &pe)) = self.busy.range(..=start).next_back() {
            if pe >= start {
                start = ps;
                end = end.max(pe);
                self.busy.remove(&ps);
            }
        }
        // Coalesce with any successors swallowed by the new interval.
        while let Some((&ns, &ne)) = self.busy.range(start..).next() {
            if ns <= end {
                end = end.max(ne);
                self.busy.remove(&ns);
            } else {
                break;
            }
        }
        self.busy.insert(start, end);
    }

    /// The latest instant any booking ends (the horizon).
    pub fn busy_until(&self) -> SimTime {
        SimTime::from_nanos(self.busy.values().next_back().copied().unwrap_or(0))
    }

    /// Total service time booked.
    pub fn busy_time(&self) -> SimDuration {
        self.busy_time
    }

    /// Number of bookings served.
    pub fn jobs_served(&self) -> u64 {
        self.jobs_served
    }

    /// Number of distinct busy intervals currently tracked (diagnostics;
    /// stays small thanks to coalescing).
    pub fn interval_count(&self) -> usize {
        self.busy.len()
    }

    /// Forget accumulated statistics but keep the bookings.
    pub fn reset_stats(&mut self) {
        self.busy_time = SimDuration::ZERO;
        self.jobs_served = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(v: u64) -> SimDuration {
        SimDuration::from_micros(v)
    }

    fn at(v: u64) -> SimTime {
        SimTime::from_nanos(v * 1_000)
    }

    #[test]
    fn in_order_submissions_queue_like_fifo() {
        let mut t = TimelineResource::new();
        let a = t.submit(SimTime::ZERO, us(5));
        let b = t.submit(SimTime::ZERO, us(5));
        assert_eq!(a, at(5));
        assert_eq!(b, at(10));
        assert_eq!(t.interval_count(), 1, "contiguous bookings coalesce");
    }

    #[test]
    fn late_gap_is_backfilled() {
        let mut t = TimelineResource::new();
        t.submit(at(100), us(10)); // busy 100..110
        let early = t.submit(SimTime::ZERO, us(20)); // fits 0..20
        assert_eq!(early, at(20));
        // A 90us job at t=0 does NOT fit before 100: it lands after 110.
        let big = t.submit(SimTime::ZERO, us(90));
        assert_eq!(big, at(200));
    }

    #[test]
    fn exact_fit_gap_is_used() {
        let mut t = TimelineResource::new();
        t.submit(SimTime::ZERO, us(10)); // 0..10
        t.submit(at(20), us(10)); // 20..30
        let mid = t.submit(at(10), us(10)); // exactly 10..20
        assert_eq!(mid, at(20));
        assert_eq!(t.interval_count(), 1, "all three coalesce");
    }

    #[test]
    fn horizon_and_stats() {
        let mut t = TimelineResource::new();
        t.submit(at(50), us(10));
        t.submit(SimTime::ZERO, us(5));
        assert_eq!(t.busy_until(), at(60));
        assert_eq!(t.busy_time(), us(15));
        assert_eq!(t.jobs_served(), 2);
        t.reset_stats();
        assert_eq!(t.jobs_served(), 0);
        assert_eq!(t.busy_until(), at(60), "bookings survive stat resets");
    }

    #[test]
    fn zero_service_is_free() {
        let mut t = TimelineResource::new();
        let done = t.submit(at(7), SimDuration::ZERO);
        assert_eq!(done, at(7));
        assert_eq!(t.interval_count(), 0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::FifoResource;
    use proptest::prelude::*;

    proptest! {
        /// For monotone (in-order) submission streams the timeline is
        /// bit-for-bit equivalent to the FIFO horizon model.
        #[test]
        fn equivalent_to_fifo_for_monotone_streams(
            steps in proptest::collection::vec((0u64..10_000, 0u64..5_000), 1..200)
        ) {
            let mut fifo = FifoResource::new();
            let mut timeline = TimelineResource::new();
            let mut now = 0u64;
            for (advance, service_us) in steps {
                now += advance;
                let t = SimTime::from_nanos(now * 1_000);
                let s = SimDuration::from_micros(service_us);
                prop_assert_eq!(fifo.submit(t, s), timeline.submit(t, s));
            }
            prop_assert_eq!(fifo.busy_until(), timeline.busy_until());
            prop_assert_eq!(fifo.busy_time(), timeline.busy_time());
        }

        /// Bookings never overlap and always start at or after submission.
        #[test]
        fn bookings_never_overlap(
            reqs in proptest::collection::vec((0u64..10_000, 1u64..2_000), 1..150)
        ) {
            let mut t = TimelineResource::new();
            let mut total = SimDuration::ZERO;
            for (at_us, service_us) in reqs {
                let now = SimTime::from_nanos(at_us * 1_000);
                let s = SimDuration::from_micros(service_us);
                let done = t.submit(now, s);
                prop_assert!(done >= now + s, "completion before physically possible");
                total += s;
            }
            // No overlap <=> the union of intervals is exactly the sum of
            // service times.
            let union: u64 = t.busy.iter().map(|(&s, &e)| e - s).sum();
            prop_assert_eq!(union, total.as_nanos());
        }
    }
}
