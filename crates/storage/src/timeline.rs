//! A single-server resource over a busy-interval timeline.

use icache_types::{SimDuration, SimTime};
use std::collections::BTreeMap;

/// A capacity-1 resource that tracks its busy time as a set of intervals
/// rather than a single horizon.
///
/// [`crate::FifoResource`] assumes submissions arrive in non-decreasing
/// virtual time: anything submitted "late" queues behind the entire busy
/// horizon, even if the server was idle at the requested instant. That is
/// exactly right for one job's in-order request stream, but a simulator
/// component that issues work at a *future* or *past* instant (an
/// asynchronous loading thread, an out-of-phase peer job) would corrupt a
/// horizon-based queue. `TimelineResource` instead books the earliest idle
/// gap at or after the submission time — for monotone submission streams
/// it is bit-for-bit equivalent to `FifoResource` (verified by property
/// test), and for out-of-order streams it degrades gracefully instead of
/// inflating every later request.
///
/// Adjacent and overlapping bookings are coalesced, so steady-state memory
/// is a handful of intervals.
///
/// # Examples
///
/// ```
/// use icache_storage::TimelineResource;
/// use icache_types::{SimDuration, SimTime};
///
/// let mut r = TimelineResource::new();
/// // Book far in the future…
/// let future = SimTime::from_nanos(1_000_000);
/// r.submit(future, SimDuration::from_micros(100));
/// // …the past is still free: an earlier submission backfills the gap.
/// let done = r.submit(SimTime::ZERO, SimDuration::from_micros(10));
/// assert_eq!(done.as_nanos(), 10_000);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TimelineResource {
    /// Non-overlapping busy intervals: start ns → end ns.
    busy: BTreeMap<u64, u64>,
    /// Cached start/end of the interval with the greatest start (the
    /// tail); meaningless while `busy` is empty. The overwhelmingly
    /// common submission — at or after the tail interval's start — then
    /// books in O(1)-ish with a single keyed update instead of the
    /// range-walk-and-reinsert of the general gap search.
    tail_start: u64,
    tail_end: u64,
    busy_time: SimDuration,
    jobs_served: u64,
}

impl TimelineResource {
    /// A fresh, idle resource.
    pub fn new() -> Self {
        TimelineResource::default()
    }

    /// Book `service` at the earliest idle instant at or after `now`;
    /// returns the completion time.
    pub fn submit(&mut self, now: SimTime, service: SimDuration) -> SimTime {
        let end = self.book(now.as_nanos(), service.as_nanos());
        self.busy_time += service;
        self.jobs_served += 1;
        SimTime::from_nanos(end)
    }

    fn book(&mut self, mut start: u64, dur: u64) -> u64 {
        // Fast path: the submission starts at or after the tail interval,
        // so no earlier gap can fit it — it either queues right behind the
        // tail (extending it in place) or books the open time after it.
        if dur > 0 && !self.busy.is_empty() && start >= self.tail_start {
            let s = start.max(self.tail_end);
            let e = s + dur;
            if s > self.tail_end {
                self.busy.insert(s, e);
                self.tail_start = s;
                self.tail_end = e;
                return e;
            }
            if let Some(end) = self.busy.get_mut(&self.tail_start) {
                *end = e;
                self.tail_end = e;
                return e;
            }
        }
        // Walk intervals that could collide, pushing the candidate start
        // past each overlap. Intervals are sorted; begin from the last
        // interval starting at or before the candidate.
        loop {
            // The interval at or before `start` may cover it.
            if let Some((_, &end)) = self.busy.range(..=start).next_back() {
                if end > start {
                    start = end;
                    continue;
                }
            }
            // The next interval after `start` may truncate the gap.
            match self.busy.range(start..).next() {
                Some((&next_start, _)) if next_start < start + dur => {
                    start = *self.busy.get(&next_start).expect("key exists");
                }
                _ => break,
            }
        }
        let end = start + dur;
        self.insert_interval(start, end);
        if let Some((&ts, &te)) = self.busy.iter().next_back() {
            self.tail_start = ts;
            self.tail_end = te;
        }
        end
    }

    fn insert_interval(&mut self, mut start: u64, mut end: u64) {
        if start == end {
            return;
        }
        // Coalesce with the predecessor if contiguous.
        if let Some((&ps, &pe)) = self.busy.range(..=start).next_back() {
            if pe >= start {
                start = ps;
                end = end.max(pe);
                self.busy.remove(&ps);
            }
        }
        // Coalesce with any successors swallowed by the new interval.
        while let Some((&ns, &ne)) = self.busy.range(start..).next() {
            if ns <= end {
                end = end.max(ne);
                self.busy.remove(&ns);
            } else {
                break;
            }
        }
        self.busy.insert(start, end);
    }

    /// Forget booked intervals that end at or before `t`, keeping the
    /// tail interval so [`TimelineResource::busy_until`] is preserved.
    ///
    /// This is a memory-reclamation contract, not a semantic no-op: a
    /// pruned interval's time range looks idle again. The caller must
    /// therefore guarantee that **every future submission starts at or
    /// after `t`** — a monotone-clock driver can retire the past as its
    /// clock advances, while out-of-order submitters (the prefetch
    /// pipeline's backdated issues) must never call this. Statistics
    /// (`busy_time`, `jobs_served`) are unaffected.
    pub fn release_before(&mut self, t: SimTime) {
        let cutoff = t.as_nanos();
        while let Some((&start, &end)) = self.busy.iter().next() {
            if end <= cutoff && start != self.tail_start {
                self.busy.remove(&start);
            } else {
                break;
            }
        }
    }

    /// The latest instant any booking ends (the horizon).
    pub fn busy_until(&self) -> SimTime {
        SimTime::from_nanos(self.busy.values().next_back().copied().unwrap_or(0))
    }

    /// Total service time booked.
    pub fn busy_time(&self) -> SimDuration {
        self.busy_time
    }

    /// Number of bookings served.
    pub fn jobs_served(&self) -> u64 {
        self.jobs_served
    }

    /// Number of distinct busy intervals currently tracked (diagnostics;
    /// stays small thanks to coalescing).
    pub fn interval_count(&self) -> usize {
        self.busy.len()
    }

    /// Forget accumulated statistics but keep the bookings.
    pub fn reset_stats(&mut self) {
        self.busy_time = SimDuration::ZERO;
        self.jobs_served = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(v: u64) -> SimDuration {
        SimDuration::from_micros(v)
    }

    fn at(v: u64) -> SimTime {
        SimTime::from_nanos(v * 1_000)
    }

    #[test]
    fn in_order_submissions_queue_like_fifo() {
        let mut t = TimelineResource::new();
        let a = t.submit(SimTime::ZERO, us(5));
        let b = t.submit(SimTime::ZERO, us(5));
        assert_eq!(a, at(5));
        assert_eq!(b, at(10));
        assert_eq!(t.interval_count(), 1, "contiguous bookings coalesce");
    }

    #[test]
    fn late_gap_is_backfilled() {
        let mut t = TimelineResource::new();
        t.submit(at(100), us(10)); // busy 100..110
        let early = t.submit(SimTime::ZERO, us(20)); // fits 0..20
        assert_eq!(early, at(20));
        // A 90us job at t=0 does NOT fit before 100: it lands after 110.
        let big = t.submit(SimTime::ZERO, us(90));
        assert_eq!(big, at(200));
    }

    #[test]
    fn exact_fit_gap_is_used() {
        let mut t = TimelineResource::new();
        t.submit(SimTime::ZERO, us(10)); // 0..10
        t.submit(at(20), us(10)); // 20..30
        let mid = t.submit(at(10), us(10)); // exactly 10..20
        assert_eq!(mid, at(20));
        assert_eq!(t.interval_count(), 1, "all three coalesce");
    }

    #[test]
    fn horizon_and_stats() {
        let mut t = TimelineResource::new();
        t.submit(at(50), us(10));
        t.submit(SimTime::ZERO, us(5));
        assert_eq!(t.busy_until(), at(60));
        assert_eq!(t.busy_time(), us(15));
        assert_eq!(t.jobs_served(), 2);
        t.reset_stats();
        assert_eq!(t.jobs_served(), 0);
        assert_eq!(t.busy_until(), at(60), "bookings survive stat resets");
    }

    #[test]
    fn release_before_reclaims_but_keeps_the_horizon() {
        let mut t = TimelineResource::new();
        // Three disjoint bookings leave three intervals.
        t.submit(SimTime::ZERO, us(10));
        t.submit(at(50), us(10));
        t.submit(at(100), us(10));
        assert_eq!(t.interval_count(), 3);
        t.release_before(at(70));
        assert_eq!(t.interval_count(), 1, "two retired intervals dropped");
        assert_eq!(t.busy_until(), at(110), "horizon survives pruning");
        assert_eq!(t.busy_time(), us(30), "stats survive pruning");
        // A submission respecting the watermark queues exactly as before:
        // the 100..110 tail is still booked.
        assert_eq!(t.submit(at(105), us(10)), at(120));
        // Even pruning past the horizon keeps the tail interval.
        t.release_before(at(500));
        assert_eq!(t.interval_count(), 1);
        assert_eq!(t.busy_until(), at(120));
    }

    #[test]
    fn zero_service_is_free() {
        let mut t = TimelineResource::new();
        let done = t.submit(at(7), SimDuration::ZERO);
        assert_eq!(done, at(7));
        assert_eq!(t.interval_count(), 0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::FifoResource;
    use proptest::prelude::*;

    proptest! {
        /// For monotone (in-order) submission streams the timeline is
        /// bit-for-bit equivalent to the FIFO horizon model.
        #[test]
        fn equivalent_to_fifo_for_monotone_streams(
            steps in proptest::collection::vec((0u64..10_000, 0u64..5_000), 1..200)
        ) {
            let mut fifo = FifoResource::new();
            let mut timeline = TimelineResource::new();
            let mut now = 0u64;
            for (advance, service_us) in steps {
                now += advance;
                let t = SimTime::from_nanos(now * 1_000);
                let s = SimDuration::from_micros(service_us);
                prop_assert_eq!(fifo.submit(t, s), timeline.submit(t, s));
            }
            prop_assert_eq!(fifo.busy_until(), timeline.busy_until());
            prop_assert_eq!(fifo.busy_time(), timeline.busy_time());
        }

        /// The tail fast path books exactly like a naive scan over all
        /// intervals: arbitrary (possibly out-of-order, zero-duration)
        /// streams complete at identical instants.
        #[test]
        fn fast_path_matches_naive_reference(
            reqs in proptest::collection::vec((0u64..10_000, 0u64..2_000), 1..150)
        ) {
            let mut t = TimelineResource::new();
            // Sorted, non-overlapping booked intervals in nanoseconds.
            let mut naive: Vec<(u64, u64)> = Vec::new();
            for (at_us, service_us) in reqs {
                let now = SimTime::from_nanos(at_us * 1_000);
                let service = SimDuration::from_micros(service_us);
                let done = t.submit(now, service);
                let dur = service.as_nanos();
                let mut start = now.as_nanos();
                loop {
                    let mut changed = false;
                    for &(bs, be) in naive.iter() {
                        if bs <= start && start < be {
                            start = be;
                            changed = true;
                            break;
                        }
                        if start < bs && bs < start + dur {
                            start = be;
                            changed = true;
                            break;
                        }
                        if bs >= start + dur {
                            break;
                        }
                    }
                    if !changed {
                        break;
                    }
                }
                prop_assert_eq!(done.as_nanos(), start + dur, "at {now} for {service}");
                if dur > 0 {
                    let pos = naive.partition_point(|&(bs, _)| bs < start);
                    naive.insert(pos, (start, start + dur));
                }
            }
        }

        /// Bookings never overlap and always start at or after submission.
        #[test]
        fn bookings_never_overlap(
            reqs in proptest::collection::vec((0u64..10_000, 1u64..2_000), 1..150)
        ) {
            let mut t = TimelineResource::new();
            let mut total = SimDuration::ZERO;
            for (at_us, service_us) in reqs {
                let now = SimTime::from_nanos(at_us * 1_000);
                let s = SimDuration::from_micros(service_us);
                let done = t.submit(now, s);
                prop_assert!(done >= now + s, "completion before physically possible");
                total += s;
            }
            // No overlap <=> the union of intervals is exactly the sum of
            // service times.
            let union: u64 = t.busy.iter().map(|(&s, &e)| e - s).sum();
            prop_assert_eq!(union, total.as_nanos());
        }
    }
}
