//! Failure injection: periodic storage brownouts.
//!
//! Shared storage in real clusters degrades periodically — compaction,
//! backup traffic, a neighbour's job saturating the servers. This wrapper
//! injects deterministic brownout windows over any [`StorageBackend`] so
//! tests and ablations can check how gracefully cache systems ride
//! through degradation (caches should; cacheless loaders cannot).

use crate::{StorageBackend, StorageStats};
use icache_types::{ByteSize, Error, Result, SampleId, SimDuration, SimTime};

/// Configuration of the brownout schedule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BrownoutConfig {
    /// Distance between brownout window starts.
    pub period: SimDuration,
    /// Length of each brownout window.
    pub duration: SimDuration,
    /// Extra latency added to every request submitted inside a window.
    pub extra_latency: SimDuration,
}

impl BrownoutConfig {
    fn validate(&self) -> Result<()> {
        if self.period.is_zero() {
            return Err(Error::invalid_config("period", "must be non-zero"));
        }
        if self.duration > self.period {
            return Err(Error::invalid_config(
                "duration",
                "must not exceed the period",
            ));
        }
        Ok(())
    }
}

/// A [`StorageBackend`] decorator that adds latency during periodic
/// brownout windows.
///
/// A request submitted at virtual time `t` is degraded when
/// `t mod period < duration`. The schedule is purely a function of the
/// submission time, so runs remain deterministic.
///
/// # Examples
///
/// ```
/// use icache_storage::{BrownoutConfig, DegradedStorage, LocalTier, StorageBackend};
/// use icache_types::{ByteSize, SampleId, SimDuration, SimTime};
///
/// let mut flaky = DegradedStorage::new(
///     LocalTier::tmpfs(),
///     BrownoutConfig {
///         period: SimDuration::from_millis(10),
///         duration: SimDuration::from_millis(2),
///         extra_latency: SimDuration::from_millis(5),
///     },
/// )?;
/// // Inside the window (t = 0): degraded.
/// let slow = flaky.read_sample(SampleId(0), ByteSize::kib(3), SimTime::ZERO);
/// // Outside (t = 5 ms): fast.
/// let t = SimTime::ZERO + SimDuration::from_millis(5);
/// let fast = flaky.read_sample(SampleId(1), ByteSize::kib(3), t);
/// assert!(slow.saturating_since(SimTime::ZERO) > fast.saturating_since(t));
/// # Ok::<(), icache_types::Error>(())
/// ```
#[derive(Debug, Clone)]
pub struct DegradedStorage<B> {
    inner: B,
    config: BrownoutConfig,
    degraded_requests: u64,
    name: String,
    obs: icache_obs::Obs,
}

impl<B: StorageBackend> DegradedStorage<B> {
    /// Wrap `inner` with the given brownout schedule.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] for a zero period or a window
    /// longer than the period.
    pub fn new(inner: B, config: BrownoutConfig) -> Result<Self> {
        config.validate()?;
        let name = format!("degraded({})", inner.name());
        Ok(DegradedStorage {
            inner,
            config,
            degraded_requests: 0,
            name,
            obs: icache_obs::Obs::noop(),
        })
    }

    /// Whether `now` falls inside a brownout window.
    pub fn in_brownout(&self, now: SimTime) -> bool {
        (now.as_nanos() % self.config.period.as_nanos()) < self.config.duration.as_nanos()
    }

    /// Requests that were hit by a brownout so far.
    pub fn degraded_requests(&self) -> u64 {
        self.degraded_requests
    }

    /// The wrapped backend (read access).
    pub fn inner(&self) -> &B {
        &self.inner
    }

    fn penalty(&mut self, now: SimTime) -> SimDuration {
        if self.in_brownout(now) {
            self.degraded_requests += 1;
            self.obs.inc("storage.degraded_requests");
            self.obs.emit(icache_obs::TraceEvent::BrownoutDegradedRead {
                backend: self.name.clone(),
                penalty_nanos: self.config.extra_latency.as_nanos(),
            });
            self.config.extra_latency
        } else {
            SimDuration::ZERO
        }
    }
}

impl<B: StorageBackend> StorageBackend for DegradedStorage<B> {
    fn name(&self) -> &str {
        &self.name
    }

    fn read_sample(&mut self, id: SampleId, size: ByteSize, now: SimTime) -> SimTime {
        let penalty = self.penalty(now);
        self.inner.read_sample(id, size, now) + penalty
    }

    fn read_package(&mut self, size: ByteSize, now: SimTime) -> SimTime {
        let penalty = self.penalty(now);
        self.inner.read_package(size, now) + penalty
    }

    fn stats(&self) -> StorageStats {
        self.inner.stats()
    }

    fn reset_stats(&mut self) {
        self.inner.reset_stats();
    }

    fn set_obs(&mut self, obs: icache_obs::Obs) {
        self.obs = obs.clone();
        self.inner.set_obs(obs);
    }

    fn release_before(&mut self, t: SimTime) {
        self.inner.release_before(t);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LocalTier;

    fn flaky() -> DegradedStorage<LocalTier> {
        DegradedStorage::new(
            LocalTier::tmpfs(),
            BrownoutConfig {
                period: SimDuration::from_millis(100),
                duration: SimDuration::from_millis(10),
                extra_latency: SimDuration::from_millis(3),
            },
        )
        .unwrap()
    }

    #[test]
    fn schedule_is_periodic() {
        let f = flaky();
        assert!(f.in_brownout(SimTime::ZERO));
        assert!(f.in_brownout(SimTime::from_nanos(9_999_999)));
        assert!(!f.in_brownout(SimTime::from_nanos(10_000_000)));
        assert!(!f.in_brownout(SimTime::from_nanos(99_999_999)));
        assert!(f.in_brownout(SimTime::from_nanos(100_000_000)));
    }

    #[test]
    fn penalty_applies_only_in_window() {
        let mut f = flaky();
        let in_window = f.read_sample(SampleId(0), ByteSize::kib(3), SimTime::ZERO);
        assert!(in_window.saturating_since(SimTime::ZERO) >= SimDuration::from_millis(3));
        let t = SimTime::from_nanos(50_000_000);
        let outside = f.read_sample(SampleId(1), ByteSize::kib(3), t);
        assert!(outside.saturating_since(t) < SimDuration::from_millis(1));
        assert_eq!(f.degraded_requests(), 1);
    }

    #[test]
    fn stats_pass_through_to_inner() {
        let mut f = flaky();
        f.read_sample(SampleId(0), ByteSize::kib(3), SimTime::ZERO);
        f.read_package(ByteSize::mib(1), SimTime::ZERO);
        assert_eq!(f.stats().sample_reads, 1);
        assert_eq!(f.stats().package_reads, 1);
        f.reset_stats();
        assert_eq!(f.stats().total_reads(), 0);
        assert_eq!(f.inner().stats().total_reads(), 0);
    }

    #[test]
    fn name_identifies_the_wrapped_backend() {
        let f = flaky();
        assert_eq!(f.name(), "degraded(tmpfs)");
        let nested = DegradedStorage::new(
            flaky(),
            BrownoutConfig {
                period: SimDuration::from_millis(100),
                duration: SimDuration::from_millis(10),
                extra_latency: SimDuration::from_millis(3),
            },
        )
        .unwrap();
        assert_eq!(nested.name(), "degraded(degraded(tmpfs))");
    }

    #[test]
    fn degraded_requests_surface_through_the_metrics_registry() {
        let mut f = flaky();
        let obs = icache_obs::Obs::new();
        f.set_obs(obs.clone());
        f.read_sample(SampleId(0), ByteSize::kib(3), SimTime::ZERO); // in window
        f.read_sample(
            SampleId(1),
            ByteSize::kib(3),
            SimTime::from_nanos(50_000_000),
        );
        assert_eq!(obs.counter("storage.degraded_requests"), 1);
        assert_eq!(f.degraded_requests(), 1);
        // The brownout also leaves a structured trace event.
        let jsonl = obs.trace_jsonl();
        assert!(
            jsonl.contains(r#""event":"brownout_degraded_read""#),
            "{jsonl}"
        );
        assert!(jsonl.contains(r#""backend":"degraded(tmpfs)""#), "{jsonl}");
    }

    #[test]
    fn validation_rejects_degenerate_schedules() {
        let bad = BrownoutConfig {
            period: SimDuration::ZERO,
            duration: SimDuration::ZERO,
            extra_latency: SimDuration::ZERO,
        };
        assert!(DegradedStorage::new(LocalTier::tmpfs(), bad).is_err());
        let inverted = BrownoutConfig {
            period: SimDuration::from_millis(1),
            duration: SimDuration::from_millis(2),
            extra_latency: SimDuration::ZERO,
        };
        assert!(DegradedStorage::new(LocalTier::tmpfs(), inverted).is_err());
    }
}
