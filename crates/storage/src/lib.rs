//! Simulated storage substrate for the iCache reproduction.
//!
//! The paper evaluates against an OrangeFS parallel file system (four data
//! servers, 64 KB stripes, 10 Gbps Ethernet) and, for the distributed
//! experiments, an NFS server. This crate models those systems — plus the
//! local tmpfs/SSD tiers used in the motivation experiments — as
//! deterministic queueing models over simulated time:
//!
//! * every storage server is a FIFO resource with a per-request overhead
//!   (metadata lookup + seek + RPC) and a streaming bandwidth;
//! * files are striped across servers; small files occupy a single stripe;
//! * the client NIC is a shared FIFO link, so concurrent transfers from
//!   multiple workers or jobs contend for bandwidth;
//! * all state is plain data — identical request sequences produce identical
//!   timings.
//!
//! The central abstraction is [`StorageBackend`]: "submit a read at virtual
//! time *t*, learn when it completes". Cache layers sit in front of a
//! backend and decide *which* reads to submit; this crate decides *how long*
//! they take.
//!
//! # Examples
//!
//! ```
//! use icache_storage::{Pfs, PfsConfig, StorageBackend};
//! use icache_types::{ByteSize, SampleId, SimTime};
//!
//! let mut pfs = Pfs::new(PfsConfig::orangefs_default())?;
//! let done = pfs.read_sample(SampleId(0), ByteSize::kib(3), SimTime::ZERO);
//! assert!(done > SimTime::ZERO);
//! # Ok::<(), icache_types::Error>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod backend;
mod degraded;
mod local;
mod nfs;
mod pfs;
mod queue;
mod stats;
mod timeline;

pub use backend::{ReadClass, StorageBackend};
pub use degraded::{BrownoutConfig, DegradedStorage};
pub use local::{LocalTier, LocalTierConfig};
pub use nfs::{Nfs, NfsConfig};
pub use pfs::{Pfs, PfsConfig};
pub use queue::FifoResource;
pub use stats::StorageStats;
pub use timeline::TimelineResource;
