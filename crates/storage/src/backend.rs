//! The storage backend abstraction.

use crate::StorageStats;
use icache_types::{ByteSize, SampleId, SimTime};

/// Classification of a read for reporting purposes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReadClass {
    /// A random read of one sample file.
    Sample,
    /// A sequential read of a multi-sample package.
    Package,
}

/// A storage system that serves reads over simulated time.
///
/// Implementations are queueing models: submitting a read at virtual time
/// `now` returns the instant the data is available in host memory. Because
/// queues persist across calls, concurrent callers sharing one backend
/// contend with each other exactly as concurrent data-loader workers or
/// training jobs contend for real storage servers.
///
/// This trait is object-safe; the simulator passes `&mut dyn
/// StorageBackend` through the cache layers.
///
/// # Examples
///
/// ```
/// use icache_storage::{LocalTier, StorageBackend};
/// use icache_types::{ByteSize, SampleId, SimTime};
///
/// let mut tier = LocalTier::tmpfs();
/// let t1 = tier.read_sample(SampleId(1), ByteSize::kib(3), SimTime::ZERO);
/// let t2 = tier.read_sample(SampleId(2), ByteSize::kib(3), t1);
/// assert!(t2 > t1);
/// ```
pub trait StorageBackend {
    /// Human-readable backend name for reports.
    fn name(&self) -> &str;

    /// Read one sample file of `size` bytes, submitted at `now`.
    ///
    /// This is the small-random-read path: it pays the per-request overhead
    /// of the backend. Returns the completion instant.
    fn read_sample(&mut self, id: SampleId, size: ByteSize, now: SimTime) -> SimTime;

    /// Read a sequential package of `size` bytes, submitted at `now`.
    ///
    /// Packages are large (≥ 1 MB in the paper) and stream at close to the
    /// backend's aggregate bandwidth. Returns the completion instant.
    fn read_package(&mut self, size: ByteSize, now: SimTime) -> SimTime;

    /// Accumulated statistics.
    fn stats(&self) -> StorageStats;

    /// Reset accumulated statistics (queue horizons are preserved).
    fn reset_stats(&mut self);

    /// Attach an observability handle. Backends that participate in
    /// structured tracing and the metrics registry store a clone; the
    /// default implementation ignores it.
    fn set_obs(&mut self, obs: icache_obs::Obs) {
        let _ = obs;
    }
}

impl<T: StorageBackend + ?Sized> StorageBackend for Box<T> {
    fn name(&self) -> &str {
        (**self).name()
    }
    fn read_sample(&mut self, id: SampleId, size: ByteSize, now: SimTime) -> SimTime {
        (**self).read_sample(id, size, now)
    }
    fn read_package(&mut self, size: ByteSize, now: SimTime) -> SimTime {
        (**self).read_package(size, now)
    }
    fn stats(&self) -> StorageStats {
        (**self).stats()
    }
    fn reset_stats(&mut self) {
        (**self).reset_stats()
    }
    fn set_obs(&mut self, obs: icache_obs::Obs) {
        (**self).set_obs(obs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LocalTier;

    #[test]
    fn trait_is_object_safe_and_boxable() {
        let mut boxed: Box<dyn StorageBackend> = Box::new(LocalTier::tmpfs());
        let done = boxed.read_sample(SampleId(0), ByteSize::kib(4), SimTime::ZERO);
        assert!(done > SimTime::ZERO);
        assert_eq!(boxed.stats().sample_reads, 1);
        boxed.reset_stats();
        assert_eq!(boxed.stats().sample_reads, 0);
    }
}
