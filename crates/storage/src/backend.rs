//! The storage backend abstraction.

use crate::StorageStats;
use icache_types::{ByteSize, SampleId, SimTime};

/// Classification of a read for reporting purposes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReadClass {
    /// A random read of one sample file.
    Sample,
    /// A sequential read of a multi-sample package.
    Package,
}

/// A storage system that serves reads over simulated time.
///
/// Implementations are queueing models: submitting a read at virtual time
/// `now` returns the instant the data is available in host memory. Because
/// queues persist across calls, concurrent callers sharing one backend
/// contend with each other exactly as concurrent data-loader workers or
/// training jobs contend for real storage servers.
///
/// This trait is object-safe; the simulator passes `&mut dyn
/// StorageBackend` through the cache layers.
///
/// # Examples
///
/// ```
/// use icache_storage::{LocalTier, StorageBackend};
/// use icache_types::{ByteSize, SampleId, SimTime};
///
/// let mut tier = LocalTier::tmpfs();
/// let t1 = tier.read_sample(SampleId(1), ByteSize::kib(3), SimTime::ZERO);
/// let t2 = tier.read_sample(SampleId(2), ByteSize::kib(3), t1);
/// assert!(t2 > t1);
/// ```
pub trait StorageBackend {
    /// Human-readable backend name for reports.
    fn name(&self) -> &str;

    /// Read one sample file of `size` bytes, submitted at `now`.
    ///
    /// This is the small-random-read path: it pays the per-request overhead
    /// of the backend. Returns the completion instant.
    fn read_sample(&mut self, id: SampleId, size: ByteSize, now: SimTime) -> SimTime;

    /// Read a batch of sample files, all submitted at `now` and issued in
    /// order. Returns the completion instant of the last-finishing read.
    ///
    /// Semantically identical to calling [`StorageBackend::read_sample`]
    /// once per entry (the default does exactly that); backends may
    /// override it to amortise per-call accounting on bulk-loader paths
    /// that issue hundreds of reads per package build.
    fn read_samples(&mut self, reqs: &[(SampleId, ByteSize)], now: SimTime) -> SimTime {
        let mut ready = now;
        for &(id, size) in reqs {
            ready = ready.max(self.read_sample(id, size, now));
        }
        ready
    }

    /// Read a sequential package of `size` bytes, submitted at `now`.
    ///
    /// Packages are large (≥ 1 MB in the paper) and stream at close to the
    /// backend's aggregate bandwidth. Returns the completion instant.
    fn read_package(&mut self, size: ByteSize, now: SimTime) -> SimTime;

    /// Accumulated statistics.
    fn stats(&self) -> StorageStats;

    /// Reset accumulated statistics (queue horizons are preserved).
    fn reset_stats(&mut self);

    /// Attach an observability handle. Backends that participate in
    /// structured tracing and the metrics registry store a clone; the
    /// default implementation ignores it.
    fn set_obs(&mut self, obs: icache_obs::Obs) {
        let _ = obs;
    }

    /// Promise that every future read will be submitted at or after `t`,
    /// letting queue models retire booking state for the virtual past.
    ///
    /// Only drivers with a monotone submission clock (the sequential
    /// replay loop, the earliest-event-first multi-job runner) may call
    /// this; out-of-order submitters such as the prefetch pipeline must
    /// not, since retired time ranges look idle to later backdated
    /// submissions. Purely an optimisation hook: completion times and
    /// statistics are unchanged. The default does nothing.
    fn release_before(&mut self, t: SimTime) {
        let _ = t;
    }
}

impl<T: StorageBackend + ?Sized> StorageBackend for Box<T> {
    fn name(&self) -> &str {
        (**self).name()
    }
    fn read_sample(&mut self, id: SampleId, size: ByteSize, now: SimTime) -> SimTime {
        (**self).read_sample(id, size, now)
    }
    fn read_samples(&mut self, reqs: &[(SampleId, ByteSize)], now: SimTime) -> SimTime {
        (**self).read_samples(reqs, now)
    }
    fn read_package(&mut self, size: ByteSize, now: SimTime) -> SimTime {
        (**self).read_package(size, now)
    }
    fn stats(&self) -> StorageStats {
        (**self).stats()
    }
    fn reset_stats(&mut self) {
        (**self).reset_stats()
    }
    fn set_obs(&mut self, obs: icache_obs::Obs) {
        (**self).set_obs(obs)
    }
    fn release_before(&mut self, t: SimTime) {
        (**self).release_before(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LocalTier;

    #[test]
    fn trait_is_object_safe_and_boxable() {
        let mut boxed: Box<dyn StorageBackend> = Box::new(LocalTier::tmpfs());
        let done = boxed.read_sample(SampleId(0), ByteSize::kib(4), SimTime::ZERO);
        assert!(done > SimTime::ZERO);
        assert_eq!(boxed.stats().sample_reads, 1);
        boxed.reset_stats();
        assert_eq!(boxed.stats().sample_reads, 0);
    }
}
