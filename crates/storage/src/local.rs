//! Local storage tiers (tmpfs DRAM, NVMe SSD).
//!
//! The motivation experiment of Figure 2 trains once with the dataset in a
//! local DRAM tmpfs and once from the remote PFS; these tiers model the
//! local cases.

use crate::{FifoResource, StorageBackend, StorageStats};
use icache_types::{ByteSize, Error, Result, SampleId, SimDuration, SimTime};

/// Configuration of a local storage tier.
#[derive(Debug, Clone, PartialEq)]
pub struct LocalTierConfig {
    /// Tier name for reports.
    pub name: String,
    /// Fixed cost per read (syscall + page-cache lookup, or NVMe command).
    pub request_overhead: SimDuration,
    /// Streaming bandwidth in bytes/second.
    pub bandwidth: f64,
    /// Number of channels that can serve requests in parallel (memory
    /// controllers / NVMe queues).
    pub channels: usize,
}

impl LocalTierConfig {
    fn validate(&self) -> Result<()> {
        if self.channels == 0 {
            return Err(Error::invalid_config("channels", "must be at least 1"));
        }
        if !(self.bandwidth > 0.0 && self.bandwidth.is_finite()) {
            return Err(Error::invalid_config(
                "bandwidth",
                "must be positive and finite",
            ));
        }
        Ok(())
    }
}

/// A local storage tier with multiple parallel channels.
///
/// Requests are dispatched to the earliest-available channel, so a tier
/// with `channels = 8` behaves like an 8-wide NVMe queue or an 8-channel
/// memory system.
///
/// # Examples
///
/// ```
/// use icache_storage::{LocalTier, StorageBackend};
/// use icache_types::{ByteSize, SampleId, SimTime};
///
/// let mut tmpfs = LocalTier::tmpfs();
/// let done = tmpfs.read_sample(SampleId(0), ByteSize::kib(3), SimTime::ZERO);
/// assert!(done.as_secs_f64() < 1e-5, "DRAM reads are microseconds");
/// ```
#[derive(Debug, Clone)]
pub struct LocalTier {
    config: LocalTierConfig,
    channels: Vec<FifoResource>,
    stats: StorageStats,
    obs: icache_obs::Obs,
}

impl LocalTier {
    /// Build a tier from `config`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] for zero channels or non-positive
    /// bandwidth.
    pub fn new(config: LocalTierConfig) -> Result<Self> {
        config.validate()?;
        Ok(LocalTier {
            channels: vec![FifoResource::new(); config.channels],
            stats: StorageStats::default(),
            config,
            obs: icache_obs::Obs::noop(),
        })
    }

    /// A DRAM-backed tmpfs: ~10 GB/s streaming, ~2 µs per read, 8 channels.
    pub fn tmpfs() -> LocalTier {
        LocalTier::new(LocalTierConfig {
            name: "tmpfs".into(),
            request_overhead: SimDuration::from_micros(2),
            bandwidth: 10.0e9,
            channels: 8,
        })
        .expect("preset is valid")
    }

    /// A local NVMe SSD: ~2.5 GB/s streaming, ~80 µs per read, 4 queues.
    pub fn nvme_ssd() -> LocalTier {
        LocalTier::new(LocalTierConfig {
            name: "nvme-ssd".into(),
            request_overhead: SimDuration::from_micros(80),
            bandwidth: 2.5e9,
            channels: 4,
        })
        .expect("preset is valid")
    }

    /// The configuration this tier was built with.
    pub fn config(&self) -> &LocalTierConfig {
        &self.config
    }

    fn service(&self, bytes: ByteSize) -> SimDuration {
        self.config.request_overhead
            + SimDuration::from_secs_f64(bytes.as_f64() / self.config.bandwidth)
    }

    fn submit(&mut self, now: SimTime, service: SimDuration) -> SimTime {
        // Earliest-available-channel dispatch.
        let ch = self
            .channels
            .iter()
            .enumerate()
            .min_by_key(|(_, c)| c.busy_until())
            .map(|(i, _)| i)
            .expect("at least one channel");
        self.channels[ch].submit(now, service)
    }
}

impl StorageBackend for LocalTier {
    fn name(&self) -> &str {
        &self.config.name
    }

    fn read_sample(&mut self, _id: SampleId, size: ByteSize, now: SimTime) -> SimTime {
        let service = self.service(size);
        let done = self.submit(now, service);
        let latency = done.saturating_since(now);
        self.stats.record_sample(size, latency);
        self.obs.inc("storage.sample_reads");
        self.obs.add("storage.sample_bytes", size.as_u64());
        self.obs.observe("storage.sample_read", latency);
        done
    }

    fn read_package(&mut self, size: ByteSize, now: SimTime) -> SimTime {
        let service = self.service(size);
        let done = self.submit(now, service);
        let latency = done.saturating_since(now);
        self.stats.record_package(size, latency);
        self.obs.inc("storage.package_reads");
        self.obs.add("storage.package_bytes", size.as_u64());
        self.obs.observe("storage.package_read", latency);
        done
    }

    fn stats(&self) -> StorageStats {
        self.stats
    }

    fn set_obs(&mut self, obs: icache_obs::Obs) {
        self.obs = obs;
    }

    fn reset_stats(&mut self) {
        self.stats = StorageStats::default();
        for c in &mut self.channels {
            c.reset_stats();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tmpfs_is_orders_of_magnitude_faster_than_pfs() {
        use crate::{Pfs, PfsConfig};
        let mut tmpfs = LocalTier::tmpfs();
        let mut pfs = Pfs::new(PfsConfig::orangefs_default()).unwrap();
        let t_local = tmpfs.read_sample(SampleId(0), ByteSize::kib(3), SimTime::ZERO);
        let t_remote = pfs.read_sample(SampleId(0), ByteSize::kib(3), SimTime::ZERO);
        assert!(t_remote.as_nanos() > 100 * t_local.as_nanos());
    }

    #[test]
    fn channels_serve_in_parallel() {
        let mut tier = LocalTier::new(LocalTierConfig {
            name: "t".into(),
            request_overhead: SimDuration::from_micros(10),
            bandwidth: 1e9,
            channels: 4,
        })
        .unwrap();
        let mut completions = Vec::new();
        for i in 0..4 {
            completions.push(tier.read_sample(SampleId(i), ByteSize::ZERO, SimTime::ZERO));
        }
        // 4 requests, 4 channels: all finish at overhead, none queue.
        for c in completions {
            assert_eq!(c, SimTime::ZERO + SimDuration::from_micros(10));
        }
    }

    #[test]
    fn fifth_request_queues_behind_first() {
        let mut tier = LocalTier::new(LocalTierConfig {
            name: "t".into(),
            request_overhead: SimDuration::from_micros(10),
            bandwidth: 1e9,
            channels: 4,
        })
        .unwrap();
        for i in 0..4 {
            tier.read_sample(SampleId(i), ByteSize::ZERO, SimTime::ZERO);
        }
        let fifth = tier.read_sample(SampleId(4), ByteSize::ZERO, SimTime::ZERO);
        assert_eq!(fifth, SimTime::ZERO + SimDuration::from_micros(20));
    }

    #[test]
    fn validation_rejects_zero_channels() {
        let cfg = LocalTierConfig {
            name: "bad".into(),
            request_overhead: SimDuration::ZERO,
            bandwidth: 1.0,
            channels: 0,
        };
        assert!(LocalTier::new(cfg).is_err());
    }
}
