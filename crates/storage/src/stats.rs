//! Aggregate storage statistics.

use icache_types::{ByteSize, SimDuration};

/// Counters describing the I/O a backend has served.
///
/// The per-epoch deltas of these counters are what the paper's Figures 9
/// and 11 report (I/O volume and the split between small random reads and
/// large package reads).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StorageStats {
    /// Number of random single-sample reads served.
    pub sample_reads: u64,
    /// Number of sequential package reads served.
    pub package_reads: u64,
    /// Bytes moved by sample reads.
    pub sample_bytes: ByteSize,
    /// Bytes moved by package reads.
    pub package_bytes: ByteSize,
    /// Total time requests spent in service (queueing excluded).
    pub service_time: SimDuration,
}

impl StorageStats {
    /// Total reads of both classes.
    pub fn total_reads(&self) -> u64 {
        self.sample_reads + self.package_reads
    }

    /// Total bytes of both classes.
    pub fn total_bytes(&self) -> ByteSize {
        self.sample_bytes + self.package_bytes
    }

    /// Record a sample read.
    pub fn record_sample(&mut self, bytes: ByteSize, service: SimDuration) {
        self.sample_reads += 1;
        self.sample_bytes += bytes;
        self.service_time += service;
    }

    /// Record a package read.
    pub fn record_package(&mut self, bytes: ByteSize, service: SimDuration) {
        self.package_reads += 1;
        self.package_bytes += bytes;
        self.service_time += service;
    }

    /// Counter-wise difference `self - earlier` (for per-epoch deltas).
    ///
    /// Saturates at zero per counter: a delta mark taken before a
    /// `reset_stats()` legitimately exceeds the post-reset counters and
    /// must clamp rather than underflow.
    pub fn delta_since(&self, earlier: &StorageStats) -> StorageStats {
        StorageStats {
            sample_reads: self.sample_reads.saturating_sub(earlier.sample_reads),
            package_reads: self.package_reads.saturating_sub(earlier.package_reads),
            sample_bytes: self.sample_bytes.saturating_sub(earlier.sample_bytes),
            package_bytes: self.package_bytes.saturating_sub(earlier.package_bytes),
            service_time: self.service_time.saturating_sub(earlier.service_time),
        }
    }
}

impl icache_obs::ToJson for StorageStats {
    fn to_json(&self) -> icache_obs::Json {
        icache_obs::json!({
            "sample_reads": self.sample_reads,
            "package_reads": self.package_reads,
            "sample_bytes": self.sample_bytes.as_u64(),
            "package_bytes": self.package_bytes.as_u64(),
            "service_time_s": self.service_time.as_secs_f64(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_totals() {
        let mut s = StorageStats::default();
        s.record_sample(ByteSize::kib(3), SimDuration::from_micros(500));
        s.record_package(ByteSize::mib(1), SimDuration::from_millis(1));
        assert_eq!(s.total_reads(), 2);
        assert_eq!(s.total_bytes(), ByteSize::kib(3) + ByteSize::mib(1));
        assert_eq!(s.service_time, SimDuration::from_micros(1500));
    }

    #[test]
    fn delta_subtracts_counterwise() {
        let mut a = StorageStats::default();
        a.record_sample(ByteSize::new(10), SimDuration::from_nanos(5));
        let early = a;
        a.record_sample(ByteSize::new(20), SimDuration::from_nanos(7));
        let d = a.delta_since(&early);
        assert_eq!(d.sample_reads, 1);
        assert_eq!(d.sample_bytes, ByteSize::new(20));
        assert_eq!(d.service_time, SimDuration::from_nanos(7));
    }

    #[test]
    fn delta_mark_straddling_reset_saturates_to_zero() {
        // Mark taken, backend stats reset behind the caller's back: the
        // next delta used to underflow in debug builds; it must clamp.
        let mut mark = StorageStats::default();
        mark.record_sample(ByteSize::kib(3), SimDuration::from_micros(500));
        mark.record_package(ByteSize::mib(1), SimDuration::from_millis(1));
        let after_reset = StorageStats::default();
        let d = after_reset.delta_since(&mark);
        assert_eq!(d.sample_reads, 0);
        assert_eq!(d.package_reads, 0);
        assert_eq!(d.total_bytes(), ByteSize::ZERO);
        assert_eq!(d.service_time, SimDuration::ZERO);
    }
}
