//! NFS server model (used by the distributed experiments, paper §V-G).

use crate::{StorageBackend, StorageStats, TimelineResource};
use icache_types::{ByteSize, Error, Result, SampleId, SimDuration, SimTime};

/// Configuration of the NFS model.
#[derive(Debug, Clone, PartialEq)]
pub struct NfsConfig {
    /// Fixed cost per request (RPC round trip + metadata + seek).
    pub request_overhead: SimDuration,
    /// Server streaming bandwidth in bytes/second (the paper's NFS peaks
    /// at about 10 Gb/s).
    pub bandwidth: f64,
}

impl NfsConfig {
    /// The paper's cloud NFS deployment: ~10 Gb/s peak read bandwidth and
    /// single-server request handling.
    pub fn cloud_default() -> Self {
        NfsConfig {
            request_overhead: SimDuration::from_micros(1_200),
            bandwidth: 1.25e9,
        }
    }

    fn validate(&self) -> Result<()> {
        if !(self.bandwidth > 0.0 && self.bandwidth.is_finite()) {
            return Err(Error::invalid_config(
                "bandwidth",
                "must be positive and finite",
            ));
        }
        Ok(())
    }
}

/// A single-server NFS: one FIFO queue for every request, so random small
/// reads from all clients serialize behind each other. This is why the
/// distributed experiments show much larger iCache speedups (≥ 7.6×) than
/// the OrangeFS ones — the uncached baseline is far more starved.
///
/// # Examples
///
/// ```
/// use icache_storage::{Nfs, NfsConfig, StorageBackend};
/// use icache_types::{ByteSize, SampleId, SimTime};
///
/// let mut nfs = Nfs::new(NfsConfig::cloud_default())?;
/// let a = nfs.read_sample(SampleId(0), ByteSize::kib(3), SimTime::ZERO);
/// let b = nfs.read_sample(SampleId(1), ByteSize::kib(3), SimTime::ZERO);
/// assert!(b > a, "single queue serialises concurrent reads");
/// # Ok::<(), icache_types::Error>(())
/// ```
#[derive(Debug, Clone)]
pub struct Nfs {
    config: NfsConfig,
    server: TimelineResource,
    stats: StorageStats,
    obs: icache_obs::Obs,
}

impl Nfs {
    /// Build an NFS model from `config`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] for non-positive bandwidth.
    pub fn new(config: NfsConfig) -> Result<Self> {
        config.validate()?;
        Ok(Nfs {
            config,
            server: TimelineResource::new(),
            stats: StorageStats::default(),
            obs: icache_obs::Obs::noop(),
        })
    }

    /// The configuration this instance was built with.
    pub fn config(&self) -> &NfsConfig {
        &self.config
    }

    fn service(&self, bytes: ByteSize) -> SimDuration {
        self.config.request_overhead
            + SimDuration::from_secs_f64(bytes.as_f64() / self.config.bandwidth)
    }
}

impl StorageBackend for Nfs {
    fn name(&self) -> &str {
        "nfs"
    }

    fn read_sample(&mut self, _id: SampleId, size: ByteSize, now: SimTime) -> SimTime {
        let service = self.service(size);
        let done = self.server.submit(now, service);
        let latency = done.saturating_since(now);
        self.stats.record_sample(size, latency);
        self.obs.inc("storage.sample_reads");
        self.obs.add("storage.sample_bytes", size.as_u64());
        self.obs.observe("storage.sample_read", latency);
        done
    }

    fn read_package(&mut self, size: ByteSize, now: SimTime) -> SimTime {
        let service = self.service(size);
        let done = self.server.submit(now, service);
        let latency = done.saturating_since(now);
        self.stats.record_package(size, latency);
        self.obs.inc("storage.package_reads");
        self.obs.add("storage.package_bytes", size.as_u64());
        self.obs.observe("storage.package_read", latency);
        done
    }

    fn stats(&self) -> StorageStats {
        self.stats
    }

    fn set_obs(&mut self, obs: icache_obs::Obs) {
        self.obs = obs;
    }

    fn reset_stats(&mut self) {
        self.stats = StorageStats::default();
        self.server.reset_stats();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation_rejects_bad_bandwidth() {
        let cfg = NfsConfig {
            request_overhead: SimDuration::ZERO,
            bandwidth: -1.0,
        };
        assert!(Nfs::new(cfg).is_err());
    }

    #[test]
    fn all_requests_share_one_queue() {
        let mut n = Nfs::new(NfsConfig::cloud_default()).unwrap();
        let mut done = SimTime::ZERO;
        for i in 0..100 {
            done = n.read_sample(SampleId(i), ByteSize::kib(3), SimTime::ZERO);
        }
        // 100 requests x ~1.2ms each, strictly serialized.
        let ms = done.as_secs_f64() * 1e3;
        assert!((115.0..130.0).contains(&ms), "elapsed {ms}ms");
    }

    #[test]
    fn package_reads_amortise_overhead() {
        let mut n = Nfs::new(NfsConfig::cloud_default()).unwrap();
        let pkg = n.read_package(ByteSize::mib(1), SimTime::ZERO);
        // 1.2ms overhead + 1MiB / 1.25GB/s ~= 0.84ms
        let ms = pkg.as_secs_f64() * 1e3;
        assert!((1.9..2.3).contains(&ms), "elapsed {ms}ms");
        assert_eq!(n.stats().package_reads, 1);
    }
}
