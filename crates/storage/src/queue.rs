//! FIFO resource primitive.

use icache_types::{SimDuration, SimTime};

/// A single-server FIFO queue over simulated time.
///
/// Work submitted at time `t` starts at `max(t, busy_until)` and occupies
/// the resource for its service time. This is the building block for
/// storage servers, network links, GPUs, and preprocessing CPUs: the
/// contention observed by concurrent workers and jobs emerges from sharing
/// one `FifoResource`.
///
/// # Examples
///
/// ```
/// use icache_storage::FifoResource;
/// use icache_types::{SimDuration, SimTime};
///
/// let mut link = FifoResource::new();
/// let a = link.submit(SimTime::ZERO, SimDuration::from_micros(10));
/// let b = link.submit(SimTime::ZERO, SimDuration::from_micros(10));
/// assert_eq!(a.as_nanos(), 10_000);
/// assert_eq!(b.as_nanos(), 20_000); // queued behind `a`
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FifoResource {
    busy_until: SimTime,
    busy_time: SimDuration,
    jobs_served: u64,
}

impl FifoResource {
    /// A fresh, idle resource.
    pub fn new() -> Self {
        FifoResource::default()
    }

    /// Submit `service` worth of work at time `now`; returns the completion
    /// instant.
    pub fn submit(&mut self, now: SimTime, service: SimDuration) -> SimTime {
        let start = now.max(self.busy_until);
        let done = start + service;
        self.busy_until = done;
        self.busy_time += service;
        self.jobs_served += 1;
        done
    }

    /// When the resource next becomes idle.
    pub fn busy_until(&self) -> SimTime {
        self.busy_until
    }

    /// Total service time performed so far (for utilisation reports).
    pub fn busy_time(&self) -> SimDuration {
        self.busy_time
    }

    /// Number of work items served.
    pub fn jobs_served(&self) -> u64 {
        self.jobs_served
    }

    /// Forget accumulated statistics but keep the busy horizon.
    pub fn reset_stats(&mut self) {
        self.busy_time = SimDuration::ZERO;
        self.jobs_served = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_resource_starts_immediately() {
        let mut r = FifoResource::new();
        let done = r.submit(SimTime::from_nanos(100), SimDuration::from_nanos(50));
        assert_eq!(done, SimTime::from_nanos(150));
    }

    #[test]
    fn back_to_back_submissions_queue() {
        let mut r = FifoResource::new();
        let first = r.submit(SimTime::ZERO, SimDuration::from_micros(5));
        let second = r.submit(SimTime::ZERO, SimDuration::from_micros(5));
        assert_eq!(second.saturating_since(first), SimDuration::from_micros(5));
    }

    #[test]
    fn late_submission_after_idle_gap() {
        let mut r = FifoResource::new();
        r.submit(SimTime::ZERO, SimDuration::from_micros(1));
        let done = r.submit(SimTime::from_nanos(10_000), SimDuration::from_micros(1));
        // The gap (1us..10us) stays idle; work starts at 10us.
        assert_eq!(done, SimTime::from_nanos(11_000));
    }

    #[test]
    fn stats_accumulate_and_reset() {
        let mut r = FifoResource::new();
        r.submit(SimTime::ZERO, SimDuration::from_micros(2));
        r.submit(SimTime::ZERO, SimDuration::from_micros(3));
        assert_eq!(r.busy_time(), SimDuration::from_micros(5));
        assert_eq!(r.jobs_served(), 2);
        let horizon = r.busy_until();
        r.reset_stats();
        assert_eq!(r.busy_time(), SimDuration::ZERO);
        assert_eq!(r.jobs_served(), 0);
        assert_eq!(r.busy_until(), horizon, "reset keeps the busy horizon");
    }

    #[test]
    fn zero_service_is_a_noop_in_time() {
        let mut r = FifoResource::new();
        let done = r.submit(SimTime::from_nanos(7), SimDuration::ZERO);
        assert_eq!(done, SimTime::from_nanos(7));
        assert_eq!(r.jobs_served(), 1);
    }
}
