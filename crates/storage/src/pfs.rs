//! OrangeFS-like parallel file system model.

use crate::{StorageBackend, StorageStats, TimelineResource};
use icache_types::{splitmix64, ByteSize, Error, Result, SampleId, SimDuration, SimTime};

/// Configuration of the parallel file system model.
///
/// Defaults mirror the paper's deployment (§V-A): four data servers,
/// 64 KB stripes, 10 Gbps client link.
#[derive(Debug, Clone, PartialEq)]
pub struct PfsConfig {
    /// Number of data servers the dataset is striped over.
    pub num_servers: usize,
    /// Stripe size; a file smaller than this touches one server.
    pub stripe_size: ByteSize,
    /// Fixed cost a server pays per request (metadata + seek + RPC).
    pub request_overhead: SimDuration,
    /// Streaming bandwidth of one data server, in bytes/second.
    pub server_bandwidth: f64,
    /// Client NIC bandwidth shared by all transfers, in bytes/second.
    pub client_link_bandwidth: f64,
    /// Seed for the deterministic placement hash.
    pub placement_seed: u64,
}

impl PfsConfig {
    /// The paper's OrangeFS deployment: 4 servers, 64 KB stripes, 10 Gbps
    /// Ethernet. Per-request overhead and per-server bandwidth are
    /// calibrated to commodity HDD-backed PFS data servers.
    pub fn orangefs_default() -> Self {
        PfsConfig {
            num_servers: 4,
            stripe_size: ByteSize::kib(64),
            request_overhead: SimDuration::from_micros(900),
            server_bandwidth: 350.0e6,
            client_link_bandwidth: 1.25e9, // 10 Gbps
            placement_seed: 0x0F5,
        }
    }

    fn validate(&self) -> Result<()> {
        if self.num_servers == 0 {
            return Err(Error::invalid_config("num_servers", "must be at least 1"));
        }
        if self.stripe_size.is_zero() {
            return Err(Error::invalid_config("stripe_size", "must be non-zero"));
        }
        if !(self.server_bandwidth > 0.0 && self.server_bandwidth.is_finite()) {
            return Err(Error::invalid_config(
                "server_bandwidth",
                "must be positive and finite",
            ));
        }
        if !(self.client_link_bandwidth > 0.0 && self.client_link_bandwidth.is_finite()) {
            return Err(Error::invalid_config(
                "client_link_bandwidth",
                "must be positive and finite",
            ));
        }
        Ok(())
    }
}

/// A parallel file system with striped files and FIFO data servers.
///
/// See the [crate docs](crate) for the modelling assumptions. Sample files
/// are placed starting at `hash(id) % num_servers` and striped round-robin;
/// package reads stripe across every server.
///
/// # Examples
///
/// ```
/// use icache_storage::{Pfs, PfsConfig, StorageBackend};
/// use icache_types::{ByteSize, SampleId, SimTime};
///
/// let mut pfs = Pfs::new(PfsConfig::orangefs_default())?;
/// // A 1 MiB package read streams in parallel across the four servers and
/// // finishes far sooner than 341 sequential 3 KiB sample reads would.
/// let pkg_done = pfs.read_package(ByteSize::mib(1), SimTime::ZERO);
/// assert!(pkg_done.as_secs_f64() < 0.01);
/// # Ok::<(), icache_types::Error>(())
/// ```
#[derive(Debug, Clone)]
pub struct Pfs {
    config: PfsConfig,
    servers: Vec<TimelineResource>,
    client_link: TimelineResource,
    stats: StorageStats,
    name: String,
    obs: icache_obs::Obs,
    /// One-entry memo of the pure size→service arithmetic in
    /// [`Pfs::striped_read`]: `(bytes, servers_touched, per-server
    /// service, client-link service)`. Bulk loaders read one fixed
    /// sample size millions of times per replay; the two floating-point
    /// bandwidth divisions per read are measurable at that volume.
    plan_memo: Option<(u64, usize, SimDuration, SimDuration)>,
}

impl Pfs {
    /// Build a parallel file system from `config`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] for zero servers, zero stripe size,
    /// or non-positive bandwidths.
    pub fn new(config: PfsConfig) -> Result<Self> {
        config.validate()?;
        let name = format!("pfs-{}srv", config.num_servers);
        Ok(Pfs {
            servers: vec![TimelineResource::new(); config.num_servers],
            client_link: TimelineResource::new(),
            stats: StorageStats::default(),
            config,
            name,
            obs: icache_obs::Obs::noop(),
            plan_memo: None,
        })
    }

    /// The configuration this instance was built with.
    pub fn config(&self) -> &PfsConfig {
        &self.config
    }

    /// Utilisation horizon of each data server (diagnostics).
    pub fn server_busy_until(&self) -> Vec<SimTime> {
        self.servers
            .iter()
            .map(TimelineResource::busy_until)
            .collect()
    }

    fn home_server(&self, id: SampleId) -> usize {
        (splitmix64(self.config.placement_seed ^ splitmix64(id.0)) % self.config.num_servers as u64)
            as usize
    }

    fn transfer_time(&self, bytes: ByteSize, bandwidth: f64) -> SimDuration {
        SimDuration::from_secs_f64(bytes.as_f64() / bandwidth)
    }

    /// The size-determined parameters of a striped read: how many servers
    /// it touches, each server's service time, and the client-link
    /// service time. Memoised for the immediately preceding size.
    fn plan_read(&mut self, size: ByteSize) -> (usize, SimDuration, SimDuration) {
        if let Some((bytes, touched, service, link)) = self.plan_memo {
            if bytes == size.as_u64() {
                return (touched, service, link);
            }
        }
        let stripe = self.config.stripe_size.as_u64();
        let stripes_needed = size.as_u64().div_ceil(stripe).max(1) as usize;
        let servers_touched = stripes_needed.min(self.config.num_servers);
        // Bytes are spread as evenly as the stripe pattern allows; we model
        // each touched server as serving an equal share.
        let share = ByteSize::new(size.as_u64().div_ceil(servers_touched as u64));
        let service =
            self.config.request_overhead + self.transfer_time(share, self.config.server_bandwidth);
        let link_service = self.transfer_time(size, self.config.client_link_bandwidth);
        self.plan_memo = Some((size.as_u64(), servers_touched, service, link_service));
        (servers_touched, service, link_service)
    }

    /// Issue a striped read of `size` bytes beginning at `first_server`.
    /// Returns the time all stripes are on the client.
    fn striped_read(&mut self, first_server: usize, size: ByteSize, now: SimTime) -> SimTime {
        let (servers_touched, service, link_service) = self.plan_read(size);
        let n = self.config.num_servers;
        let mut all_parts_done = now;
        for k in 0..servers_touched {
            let idx = (first_server + k) % n;
            let done = self.servers[idx].submit(now, service);
            all_parts_done = all_parts_done.max(done);
        }
        // The assembled file then crosses the client NIC.
        self.client_link.submit(all_parts_done, link_service)
    }
}

impl StorageBackend for Pfs {
    fn name(&self) -> &str {
        &self.name
    }

    fn read_sample(&mut self, id: SampleId, size: ByteSize, now: SimTime) -> SimTime {
        let first = self.home_server(id);
        let done = self.striped_read(first, size, now);
        let latency = done.saturating_since(now);
        self.stats.record_sample(size, latency);
        self.obs.inc("storage.sample_reads");
        self.obs.add("storage.sample_bytes", size.as_u64());
        self.obs.observe("storage.sample_read", latency);
        done
    }

    fn read_samples(&mut self, reqs: &[(SampleId, ByteSize)], now: SimTime) -> SimTime {
        // Same queueing arithmetic as per-call `read_sample`, in the same
        // order — only the observability accounting is batched: one
        // registry lock per package build instead of three per sample.
        if reqs.is_empty() {
            return now;
        }
        let mut ready = now;
        let mut total = ByteSize::ZERO;
        let mut latencies = Vec::with_capacity(reqs.len());
        for &(id, size) in reqs {
            let first = self.home_server(id);
            let done = self.striped_read(first, size, now);
            let latency = done.saturating_since(now);
            self.stats.record_sample(size, latency);
            total += size;
            latencies.push(latency);
            ready = ready.max(done);
        }
        self.obs.add("storage.sample_reads", reqs.len() as u64);
        self.obs.add("storage.sample_bytes", total.as_u64());
        self.obs.observe_many("storage.sample_read", latencies);
        ready
    }

    fn read_package(&mut self, size: ByteSize, now: SimTime) -> SimTime {
        // Packages are written contiguously and striped across all servers;
        // the starting server rotates with the package counter so load
        // spreads even for small packages.
        let first = (self.stats.package_reads as usize) % self.config.num_servers;
        let done = self.striped_read(first, size, now);
        let latency = done.saturating_since(now);
        self.stats.record_package(size, latency);
        self.obs.inc("storage.package_reads");
        self.obs.add("storage.package_bytes", size.as_u64());
        self.obs.observe("storage.package_read", latency);
        done
    }

    fn stats(&self) -> StorageStats {
        self.stats
    }

    fn set_obs(&mut self, obs: icache_obs::Obs) {
        self.obs = obs;
    }

    fn reset_stats(&mut self) {
        self.stats = StorageStats::default();
        for s in &mut self.servers {
            s.reset_stats();
        }
        self.client_link.reset_stats();
    }

    fn release_before(&mut self, t: SimTime) {
        // A saturated replay books millions of disjoint intervals across
        // the server and NIC timelines; retiring the virtual past keeps
        // each busy map at working-set size (see `TimelineResource::
        // release_before` for the caller contract).
        for s in &mut self.servers {
            s.release_before(t);
        }
        self.client_link.release_before(t);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pfs() -> Pfs {
        Pfs::new(PfsConfig::orangefs_default()).unwrap()
    }

    #[test]
    fn config_validation_rejects_degenerate_setups() {
        let mut c = PfsConfig::orangefs_default();
        c.num_servers = 0;
        assert!(Pfs::new(c).is_err());
        let mut c = PfsConfig::orangefs_default();
        c.stripe_size = ByteSize::ZERO;
        assert!(Pfs::new(c).is_err());
        let mut c = PfsConfig::orangefs_default();
        c.server_bandwidth = 0.0;
        assert!(Pfs::new(c).is_err());
        let mut c = PfsConfig::orangefs_default();
        c.client_link_bandwidth = f64::NAN;
        assert!(Pfs::new(c).is_err());
    }

    #[test]
    fn small_read_pays_one_request_overhead() {
        let mut p = pfs();
        let done = p.read_sample(SampleId(0), ByteSize::kib(3), SimTime::ZERO);
        let us = done.as_secs_f64() * 1e6;
        // overhead 900us + ~9us transfer + ~2.4us link
        assert!((900.0..950.0).contains(&us), "latency {us}us");
    }

    #[test]
    fn large_file_stripes_across_servers() {
        let mut p = pfs();
        // 256 KiB = 4 stripes -> all 4 servers in parallel.
        let done = p.read_sample(SampleId(0), ByteSize::kib(256), SimTime::ZERO);
        let us = done.as_secs_f64() * 1e6;
        // each server: 900us + 64KiB/350MB/s(~187us) ~= 1087us, plus link ~210us
        assert!((1100.0..1600.0).contains(&us), "latency {us}us");
    }

    #[test]
    fn concurrent_small_reads_spread_over_servers() {
        let mut p = pfs();
        // Submit many reads at t=0; aggregate throughput should approach
        // num_servers / overhead.
        let mut last = SimTime::ZERO;
        let n = 400;
        for i in 0..n {
            last = last.max(p.read_sample(SampleId(i), ByteSize::kib(3), SimTime::ZERO));
        }
        let per_second = n as f64 / last.as_secs_f64();
        // 4 servers / ~909us ~= 4400/s; placement skew allows slack.
        assert!(
            (3000.0..5000.0).contains(&per_second),
            "throughput {per_second}/s"
        );
    }

    #[test]
    fn package_read_is_faster_per_byte_than_sample_reads() {
        let mut p1 = pfs();
        let pkg_done = p1.read_package(ByteSize::mib(1), SimTime::ZERO);

        let mut p2 = pfs();
        // Same volume in 3 KiB random reads.
        let mut last = SimTime::ZERO;
        for i in 0..341 {
            last = last.max(p2.read_sample(SampleId(i), ByteSize::kib(3), SimTime::ZERO));
        }
        assert!(
            pkg_done.as_secs_f64() * 10.0 < last.as_secs_f64(),
            "package {pkg_done} vs samples {last}"
        );
    }

    #[test]
    fn placement_is_deterministic_and_balanced() {
        let p = pfs();
        let mut counts = vec![0u32; 4];
        for i in 0..10_000 {
            counts[p.home_server(SampleId(i))] += 1;
        }
        for &c in &counts {
            assert!((2000..3000).contains(&c), "imbalanced: {counts:?}");
        }
        assert_eq!(p.home_server(SampleId(42)), p.home_server(SampleId(42)));
    }

    #[test]
    fn stats_track_classes_separately() {
        let mut p = pfs();
        p.read_sample(SampleId(0), ByteSize::kib(3), SimTime::ZERO);
        p.read_package(ByteSize::mib(2), SimTime::ZERO);
        let s = p.stats();
        assert_eq!(s.sample_reads, 1);
        assert_eq!(s.package_reads, 1);
        assert_eq!(s.sample_bytes, ByteSize::kib(3));
        assert_eq!(s.package_bytes, ByteSize::mib(2));
        p.reset_stats();
        assert_eq!(p.stats(), StorageStats::default());
    }

    #[test]
    fn identical_request_sequences_are_identical_in_time() {
        let run = || {
            let mut p = pfs();
            let mut t = SimTime::ZERO;
            for i in 0..50 {
                t = p.read_sample(SampleId(i % 7), ByteSize::kib(3 + (i % 5)), t);
            }
            t
        };
        assert_eq!(run(), run());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Completions never precede submissions, identical request
        /// streams are identical in time, and server queues never run
        /// backwards.
        #[test]
        fn pfs_time_invariants(reqs in proptest::collection::vec(
            (0u64..500, 1u64..200u64, 0u64..10_000u64), 1..100)) {
            let run = || {
                let mut p = Pfs::new(PfsConfig::orangefs_default()).unwrap();
                let mut completions = Vec::new();
                for &(id, kib, at_us) in &reqs {
                    let now = SimTime::from_nanos(at_us * 1_000);
                    let done = p.read_sample(SampleId(id), ByteSize::kib(kib), now);
                    completions.push(done);
                    prop_assert!(done > now, "completion must follow submission");
                }
                Ok(completions)
            };
            let a = run()?;
            let b = run()?;
            prop_assert_eq!(a, b, "identical streams must be identical in time");
        }

        /// A fresh-system read always lands between the physical bounds:
        /// at least one request overhead plus perfectly parallel streaming,
        /// at most overhead plus single-server streaming plus the NIC.
        /// (Note: a *slightly larger* read can legitimately finish sooner —
        /// crossing a stripe boundary buys server parallelism.)
        #[test]
        fn read_times_respect_physical_bounds(kib in 1u64..4_096) {
            let cfg = PfsConfig::orangefs_default();
            let mut p = Pfs::new(cfg.clone()).unwrap();
            let size = ByteSize::kib(kib);
            let done = p.read_package(size, SimTime::ZERO).saturating_since(SimTime::ZERO);
            let lower = cfg.request_overhead
                + SimDuration::from_secs_f64(
                    size.as_f64() / (cfg.server_bandwidth * cfg.num_servers as f64),
                );
            let upper = cfg.request_overhead
                + SimDuration::from_secs_f64(size.as_f64() / cfg.server_bandwidth)
                + SimDuration::from_secs_f64(size.as_f64() / cfg.client_link_bandwidth)
                + SimDuration::from_micros(1);
            prop_assert!(done >= lower, "{done} below physical floor {lower}");
            prop_assert!(done <= upper, "{done} above physical ceiling {upper}");
        }
    }
}
