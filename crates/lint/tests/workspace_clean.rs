//! The tier-1 gate: the live workspace must lint clean under the
//! committed `lint.toml`. A violation introduced anywhere in the repo
//! fails this test before CI even reaches the dedicated lint job.

use std::path::PathBuf;

#[test]
fn live_workspace_has_no_findings() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root must resolve");
    assert!(
        root.join("Cargo.toml").is_file(),
        "expected the workspace root at {}",
        root.display()
    );
    let cfg = icache_lint::load_config(&root, None).expect("committed lint.toml must parse");
    let findings = icache_lint::run(&root, &cfg).expect("workspace must be scannable");
    assert!(
        findings.is_empty(),
        "the workspace must lint clean; run `cargo run -p icache-lint --bin icache_lint` \
         for details:\n{}",
        findings
            .iter()
            .map(|f| f.render())
            .collect::<Vec<_>>()
            .join("\n")
    );
}
