//! Correct locking discipline: both nesting sites acquire in the same
//! order (no cycle), and the one blocking call under a guard carries a
//! live, justified hatch — so the stale-allow rule stays quiet too.

use std::sync::Mutex;

pub struct Pair {
    a: Mutex<u32>,
    b: Mutex<u32>,
}

impl Pair {
    pub fn ordered(&self) -> bool {
        let ga = self.a.lock();
        let gb = self.b.lock();
        ga.is_ok() && gb.is_ok()
    }

    pub fn ordered_again(&self) -> bool {
        let ga = self.a.lock();
        drop(ga);
        let gb = self.b.lock();
        gb.is_ok()
    }

    pub fn paced_read(&self, net: &Net) -> u32 {
        let _ga = self.a.lock();
        // lint: allow(locks-io): the recv models a virtual-time arrival notification and never blocks the caller
        net.recv()
    }
}

pub struct Net;

impl Net {
    pub fn recv(&self) -> u32 {
        0
    }
}
