//! Fixture: a fully conforming library file — the clean-pass baseline.

#![forbid(unsafe_code)]

use std::collections::BTreeMap;

pub struct State {
    pub map: BTreeMap<u32, u32>,
    // lint: allow(determinism): keyed lookup only, never iterated
    pub index: std::collections::HashMap<u32, u32>,
}

pub fn lookup(s: &State, k: u32) -> Option<u32> {
    s.map.get(&k).copied()
}

pub fn must(x: Option<u32>) -> u32 {
    x.expect("caller guarantees the key was inserted during setup")
}

pub fn emit(obs: &Obs) {
    obs.inc("app.requests");
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_is_fine_in_tests() {
        Some(1u32).unwrap();
    }
}

pub struct DenseState {
    pub resident: icache_core::IdSlab<u32>,
    pub members: icache_types::IdSet,
}

pub fn resident_count(s: &DenseState) -> usize {
    s.resident.len() + s.members.len()
}
