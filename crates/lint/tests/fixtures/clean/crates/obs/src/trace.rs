//! Fixture event source: everything it emits is documented.

pub enum Ev {
    Tick,
}

impl Ev {
    pub fn name(&self) -> &'static str {
        match self {
            Ev::Tick => "tick",
        }
    }
}
