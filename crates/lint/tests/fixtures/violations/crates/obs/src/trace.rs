//! Fixture event source: `tick` is documented, `rogue_event` is not.

pub enum Ev {
    Tick,
    Rogue,
}

impl Ev {
    pub fn name(&self) -> &'static str {
        match self {
            Ev::Tick => "tick",
            Ev::Rogue => "rogue_event",
        }
    }
}
