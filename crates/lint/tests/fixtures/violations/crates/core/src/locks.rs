//! Deliberately broken locking discipline: an acquisition-order cycle
//! (`ab` vs `ba`), blocking I/O under a live guard, a guard bound to
//! `_`, a re-lock of a field already held, and a stale inline hatch.

use std::sync::Mutex;

pub struct Pair {
    a: Mutex<u32>,
    b: Mutex<u32>,
}

impl Pair {
    pub fn ab(&self) -> u32 {
        let ga = self.a.lock();
        let gb = self.b.lock();
        *ga.as_ref().ok().map_or(&0, |g| g) + *gb.as_ref().ok().map_or(&0, |g| g)
    }

    pub fn ba(&self) -> u32 {
        let gb = self.b.lock();
        let ga = self.a.lock();
        *ga.as_ref().ok().map_or(&0, |g| g) + *gb.as_ref().ok().map_or(&0, |g| g)
    }

    pub fn blocking_under_guard(&self, net: &Net) -> u32 {
        let _ga = self.a.lock();
        net.recv()
    }

    pub fn discarded_guard(&self) {
        let _ = self.a.lock();
    }

    pub fn relock(&self) -> bool {
        let first = self.a.lock();
        let again = self.a.lock();
        first.is_ok() && again.is_ok()
    }

    pub fn no_panic_here(&self) -> u32 {
        // lint: allow(panic): hatch kept after the unwrap it covered was removed
        7
    }
}

pub struct Net;

impl Net {
    pub fn recv(&self) -> u32 {
        0
    }
}
