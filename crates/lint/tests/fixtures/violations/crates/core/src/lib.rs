//! Fixture: one violation per rule family, at positions the integration
//! tests pin exactly. This file is never compiled — `icache_lint` lexes
//! it straight off disk. (Missing `#![forbid(unsafe_code)]` here is the
//! hygiene violation.)

use std::collections::HashMap;

pub struct State {
    pub map: HashMap<u32, u32>,
}

pub fn lookup(s: &State, k: u32) -> u32 {
    *s.map.get(&k).unwrap()
}

pub fn classify(v: u32) -> &'static str {
    match v {
        0 => "zero",
        _ => panic!("bad value"),
    }
}

pub fn tiny(x: Option<u32>) -> u32 {
    x.expect("no")
}

pub fn debugging(v: u32) -> u32 {
    dbg!(v)
}

pub fn emit(obs: &Obs) {
    obs.inc("app.undocumented");
}

pub fn hatched() -> u32 {
    unreachable!() // lint: allow(panic)
}

pub struct Dedup {
    pub seen: std::collections::HashSet<u32>,
}
