//! Fixture-tree tests: every rule family fires on the violations tree at
//! exactly the positions it should, and the clean tree produces nothing.

use icache_lint::config::Config;
use icache_lint::diagnostics::Finding;
use std::path::PathBuf;

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn run_fixture(name: &str) -> Vec<Finding> {
    icache_lint::run(&fixture(name), &Config::default()).expect("fixture tree must be scannable")
}

fn has(findings: &[Finding], rule: &str, path: &str, line: u32, col: u32) -> bool {
    findings
        .iter()
        .any(|f| f.rule == rule && f.path == path && f.line == line && f.col == col)
}

#[test]
fn clean_tree_has_no_findings() {
    let findings = run_fixture("clean");
    assert!(findings.is_empty(), "unexpected findings: {findings:#?}");
}

#[test]
fn determinism_violation_at_exact_position() {
    let findings = run_fixture("violations");
    // `HashMap` in the `State` struct field; the `use` line is exempt.
    assert!(has(
        &findings,
        "determinism",
        "crates/core/src/lib.rs",
        9,
        14
    ));
    // `HashSet` in the `Dedup` struct field (fully qualified — no `use`
    // line to exempt it).
    assert!(has(
        &findings,
        "determinism",
        "crates/core/src/lib.rs",
        40,
        33
    ));
    assert_eq!(
        findings.iter().filter(|f| f.rule == "determinism").count(),
        2,
        "the use-declaration must not be flagged"
    );
}

#[test]
fn panic_violations_at_exact_positions() {
    let findings = run_fixture("violations");
    let lib = "crates/core/src/lib.rs";
    assert!(has(&findings, "panic", lib, 13, 20), "unwrap()");
    assert!(has(&findings, "panic", lib, 19, 14), "panic!");
    assert!(has(&findings, "panic", lib, 24, 7), "short expect()");
    // `unreachable!()` on line 36 is hatched (reasonlessly — that is a
    // hygiene finding, not a panic one).
    assert_eq!(findings.iter().filter(|f| f.rule == "panic").count(), 3);
}

#[test]
fn hygiene_violations_cover_forbid_dbg_and_bad_hatch() {
    let findings = run_fixture("violations");
    let lib = "crates/core/src/lib.rs";
    // Missing `#![forbid(unsafe_code)]` anchors to 1:1; the mention
    // inside the doc comment must not count.
    assert!(has(&findings, "hygiene", lib, 1, 1));
    assert!(has(&findings, "hygiene", lib, 28, 5), "dbg!");
    let reasonless = findings
        .iter()
        .find(|f| f.rule == "hygiene" && f.line == 36)
        .expect("reasonless allow hatch must be flagged");
    assert!(reasonless.message.contains("reason"));
    assert_eq!(findings.iter().filter(|f| f.rule == "hygiene").count(), 3);
}

#[test]
fn contract_violations_fire_in_both_directions() {
    let findings = run_fixture("violations");
    let contract: Vec<&Finding> = findings.iter().filter(|f| f.rule == "contract").collect();
    assert_eq!(contract.len(), 4, "{contract:#?}");
    // Code → doc: emitted but undocumented.
    assert!(contract.iter().any(|f| {
        f.path == "crates/core/src/lib.rs" && f.line == 32 && f.message.contains("app.undocumented")
    }));
    assert!(contract
        .iter()
        .any(|f| { f.path == "crates/obs/src/trace.rs" && f.message.contains("rogue_event") }));
    // Doc → code: documented but never emitted.
    assert!(contract
        .iter()
        .any(|f| { f.path == "DESIGN.md" && f.message.contains("app.documented_only") }));
    assert!(contract
        .iter()
        .any(|f| { f.path == "DESIGN.md" && f.message.contains("phantom_event") }));
    // `tick` appears on both sides and must not be flagged.
    assert!(!contract.iter().any(|f| f.message.contains("`tick`")));
}

#[test]
fn lock_violations_at_exact_positions() {
    let findings = run_fixture("violations");
    let locks = "crates/core/src/locks.rs";
    // The `ab`/`ba` pair forms a Pair.a -> Pair.b -> Pair.a cycle; the
    // finding anchors at the witness of the cycle's first edge.
    let cycle = findings
        .iter()
        .find(|f| f.rule == "locks-order")
        .expect("cycle finding");
    assert_eq!(
        (cycle.path.as_str(), cycle.line, cycle.col),
        (locks, 15, 25)
    );
    assert!(
        cycle.message.contains("Pair.a -> Pair.b -> Pair.a"),
        "{}",
        cycle.message
    );
    assert_eq!(
        findings.iter().filter(|f| f.rule == "locks-order").count(),
        1
    );

    // `recv()` under the live `_ga` guard.
    assert!(has(&findings, "locks-io", locks, 27, 13));
    assert_eq!(findings.iter().filter(|f| f.rule == "locks-io").count(), 1);

    // Guard bound to `_` and the re-lock of an already-held field.
    assert!(
        has(&findings, "locks-guard", locks, 31, 24),
        "{findings:#?}"
    );
    assert!(
        has(&findings, "locks-guard", locks, 36, 28),
        "{findings:#?}"
    );
    assert_eq!(
        findings.iter().filter(|f| f.rule == "locks-guard").count(),
        2
    );

    // The `allow(panic)` hatch on line 41 excuses nothing.
    assert!(has(&findings, "stale-allow", locks, 41, 1), "{findings:#?}");
    assert_eq!(
        findings.iter().filter(|f| f.rule == "stale-allow").count(),
        1
    );
}

#[test]
fn hierarchy_contract_flags_undeclared_participating_lock() {
    // A declared order that omits Pair.a: the edges it participates in
    // must produce an "undeclared" finding (once, despite two edges).
    let cfg = Config {
        lock_order: vec!["Pair.b".to_string()],
        ..Config::default()
    };
    let findings =
        icache_lint::run(&fixture("violations"), &cfg).expect("fixture tree must be scannable");
    let undeclared: Vec<_> = findings
        .iter()
        .filter(|f| f.rule == "locks-order" && f.message.contains("not declared"))
        .collect();
    assert_eq!(undeclared.len(), 1, "{undeclared:#?}");
    assert!(undeclared[0].message.contains("`Pair.a`"));
    assert_eq!(undeclared[0].path, "crates/core/src/locks.rs");
}

#[test]
fn hierarchy_contract_flags_declared_but_never_seen_lock() {
    let cfg = Config {
        lock_order: vec![
            "Pair.a".to_string(),
            "Pair.b".to_string(),
            "Ghost.lock".to_string(),
        ],
        ..Config::default()
    };
    let findings =
        icache_lint::run(&fixture("violations"), &cfg).expect("fixture tree must be scannable");
    let ghost = findings
        .iter()
        .find(|f| f.rule == "locks-order" && f.message.contains("`Ghost.lock`"))
        .expect("never-seen finding");
    assert!(ghost.message.contains("never seen"), "{}", ghost.message);
    // Configuration findings anchor to the config file, not a source file.
    assert_eq!(
        (ghost.path.as_str(), ghost.line, ghost.col),
        ("lint.toml", 0, 0)
    );
}

#[test]
fn hierarchy_contract_flags_rank_inversion() {
    // Declare Pair.b outermost: the `ab` nesting (a held, then b) now
    // inverts the declared order.
    let cfg = Config {
        lock_order: vec!["Pair.b".to_string(), "Pair.a".to_string()],
        ..Config::default()
    };
    let findings =
        icache_lint::run(&fixture("violations"), &cfg).expect("fixture tree must be scannable");
    let inversion = findings
        .iter()
        .find(|f| f.rule == "locks-order" && f.message.contains("outermost-before"))
        .expect("rank-inversion finding");
    assert_eq!(inversion.path, "crates/core/src/locks.rs");
    assert_eq!((inversion.line, inversion.col), (15, 25));
}

#[test]
fn findings_are_sorted_and_render_as_path_line_col() {
    let findings = run_fixture("violations");
    assert!(!findings.is_empty());
    let keys: Vec<(&str, u32, u32)> = findings
        .iter()
        .map(|f| (f.path.as_str(), f.line, f.col))
        .collect();
    let mut sorted = keys.clone();
    sorted.sort();
    assert_eq!(keys, sorted, "report order must be canonical");
    let rendered = findings[0].render();
    assert!(
        rendered.contains(&format!(
            "{}:{}:{}: [{}]",
            findings[0].path, findings[0].line, findings[0].col, findings[0].rule
        )),
        "{rendered}"
    );
}
