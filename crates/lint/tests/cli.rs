//! End-to-end tests of the `icache_lint` binary: exit codes, the
//! human-readable listing, and the `--json` report CI consumes.

use icache_obs::Json;
use std::path::PathBuf;
use std::process::{Command, Output};

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn lint(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_icache_lint"))
        .args(args)
        .output()
        .expect("spawning the icache_lint binary must succeed")
}

#[test]
fn clean_tree_exits_zero() {
    let out = lint(&["--root", fixture("clean").to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    assert!(String::from_utf8_lossy(&out.stderr).contains("clean"));
}

#[test]
fn violations_exit_one_with_positions_on_stdout() {
    let out = lint(&["--root", fixture("violations").to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("crates/core/src/lib.rs:9:14: [determinism]"),
        "{stdout}"
    );
    assert!(stdout.contains("crates/core/src/lib.rs:13:20: [panic]"));
}

#[test]
fn json_report_is_machine_readable() {
    let out = lint(&["--root", fixture("violations").to_str().unwrap(), "--json"]);
    assert_eq!(out.status.code(), Some(1));
    let report = Json::parse(&String::from_utf8_lossy(&out.stdout))
        .expect("report must be valid canonical JSON");
    assert_eq!(report["ok"].as_bool(), Some(false));
    let findings = report["findings"].as_array().expect("findings array");
    assert_eq!(
        findings.len(),
        17,
        "2 determinism + 3 panic + 3 hygiene + 4 contract + 1 locks-order \
         + 1 locks-io + 2 locks-guard + 1 stale-allow"
    );
    for f in findings {
        assert!(f["rule"].as_str().is_some());
        assert!(f["path"].as_str().is_some());
        assert!(f["message"].as_str().is_some());
    }
    // Per-rule counts mirror the findings list.
    assert_eq!(report["counts"]["determinism"].as_u64(), Some(2));
    assert_eq!(report["counts"]["panic"].as_u64(), Some(3));
    assert_eq!(report["counts"]["hygiene"].as_u64(), Some(3));
    assert_eq!(report["counts"]["contract"].as_u64(), Some(4));
    assert_eq!(report["counts"]["locks-order"].as_u64(), Some(1));
    assert_eq!(report["counts"]["locks-io"].as_u64(), Some(1));
    assert_eq!(report["counts"]["locks-guard"].as_u64(), Some(2));
    assert_eq!(report["counts"]["stale-allow"].as_u64(), Some(1));
}

#[test]
fn lock_graph_artifact_has_nodes_edges_and_witness_cycle() {
    let dir = std::env::temp_dir().join("icache_lint_lock_graph_test");
    std::fs::create_dir_all(&dir).expect("temp dir must be creatable");
    let graph_path = dir.join("lock-graph.json");
    let out = lint(&[
        "--root",
        fixture("violations").to_str().unwrap(),
        "--lock-graph",
        graph_path.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let text = std::fs::read_to_string(&graph_path).expect("artifact must be written");
    let graph = Json::parse(&text).expect("artifact must be valid canonical JSON");

    // Nodes carry name/declared/rank/class/io_exempt/sites.
    let nodes = graph["nodes"].as_array().expect("nodes array");
    let pair_a = nodes
        .iter()
        .find(|n| n["name"].as_str() == Some("Pair.a"))
        .expect("Pair.a node");
    assert_eq!(pair_a["declared"].as_bool(), Some(false));
    assert!(matches!(pair_a["rank"], Json::Null));
    assert!(pair_a["sites"].as_u64().unwrap_or(0) >= 3);

    // Both directions of the cycle appear as edges with file:line:col
    // witnesses inside the fixture tree.
    let edges = graph["edges"].as_array().expect("edges array");
    for (from, to) in [("Pair.a", "Pair.b"), ("Pair.b", "Pair.a")] {
        let e = edges
            .iter()
            .find(|e| e["from"].as_str() == Some(from) && e["to"].as_str() == Some(to))
            .unwrap_or_else(|| panic!("edge {from} -> {to} missing"));
        let at = e["at"].as_str().expect("edge witness position");
        assert!(
            at.starts_with("crates/core/src/locks.rs:"),
            "witness must point into the fixture: {at}"
        );
    }

    // The witness cycle is closed (first node repeated) and canonical.
    let cycles = graph["cycles"].as_array().expect("cycles array");
    assert_eq!(cycles.len(), 1, "{text}");
    let cyc: Vec<&str> = cycles[0]
        .as_array()
        .expect("cycle path")
        .iter()
        .map(|n| n.as_str().expect("node name"))
        .collect();
    assert_eq!(cyc, ["Pair.a", "Pair.b", "Pair.a"]);

    // The blocking section records the io violation with its chain.
    let blocking = graph["blocking"].as_array().expect("blocking array");
    let b = blocking
        .iter()
        .find(|b| b["status"].as_str() == Some("violation"))
        .expect("blocking violation entry");
    assert_eq!(b["lock"].as_str(), Some("Pair.a"));
    assert_eq!(b["chain"].as_str(), Some("recv"));
}

#[test]
fn json_report_on_clean_tree_is_ok() {
    let out = lint(&["--root", fixture("clean").to_str().unwrap(), "--json"]);
    assert_eq!(out.status.code(), Some(0));
    let report = Json::parse(&String::from_utf8_lossy(&out.stdout)).expect("valid JSON");
    assert_eq!(report["ok"].as_bool(), Some(true));
    assert_eq!(report["findings"].as_array().map(|a| a.len()), Some(0));
}

#[test]
fn usage_errors_exit_two() {
    let out = lint(&["--no-such-flag"]);
    assert_eq!(out.status.code(), Some(2));
    let out = lint(&[
        "--root",
        fixture("clean").to_str().unwrap(),
        "--config",
        "/nonexistent/lint.toml",
    ]);
    assert_eq!(
        out.status.code(),
        Some(2),
        "missing explicit config is an error"
    );
}

#[test]
fn bad_config_exits_two() {
    let dir = std::env::temp_dir().join("icache_lint_bad_cfg_test");
    std::fs::create_dir_all(&dir).expect("temp dir must be creatable");
    let cfg = dir.join("lint.toml");
    std::fs::write(&cfg, "[determinism]\nallow = [\"crates/x.rs\"]\n")
        .expect("temp config must be writable");
    let out = lint(&[
        "--root",
        fixture("clean").to_str().unwrap(),
        "--allowlist",
        cfg.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("reasons are mandatory"));
}

#[test]
fn help_exits_zero() {
    let out = lint(&["--help"]);
    assert_eq!(out.status.code(), Some(0));
    assert!(String::from_utf8_lossy(&out.stdout).contains("EXIT CODES"));
}
