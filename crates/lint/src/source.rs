//! Per-file source model: lexed tokens plus the structural facts the
//! rules need — which lines are test code, which tokens sit inside `use`
//! declarations, and which `// lint: …` directives are in force.

use crate::lexer::{lex, Lexed, TokenKind};

/// What kind of compilation target a file belongs to. Rules scope
/// themselves by kind: panic-policy only bites `Lib`, the observability
/// contract also reads `Bin` (driver binaries emit metrics too).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Library code (the default).
    Lib,
    /// A binary target (`src/bin/*`, `main.rs`).
    Bin,
    /// An example (`examples/`).
    Example,
    /// Test code (`tests/` directories).
    Test,
    /// A criterion bench (`benches/`).
    Bench,
}

/// A parsed `// lint: allow(<rule>): <reason>` escape hatch.
#[derive(Debug, Clone)]
pub struct AllowDirective {
    /// Rule family the hatch silences (`determinism`, `panic`, …).
    pub rule: String,
    /// The stated reason; empty reasons are themselves a finding.
    pub reason: String,
    /// Line the directive comment starts on.
    pub comment_line: u32,
    /// Line the directive applies to (its own line for trailing
    /// comments, the next code line for standalone ones).
    pub effective_line: u32,
}

/// A `// lint: metric("name")` declaration for metric names that are
/// assembled at runtime (e.g. per-node counters built with `format!`).
#[derive(Debug, Clone)]
pub struct MetricDecl {
    /// Declared metric name (may contain `{*}` wildcard segments).
    pub name: String,
    /// Line of the declaration.
    pub line: u32,
}

/// A lexed file plus derived structure.
#[derive(Debug)]
pub struct SourceFile {
    /// Path relative to the scanned root, with `/` separators.
    pub rel: String,
    /// The crate directory under `crates/` (e.g. `"core"`), when any.
    pub crate_dir: Option<String>,
    /// Target kind.
    pub kind: FileKind,
    /// Tokens and comments.
    pub lexed: Lexed,
    /// For each token index: is the token part of a `use …;` item?
    pub in_use_decl: Vec<bool>,
    /// Inclusive line ranges covered by `#[cfg(test)]` / `#[test]` /
    /// `#[bench]` items.
    pub test_spans: Vec<(u32, u32)>,
    /// Escape hatches, in source order.
    pub allows: Vec<AllowDirective>,
    /// Declared dynamic metric names.
    pub metric_decls: Vec<MetricDecl>,
    /// Malformed `lint:` directives: `(line, problem)`.
    pub bad_directives: Vec<(u32, String)>,
    /// Suppressions that actually fired: `(rule, line)` for inline
    /// hatches, `(rule + ":file", 0)` for `lint.toml` file-level allow
    /// entries. Interior mutability keeps rule signatures `&SourceFile`.
    pub used_allows: std::cell::RefCell<std::collections::BTreeSet<(String, u32)>>,
}

impl SourceFile {
    /// Lex `text` and derive all structure.
    pub fn parse(rel: String, crate_dir: Option<String>, kind: FileKind, text: &str) -> Self {
        let lexed = lex(text);
        let in_use_decl = mark_use_decls(&lexed);
        let test_spans = find_test_spans(&lexed);
        let mut file = SourceFile {
            rel,
            crate_dir,
            kind,
            lexed,
            in_use_decl,
            test_spans,
            allows: Vec::new(),
            metric_decls: Vec::new(),
            bad_directives: Vec::new(),
            used_allows: Default::default(),
        };
        file.parse_directives();
        file
    }

    /// Whether `line` falls inside test code.
    pub fn is_test_line(&self, line: u32) -> bool {
        self.test_spans.iter().any(|&(a, b)| a <= line && line <= b)
    }

    /// Whether an allow hatch for `rule` covers `line` (reasonless
    /// hatches still suppress — the missing reason is reported once as
    /// its own finding, not once per suppressed site).
    pub fn allowed(&self, rule: &str, line: u32) -> bool {
        let hit = self
            .allows
            .iter()
            .any(|a| a.rule == rule && a.effective_line == line);
        if hit {
            self.used_allows
                .borrow_mut()
                .insert((rule.to_string(), line));
        }
        hit
    }

    /// Record that a `lint.toml` file-level allow entry for `rule`
    /// suppressed a would-be finding in this file.
    pub fn mark_file_allow_used(&self, rule: &str) {
        self.used_allows
            .borrow_mut()
            .insert((format!("{rule}:file"), 0));
    }

    /// Whether the inline hatch for `rule` at `line` suppressed anything.
    pub fn allow_used(&self, rule: &str, line: u32) -> bool {
        self.used_allows
            .borrow()
            .contains(&(rule.to_string(), line))
    }

    /// Whether a file-level allow entry for `rule` suppressed anything.
    pub fn file_allow_used(&self, rule: &str) -> bool {
        self.used_allows
            .borrow()
            .contains(&(format!("{rule}:file"), 0))
    }

    fn parse_directives(&mut self) {
        for c in &self.lexed.comments {
            let text = c.text.trim();
            let Some(rest) = text.strip_prefix("lint:").map(str::trim) else {
                continue;
            };
            let effective_line = if c.trailing {
                c.line
            } else {
                // A standalone comment annotates the next code line.
                self.lexed
                    .tokens
                    .iter()
                    .map(|t| t.line)
                    .find(|&l| l > c.line)
                    .unwrap_or(c.line + 1)
            };
            if let Some(args) = rest.strip_prefix("allow(") {
                let Some(end) = args.find(')') else {
                    self.bad_directives
                        .push((c.line, "unclosed `lint: allow(`".to_string()));
                    continue;
                };
                let rule = args[..end].trim().to_string();
                let reason = args[end + 1..]
                    .trim_start_matches([':', '-', ' '])
                    .trim_start_matches('—')
                    .trim()
                    .to_string();
                self.allows.push(AllowDirective {
                    rule,
                    reason,
                    comment_line: c.line,
                    effective_line,
                });
            } else if let Some(args) = rest.strip_prefix("metric(") {
                let inner = args.rfind(')').map(|end| args[..end].trim());
                match inner {
                    Some(name)
                        if name.len() >= 2 && name.starts_with('"') && name.ends_with('"') =>
                    {
                        self.metric_decls.push(MetricDecl {
                            name: name[1..name.len() - 1].to_string(),
                            line: c.line,
                        });
                    }
                    _ => self.bad_directives.push((
                        c.line,
                        "`lint: metric(…)` needs a quoted metric name".to_string(),
                    )),
                }
            } else {
                self.bad_directives.push((
                    c.line,
                    format!("unknown `lint:` directive `{rest}` (expected allow(…) or metric(…))"),
                ));
            }
        }
    }
}

fn mark_use_decls(lexed: &Lexed) -> Vec<bool> {
    let mut marks = vec![false; lexed.tokens.len()];
    let mut i = 0;
    while i < lexed.tokens.len() {
        if matches!(&lexed.tokens[i].kind, TokenKind::Ident(s) if s == "use") {
            let start = i;
            while i < lexed.tokens.len() && lexed.tokens[i].kind != TokenKind::Punct(';') {
                i += 1;
            }
            for m in marks
                .iter_mut()
                .take((i + 1).min(lexed.tokens.len()))
                .skip(start)
            {
                *m = true;
            }
        }
        i += 1;
    }
    marks
}

/// Find the line spans of items annotated `#[cfg(test)]`, `#[test]`, or
/// `#[bench]`. Works on the token stream: after a test attribute, skip
/// any further attributes, then take the item's extent — up to the
/// matching close brace of its first top-level `{`, or the first
/// top-level `;`.
fn find_test_spans(lexed: &Lexed) -> Vec<(u32, u32)> {
    let toks = &lexed.tokens;
    let mut spans = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if toks[i].kind != TokenKind::Punct('#') {
            i += 1;
            continue;
        }
        let attr_line = toks[i].line;
        let mut j = i + 1;
        if j < toks.len() && toks[j].kind == TokenKind::Punct('!') {
            // Inner attribute `#![…]` — not an item annotation.
            i = j + 1;
            continue;
        }
        if j >= toks.len() || toks[j].kind != TokenKind::Punct('[') {
            i += 1;
            continue;
        }
        // Collect idents inside the attribute (bracket-balanced).
        let mut depth = 0i32;
        let mut names: Vec<&str> = Vec::new();
        while j < toks.len() {
            match &toks[j].kind {
                TokenKind::Punct('[') => depth += 1,
                TokenKind::Punct(']') => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                TokenKind::Ident(s) => names.push(s),
                _ => {}
            }
            j += 1;
        }
        let is_test_attr = (names.contains(&"test") || names.contains(&"bench"))
            && !names.contains(&"not")
            && !names.contains(&"doctest");
        if !is_test_attr {
            i = j + 1;
            continue;
        }
        // Skip any stacked attributes that follow.
        let mut k = j + 1;
        while k + 1 < toks.len()
            && toks[k].kind == TokenKind::Punct('#')
            && toks[k + 1].kind == TokenKind::Punct('[')
        {
            let mut d = 0i32;
            let mut m = k + 1;
            while m < toks.len() {
                match &toks[m].kind {
                    TokenKind::Punct('[') => d += 1,
                    TokenKind::Punct(']') => {
                        d -= 1;
                        if d == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                m += 1;
            }
            k = m + 1;
        }
        // Item extent.
        let mut d = 0i32;
        let mut in_brace = false;
        let mut end = k;
        while end < toks.len() {
            match &toks[end].kind {
                TokenKind::Punct('{') | TokenKind::Punct('(') | TokenKind::Punct('[') => {
                    if toks[end].kind == TokenKind::Punct('{') && d == 0 {
                        in_brace = true;
                    }
                    d += 1;
                }
                TokenKind::Punct('}') | TokenKind::Punct(')') | TokenKind::Punct(']') => {
                    d -= 1;
                    if in_brace && d == 0 {
                        break;
                    }
                }
                TokenKind::Punct(';') if d == 0 => break,
                _ => {}
            }
            end += 1;
        }
        let end_line = toks.get(end).map_or(attr_line, |t| t.line);
        spans.push((attr_line, end_line));
        i = end + 1;
    }
    spans
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(src: &str) -> SourceFile {
        SourceFile::parse("x.rs".to_string(), None, FileKind::Lib, src)
    }

    #[test]
    fn cfg_test_module_span_covers_everything_inside() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn helper() { x.unwrap(); }\n}\nfn after() {}\n";
        let f = file(src);
        assert!(!f.is_test_line(1));
        assert!(f.is_test_line(2));
        assert!(f.is_test_line(4));
        assert!(f.is_test_line(5));
        assert!(!f.is_test_line(6));
    }

    #[test]
    fn test_fn_with_stacked_attrs() {
        let src = "#[test]\n#[should_panic]\nfn boom() {\n  panic!(\"x\");\n}\nfn lib() {}\n";
        let f = file(src);
        assert!(f.is_test_line(4));
        assert!(!f.is_test_line(6));
    }

    #[test]
    fn cfg_not_test_is_not_a_test_span() {
        let f = file("#[cfg(not(test))]\nfn real() { x.unwrap(); }\n");
        assert!(!f.is_test_line(2));
    }

    #[test]
    fn use_decls_are_marked() {
        let f = file("use std::collections::HashMap;\nfn f() { let m: HashMap<u8, u8>; }\n");
        let hash_toks: Vec<(usize, u32)> = f
            .lexed
            .tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| matches!(&t.kind, TokenKind::Ident(s) if s == "HashMap"))
            .map(|(i, t)| (i, t.line))
            .collect();
        assert_eq!(hash_toks.len(), 2);
        assert!(f.in_use_decl[hash_toks[0].0]);
        assert!(!f.in_use_decl[hash_toks[1].0]);
    }

    #[test]
    fn trailing_allow_covers_its_own_line() {
        let f = file("let m = HashMap::new(); // lint: allow(determinism): keyed lookup only\n");
        assert!(f.allowed("determinism", 1));
        assert_eq!(f.allows[0].reason, "keyed lookup only");
    }

    #[test]
    fn standalone_allow_covers_next_code_line() {
        let f = file("// lint: allow(panic): checked by caller\n\nlet x = y.unwrap();\n");
        assert!(f.allowed("panic", 3));
        assert!(!f.allowed("panic", 1));
    }

    #[test]
    fn reasonless_allow_is_recorded_with_empty_reason() {
        let f = file("x(); // lint: allow(determinism)\n");
        assert!(f.allowed("determinism", 1));
        assert!(f.allows[0].reason.is_empty());
    }

    #[test]
    fn metric_decls_parse() {
        let f = file("// lint: metric(\"dist.node{*}.local_hits\")\nlet k = 0;\n");
        assert_eq!(f.metric_decls.len(), 1);
        assert_eq!(f.metric_decls[0].name, "dist.node{*}.local_hits");
    }

    #[test]
    fn unknown_directive_is_flagged() {
        let f = file("// lint: frobnicate(x)\n");
        assert_eq!(f.bad_directives.len(), 1);
    }
}
