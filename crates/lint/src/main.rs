//! `icache_lint` — the CI gate. Scans the workspace, prints findings
//! (or a canonical JSON report with `--json`), and exits non-zero when
//! anything is wrong.
//!
//! Exit codes: 0 clean, 1 findings, 2 usage or configuration error.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
icache_lint — repo-specific static analysis for the iCache workspace

USAGE:
    icache_lint [OPTIONS]

OPTIONS:
    --root <dir>       Workspace root to scan (default: current directory)
    --config <file>    lint.toml to load (default: <root>/lint.toml if present)
    --allowlist <file> Alias for --config
    --json             Emit the machine-readable report on stdout
    --lock-graph <file> Write the lock-acquisition-order graph (nodes,
                       edges, witness cycles, blocking paths) as JSON
    -h, --help         Show this help

EXIT CODES:
    0  clean
    1  findings reported
    2  usage or configuration error
";

struct Args {
    root: PathBuf,
    config: Option<PathBuf>,
    json: bool,
    lock_graph: Option<PathBuf>,
}

fn parse_args() -> Result<Option<Args>, String> {
    let mut args = Args {
        root: PathBuf::from("."),
        config: None,
        json: false,
        lock_graph: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => {
                args.root = PathBuf::from(
                    it.next()
                        .ok_or_else(|| "--root needs a directory".to_string())?,
                )
            }
            "--config" | "--allowlist" => {
                args.config = Some(PathBuf::from(
                    it.next()
                        .ok_or_else(|| format!("{arg} needs a file path"))?,
                ))
            }
            "--json" => args.json = true,
            "--lock-graph" => {
                args.lock_graph =
                    Some(PathBuf::from(it.next().ok_or_else(|| {
                        "--lock-graph needs a file path".to_string()
                    })?))
            }
            "-h" | "--help" => return Ok(None),
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
    }
    Ok(Some(args))
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(Some(args)) => args,
        Ok(None) => {
            print!("{USAGE}");
            return ExitCode::from(0);
        }
        Err(e) => {
            eprintln!("icache_lint: {e}");
            return ExitCode::from(2);
        }
    };
    if !args.root.is_dir() {
        eprintln!(
            "icache_lint: root `{}` is not a directory",
            args.root.display()
        );
        return ExitCode::from(2);
    }
    let cfg = match icache_lint::load_config(&args.root, args.config.as_deref()) {
        Ok(cfg) => cfg,
        Err(e) => {
            eprintln!("icache_lint: {e}");
            return ExitCode::from(2);
        }
    };
    let report = match icache_lint::run_full(&args.root, &cfg) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("icache_lint: {e}");
            return ExitCode::from(2);
        }
    };
    let findings = report.findings;
    if let Some(path) = &args.lock_graph {
        if let Err(e) = std::fs::write(path, format!("{}\n", report.lock_graph)) {
            eprintln!("icache_lint: write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }
    if args.json {
        println!("{}", icache_lint::diagnostics::report_json(&findings));
    } else {
        for f in &findings {
            println!("{}", f.render());
        }
        if findings.is_empty() {
            eprintln!("icache_lint: clean");
        } else {
            eprintln!("icache_lint: {} finding(s)", findings.len());
        }
    }
    ExitCode::from(if findings.is_empty() { 0 } else { 1 })
}
