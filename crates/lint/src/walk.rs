//! Workspace file discovery: deterministic (sorted) traversal of the
//! configured roots, with skip-prefix filtering and target-kind
//! classification from path shape alone — no manifest parsing, so the
//! fixture trees under `tests/fixtures/` lint exactly like the live
//! workspace.

use crate::config::Config;
use crate::source::FileKind;
use std::path::{Path, PathBuf};

/// A discovered `.rs` file.
#[derive(Debug, Clone)]
pub struct WorkspaceFile {
    /// Absolute (root-joined) path.
    pub abs: PathBuf,
    /// Path relative to the root, `/`-separated.
    pub rel: String,
    /// Crate directory under `crates/`, when any.
    pub crate_dir: Option<String>,
    /// Target kind.
    pub kind: FileKind,
}

/// Collect every `.rs` file under the configured roots, sorted by
/// relative path.
pub fn collect(root: &Path, cfg: &Config) -> Result<Vec<WorkspaceFile>, String> {
    let mut out = Vec::new();
    for r in &cfg.roots {
        let dir = root.join(r);
        if dir.is_dir() {
            walk(root, &dir, cfg, &mut out)?;
        }
    }
    out.sort_by(|a, b| a.rel.cmp(&b.rel));
    Ok(out)
}

fn walk(root: &Path, dir: &Path, cfg: &Config, out: &mut Vec<WorkspaceFile>) -> Result<(), String> {
    let entries = std::fs::read_dir(dir).map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
    let mut paths: Vec<PathBuf> = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
        paths.push(entry.path());
    }
    paths.sort();
    for path in paths {
        let rel = relative(root, &path);
        if cfg
            .skip
            .iter()
            .any(|s| rel == *s || rel.starts_with(&format!("{s}/")))
        {
            continue;
        }
        if path.is_dir() {
            walk(root, &path, cfg, out)?;
        } else if rel.ends_with(".rs") {
            out.push(WorkspaceFile {
                abs: path.clone(),
                crate_dir: crate_dir_of(&rel),
                kind: classify(&rel),
                rel,
            });
        }
    }
    Ok(())
}

fn relative(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

fn crate_dir_of(rel: &str) -> Option<String> {
    rel.strip_prefix("crates/")
        .and_then(|rest| rest.split('/').next())
        .map(str::to_string)
}

fn classify(rel: &str) -> FileKind {
    if rel.starts_with("tests/") || rel.contains("/tests/") {
        FileKind::Test
    } else if rel.starts_with("benches/") || rel.contains("/benches/") {
        FileKind::Bench
    } else if rel.starts_with("examples/") || rel.contains("/examples/") {
        FileKind::Example
    } else if rel.contains("/src/bin/") || rel.ends_with("/main.rs") || rel == "src/main.rs" {
        FileKind::Bin
    } else {
        FileKind::Lib
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_by_path_shape() {
        assert_eq!(classify("crates/core/src/manager.rs"), FileKind::Lib);
        assert_eq!(classify("crates/bench/src/bin/fig01.rs"), FileKind::Bin);
        assert_eq!(classify("crates/lint/src/main.rs"), FileKind::Bin);
        assert_eq!(
            classify("crates/bench/benches/heap_ops.rs"),
            FileKind::Bench
        );
        assert_eq!(classify("crates/sim/examples/calib.rs"), FileKind::Example);
        assert_eq!(classify("tests/end_to_end.rs"), FileKind::Test);
        assert_eq!(classify("crates/bench/tests/cli.rs"), FileKind::Test);
        assert_eq!(classify("examples/quickstart.rs"), FileKind::Example);
    }

    #[test]
    fn crate_dir_extraction() {
        assert_eq!(
            crate_dir_of("crates/core/src/lib.rs"),
            Some("core".to_string())
        );
        assert_eq!(crate_dir_of("src/lib.rs"), None);
        assert_eq!(crate_dir_of("tests/x.rs"), None);
    }
}
