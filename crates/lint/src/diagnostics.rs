//! Findings and their renderings: `file:line:col` text for humans,
//! canonical JSON for CI.

use icache_obs::Json;

/// One rule violation at one source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule family: `determinism`, `panic`, `hygiene`, or `contract`.
    pub rule: &'static str,
    /// Path relative to the scanned root.
    pub path: String,
    /// 1-based line (0 for whole-file findings with no anchor).
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// What is wrong and what to do instead.
    pub message: String,
}

impl Finding {
    /// `path:line:col: [rule] message` — the grep-able one-line form.
    pub fn render(&self) -> String {
        format!(
            "{}:{}:{}: [{}] {}",
            self.path, self.line, self.col, self.rule, self.message
        )
    }
}

/// Sort findings into the canonical report order: path, line, col, rule.
pub fn sort_findings(findings: &mut Vec<Finding>) {
    findings.sort_by(|a, b| {
        (a.path.as_str(), a.line, a.col, a.rule, a.message.as_str()).cmp(&(
            b.path.as_str(),
            b.line,
            b.col,
            b.rule,
            b.message.as_str(),
        ))
    });
    findings.dedup();
}

/// The machine-readable report: `{"ok": bool, "counts": {rule: n},
/// "findings": [{rule, path, line, col, message}]}` in canonical key
/// order, byte-identical for identical findings.
pub fn report_json(findings: &[Finding]) -> Json {
    let mut counts: std::collections::BTreeMap<&'static str, u64> = Default::default();
    for f in findings {
        *counts.entry(f.rule).or_insert(0) += 1;
    }
    Json::Obj(vec![
        ("ok".to_string(), Json::Bool(findings.is_empty())),
        (
            "counts".to_string(),
            Json::Obj(
                counts
                    .into_iter()
                    .map(|(k, v)| (k.to_string(), Json::UInt(v)))
                    .collect(),
            ),
        ),
        (
            "findings".to_string(),
            Json::Arr(
                findings
                    .iter()
                    .map(|f| {
                        Json::Obj(vec![
                            ("rule".to_string(), Json::Str(f.rule.to_string())),
                            ("path".to_string(), Json::Str(f.path.clone())),
                            ("line".to_string(), Json::UInt(f.line as u64)),
                            ("col".to_string(), Json::UInt(f.col as u64)),
                            ("message".to_string(), Json::Str(f.message.clone())),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(path: &str, line: u32, rule: &'static str) -> Finding {
        Finding {
            rule,
            path: path.to_string(),
            line,
            col: 1,
            message: "m".to_string(),
        }
    }

    #[test]
    fn sorted_and_deduped() {
        let mut v = vec![
            f("b.rs", 2, "panic"),
            f("a.rs", 9, "panic"),
            f("b.rs", 2, "panic"),
        ];
        sort_findings(&mut v);
        assert_eq!(v.len(), 2);
        assert_eq!(v[0].path, "a.rs");
    }

    #[test]
    fn json_report_shape() {
        let report = report_json(&[f("a.rs", 1, "hygiene")]);
        let text = report.to_string();
        assert!(text.contains("\"ok\":false"));
        assert!(text.contains("\"hygiene\":1"));
        let parsed = Json::parse(&text).unwrap();
        assert_eq!(parsed["findings"].as_array().map(|a| a.len()), Some(1));
    }

    #[test]
    fn empty_report_is_ok() {
        assert!(report_json(&[]).to_string().contains("\"ok\":true"));
    }
}
