//! The rule families. Each rule takes a parsed
//! [`SourceFile`](crate::source::SourceFile) (or, for the contract and
//! lock rules, the whole workspace) and appends
//! [`Finding`](crate::diagnostics::Finding)s.

pub mod contract;
pub mod determinism;
pub mod hygiene;
pub mod locks;
pub mod panic;
pub mod stale;
